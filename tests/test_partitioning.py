"""Tests for the document-level graph partitioners (Sections 3.3, 4.3)."""

import pytest

from repro.core.partitioning import (
    Partitioning,
    compute_cross_links,
    link_count_edge_weight,
    partition_by_closure_size,
    partition_by_node_weight,
    partition_closure_sizes,
    single_document_partitioning,
)
from repro.graph.closure import transitive_closure_size
from repro.xmlmodel import dblp_like, random_collection


@pytest.fixture(scope="module")
def dblp():
    return dblp_like(40, seed=2)


def _assert_valid_partitioning(collection, partitioning):
    seen = set()
    for docs in partitioning.partitions:
        assert docs, "no empty partitions"
        for d in docs:
            assert d not in seen, "partitions must be disjoint"
            seen.add(d)
    assert seen == set(collection.documents), "partitions must cover D"
    # part_of agrees with the partition lists
    for i, docs in enumerate(partitioning.partitions):
        for d in docs:
            assert partitioning.part_of[d] == i
    # cross links are exactly the links across partitions
    expected = {
        (u, v)
        for (u, v) in collection.inter_links
        if partitioning.part_of[collection.doc(u)]
        != partitioning.part_of[collection.doc(v)]
    }
    assert set(partitioning.cross_links) == expected


def test_node_weight_respects_limit(dblp):
    limit = 120
    partitioning = partition_by_node_weight(dblp, limit, seed=1)
    _assert_valid_partitioning(dblp, partitioning)
    weights = dblp.document_weights()
    for docs in partitioning.partitions:
        total = sum(weights[d] for d in docs)
        # a single oversized document may exceed the limit on its own
        assert total <= limit or len(docs) == 1


def test_node_weight_limit_too_small_gives_singletons(dblp):
    partitioning = partition_by_node_weight(dblp, 1, seed=0)
    assert all(len(docs) == 1 for docs in partitioning.partitions)


def test_node_weight_larger_limit_fewer_partitions(dblp):
    small = partition_by_node_weight(dblp, 60, seed=0)
    large = partition_by_node_weight(dblp, 600, seed=0)
    assert large.num_partitions < small.num_partitions
    assert len(large.cross_links) <= len(small.cross_links)


def test_node_weight_invalid_limit(dblp):
    with pytest.raises(ValueError):
        partition_by_node_weight(dblp, 0)


def test_closure_partitioner_respects_budget(dblp):
    budget = 5_000
    partitioning = partition_by_closure_size(dblp, budget, seed=1)
    _assert_valid_partitioning(dblp, partitioning)
    for docs, size in zip(
        partitioning.partitions, partition_closure_sizes(dblp, partitioning)
    ):
        assert size <= budget or len(docs) == 1


def test_closure_partitioner_balances_closures(dblp):
    """Section 4.3: the new partitioner 'creates partitions with a
    similar size of the transitive closures'."""
    budget = 4_000
    partitioning = partition_by_closure_size(dblp, budget, seed=1)
    sizes = partition_closure_sizes(dblp, partitioning)
    multi = [
        s
        for s, docs in zip(sizes, partitioning.partitions)
        if len(docs) > 1
    ]
    if len(multi) >= 2:
        # all grown partitions come within an order of magnitude of the
        # budget — conservative node counting shows much wilder spread
        assert min(multi) > 0
        assert max(multi) <= budget


def test_closure_partitioner_invalid_budget(dblp):
    with pytest.raises(ValueError):
        partition_by_closure_size(dblp, 0)


def test_closure_partitioner_oversized_document_falls_back(dblp):
    """Regression: a document whose own closure exceeds the budget must
    become a warned-about singleton partition instead of failing (or
    silently scanning every neighbour against an unreachable budget)."""
    import warnings

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        partitioning = partition_by_closure_size(dblp, 1, seed=1)
    messages = [
        str(w.message) for w in caught if issubclass(w.category, UserWarning)
    ]
    assert any("partition budget" in m for m in messages), messages
    _assert_valid_partitioning(dblp, partitioning)
    assert all(len(docs) == 1 for docs in partitioning.partitions)


def test_closure_partitioner_no_warning_when_budget_fits(dblp):
    import warnings

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        partition_by_closure_size(dblp, 50_000, seed=1)
    assert not [w for w in caught if issubclass(w.category, UserWarning)]


def test_single_document_partitioning(dblp):
    partitioning = single_document_partitioning(dblp)
    _assert_valid_partitioning(dblp, partitioning)
    assert partitioning.num_partitions == dblp.num_documents
    assert set(partitioning.cross_links) == dblp.inter_links


def test_link_count_edge_weight(dblp):
    weight = link_count_edge_weight(dblp)
    total = sum(
        weight(a, b)
        for (a, b) in dblp.document_link_counts()
    )
    assert total >= len(dblp.inter_links)


def test_custom_edge_weight_changes_partitioning():
    collection = random_collection(n_docs=12, inter_links=20, seed=4)
    default = partition_by_node_weight(collection, 30, seed=0)
    inverted = partition_by_node_weight(
        collection,
        30,
        seed=0,
        edge_weight=lambda a, b: 1.0,  # uniform weights
    )
    _assert_valid_partitioning(collection, default)
    _assert_valid_partitioning(collection, inverted)


def test_partitioning_post_init_builds_part_of():
    p = Partitioning([["a", "b"], ["c"]])
    assert p.part_of == {"a": 0, "b": 0, "c": 1}
    assert p.num_partitions == 2


def test_compute_cross_links(dblp):
    part_of = {d: i % 2 for i, d in enumerate(sorted(dblp.documents))}
    cross = compute_cross_links(dblp, part_of)
    for u, v in cross:
        assert part_of[dblp.doc(u)] != part_of[dblp.doc(v)]


def test_partition_closure_sizes_sum_vs_whole(dblp):
    """Partition closures never exceed the whole-graph closure."""
    partitioning = partition_by_node_weight(dblp, 150, seed=3)
    sizes = partition_closure_sizes(dblp, partitioning)
    whole = transitive_closure_size(dblp.element_graph())
    assert sum(sizes) <= whole
