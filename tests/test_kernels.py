"""Differential suite for the kernel layer (:mod:`repro.core.kernels`).

Every intersection strategy — ``merge``, ``gallop``, ``bitset`` and,
when it imports, ``numpy`` — must agree with a frozen ``set``-based
oracle on arbitrary sorted rows (hypothesis) *and* on real label rows
cut from sealed covers of random collections, including rows observed
after Section-6 maintenance sequences force a re-seal. The portable
strategies are the contract; the numpy path is feature-detected and
must never change an answer.
"""

import random
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.hopi import HopiIndex

from test_equivalence import _apply, _maintenance_script, random_collection

#: Sorted duplicate-free rows over a small id universe (the CSR row
#: contract every kernel assumes).
sorted_rows = st.lists(
    st.integers(min_value=0, max_value=255), max_size=64
).map(lambda xs: sorted(set(xs)))


# ---------------------------------------------------------------------------
# hypothesis: arbitrary rows
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(a=sorted_rows, b=sorted_rows)
def test_every_strategy_matches_the_set_oracle(a, b):
    expected = sorted(set(a) & set(b))
    aa, bb = array("i", a), array("i", b)
    for strategy in kernels.available_strategies():
        assert kernels.intersect(aa, bb, strategy=strategy) == expected, strategy
    # the auto-chosen strategy too, with and without a span hint
    assert kernels.intersect(aa, bb) == expected
    assert kernels.intersect(aa, bb, span=256) == expected
    assert kernels.intersects_any(aa, bb, span=256) == bool(expected)
    assert kernels.intersects_any(aa, bb) == bool(expected)


@settings(max_examples=200, deadline=None)
@given(
    values=st.lists(st.integers(min_value=-2, max_value=255), max_size=100),
    universe=st.lists(st.integers(min_value=0, max_value=255), max_size=64),
)
def test_membership_flags_matches_naive(values, universe):
    """Both membership paths (bisect loop; numpy ``searchsorted`` once
    ``values`` crosses the batch threshold) match the naive oracle —
    negative sentinels (unknown labels) must always test False."""
    uni = sorted(set(universe))
    members = set(uni)
    expected = [v in members for v in values]
    flags = kernels.membership_flags(values, uni)
    assert flags == expected
    assert all(isinstance(f, bool) for f in flags)


def test_bitset_reuses_a_precomputed_mask():
    b = [1, 5, 9, 200]
    mask = kernels.make_bitmask(b)
    assert kernels.intersect_bitset([0, 5, 200, 201], b, mask=mask) == [5, 200]
    assert kernels.make_bitmask([]) == 0


def test_choose_strategy_is_deterministic_and_valid():
    cases = [
        (0, 10, None), (10, 10, 20), (4, 1000, None),
        (600, 700, None), (3, 5, 1000), (64, 512, None),
    ]
    for n_a, n_b, span in cases:
        picked = kernels.choose_strategy(n_a, n_b, span=span)
        assert picked in kernels.available_strategies()
        assert kernels.choose_strategy(n_a, n_b, span=span) == picked


def test_unknown_strategy_raises():
    with pytest.raises(ValueError, match="unknown strategy"):
        kernels.intersect([1], [1], strategy="quantum")


# ---------------------------------------------------------------------------
# real covers: sealed rows, before and after maintenance
# ---------------------------------------------------------------------------


def _assert_row_strategies_agree(cover, rng, samples=40):
    """Random (table, row) × (table, row) pairs from the sealed slabs:
    every strategy returns exactly the set-oracle intersection."""
    slabs = cover._seal()
    span = len(cover.interner)
    if span == 0:
        return
    tables = ("lin", "lout", "inv_lin", "inv_lout")
    for _ in range(samples):
        a = slabs.row(rng.choice(tables), rng.randrange(span))
        b = slabs.row(rng.choice(tables), rng.randrange(span))
        expected = sorted(set(a) & set(b))
        for strategy in kernels.available_strategies():
            assert kernels.intersect(a, b, strategy=strategy) == expected, strategy
        assert kernels.intersects_any(a, b, span=span) == bool(expected)


@pytest.mark.parametrize("cyclic", [False, True])
@pytest.mark.parametrize("seed", range(3))
def test_cover_rows_after_build_and_maintenance(seed, cyclic):
    index = HopiIndex.build(
        random_collection(seed, cyclic=cyclic),
        backend="vector",
        strategy="recursive",
        partitioner="node_weight",
        partition_limit=8,
    )
    rng = random.Random(seed)
    _assert_row_strategies_agree(index.cover, rng)
    ops = _maintenance_script(index, random.Random(100 + seed), n_ops=6)
    for op in ops:
        _apply(index, op)
    # mutations dropped the slabs; this re-seals the maintained cover
    assert not index.cover.sealed
    _assert_row_strategies_agree(index.cover, rng)
