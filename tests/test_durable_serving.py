"""Durable stores behind the serving layer — sharded and single.

``repro serve --shards N --store DIR`` used to accept the flags and
silently drop durability on the floor. These tests pin the repaired
contract: a :class:`ShardRouter` given a durable store logs every
acknowledged update to the WAL, checkpoints, and closes the store's
file handles on ``close()`` — and a fresh process recovering from the
same directory sees the updates. Same for :class:`QueryService`.
"""

import pytest

from repro.core.hopi import HopiIndex
from repro.service import QueryService, ShardRouter
from repro.storage.snapshot import canonical_snapshot_bytes
from repro.storage.wal import DurableIndexStore
from repro.xmlmodel.generator import dblp_like

INSERT = {
    "op": "insert_document", "doc_id": "fresh", "root_tag": "article",
    "children": [{"ref": "a", "tag": "authors"},
                 {"ref": "b", "parent": "a", "tag": "author"}],
    "links": [],
}


def durable_index(root):
    index = HopiIndex.build(dblp_like(8, seed=3), backend="arrays")
    store = DurableIndexStore(str(root))
    store.initialize(index)
    return index, store


def test_shard_router_persists_updates_and_closes_store(tmp_path):
    index, store = durable_index(tmp_path)
    router = ShardRouter(index, 3, durable_store=store)
    result = router.update([dict(INSERT)])
    assert result["applied"] == 1
    live = canonical_snapshot_bytes(router.index.cover)
    router.close()
    # close() must release the WAL file handle — serving daemons are
    # long-lived and a leaked fd per swap adds up
    assert store.wal._fh is None

    recovered_store = DurableIndexStore(str(tmp_path))
    recovered = recovered_store.recover(backend="arrays")
    recovered_store.close()
    assert "fresh" in recovered.collection.documents
    assert canonical_snapshot_bytes(recovered.cover) == live


def test_query_service_close_closes_durable_store(tmp_path):
    index, store = durable_index(tmp_path)
    service = QueryService(index, durable_store=store)
    service.update([dict(INSERT)])
    live = canonical_snapshot_bytes(service.index.cover)
    service.close()
    assert store.wal._fh is None

    recovered_store = DurableIndexStore(str(tmp_path))
    recovered = recovered_store.recover(backend="arrays")
    recovered_store.close()
    assert "fresh" in recovered.collection.documents
    assert canonical_snapshot_bytes(recovered.cover) == live


def test_shard_router_and_single_service_recover_identically(tmp_path):
    base = HopiIndex.build(dblp_like(8, seed=3), backend="arrays")

    single_store = DurableIndexStore(str(tmp_path / "single"))
    single_store.initialize(base.copy())
    single = QueryService(base.copy(), durable_store=single_store)
    single.update([dict(INSERT)])
    single.close()

    shard_store = DurableIndexStore(str(tmp_path / "sharded"))
    shard_store.initialize(base.copy())
    router = ShardRouter(base.copy(), 3, durable_store=shard_store)
    router.update([dict(INSERT)])
    router.close()

    a = DurableIndexStore(str(tmp_path / "single"))
    b = DurableIndexStore(str(tmp_path / "sharded"))
    try:
        assert canonical_snapshot_bytes(
            a.recover(backend="arrays").cover
        ) == canonical_snapshot_bytes(b.recover(backend="arrays").cover)
    finally:
        a.close()
        b.close()
