"""Tests for the size/compression accounting (Sections 3.4, 7.2)."""

import pytest

from repro.core import HopiIndex
from repro.core.stats import IndexSizeReport, compression_ratio, entries_per_node
from repro.xmlmodel import dblp_like


def test_compression_ratio_paper_values():
    # the paper's own numbers reproduce through the formula
    assert compression_ratio(344_992_370, 15_976_677) == pytest.approx(21.6, abs=0.1)
    assert compression_ratio(344_992_370, 1_289_930) == pytest.approx(267.0, abs=0.5)


def test_compression_ratio_edge_cases():
    assert compression_ratio(0, 0) == 1.0
    assert compression_ratio(10, 0) == float("inf")
    assert compression_ratio(100, 50) == 2.0


def test_entries_per_node():
    assert entries_per_node(30, 10) == 3.0
    assert entries_per_node(0, 0) == 0.0


def test_index_size_report_accounting():
    report = IndexSizeReport(num_nodes=100, cover_size=250,
                             closure_connections=5_000)
    assert report.stored_integers == 1_000  # 2 ints/entry + backward index
    assert report.closure_stored_integers == 20_000
    assert report.compression == 20.0
    assert report.entries_per_node == 2.5


def test_index_size_report_without_closure():
    report = IndexSizeReport(num_nodes=10, cover_size=20)
    assert report.closure_stored_integers is None
    assert report.compression is None


def test_cover_degradation_and_rebuild():
    """Section 6: maintenance degrades space efficiency; a rebuild
    restores it."""
    c = dblp_like(25, seed=19)
    index = HopiIndex.build(c, strategy="recursive", partitioner="closure")
    fresh_size = index.cover.size
    # churn: insert links between random roots (each insert adds entries
    # with no global re-optimisation)
    docs = sorted(c.documents)
    for i in range(10):
        u = c.documents[docs[i]].root
        v = c.documents[docs[-(i + 1)]].root
        if u != v and (u, v) not in c.inter_links:
            index.insert_edge(u, v)
    index.verify()
    degraded_size = index.cover.size
    assert degraded_size > fresh_size
    # the paper's remedy
    index.rebuild()
    index.verify()
    assert index.cover.size <= degraded_size
    assert index.stats is not None


def test_rebuild_preserves_distance_flag():
    c = dblp_like(8, seed=3)
    index = HopiIndex.build(c, strategy="unpartitioned", distance=True)
    index.rebuild(strategy="unpartitioned")
    assert index.is_distance_aware
    index.verify()
