"""Tests for the Cohen-style 2-hop-cover builder."""

import random

import pytest

from repro.core.cover_builder import (
    build_cover,
    build_cover_for_closure,
    expand_component_cover,
)
from repro.graph import Condensation, DiGraph, transitive_closure


def _random_digraph(rng, n, m, acyclic=False):
    g = DiGraph()
    for v in range(n):
        g.add_node(v)
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        if acyclic and u > v:
            u, v = v, u
        g.add_edge(u, v)
    return g


def test_chain():
    g = DiGraph([(1, 2), (2, 3), (3, 4)])
    cover = build_cover(g)
    cover.verify_against(transitive_closure(g))


def test_diamond():
    g = DiGraph([(1, 2), (1, 3), (2, 4), (3, 4)])
    cover = build_cover(g)
    cover.verify_against(transitive_closure(g))


def test_star_center_is_efficient():
    # K ancestors -> hub -> K descendants: the greedy algorithm should
    # label everything with the hub, giving size 2K instead of K^2.
    k = 10
    edges = [(i, "hub") for i in range(k)] + [("hub", 100 + i) for i in range(k)]
    g = DiGraph(edges)
    cover = build_cover(g)
    cover.verify_against(transitive_closure(g))
    # closure has k*k + 2k connections; a good cover stays linear
    assert cover.size <= 3 * k


def test_empty_and_isolated():
    g = DiGraph()
    g.add_node(1)
    g.add_node(2)
    cover = build_cover(g)
    assert cover.size == 0
    assert cover.connected(1, 1)
    assert not cover.connected(1, 2)


def test_cycle_members_connected():
    g = DiGraph([(1, 2), (2, 3), (3, 1), (3, 4)])
    cover = build_cover(g)
    cover.verify_against(transitive_closure(g))
    assert cover.connected(1, 1)
    assert cover.connected(2, 1)
    assert cover.connected(1, 4)
    assert not cover.connected(4, 1)


def test_two_sccs_bridge():
    g = DiGraph([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)])
    cover = build_cover(g)
    cover.verify_against(transitive_closure(g))


def test_preselected_centers_still_correct():
    g = DiGraph([(1, 2), (2, 3), (2, 4), (5, 2)])
    closure = transitive_closure(g)
    cover = build_cover_for_closure(closure, preselected_centers=[2])
    cover.verify_against(closure)
    # the preselected node must appear as a center
    centers = {c for _, _, c in cover.entries()}
    assert 2 in centers


def test_preselected_unknown_node_ignored():
    g = DiGraph([(1, 2)])
    closure = transitive_closure(g)
    cover = build_cover_for_closure(closure, preselected_centers=[99])
    cover.verify_against(closure)


def test_preselected_centers_through_build_cover_cyclic():
    g = DiGraph([(1, 2), (2, 1), (2, 3)])
    cover = build_cover(g, preselected_centers=[2])
    cover.verify_against(transitive_closure(g))


def test_cover_size_beats_closure_on_dags():
    rng = random.Random(5)
    g = _random_digraph(rng, 60, 150, acyclic=True)
    closure = transitive_closure(g)
    cover = build_cover(g)
    cover.verify_against(closure)
    if closure.num_connections > 200:
        # 2-hop covers compress dense closures
        assert cover.size < closure.num_connections


@pytest.mark.parametrize("seed", range(10))
def test_random_dags_exact(seed):
    rng = random.Random(seed)
    g = _random_digraph(rng, 25, rng.randrange(10, 80), acyclic=True)
    cover = build_cover(g)
    cover.verify_against(transitive_closure(g))


@pytest.mark.parametrize("seed", range(10))
def test_random_cyclic_exact(seed):
    rng = random.Random(100 + seed)
    g = _random_digraph(rng, 20, rng.randrange(10, 70))
    cover = build_cover(g)
    cover.verify_against(transitive_closure(g))


def test_expand_component_cover_directly():
    g = DiGraph([(1, 2), (2, 1), (2, 3)])
    cond = Condensation(g)
    dag_closure = transitive_closure(cond.dag)
    comp_cover = build_cover_for_closure(dag_closure)
    cover = expand_component_cover(comp_cover, cond)
    cover.verify_against(transitive_closure(g))


def test_build_cover_with_precomputed_closure_dag():
    g = DiGraph([(1, 2), (2, 3)])
    closure = transitive_closure(g)
    cover = build_cover(g, closure=closure)
    cover.verify_against(closure)


def test_builder_deterministic():
    g = DiGraph([(1, 2), (2, 3), (1, 4), (4, 3), (3, 5)])
    a = build_cover(g)
    b = build_cover(g)
    assert set(a.entries()) == set(b.entries())
