"""The asyncio front end: parity, admission control, fault injection.

The contract under test is the tentpole of the async front-end work:

1. **Bit-identical responses.** The threaded and asyncio front ends
   share one :class:`~repro.service.api.ServiceAPI`; the differential
   suite here proves it observationally — every endpoint, success and
   error, unsharded and sharded, field for field (volatile timing
   fields normalised, never dropped).
2. **Structured overload.** Open-loop bursts beyond capacity must
   produce *only* 200/429/503, every non-200 carrying the structured
   error body, with zero hung requests — including while a writer
   hot-swaps epochs mid-burst.
3. **Degraded, not dead.** With a shard killed under load, the data
   plane answers structured 503s while ``/v1/metrics`` and
   ``/v1/healthz`` stay responsive on the control pool.

Timing-sensitive assertions use generous bounds when ``CI`` is set.
"""

import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

import harness
from repro.core.hopi import HopiIndex
from repro.service import QueryService, ShardRouter, make_server
from repro.service.asyncio_http import start_in_thread
from repro.service.telemetry import percentile
from repro.xmlmodel.generator import dblp_like

IN_CI = bool(os.environ.get("CI"))
#: ROADMAP gate: p99 within 100x of p50 on the cold-miss mix; CI
#: machines are noisy/oversubscribed, so the bound relaxes there
TAIL_RATIO_BOUND = 1000.0 if IN_CI else 100.0


def build_index(n_docs=12, seed=17):
    return HopiIndex.build(
        dblp_like(n_docs, seed=seed), backend="arrays",
        strategy="recursive", partitioner="node_weight", partition_limit=60,
    )


@pytest.fixture(scope="module")
def base_index():
    return build_index()


def fetch(base, path, *, body=None, raw_body=None):
    """GET/POST one URL; returns ``(status, decoded payload)``.

    ``body`` posts JSON; ``raw_body`` posts bytes verbatim (malformed-
    payload probes). HTTP errors are decoded, not raised — error bodies
    are part of the parity contract.
    """
    status, payload, _ = fetch_full(base, path, body=body, raw_body=raw_body)
    return status, payload


def fetch_full(base, path, *, body=None, raw_body=None, headers=None):
    """Like :func:`fetch` but returns ``(status, payload, headers)`` —
    response headers matter for the Retry-After contract — and sends
    optional request headers (client identity for fairness tests)."""
    url = base + path
    if body is None and raw_body is None:
        request = urllib.request.Request(url, headers=headers or {})
    else:
        data = raw_body if raw_body is not None else json.dumps(body).encode()
        request = urllib.request.Request(
            url, data=data, method="POST", headers=headers or {}
        )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


#: timing fields that legitimately differ between two front ends
#: answering the same request — normalised to a sentinel after a
#: sanity check, so a *missing* field still fails parity
VOLATILE_FIELDS = frozenset({
    "seconds", "uptime_seconds", "epoch_age_seconds",
    "p50_ms", "p95_ms", "p99_ms", "avg_ms",
})


def normalize(payload):
    """Replace volatile timing values with a sentinel, recursively."""
    if isinstance(payload, dict):
        out = {}
        for key, value in payload.items():
            if key in VOLATILE_FIELDS:
                assert value is None or value >= 0, (key, value)
                out[key] = "<volatile>"
            else:
                out[key] = normalize(value)
        return out
    if isinstance(payload, list):
        return [normalize(item) for item in payload]
    return payload


def parity_requests(service):
    """The differential request sequence: every endpoint, success and
    error shapes, pagination arithmetic, legacy aliases, 404s.

    Returns ``(label, path, kwargs)`` rows; the sequence is stateful
    (updates advance the epoch, caches warm deterministically), so it
    must be replayed in order against a fresh service on each side.
    """
    collection = service.index.collection
    docs = sorted(collection.documents)
    root0 = collection.documents[docs[0]].root
    root1 = collection.documents[docs[1]].root
    return [
        ("query", "/v1/query?path=//article//author&limit=5", {}),
        ("query-cached", "/v1/query?path=//article//author&limit=5", {}),
        ("query-paged", "/v1/query?path=//article//author&limit=3&offset=2", {}),
        ("query-predicate", "/v1/query?path=//article[keywords]//cite", {}),
        ("query-missing-path", "/v1/query", {}),
        ("query-zero-limit", "/v1/query?path=//article//author&limit=0", {}),
        ("query-bad-limit", "/v1/query?path=//article//author&limit=abc", {}),
        ("query-bad-offset", "/v1/query?path=//article//author&offset=-1", {}),
        ("query-bad-path", "/v1/query?path=//article[", {}),
        ("count", "/v1/count?path=//article//author", {}),
        ("count-bad-path", "/v1/count?path=%5B%5Bnope", {}),
        ("explain", "/v1/explain?path=//article//cite", {}),
        ("explain-mode", "/v1/explain?path=//article//cite&mode=count", {}),
        ("connected", f"/v1/connected?source={root0}&target={root1}", {}),
        ("connected-missing", f"/v1/connected?source={root0}", {}),
        ("connected-bad-int", "/v1/connected?source=x&target=1", {}),
        ("distance", f"/v1/distance?source={root0}&target={root1}", {}),
        ("stats", "/v1/stats", {}),
        ("healthz", "/v1/healthz", {}),
        ("update", "/v1/update",
         {"body": {"ops": [{"op": "insert_element",
                            "parent": root1, "tag": "note"}]}}),
        ("query-post-swap", "/v1/query?path=//article//note", {}),
        ("update-empty", "/v1/update", {"body": {"ops": []}}),
        ("update-bad-json", "/v1/update", {"raw_body": b"{not json"}),
        ("update-bad-ops", "/v1/update", {"body": {"ops": "notalist"}}),
        ("update-bare-list", "/v1/update", {"body": []}),
        ("legacy-query", "/query?path=//article//author&limit=2", {}),
        ("legacy-query-limit0", "/query?path=//article//author&limit=0", {}),
        ("legacy-count", "/count?path=//article//author", {}),
        ("legacy-stats", "/stats", {}),
        ("legacy-connected", f"/connected?source={root0}&target={root1}", {}),
        ("legacy-distance", f"/distance?source={root0}&target={root1}", {}),
        ("legacy-update", "/update", {"body": {"ops": []}}),
        ("legacy-bad-json", "/update", {"raw_body": b"\xff\xfe"}),
        ("v1-404", "/v1/nope", {}),
        ("legacy-404", "/nope", {}),
        ("explain-legacy-404", "/explain?path=//article", {}),
        ("metrics", "/v1/metrics", {}),
    ]


def run_parity(make_service):
    """Replay the differential sequence against both front ends.

    ``make_service`` builds a *fresh* service per front end (same
    index, same config) so cache state evolves identically; any
    field-level divergence fails with the offending label.
    """
    threaded_service = make_service()
    async_service = make_service()

    server = make_server(threaded_service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    threaded_base = f"http://127.0.0.1:{server.server_address[1]}"

    try:
        with start_in_thread(async_service) as handle:
            for label, path, kwargs in parity_requests(threaded_service):
                status_t, payload_t = fetch(threaded_base, path, **kwargs)
                status_a, payload_a = fetch(handle.base_url, path, **kwargs)
                assert status_t == status_a, (
                    f"{label}: status {status_t} (threaded) != "
                    f"{status_a} (async)"
                )
                if label == "metrics":
                    # gauges are front-end-specific by design (the
                    # admission-control gauges only exist on async);
                    # everything else must agree
                    payload_t.pop("gauges")
                    payload_a.pop("gauges")
                assert normalize(payload_t) == normalize(payload_a), (
                    f"{label}: payload divergence"
                )
    finally:
        server.shutdown()
        server.server_close()
        closer = getattr(threaded_service, "close", None)
        if closer:
            closer()
        closer = getattr(async_service, "close", None)
        if closer:
            closer()


class TestDifferentialParity:
    def test_unsharded(self, base_index):
        run_parity(lambda: QueryService(base_index.copy()))

    def test_sharded(self, base_index):
        run_parity(
            lambda: ShardRouter(base_index.copy(), 2, max_results=40)
        )


# ---------------------------------------------------------------------------
# admission control under open-loop overload
# ---------------------------------------------------------------------------


class SlowService:
    """Delegating service whose query path takes a fixed minimum time —
    makes overload deterministic on arbitrarily fast machines."""

    def __init__(self, inner, delay):
        self._inner = inner
        self._delay = delay

    def query(self, *args, **kwargs):
        time.sleep(self._delay)
        return self._inner.query(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestOverload:
    def test_open_loop_burst_sheds_structurally(self, base_index):
        """Beyond capacity, every answer is 200/429/503 with the
        structured body — zero hangs, zero bare 500s — while a writer
        hot-swaps the index mid-burst."""
        service = SlowService(QueryService(base_index.copy()), delay=0.05)
        with start_in_thread(
            service, max_inflight=2, queue_depth=2
        ) as handle:
            host, port = handle.address
            paths = [
                f"/v1/query?path={p.replace('[', '%5B').replace(']', '%5D')}"
                for p in harness.cold_miss_paths(64, seed=3)
            ]

            swaps = []

            def writer():
                # hot-swap concurrently with the burst: overload must
                # not tear epochs or wedge the maintenance path
                for _ in range(3):
                    report = service.update([])
                    swaps.append(report["epoch"])
                    time.sleep(0.2)

            writer_thread = threading.Thread(target=writer, daemon=True)
            writer_thread.start()
            report = harness.open_loop_burst(
                host, port, paths, rate=150.0, duration=1.0, timeout=30.0,
            )
            writer_thread.join(timeout=30)

        summary = report.summary()
        assert report.total >= 100, summary
        assert report.hung == 0, summary
        assert report.unstructured == 0, summary
        assert report.unexpected == 0, summary
        # capacity is ~(2 workers / 50ms) = 40/s against 150/s offered:
        # admission control must actually shed, and still answer some
        assert report.shed > 0, summary
        assert report.ok > 0, summary
        assert all(
            o.error_code == "overloaded"
            for o in report.outcomes if o.status == 429
        )
        # every shed answer carries a usable backoff hint
        assert all(
            o.retry_after is not None and o.retry_after >= 1
            for o in report.outcomes if o.status in (429, 503)
        ), summary
        assert len(swaps) == 3  # the writer completed through the burst

    def test_shed_requests_are_fast_and_counted(self, base_index):
        """A 429 is useful only if it is cheap: shed answers must come
        back orders of magnitude faster than a queued evaluation, and
        the shed counters must land in /v1/metrics."""
        service = SlowService(QueryService(base_index.copy()), delay=0.2)
        with start_in_thread(
            service, max_inflight=1, queue_depth=0
        ) as handle:
            host, port = handle.address
            # one request occupies the only worker slot...
            blocker = threading.Thread(
                target=fetch,
                args=(handle.base_url, "/v1/query?path=//article//author"),
                daemon=True,
            )
            blocker.start()
            time.sleep(0.05)  # let it claim the slot
            t0 = time.perf_counter()
            status, payload, resp_headers = fetch_full(
                handle.base_url, "/v1/query?path=//article//cite"
            )
            shed_elapsed = time.perf_counter() - t0
            blocker.join(timeout=10)

            assert status == 429
            assert payload["error"]["code"] == "overloaded"
            # a shed response tells the client when to come back, in
            # both the structured body and the standard header
            assert payload["retry_after_seconds"] >= 1
            assert resp_headers["Retry-After"] == str(
                payload["retry_after_seconds"]
            )
            bound = 2.0 if IN_CI else 0.15
            assert shed_elapsed < bound, shed_elapsed

            _, metrics = fetch(handle.base_url, "/v1/metrics")
            assert metrics["shed"]["queue_full"] >= 1
            assert metrics["shed"]["total"] >= 1
            assert metrics["gauges"]["max_inflight"] == 1
            assert metrics["gauges"]["queue_limit"] == 0

    def test_endpoint_deadline_answers_structured_503(self, base_index):
        service = SlowService(QueryService(base_index.copy()), delay=0.5)
        with start_in_thread(
            service, max_inflight=2, queue_depth=2,
            timeouts={"query": 0.05},
        ) as handle:
            status, payload, resp_headers = fetch_full(
                handle.base_url, "/v1/query?path=//article//author"
            )
            assert status == 503
            assert payload["error"]["code"] == "overloaded"
            assert payload["retry"] is True
            assert payload["retry_after_seconds"] >= 1
            assert resp_headers["Retry-After"] == str(
                payload["retry_after_seconds"]
            )
            _, metrics = fetch(handle.base_url, "/v1/metrics")
            assert metrics["shed"]["timeout"] >= 1

    def test_control_plane_bypasses_admission(self, base_index):
        """healthz/metrics answer even when the data plane is saturated
        — they ride a dedicated pool with no admission gate."""
        service = SlowService(QueryService(base_index.copy()), delay=0.5)
        with start_in_thread(
            service, max_inflight=1, queue_depth=0
        ) as handle:
            blocker = threading.Thread(
                target=fetch,
                args=(handle.base_url, "/v1/query?path=//article//author"),
                daemon=True,
            )
            blocker.start()
            time.sleep(0.05)
            t0 = time.perf_counter()
            status_h, health = fetch(handle.base_url, "/v1/healthz")
            status_m, metrics = fetch(handle.base_url, "/v1/metrics")
            elapsed = time.perf_counter() - t0
            blocker.join(timeout=10)

            assert status_h == 200 and health["status"] == "ok"
            assert status_m == 200
            assert metrics["gauges"]["inflight"] >= 1  # saw the busy worker
            bound = 2.0 if IN_CI else 0.4
            assert elapsed < bound, elapsed


# ---------------------------------------------------------------------------
# per-client fairness
# ---------------------------------------------------------------------------


class TestPerClientFairness:
    def test_flooding_client_cannot_starve_another(self, base_index):
        """One client key may hold at most ``max_client_share`` of the
        admission window: a flooder is shed at its cap (429,
        ``shed_client_cap``) while a second client's request is still
        admitted and answered."""
        service = SlowService(QueryService(base_index.copy()), delay=0.3)
        with start_in_thread(
            service, max_inflight=1, queue_depth=3, max_client_share=0.5
        ) as handle:
            # window = 1 + 3 = 4 slots; cap = 2 per client key
            flood_results = []
            flood_lock = threading.Lock()

            def flood():
                result = fetch_full(
                    handle.base_url, "/v1/query?path=//article//author",
                    headers={"X-Client-Id": "flooder"},
                )
                with flood_lock:
                    flood_results.append(result)

            threads = [
                threading.Thread(target=flood, daemon=True) for _ in range(4)
            ]
            for t in threads:
                t.start()
            time.sleep(0.1)  # let the flood fill (and overflow) its share
            status, payload, _ = fetch_full(
                handle.base_url, "/v1/query?path=//article//cite",
                headers={"X-Client-Id": "polite"},
            )
            for t in threads:
                t.join(timeout=15)

            # the polite client rode the flooder's unreachable slots
            assert status == 200, payload
            shed = [r for r in flood_results if r[0] == 429]
            served = [r for r in flood_results if r[0] == 200]
            assert shed, [r[0] for r in flood_results]
            assert served, [r[0] for r in flood_results]
            for _, body, resp_headers in shed:
                assert body["error"]["code"] == "overloaded"
                assert body["retry_after_seconds"] >= 1
                assert resp_headers["Retry-After"] == str(
                    body["retry_after_seconds"]
                )
            _, metrics = fetch(handle.base_url, "/v1/metrics")
            assert metrics["shed"]["client_cap"] >= 1
            assert metrics["shed"]["total"] >= 1
            assert metrics["gauges"]["client_cap"] == 2

    def test_distinct_clients_share_the_window(self, base_index):
        """Two clients below their caps are both admitted — the cap
        binds per key, not globally."""
        service = SlowService(QueryService(base_index.copy()), delay=0.05)
        with start_in_thread(
            service, max_inflight=2, queue_depth=2, max_client_share=0.5
        ) as handle:
            for client in ("alpha", "beta", "alpha", "beta"):
                status, payload, _ = fetch_full(
                    handle.base_url, "/v1/query?path=//article//author",
                    headers={"X-Client-Id": client},
                )
                assert status == 200, (client, payload)
            _, metrics = fetch(handle.base_url, "/v1/metrics")
            assert metrics["shed"]["client_cap"] == 0


# ---------------------------------------------------------------------------
# shard fault injection
# ---------------------------------------------------------------------------


class TestShardFaults:
    def test_dead_shard_degrades_but_control_plane_lives(self, base_index):
        """Kill one shard under load: the data plane answers structured
        shard_unavailable 503s, and /v1/metrics + /v1/healthz stay
        responsive throughout."""
        router = ShardRouter(
            base_index.copy(), 2, max_results=40, fanout_timeout=5.0
        )
        with router, start_in_thread(router, max_inflight=4) as handle:
            host, port = handle.address
            # baseline: healthy answers
            status, _ = fetch(handle.base_url, "/v1/query?path=//article//author")
            assert status == 200

            with harness.dead_shard(router, 1):
                report = harness.open_loop_burst(
                    host, port,
                    ["/v1/query?path=//article//author",
                     "/v1/count?path=//article//cite"],
                    rate=40.0, duration=0.5, timeout=15.0,
                )
                t0 = time.perf_counter()
                status_m, metrics = fetch(handle.base_url, "/v1/metrics")
                status_h, health = fetch(handle.base_url, "/v1/healthz")
                control_elapsed = time.perf_counter() - t0

            assert report.hung == 0, report.summary()
            assert report.unstructured == 0, report.summary()
            # every data-plane answer during the outage is a structured
            # 503 naming the dead shard (cached responses may still be
            # 200 — the outage only breaks scatters)
            degraded = [o for o in report.outcomes if o.status == 503]
            assert degraded, report.summary()
            assert all(
                o.error_code == "shard_unavailable" for o in degraded
            )
            assert status_m == 200
            assert status_h == 503  # degraded, but *answered*
            assert health["status"] == "degraded"
            assert 1 in health.get("shards_down", [])
            bound = 8.0 if IN_CI else 6.0
            assert control_elapsed < bound, control_elapsed

            # recovery: pulling the fault restores 200s
            status, _ = fetch(
                handle.base_url, "/v1/count?path=//article//author"
            )
            assert status == 200

    def test_slow_shard_hits_fanout_deadline(self, base_index):
        """A shard slower than the fan-out deadline turns into a
        structured degraded answer, not a hang."""
        router = ShardRouter(
            base_index.copy(), 2, max_results=40, fanout_timeout=0.2
        )
        with router, start_in_thread(router, max_inflight=4) as handle:
            with harness.slow_shard(router, 0, delay=2.0):
                t0 = time.perf_counter()
                status, payload = fetch(
                    handle.base_url, "/v1/query?path=//article//cite"
                )
                elapsed = time.perf_counter() - t0
            assert status == 503
            assert payload["error"]["code"] == "shard_unavailable"
            assert payload["degraded"] is True
            assert 0 in payload["shards_down"]
            bound = 10.0 if IN_CI else 3.0
            assert elapsed < bound, elapsed


# ---------------------------------------------------------------------------
# cold-miss convoy: coalescing survives the new front end
# ---------------------------------------------------------------------------


class TestColdMissConvoy:
    def test_convoy_coalesces_to_one_evaluation(self, base_index):
        service = QueryService(base_index.copy())
        with start_in_thread(service, max_inflight=8) as handle:
            host, port = handle.address
            outcomes = harness.cold_miss_convoy(
                host, port,
                "/v1/query?path=//article%5Bkeywords%5D//cite",
                n_clients=8,
            )
        assert len(outcomes) == 8
        assert all(o.status == 200 for o in outcomes)
        stats = service.stats()["result_cache"]
        # single flight: one compute; everyone else coalesced onto it
        # or hit the cache right after it landed
        assert stats["misses"] == 1
        assert stats["coalesced"] + stats["hits"] == 7


# ---------------------------------------------------------------------------
# tail latency: the ROADMAP gate
# ---------------------------------------------------------------------------


class TestTailLatency:
    def test_cold_miss_tail_within_bound(self, base_index):
        """16 concurrent clients on an all-cold-miss mix: p99 within
        100x of p50 (1000x under CI). Every request compiles a distinct
        plan, so p50 and p99 measure the same code path — the old
        thread-per-connection front end showed 25000x here."""
        service = QueryService(base_index.copy())
        with start_in_thread(service, max_inflight=8) as handle:
            host, port = handle.address
            paths = [
                "/v1/query?path="
                + p.replace("[", "%5B").replace("]", "%5D")
                for p in harness.cold_miss_paths(128, seed=11)
            ]
            outcomes = harness.closed_loop_clients(
                host, port, paths, n_clients=16, requests_per_client=8,
            )
        assert len(outcomes) == 128
        assert all(o.status == 200 for o in outcomes)
        latencies = sorted(o.elapsed for o in outcomes)
        p50 = percentile(latencies, 0.50)
        p99 = percentile(latencies, 0.99)
        assert p50 > 0
        assert p99 <= TAIL_RATIO_BOUND * p50, (
            f"p50={p50 * 1e3:.3f}ms p99={p99 * 1e3:.3f}ms "
            f"ratio={p99 / p50:.0f}x bound={TAIL_RATIO_BOUND:.0f}x"
        )
