"""Tests for the synthetic collection generators and XML export."""

import random

import pytest

from repro.graph.traversal import is_acyclic
from repro.xmlmodel import (
    collection_size_bytes,
    dblp_like,
    export_collection,
    inex_like,
    load_collection,
    random_collection,
)


def test_dblp_like_shape():
    c = dblp_like(50, seed=1)
    assert c.num_documents == 50
    # ~27 elements per document like the paper's DBLP subset
    per_doc = c.num_elements / c.num_documents
    assert 15 <= per_doc <= 40
    assert len(c.inter_links) > 50  # a few citations per document
    # links go from cite elements to roots
    for u, v in c.inter_links:
        assert c.elements[u].tag == "cite"
        assert c.elements[v].parent is None


def test_dblp_like_citation_graph_is_dag():
    c = dblp_like(60, seed=3)
    assert is_acyclic(c.document_graph())


def test_dblp_like_deterministic():
    a = dblp_like(20, seed=9)
    b = dblp_like(20, seed=9)
    assert a.num_elements == b.num_elements
    assert {(u, v) for u, v in a.inter_links} == {(u, v) for u, v in b.inter_links}


def test_dblp_like_distinct_seeds_differ():
    a = dblp_like(20, seed=1)
    b = dblp_like(20, seed=2)
    assert a.inter_links != b.inter_links


def test_dblp_like_citation_indegree_skewed():
    c = dblp_like(150, seed=5)
    indeg = {}
    for _, v in c.inter_links:
        indeg[v] = indeg.get(v, 0) + 1
    # preferential attachment: max in-degree well above the mean
    mean = sum(indeg.values()) / max(len(indeg), 1)
    assert max(indeg.values()) >= 3 * mean


def test_inex_like_shape():
    c = inex_like(10, seed=1)
    assert c.num_documents == 10
    assert c.num_links == 0  # no links at all: tree collection
    assert c.num_elements / c.num_documents >= 50


def test_inex_like_elements_per_doc_target():
    c = inex_like(5, seed=2, elements_per_doc=300)
    per_doc = c.num_elements / c.num_documents
    assert 150 <= per_doc <= 600


def test_inex_like_tree_depth():
    c = inex_like(3, seed=4)
    # article/bdy/sec/ss/p nesting exists
    deep = [
        e
        for e in c.elements.values()
        if e.tag == "p"
        and e.parent is not None
        and c.elements[e.parent].tag == "ss"
    ]
    assert deep


def test_random_collection_cycles_flag():
    acyclic = random_collection(n_docs=8, inter_links=12, allow_cycles=False, seed=3)
    assert is_acyclic(acyclic.document_graph())


def test_random_collection_reproducible():
    a = random_collection(n_docs=5, seed=11)
    b = random_collection(n_docs=5, seed=11)
    assert a.inter_links == b.inter_links
    assert a.num_elements == b.num_elements


def test_random_collection_external_rng():
    rng = random.Random(77)
    a = random_collection(n_docs=4, rng=rng)
    b = random_collection(n_docs=4, rng=rng)
    # consuming the same RNG gives different draws
    assert a.num_elements != b.num_elements or a.inter_links != b.inter_links


# ---------------------------------------------------------------------------
# export / reload round trip
# ---------------------------------------------------------------------------


def test_export_reload_roundtrip_structure():
    original = dblp_like(15, seed=21)
    xml = export_collection(original)
    reloaded = load_collection(xml)
    assert reloaded.num_documents == original.num_documents
    assert reloaded.num_elements == original.num_elements
    assert len(reloaded.inter_links) == len(original.inter_links)
    # document-level graphs must be isomorphic under the identity doc map
    g1, g2 = original.document_graph(), reloaded.document_graph()
    assert set(g1.edges()) == set(g2.edges())


def test_export_reload_roundtrip_intra_links():
    c = random_collection(n_docs=1, max_elements_per_doc=6, seed=13,
                          intra_link_probability=0.9, inter_links=0)
    # keep at most one outgoing link per element (export limitation)
    seen = set()
    doc = next(iter(c.documents.values()))
    doc.intra_links = {
        (u, v) for (u, v) in sorted(doc.intra_links)
        if u not in seen and not seen.add(u)
    }
    reloaded = load_collection(export_collection(c))
    rdoc = next(iter(reloaded.documents.values()))
    assert len(rdoc.intra_links) == len(doc.intra_links)


def test_collection_size_bytes_scales():
    small = collection_size_bytes(dblp_like(5, seed=1))
    large = collection_size_bytes(dblp_like(50, seed=1))
    assert small > 500
    assert large > 5 * small
