"""Documentation lint: internal links resolve, modules are documented.

This is the docs half of CI: it keeps README.md / ARCHITECTURE.md
honest as the code moves (every relative link must point at a real
file, the documented sections must exist) and guards that the package
stays ``pydoc``-able — every ``repro`` module imports cleanly and
carries a module docstring.
"""

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent

#: markdown files whose relative links must resolve
DOC_FILES = ["README.md", "ARCHITECTURE.md", "ROADMAP.md"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_relative_links(text):
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


@pytest.mark.parametrize("doc", DOC_FILES)
def test_internal_links_resolve(doc):
    path = REPO_ROOT / doc
    assert path.exists(), f"{doc} is missing"
    for target in iter_relative_links(path.read_text(encoding="utf-8")):
        resolved = (path.parent / target).resolve()
        assert resolved.exists(), f"{doc}: broken link -> {target}"


def test_readme_covers_the_essentials():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for needle in (
        "repro build",
        "repro query",
        "repro serve",
        "--workers",
        "ARCHITECTURE.md",
        "BENCH_query.json",
        "BENCH_service.json",
        "BENCH_build.json",
        "sets",
        "arrays",
    ):
        assert needle in text, f"README.md should mention {needle!r}"


def test_architecture_documents_the_build_pipeline():
    text = (REPO_ROOT / "ARCHITECTURE.md").read_text(encoding="utf-8")
    assert "Offline build pipeline" in text
    for needle in ("serial", "process", "snapshot", "--workers"):
        assert needle in text, f"ARCHITECTURE.md should mention {needle!r}"


def test_every_module_imports_with_a_docstring():
    """The `python -m pydoc repro` guarantee, for the whole tree."""
    assert repro.__doc__, "repro package needs a docstring"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        assert module.__doc__, f"{info.name} is missing a module docstring"


def test_examples_are_linked_and_exist():
    examples = sorted((REPO_ROOT / "examples").glob("*.py"))
    assert examples, "examples/ should not be empty"
    names = {p.name for p in examples}
    assert "parallel_build.py" in names
