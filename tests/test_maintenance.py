"""Tests for incremental maintenance (Section 6).

The master invariant: after any sequence of maintenance operations, the
cover must represent exactly the connections (and distances) of the
current element-level graph — verified against rebuilt oracles.
"""

import pytest

from repro.core.cover_builder import build_cover
from repro.core.distance import build_distance_cover
from repro.core.maintenance import (
    delete_document,
    delete_edge,
    document_separates,
    insert_document,
    insert_edge,
    insert_element,
    modify_document,
)
from repro.graph import distance_closure, transitive_closure
from repro.xmlmodel import Collection, dblp_like, inex_like, random_collection


def _fresh_cover(collection, distance=False):
    graph = collection.element_graph()
    return (
        build_distance_cover(graph) if distance else build_cover(graph)
    )


def _verify(collection, cover, distance=False):
    graph = collection.element_graph()
    if distance:
        cover.verify_against(distance_closure(graph))
    else:
        cover.verify_against(transitive_closure(graph))


@pytest.fixture
def chain3():
    """d1 --link--> d2 --link--> d3 with small trees."""
    c = Collection()
    r1 = c.new_document("d1", "r")
    s1 = c.add_child(r1.eid, "s")
    r2 = c.new_document("d2", "r")
    t2 = c.add_child(r2.eid, "t")
    s2 = c.add_child(t2.eid, "s")
    r3 = c.new_document("d3", "r")
    c.add_child(r3.eid, "x")
    c.add_link(s1.eid, t2.eid)
    c.add_link(s2.eid, r3.eid)
    return c


# ---------------------------------------------------------------------------
# insertions (6.1)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("distance", [False, True])
def test_insert_element(chain3, distance):
    cover = _fresh_cover(chain3, distance)
    root = chain3.documents["d1"].root
    new = insert_element(chain3, cover, root, "leaf")
    assert chain3.elements[new].tag == "leaf"
    _verify(chain3, cover, distance)
    assert cover.connected(root, new)


@pytest.mark.parametrize("distance", [False, True])
def test_insert_edge_intra(chain3, distance):
    cover = _fresh_cover(chain3, distance)
    d2 = chain3.documents["d2"]
    (t2,) = [e for e in d2.elements if chain3.elements[e].tag == "t"]
    (s2,) = [e for e in d2.elements if chain3.elements[e].tag == "s"]
    # add a back link s2 -> t2 creating an intra-document cycle
    report = insert_edge(chain3, cover, s2, t2)
    assert report.operation == "insert_edge"
    _verify(chain3, cover, distance)


@pytest.mark.parametrize("distance", [False, True])
def test_insert_edge_inter(chain3, distance):
    cover = _fresh_cover(chain3, distance)
    r3 = chain3.documents["d3"].root
    r1 = chain3.documents["d1"].root
    # new link d3 -> d1 closes a document-level cycle
    insert_edge(chain3, cover, r3, r1)
    _verify(chain3, cover, distance)
    # r3 -> r1 -> s1 -> t2 (d2's element) is now connected
    d2 = chain3.documents["d2"]
    (t2,) = [e for e in d2.elements if chain3.elements[e].tag == "t"]
    assert cover.connected(r3, t2)


def test_insert_edge_shortens_distance(chain3):
    cover = _fresh_cover(chain3, distance=True)
    r1 = chain3.documents["d1"].root
    r3 = chain3.documents["d3"].root
    long = cover.distance(r1, r3)
    assert long is not None and long >= 4
    insert_edge(chain3, cover, r1, r3)
    assert cover.distance(r1, r3) == 1
    _verify(chain3, cover, distance=True)


@pytest.mark.parametrize("distance", [False, True])
def test_insert_document(chain3, distance):
    cover = _fresh_cover(chain3, distance)
    # build the new document with links in both directions
    r4 = chain3.new_document("d4", "r")
    child = chain3.add_child(r4.eid, "y")
    r1 = chain3.documents["d1"].root
    r3 = chain3.documents["d3"].root
    chain3.add_link(r3, r4.eid)  # incoming
    chain3.add_link(child.eid, r1)  # outgoing: closes a cycle d4 -> d1
    report = insert_document(chain3, cover, "d4")
    assert report.entries_delta > 0
    _verify(chain3, cover, distance)


# ---------------------------------------------------------------------------
# the separator test (6.2)
# ---------------------------------------------------------------------------


def test_document_separates_figure6():
    """Figure 6: document 6 separates the graph, document 5 does not.

    Reconstructed document-level topology: 1..4 in a chain feeding 6;
    6 -> 7, 8; 5 bridges 4 -> 5 -> 7 as an alternative path around 6? No:
    in the figure, 5 and 6 both lie between {1..4} and {7..9}; removing 6
    disconnects because 5's path reaches only what 6 also reaches... we
    build the minimal faithful variant: anc -> 5 -> desc plus anc -> 6 ->
    desc with 5 parallel to 6.
    """
    c = Collection()
    for name in "123456789":
        c.new_document(f"doc{name}", "r")
    roots = {name: c.documents[f"doc{name}"].root for name in "123456789"}

    def link(a, b):
        c.add_link(roots[a], roots[b])

    # chain into the middle layer
    link("1", "2")
    link("2", "3")
    link("3", "4")
    link("4", "6")
    link("4", "5")
    link("5", "7")
    link("6", "7")
    link("6", "8")
    link("7", "9")
    # document 6 does NOT separate (4 reaches 7 via 5), but removing 5
    # still leaves 4 -> 6 -> 7: 5 does not separate either; make 6 a
    # separator for 8: only path to 8 runs through 6.
    assert not document_separates(c, "doc5")
    assert not document_separates(c, "doc7") or True  # 7 separates for 9
    # doc "6" separates nothing fully because 7 is reachable via 5; but
    # removing the 5 -> 7 link makes 6 a true separator:
    c.remove_link(roots["5"], roots["7"])
    assert document_separates(c, "doc6")


def test_document_separates_no_links():
    c = inex_like(4, seed=1)
    for doc_id in c.documents:
        assert document_separates(c, doc_id)


def test_document_separates_chain(chain3):
    # middle of a chain always separates
    assert document_separates(chain3, "d2")
    # endpoints vacuously separate
    assert document_separates(chain3, "d1")
    assert document_separates(chain3, "d3")


def test_document_cycle_blocks_fast_path(chain3):
    r3 = chain3.documents["d3"].root
    r1 = chain3.documents["d1"].root
    chain3.add_link(r3, r1)  # d3 -> d1: document-level cycle
    assert not document_separates(chain3, "d2")


def test_document_separates_diamond():
    # d1 -> d2 -> d4, d1 -> d3 -> d4: neither d2 nor d3 separates
    c = Collection()
    for n in "1234":
        c.new_document(f"d{n}", "r")
    roots = {n: c.documents[f"d{n}"].root for n in "1234"}
    c.add_link(roots["1"], roots["2"])
    c.add_link(roots["1"], roots["3"])
    c.add_link(roots["2"], roots["4"])
    c.add_link(roots["3"], roots["4"])
    assert not document_separates(c, "d2")
    assert not document_separates(c, "d3")


# ---------------------------------------------------------------------------
# deletions (6.2)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("distance", [False, True])
def test_delete_separating_document(chain3, distance):
    cover = _fresh_cover(chain3, distance)
    report = delete_document(chain3, cover, "d2")
    assert report.separating is True
    assert "d2" not in chain3.documents
    _verify(chain3, cover, distance)
    # d1 and d3 must now be disconnected
    r1 = chain3.documents["d1"].root
    r3 = chain3.documents["d3"].root
    assert not cover.connected(r1, r3)


@pytest.mark.parametrize("distance", [False, True])
def test_delete_endpoint_document(chain3, distance):
    cover = _fresh_cover(chain3, distance)
    report = delete_document(chain3, cover, "d1")
    assert report.separating is True
    _verify(chain3, cover, distance)


@pytest.mark.parametrize("distance", [False, True])
def test_delete_non_separating_document(distance):
    # diamond: deleting d2 must keep d1 ->* d4 alive via d3
    c = Collection()
    for n in "1234":
        root = c.new_document(f"d{n}", "r")
        c.add_child(root.eid, "x")
    roots = {n: c.documents[f"d{n}"].root for n in "1234"}
    c.add_link(roots["1"], roots["2"])
    c.add_link(roots["1"], roots["3"])
    c.add_link(roots["2"], roots["4"])
    c.add_link(roots["3"], roots["4"])
    cover = _fresh_cover(c, distance)
    report = delete_document(c, cover, "d2")
    assert report.separating is False
    assert report.recovered_region_size > 0
    _verify(c, cover, distance)
    assert cover.connected(roots["1"], roots["4"])


def test_delete_non_separating_distance_correct():
    # d1 -> d2 -> d4 is the short path; d1 -> d3 -> d3b -> d4 is longer.
    # After deleting d2 the distance must grow, not vanish.
    c = Collection()
    roots = {}
    for n in ["d1", "d2", "d3", "d3b", "d4"]:
        roots[n] = c.new_document(n, "r").eid
    c.add_link(roots["d1"], roots["d2"])
    c.add_link(roots["d2"], roots["d4"])
    c.add_link(roots["d1"], roots["d3"])
    c.add_link(roots["d3"], roots["d3b"])
    c.add_link(roots["d3b"], roots["d4"])
    cover = _fresh_cover(c, distance=True)
    assert cover.distance(roots["d1"], roots["d4"]) == 2
    delete_document(c, cover, "d2")
    _verify(c, cover, distance=True)
    assert cover.distance(roots["d1"], roots["d4"]) == 3


@pytest.mark.parametrize("distance", [False, True])
def test_force_general_on_separating_document(chain3, distance):
    """Theorem 3 must also be correct where Theorem 2 would apply."""
    cover = _fresh_cover(chain3, distance)
    report = delete_document(chain3, cover, "d2", force_general=True)
    assert report.separating is False
    _verify(chain3, cover, distance)


@pytest.mark.parametrize("seed", range(6))
def test_delete_documents_random_equivalence(seed):
    """Delete every document one by one; after each step the cover must
    equal a from-scratch rebuild's semantics."""
    c = random_collection(n_docs=5, inter_links=6, seed=seed)
    cover = _fresh_cover(c)
    for doc_id in sorted(c.documents):
        delete_document(c, cover, doc_id)
        _verify(c, cover)


@pytest.mark.parametrize("seed", range(3))
def test_delete_documents_random_equivalence_distance(seed):
    c = random_collection(n_docs=4, inter_links=5, seed=50 + seed)
    cover = _fresh_cover(c, distance=True)
    for doc_id in sorted(c.documents):
        delete_document(c, cover, doc_id)
        _verify(c, cover, distance=True)


# ---------------------------------------------------------------------------
# edge deletion
# ---------------------------------------------------------------------------


def test_delete_edge_fast_path_when_still_reachable():
    c = Collection()
    r1 = c.new_document("a", "r")
    r2 = c.new_document("b", "r")
    x = c.add_child(r1.eid, "x")
    c.add_link(r1.eid, r2.eid)
    c.add_link(x.eid, r2.eid)  # second path a ->* b
    cover = _fresh_cover(c)
    report = delete_edge(c, cover, r1.eid, r2.eid)
    assert report.separating is True  # absorbed without cover surgery
    _verify(c, cover)


@pytest.mark.parametrize("distance", [False, True])
def test_delete_edge_disconnects(chain3, distance):
    cover = _fresh_cover(chain3, distance)
    d2 = chain3.documents["d2"]
    (s2,) = [e for e in d2.elements if chain3.elements[e].tag == "s"]
    r3 = chain3.documents["d3"].root
    delete_edge(chain3, cover, s2, r3)
    _verify(chain3, cover, distance)
    r1 = chain3.documents["d1"].root
    assert not cover.connected(r1, r3)


def test_delete_edge_distance_longer_path_survives():
    c = Collection()
    roots = {}
    for n in ["a", "b", "c"]:
        roots[n] = c.new_document(n, "r").eid
    c.add_link(roots["a"], roots["b"])
    c.add_link(roots["b"], roots["c"])
    c.add_link(roots["a"], roots["c"])  # shortcut
    cover = _fresh_cover(c, distance=True)
    assert cover.distance(roots["a"], roots["c"]) == 1
    delete_edge(c, cover, roots["a"], roots["c"])
    _verify(c, cover, distance=True)
    assert cover.distance(roots["a"], roots["c"]) == 2


def test_delete_nonexistent_edge_raises(chain3):
    cover = _fresh_cover(chain3)
    r1 = chain3.documents["d1"].root
    r3 = chain3.documents["d3"].root
    with pytest.raises(KeyError):
        delete_edge(chain3, cover, r1, r3)


def test_delete_intra_document_link():
    c = Collection()
    r = c.new_document("d", "r")
    a = c.add_child(r.eid, "a")
    b = c.add_child(r.eid, "b")
    c.add_link(a.eid, b.eid)
    cover = _fresh_cover(c)
    assert cover.connected(a.eid, b.eid)
    delete_edge(c, cover, a.eid, b.eid)
    _verify(c, cover)
    assert not cover.connected(a.eid, b.eid)


# ---------------------------------------------------------------------------
# modification (6.3)
# ---------------------------------------------------------------------------


def test_modify_document(chain3):
    cover = _fresh_cover(chain3)
    r1 = chain3.documents["d1"].root

    def rebuild(collection):
        root = collection.new_document("d2", "r")
        collection.add_child(root.eid, "fresh")
        # re-link d1 -> d2 only (drop the d2 -> d3 link)
        (s1,) = [
            e
            for e in collection.documents["d1"].elements
            if collection.elements[e].tag == "s"
        ]
        collection.add_link(s1, root.eid)

    report = modify_document(chain3, cover, "d2", rebuild)
    assert report.operation == "modify_document"
    _verify(chain3, cover)
    r3 = chain3.documents["d3"].root
    assert not cover.connected(r1, r3)  # the restructure cut the chain


# ---------------------------------------------------------------------------
# scenario: mixed workload equivalence on realistic data
# ---------------------------------------------------------------------------


def test_mixed_workload_on_dblp():
    c = dblp_like(15, seed=13)
    cover = _fresh_cover(c)
    docs = sorted(c.documents)
    # delete two documents (whatever their separator status)
    delete_document(c, cover, docs[3])
    delete_document(c, cover, docs[7])
    # add a document citing two survivors
    r = c.new_document("new", "article")
    cite = c.add_child(r.eid, "cite")
    c.add_link(cite.eid, c.documents[docs[0]].root)
    c.add_link(r.eid, c.documents[docs[10]].root)
    insert_document(c, cover, "new")
    # drop one more link
    u, v = sorted(c.inter_links)[0]
    delete_edge(c, cover, u, v)
    _verify(c, cover)
