"""Tests for the generic (non-XML) reachability index — the paper's
future-work application of transitive-closure compression."""

import random

import pytest

from repro.graph import DiGraph
from repro.graph.reachability import ReachabilityIndex


@pytest.fixture
def call_graph():
    return DiGraph(
        [
            ("main", "parse"),
            ("parse", "lex"),
            ("main", "emit"),
            ("emit", "write"),
            ("parse", "error"),
            ("emit", "error"),
        ]
    )


def test_reachable(call_graph):
    index = ReachabilityIndex(call_graph)
    assert index.reachable("main", "lex")
    assert index.reachable("main", "error")
    assert not index.reachable("lex", "main")
    assert index.reachable("write", "write")
    index.verify()


def test_descendants_ancestors(call_graph):
    index = ReachabilityIndex(call_graph)
    assert index.descendants("parse") == {"parse", "lex", "error"}
    assert index.ancestors("error") == {"error", "parse", "emit", "main"}


def test_distance_mode(call_graph):
    index = ReachabilityIndex(call_graph, distance=True)
    assert index.distance("main", "lex") == 2
    assert index.distance("main", "error") == 2
    assert index.distance("lex", "main") is None
    index.verify()


def test_distance_requires_flag(call_graph):
    index = ReachabilityIndex(call_graph)
    with pytest.raises(TypeError):
        index.distance("main", "lex")


def test_add_edge_and_node(call_graph):
    index = ReachabilityIndex(call_graph)
    index.add_node("optimize")
    assert not index.reachable("emit", "optimize")
    index.add_edge("emit", "optimize")
    assert index.reachable("main", "optimize")
    index.verify()


def test_add_edge_distance(call_graph):
    index = ReachabilityIndex(call_graph, distance=True)
    index.add_edge("main", "error")  # shortcut
    assert index.distance("main", "error") == 1
    index.verify()


def test_remove_edge_absorbed(call_graph):
    index = ReachabilityIndex(call_graph)
    # error still reachable from main via emit after dropping parse->error
    index.remove_edge("parse", "error")
    assert index.reachable("main", "error")
    index.verify()


def test_remove_edge_disconnecting(call_graph):
    index = ReachabilityIndex(call_graph)
    index.remove_edge("parse", "lex")
    assert not index.reachable("main", "lex")
    index.verify()


def test_remove_edge_distance(call_graph):
    index = ReachabilityIndex(call_graph, distance=True)
    index.add_edge("main", "error")
    index.remove_edge("main", "error")
    assert index.distance("main", "error") == 2
    index.verify()


def test_remove_node(call_graph):
    index = ReachabilityIndex(call_graph)
    index.remove_node("parse")
    assert not index.reachable("main", "lex")
    assert index.reachable("main", "error")  # via emit
    index.verify()


def test_cyclic_graph():
    g = DiGraph([(1, 2), (2, 3), (3, 1), (3, 4)])
    index = ReachabilityIndex(g)
    assert index.reachable(1, 1)
    assert index.reachable(2, 1)
    index.verify()
    index.add_edge(4, 5)
    index.verify()


def test_size_compresses_dense_closure():
    # layered DAG with quadratic closure
    k = 8
    edges = [(f"a{i}", "mid") for i in range(k)] + [
        ("mid", f"b{i}") for i in range(k)
    ]
    index = ReachabilityIndex(DiGraph(edges))
    assert index.size <= 3 * k  # vs k*k closure connections


@pytest.mark.parametrize("seed", range(5))
def test_random_maintenance_session(seed):
    rng = random.Random(seed)
    g = DiGraph()
    for v in range(12):
        g.add_node(v)
    index = ReachabilityIndex(g)
    edges = set()
    for step in range(25):
        u, v = rng.randrange(12), rng.randrange(12)
        if u == v:
            continue
        if (u, v) in edges and rng.random() < 0.5:
            index.remove_edge(u, v)
            edges.discard((u, v))
        elif (u, v) not in edges:
            index.add_edge(u, v)
            edges.add((u, v))
        if step % 8 == 0:
            index.verify()
    index.verify()


@pytest.mark.parametrize("seed", range(3))
def test_random_maintenance_session_distance(seed):
    rng = random.Random(100 + seed)
    g = DiGraph()
    for v in range(8):
        g.add_node(v)
    index = ReachabilityIndex(g, distance=True)
    edges = set()
    for step in range(15):
        u, v = rng.randrange(8), rng.randrange(8)
        if u == v:
            continue
        if (u, v) in edges:
            index.remove_edge(u, v)
            edges.discard((u, v))
        else:
            index.add_edge(u, v)
            edges.add((u, v))
        index.verify()
