"""Tests for the XML collection data model (Section 2 of the paper)."""

import pytest

from repro.graph.traversal import is_acyclic
from repro.xmlmodel import Collection


@pytest.fixture
def figure1():
    """The three-document collection of Figure 1 (paper node numbering).

    d1 holds elements 1, 2, 3, 4 in a chain 1 -> 2 -> 3 -> 4? The figure
    only fixes the features we assert on: nine numbered elements across
    three documents, parent-child edges, one intra-document link and two
    inter-document links. We reconstruct a faithful variant: d1 = {1, 2, 3},
    d2 = {4, 5, 6}, d3 = {7, 8, 9}; tree edges 1->2, 1->3 / 4->5, 4->6 /
    7->8, 7->9; intra link 9 -> 8; inter links 3 -> 4 (d1 -> d2) and
    8 -> 5 (d3 -> d2).
    """
    c = Collection()
    ids = {}
    for doc, (root_label, kids) in {
        "d1": (1, [2, 3]),
        "d2": (4, [5, 6]),
        "d3": (7, [8, 9]),
    }.items():
        root = c.new_document(doc, "r")
        ids[root_label] = root.eid
        for k in kids:
            ids[k] = c.add_child(root.eid, "e").eid
    c.add_link(ids[9], ids[8])  # intra d3
    c.add_link(ids[3], ids[4])  # inter d1 -> d2
    c.add_link(ids[8], ids[5])  # inter d3 -> d2
    return c, ids


def test_new_document_and_children():
    c = Collection()
    root = c.new_document("d", "article")
    child = c.add_child(root.eid, "title")
    assert c.num_documents == 1
    assert c.num_elements == 2
    assert c.elements[child.eid].parent == root.eid
    assert c.elements[child.eid].tag == "title"
    assert c.doc(child.eid) == "d"


def test_duplicate_document_rejected():
    c = Collection()
    c.new_document("d")
    with pytest.raises(ValueError):
        c.new_document("d")


def test_element_ids_dense_and_global():
    c = Collection()
    r1 = c.new_document("a")
    r2 = c.new_document("b")
    ch = c.add_child(r1.eid, "x")
    assert {r1.eid, r2.eid, ch.eid} == {0, 1, 2}


def test_link_classification(figure1):
    c, ids = figure1
    assert (ids[9], ids[8]) in c.documents["d3"].intra_links
    assert (ids[3], ids[4]) in c.inter_links
    assert (ids[8], ids[5]) in c.inter_links
    assert c.num_links == 3


def test_element_graph_edges(figure1):
    c, ids = figure1
    g = c.element_graph()
    assert len(g) == 9
    # tree edges + intra + inter
    assert g.has_edge(ids[1], ids[2])
    assert g.has_edge(ids[9], ids[8])
    assert g.has_edge(ids[3], ids[4])
    assert g.num_edges() == 6 + 3


def test_document_graph(figure1):
    c, ids = figure1
    g = c.document_graph()
    assert set(g.nodes()) == {"d1", "d2", "d3"}
    assert g.has_edge("d1", "d2")
    assert g.has_edge("d3", "d2")
    assert g.num_edges() == 2


def test_document_link_counts(figure1):
    c, _ = figure1
    assert c.document_link_counts() == {("d1", "d2"): 1, ("d3", "d2"): 1}


def test_document_weights(figure1):
    c, _ = figure1
    assert c.document_weights() == {"d1": 3, "d2": 3, "d3": 3}


def test_remove_link(figure1):
    c, ids = figure1
    c.remove_link(ids[3], ids[4])
    assert (ids[3], ids[4]) not in c.inter_links
    c.remove_link(ids[9], ids[8])
    assert not c.documents["d3"].intra_links


def test_remove_document(figure1):
    c, ids = figure1
    removed = c.remove_document("d2")
    assert removed == {ids[4], ids[5], ids[6]}
    assert c.num_documents == 2
    assert c.num_elements == 6
    # inter links touching d2 are gone
    assert c.inter_links == set()
    assert ids[4] not in c.elements


def test_subcollection_partition(figure1):
    c, ids = figure1
    sub = c.subcollection(["d1", "d2"])
    assert sub.num_documents == 2
    assert sub.num_elements == 6
    # only links with both ends inside survive
    assert sub.inter_links == {(ids[3], ids[4])}
    # element ids preserved
    assert ids[1] in sub.elements


def test_intra_link_endpoint_validation():
    c = Collection()
    r1 = c.new_document("a")
    r2 = c.new_document("b")
    # a link across documents is inter; misuse of document API raises
    with pytest.raises(KeyError):
        c.documents["a"].add_intra_link(r1.eid, r2.eid)


def test_tree_counts_figure5_convention():
    # Root of an 8-element tree is annotated (1, 8) in Figure 5.
    c = Collection()
    root = c.new_document("d", "r")
    level1 = [c.add_child(root.eid, "a") for _ in range(3)]
    for e in level1:
        c.add_child(e.eid, "b")
    c.add_child(level1[0].eid, "b")
    doc = c.documents["d"]
    counts = doc.tree_counts()
    assert doc.num_elements == 8
    assert counts[root.eid] == (1, 8)
    assert counts[level1[0].eid] == (2, 3)
    leaf = doc.children[level1[1].eid][0]
    assert counts[leaf] == (3, 1)


def test_tree_counts_ignore_intra_links():
    c = Collection()
    root = c.new_document("d", "r")
    a = c.add_child(root.eid, "a")
    b = c.add_child(root.eid, "b")
    c.add_link(a.eid, b.eid)  # intra link must not affect tree counts
    counts = c.documents["d"].tree_counts()
    assert counts[a.eid] == (2, 1)
    assert counts[b.eid] == (2, 1)


def test_tags_index():
    c = Collection()
    root = c.new_document("d", "article")
    c.add_child(root.eid, "author")
    c.add_child(root.eid, "author")
    c.add_child(root.eid, "title")
    tags = c.tags()
    assert len(tags["author"]) == 2
    assert tags["article"] == [root.eid]


def test_document_tree_is_acyclic_graph():
    c = Collection()
    root = c.new_document("d", "r")
    x = c.add_child(root.eid, "x")
    y = c.add_child(x.eid, "y")
    c.add_link(y.eid, x.eid)  # intra link creating a cycle in G_E(d)
    g = c.documents["d"].element_graph()
    assert not is_acyclic(g)
    assert g.has_edge(y.eid, x.eid)
