"""Unit tests for traversals and reachability primitives."""

import pytest

from repro.graph import (
    DiGraph,
    ancestors,
    bfs_distances,
    bfs_order,
    descendants,
    dfs_postorder,
    is_acyclic,
    is_reachable,
    topological_order,
)
from repro.graph.traversal import multi_source_reaches


@pytest.fixture
def diamond():
    #   1
    #  / \
    # 2   3
    #  \ /
    #   4 -> 5
    return DiGraph([(1, 2), (1, 3), (2, 4), (3, 4), (4, 5)])


def test_bfs_order_levels(diamond):
    order = bfs_order(diamond, 1)
    assert order[0] == 1
    assert set(order[1:3]) == {2, 3}
    assert order[3] == 4
    assert order[4] == 5


def test_bfs_distances(diamond):
    d = bfs_distances(diamond, 1)
    assert d == {1: 0, 2: 1, 3: 1, 4: 2, 5: 3}


def test_bfs_distances_reverse(diamond):
    d = bfs_distances(diamond, 4, reverse=True)
    assert d == {4: 0, 2: 1, 3: 1, 1: 2}


def test_bfs_distances_max_depth(diamond):
    d = bfs_distances(diamond, 1, max_depth=1)
    assert d == {1: 0, 2: 1, 3: 1}


def test_descendants(diamond):
    assert descendants(diamond, 1) == {1, 2, 3, 4, 5}
    assert descendants(diamond, 1, strict=True) == {2, 3, 4, 5}
    assert descendants(diamond, 5) == {5}
    assert descendants(diamond, 5, strict=True) == set()


def test_ancestors(diamond):
    assert ancestors(diamond, 4) == {1, 2, 3, 4}
    assert ancestors(diamond, 4, strict=True) == {1, 2, 3}
    assert ancestors(diamond, 1, strict=True) == set()


def test_is_reachable(diamond):
    assert is_reachable(diamond, 1, 5)
    assert is_reachable(diamond, 2, 5)
    assert not is_reachable(diamond, 5, 1)
    assert is_reachable(diamond, 3, 3)  # reflexive


def test_is_reachable_cycle():
    g = DiGraph([(1, 2), (2, 3), (3, 1)])
    assert is_reachable(g, 1, 1)
    assert is_reachable(g, 3, 2)


def test_multi_source_reaches():
    g = DiGraph([(1, 2), (2, 3), (4, 3)])
    assert multi_source_reaches(g, [1], {3})
    assert not multi_source_reaches(g, [3], {1})
    assert multi_source_reaches(g, [1, 4], {3})


def test_multi_source_reaches_forbidden():
    # 1 -> 2 -> 3 only path goes through 2
    g = DiGraph([(1, 2), (2, 3)])
    assert not multi_source_reaches(g, [1], {3}, forbidden={2})
    g.add_edge(1, 3)
    assert multi_source_reaches(g, [1], {3}, forbidden={2})


def test_multi_source_source_in_targets():
    g = DiGraph([(1, 2)])
    assert multi_source_reaches(g, [1], {1})


def test_multi_source_skips_missing_sources():
    g = DiGraph([(1, 2)])
    assert not multi_source_reaches(g, [99], {2})
    assert multi_source_reaches(g, [99, 1], {2})


def test_dfs_postorder_parent_after_children(diamond):
    post = dfs_postorder(diamond, 1)
    assert post[-1] == 1
    assert post.index(5) < post.index(4)
    assert set(post) == {1, 2, 3, 4, 5}


def test_topological_order(diamond):
    order = topological_order(diamond)
    pos = {v: i for i, v in enumerate(order)}
    for u, v in diamond.edges():
        assert pos[u] < pos[v]


def test_topological_order_cycle_raises():
    g = DiGraph([(1, 2), (2, 1)])
    with pytest.raises(ValueError):
        topological_order(g)


def test_is_acyclic(diamond):
    assert is_acyclic(diamond)
    diamond.add_edge(5, 1)
    assert not is_acyclic(diamond)


def test_deep_chain_no_recursion_limit():
    n = 50_000
    g = DiGraph((i, i + 1) for i in range(n))
    assert bfs_distances(g, 0)[n] == n
    post = dfs_postorder(g, 0)
    assert post[0] == n
    assert post[-1] == 0
