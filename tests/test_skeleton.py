"""Tests for skeleton graphs, PSG, and the A*D / A+D weight estimation."""

import pytest

from repro.core.cover_builder import build_cover
from repro.core.partitioning import Partitioning, compute_cross_links
from repro.core.skeleton import (
    annotate_tree_counts,
    build_psg,
    build_skeleton_graph,
    connection_edge_weight,
    estimate_global_counts,
    psg_source_target_closure,
    psg_source_target_closure_partitioned,
)
from repro.graph.traversal import descendants
from repro.xmlmodel import Collection, dblp_like


@pytest.fixture
def linked_collection():
    """Three documents: d1 --link--> d2 --link--> d3.

    d1: r1 -> (a1, s1);  link s1 -> t2 (d2's child)
    d2: r2 -> (t2 -> s2, b2);  link s2 -> t3 (d3's root)
    d3: t3(root) -> (c3,)
    """
    c = Collection()
    r1 = c.new_document("d1", "r")
    c.add_child(r1.eid, "a")
    s1 = c.add_child(r1.eid, "s")
    r2 = c.new_document("d2", "r")
    t2 = c.add_child(r2.eid, "t")
    s2 = c.add_child(t2.eid, "s")
    c.add_child(r2.eid, "b")
    t3 = c.new_document("d3", "t")
    c.add_child(t3.eid, "c")
    c.add_link(s1.eid, t2.eid)
    c.add_link(s2.eid, t3.eid)
    return c, {
        "r1": r1.eid, "s1": s1.eid, "r2": r2.eid, "t2": t2.eid,
        "s2": s2.eid, "t3": t3.eid,
    }


def test_skeleton_nodes_are_link_endpoints(linked_collection):
    c, ids = linked_collection
    skel = build_skeleton_graph(c)
    assert set(skel.nodes()) == {ids["s1"], ids["t2"], ids["s2"], ids["t3"]}


def test_skeleton_edges(linked_collection):
    c, ids = linked_collection
    skel = build_skeleton_graph(c)
    # the links themselves
    assert skel.has_edge(ids["s1"], ids["t2"])
    assert skel.has_edge(ids["s2"], ids["t3"])
    # target t2 reaches source s2 within d2
    assert skel.has_edge(ids["t2"], ids["s2"])
    # no fabricated edges
    assert skel.num_edges() == 3


def test_skeleton_target_source_requires_reachability():
    c = Collection()
    r1 = c.new_document("d1", "r")
    s1 = c.add_child(r1.eid, "s")
    r2 = c.new_document("d2", "r")
    t2 = c.add_child(r2.eid, "t")  # leaf
    s2 = c.add_child(r2.eid, "s")  # sibling, NOT reachable from t2
    r3 = c.new_document("d3", "r")
    c.add_link(s1.eid, t2.eid)
    c.add_link(s2.eid, r3.eid)
    skel = build_skeleton_graph(c)
    assert not skel.has_edge(t2.eid, s2.eid)


def test_annotate_tree_counts(linked_collection):
    c, ids = linked_collection
    skel = build_skeleton_graph(c)
    counts = annotate_tree_counts(c, skel.nodes())
    # s1 is a child of r1: 2 ancestors (self + root), 1 descendant (self)
    assert counts[ids["s1"]] == (2, 1)
    # t2 is a child of r2 with child s2: anc = 2, desc = 2
    assert counts[ids["t2"]] == (2, 2)
    # t3 is a root with one child: anc = 1, desc = 2
    assert counts[ids["t3"]] == (1, 2)


def test_estimate_global_counts(linked_collection):
    """Figure 5 semantics: traversal accumulates desc over links and anc
    into link sources."""
    c, ids = linked_collection
    skel = build_skeleton_graph(c)
    counts = annotate_tree_counts(c, skel.nodes())
    sources = {u for (u, _) in c.inter_links}
    a, d = estimate_global_counts(skel, counts, sources, max_depth=6)
    # s1 reaches t2 (desc 2) and t3 (desc 2) via links: D(s1) = 1 + 2 + 2
    assert d[ids["s1"]] == 5
    # s2 gains the ancestors of t2's traversal origins: at least its own
    # tree ancestors plus anc(s1) and anc(t2)
    assert a[ids["s2"]] >= counts[ids["s2"]][0]
    # t3 receives no extra descendants (no outgoing links)
    assert d[ids["t3"]] == 2


def test_estimate_depth_limit(linked_collection):
    c, ids = linked_collection
    skel = build_skeleton_graph(c)
    counts = annotate_tree_counts(c, skel.nodes())
    sources = {u for (u, _) in c.inter_links}
    _, d_shallow = estimate_global_counts(skel, counts, sources, max_depth=1)
    _, d_deep = estimate_global_counts(skel, counts, sources, max_depth=6)
    # with depth 1, s1 only sees t2, not t3
    assert d_shallow[ids["s1"]] == 3
    assert d_deep[ids["s1"]] == 5


def test_connection_edge_weight_modes(linked_collection):
    c, _ = linked_collection
    axd = connection_edge_weight(c, mode="AxD")
    apd = connection_edge_weight(c, mode="A+D")
    assert axd("d1", "d2") > 0
    assert apd("d1", "d2") > 0
    assert axd("d1", "d3") == 0  # no direct link
    # symmetric lookups work
    assert axd("d2", "d1") == axd("d1", "d2")
    with pytest.raises(ValueError):
        connection_edge_weight(c, mode="bogus")


def test_connection_weight_on_dblp():
    c = dblp_like(30, seed=6)
    weight = connection_edge_weight(c, mode="AxD")
    counts = c.document_link_counts()
    assert any(weight(a, b) > 0 for (a, b) in counts)


# ---------------------------------------------------------------------------
# partition-level skeleton graph
# ---------------------------------------------------------------------------


def _partitioning_and_covers(collection, groups):
    partitioning = Partitioning(
        groups, compute_cross_links(
            collection, {d: i for i, g in enumerate(groups) for d in g}
        )
    )
    covers = []
    for docs in partitioning.partitions:
        sub = collection.subcollection(docs)
        covers.append(build_cover(sub.element_graph()))
    return partitioning, covers


def test_build_psg(linked_collection):
    c, ids = linked_collection
    partitioning, covers = _partitioning_and_covers(
        c, [["d1"], ["d2"], ["d3"]]
    )

    def part_desc(pid, e):
        return covers[pid].descendants(e)

    psg = build_psg(c, partitioning, part_desc)
    assert set(psg.nodes()) == {ids["s1"], ids["t2"], ids["s2"], ids["t3"]}
    assert psg.has_edge(ids["s1"], ids["t2"])
    assert psg.has_edge(ids["t2"], ids["s2"])  # within-partition t -> s
    assert psg.has_edge(ids["s2"], ids["t3"])
    assert psg.num_edges() == 3


def test_psg_merged_partitions_drop_internal_links(linked_collection):
    c, ids = linked_collection
    partitioning, covers = _partitioning_and_covers(c, [["d1", "d2"], ["d3"]])

    def part_desc(pid, e):
        return covers[pid].descendants(e)

    psg = build_psg(c, partitioning, part_desc)
    # only the d2 -> d3 link crosses partitions now
    assert set(psg.nodes()) == {ids["s2"], ids["t3"]}
    assert psg.num_edges() == 1


def test_psg_source_target_closure(linked_collection):
    c, ids = linked_collection
    partitioning, covers = _partitioning_and_covers(
        c, [["d1"], ["d2"], ["d3"]]
    )

    def part_desc(pid, e):
        return covers[pid].descendants(e)

    psg = build_psg(c, partitioning, part_desc)
    targets = {v for (_, v) in partitioning.cross_links}
    hbar = psg_source_target_closure(psg, targets)
    assert hbar[ids["s1"]] == {ids["t2"], ids["t3"]}
    assert hbar[ids["s2"]] == {ids["t3"]}
    assert hbar[ids["t3"]] == set()


@pytest.mark.parametrize("node_limit", [1, 2, 3])
def test_psg_partitioned_closure_matches_direct(linked_collection, node_limit):
    c, ids = linked_collection
    partitioning, covers = _partitioning_and_covers(
        c, [["d1"], ["d2"], ["d3"]]
    )

    def part_desc(pid, e):
        return covers[pid].descendants(e)

    psg = build_psg(c, partitioning, part_desc)
    targets = {v for (_, v) in partitioning.cross_links}
    direct = psg_source_target_closure(psg, targets)
    recursive = psg_source_target_closure_partitioned(
        psg, targets, node_limit=node_limit
    )
    assert direct == recursive


@pytest.mark.parametrize("node_limit", [2, 5, 10, 1000])
def test_psg_partitioned_closure_matches_on_dblp(node_limit):
    from repro.core.partitioning import partition_by_node_weight

    c = dblp_like(25, seed=8)
    partitioning = partition_by_node_weight(c, 100, seed=0)
    covers = []
    for docs in partitioning.partitions:
        covers.append(build_cover(c.subcollection(docs).element_graph()))

    def part_desc(pid, e):
        return covers[pid].descendants(e)

    psg = build_psg(c, partitioning, part_desc)
    targets = {v for (_, v) in partitioning.cross_links}
    direct = psg_source_target_closure(psg, targets)
    recursive = psg_source_target_closure_partitioned(
        psg, targets, node_limit=node_limit
    )
    assert direct == recursive
