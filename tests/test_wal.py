"""Durable update WAL: crash injection, replay parity, torn tails.

The recovery contract: whatever point the writer dies at, restarting
from the store converges to a well-defined epoch whose canonical
snapshot bytes equal a crash-free reference.

* killed after the WAL **append** (epoch never published): replay
  applies the logged record — redo semantics, the acknowledged-durable
  batch wins;
* killed after **publish** (checkpoint pending): replay lands on the
  exact published epoch;
* killed after **checkpoint** (WAL reset pending): replay skips the
  already-checkpointed records — idempotent;
* a torn tail (partial final record) is truncated, never parsed.
"""

import os

import pytest

from repro.core.hopi import HopiIndex
from repro.core.ops import apply_update_op
from repro.service.service import QueryService, UpdateError
from repro.storage.snapshot import canonical_snapshot_bytes
from repro.storage.wal import DurableIndexStore, UpdateWAL, WALCrash
from repro.xmlmodel.generator import dblp_like


def build_index():
    return HopiIndex.build(
        dblp_like(10, seed=5), backend="arrays",
        strategy="recursive", partitioner="node_weight", partition_limit=60,
    )


def make_ops(index, tag):
    root = index.collection.documents[sorted(index.collection.documents)[0]].root
    return [{"op": "insert_element", "parent": root, "tag": tag}]


def snap(index):
    return canonical_snapshot_bytes(index.cover)


@pytest.fixture()
def seeded(tmp_path):
    index = build_index()
    store = DurableIndexStore(str(tmp_path / "store"), checkpoint_interval=100)
    store.initialize(index)
    return index, store


class TestUpdateWAL:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = UpdateWAL(str(tmp_path / "u.wal"))
        wal.append(1, [{"op": "insert_element", "parent": 0, "tag": "a"}])
        wal.append(2, [{"op": "delete_edge", "source": 1, "target": 2}])
        records = list(wal.replay())
        assert records == [
            (1, [{"op": "insert_element", "parent": 0, "tag": "a"}]),
            (2, [{"op": "delete_edge", "source": 1, "target": 2}]),
        ]
        wal.reset()
        assert list(wal.replay()) == []

    def test_torn_tail_is_truncated_not_parsed(self, tmp_path):
        path = str(tmp_path / "u.wal")
        wal = UpdateWAL(path)
        wal.append(1, [{"op": "rebuild"}])
        wal.append(2, [{"op": "rebuild"}])
        wal.close()
        good_size = os.path.getsize(path)
        # simulate dying mid-append: half a header and garbage
        with open(path, "ab") as fh:
            fh.write(b"\x55\x00\x00")
        assert len(list(wal.replay())) == 2
        # the tail was cut back to the last intact record
        assert os.path.getsize(path) == good_size
        # ...and appending after recovery starts on a clean boundary
        wal.append(3, [{"op": "rebuild"}])
        assert [e for e, _ in wal.replay()] == [1, 2, 3]

    def test_corrupt_crc_stops_replay(self, tmp_path):
        path = str(tmp_path / "u.wal")
        wal = UpdateWAL(path)
        wal.append(1, [{"op": "rebuild"}])
        wal.append(2, [{"op": "rebuild"}])
        wal.close()
        with open(path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0xFF]))
        assert [e for e, _ in wal.replay()] == [1]


class CrashAt:
    def __init__(self, point):
        self.point = point

    def __call__(self, point):
        if point == self.point:
            raise WALCrash(point)


class TestCrashRecovery:
    def reference(self, index, ops):
        ref = index.cow_copy()
        for op in ops:
            apply_update_op(ref, op)
        return ref

    def test_crash_after_append_replays_the_logged_batch(self, seeded):
        index, store = seeded
        service = QueryService(index, durable_store=store)
        service.update(make_ops(index, "landed"))
        ops = make_ops(index, "crashy")
        reference = self.reference(service.index, ops)

        store.crash_hook = CrashAt("appended")
        with pytest.raises(WALCrash):
            service.update(ops)
        # the live service never published the crashed batch
        assert snap(service.index) != snap(reference)

        recovered = DurableIndexStore(store.root).recover()
        # redo semantics: the batch was durably logged, so it wins
        assert snap(recovered) == snap(reference)
        assert recovered.epoch > service.epoch

    def test_crash_after_publish_recovers_the_published_epoch(self, seeded):
        index, store = seeded
        service = QueryService(index, durable_store=store)
        store.crash_hook = CrashAt("published")
        with pytest.raises(WALCrash):
            service.update(make_ops(index, "published-batch"))
        store.crash_hook = None
        live = service.index  # the epoch *did* publish before the crash

        recovered = DurableIndexStore(store.root).recover()
        assert recovered.epoch == service.epoch
        assert snap(recovered) == snap(live)

    def test_crash_after_checkpoint_skips_replayed_records(self, seeded):
        index, store = seeded
        store.checkpoint_interval = 1  # checkpoint on every batch
        service = QueryService(index, durable_store=store)
        store.crash_hook = CrashAt("checkpointed")
        with pytest.raises(WALCrash):
            service.update(make_ops(index, "checkpointed-batch"))
        store.crash_hook = None
        live = service.index

        # the crash hit between snapshot rename and WAL reset: the WAL
        # still holds the record the snapshot already contains
        assert store.wal.record_count() >= 1
        recovered = DurableIndexStore(store.root).recover()
        assert recovered.epoch == service.epoch
        assert snap(recovered) == snap(live)

    def test_multi_batch_recovery_parity(self, seeded):
        """Several batches, a failed one in the middle, then a crash:
        recovery converges to the exact canonical bytes of the live
        published epoch."""
        index, store = seeded
        service = QueryService(index, durable_store=store)
        service.update(make_ops(index, "one"))
        with pytest.raises(UpdateError):
            service.update([{"op": "delete_document", "doc_id": "absent"}])
        service.update(make_ops(index, "two"))
        service.update([
            {
                "op": "insert_document", "doc_id": "wal-doc",
                "root_tag": "article",
                "children": [{"ref": "a", "parent": "root", "tag": "author"}],
            },
        ])
        live = service.index

        recovered = DurableIndexStore(store.root).recover()
        assert recovered.epoch == service.epoch
        assert snap(recovered) == snap(live)
        assert sorted(recovered.collection.documents) == sorted(
            live.collection.documents
        )

    def test_recover_honours_backend_override(self, seeded):
        index, store = seeded
        service = QueryService(index, durable_store=store)
        service.update(make_ops(index, "converted"))
        recovered = DurableIndexStore(store.root).recover(backend="sets")
        assert recovered.backend == "sets"
        assert snap(recovered) == snap(service.index)


class TestCheckpointPolicy:
    def test_interval_checkpoint_resets_the_wal(self, tmp_path):
        index = build_index()
        store = DurableIndexStore(str(tmp_path / "s"), checkpoint_interval=2)
        store.initialize(index)
        service = QueryService(index, durable_store=store)
        service.update(make_ops(index, "a"))
        assert store.wal.record_count() == 1
        service.update(make_ops(index, "b"))  # hits the interval
        assert store.wal.record_count() == 0

    def test_apply_forces_a_checkpoint(self, tmp_path):
        """Arbitrary mutators cannot be WAL-logged, so the durable
        store must be checkpointed immediately — recovery equals the
        published epoch with no replayable ops pending."""
        index = build_index()
        store = DurableIndexStore(str(tmp_path / "s"), checkpoint_interval=100)
        store.initialize(index)
        service = QueryService(index, durable_store=store)
        service.update(make_ops(index, "logged"))
        assert store.wal.record_count() == 1

        root = index.collection.documents[sorted(index.collection.documents)[0]].root
        service.apply(lambda shadow: shadow.insert_element(root, "via-apply"))
        assert store.wal.record_count() == 0  # forced checkpoint reset it
        recovered = DurableIndexStore(store.root).recover()
        assert recovered.epoch == service.epoch
        assert snap(recovered) == snap(service.index)
