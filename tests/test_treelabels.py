"""Tests for the pre/postorder tree labeling (Section 4.3's device)."""

import random

import pytest

from repro.xmlmodel import Collection, dblp_like, inex_like
from repro.xmlmodel.treelabels import TreeLabeling


@pytest.fixture
def small_tree():
    c = Collection()
    root = c.new_document("d", "r")
    a = c.add_child(root.eid, "a")
    b = c.add_child(root.eid, "b")
    aa = c.add_child(a.eid, "aa")
    ab = c.add_child(a.eid, "ab")
    leaf = c.add_child(aa.eid, "leaf")
    ids = dict(root=root.eid, a=a.eid, b=b.eid, aa=aa.eid, ab=ab.eid, leaf=leaf.eid)
    return c, ids


def test_ancestor_reflexive_and_transitive(small_tree):
    c, ids = small_tree
    tl = TreeLabeling(c)
    assert tl.is_tree_ancestor(ids["root"], ids["leaf"])
    assert tl.is_tree_ancestor(ids["a"], ids["leaf"])
    assert tl.is_tree_ancestor(ids["aa"], ids["leaf"])
    assert tl.is_tree_ancestor(ids["leaf"], ids["leaf"])  # reflexive
    assert not tl.is_tree_ancestor(ids["b"], ids["leaf"])
    assert not tl.is_tree_ancestor(ids["leaf"], ids["root"])
    assert not tl.is_tree_ancestor(ids["ab"], ids["aa"])  # siblings


def test_subtree_sizes(small_tree):
    c, ids = small_tree
    tl = TreeLabeling(c)
    assert tl.subtree_size(ids["root"]) == 6
    assert tl.subtree_size(ids["a"]) == 4
    assert tl.subtree_size(ids["b"]) == 1
    assert tl.subtree_size(ids["aa"]) == 2


def test_tree_counts_match_document_tree_counts(small_tree):
    c, ids = small_tree
    tl = TreeLabeling(c)
    doc_counts = c.documents["d"].tree_counts()
    for e in c.documents["d"].elements:
        assert tl.tree_counts(e) == doc_counts[e]


def test_tree_counts_match_on_generated_collections():
    for collection in (dblp_like(10, seed=3), inex_like(3, seed=4)):
        tl = TreeLabeling(collection)
        for doc in collection.documents.values():
            counts = doc.tree_counts()
            for e in doc.elements:
                assert tl.tree_counts(e) == counts[e]


def test_tree_distance(small_tree):
    c, ids = small_tree
    tl = TreeLabeling(c)
    assert tl.tree_distance(ids["root"], ids["leaf"]) == 3
    assert tl.tree_distance(ids["a"], ids["aa"]) == 1
    assert tl.tree_distance(ids["a"], ids["a"]) == 0
    assert tl.tree_distance(ids["b"], ids["leaf"]) is None


def test_cross_document_never_ancestor():
    c = Collection()
    r1 = c.new_document("a", "r")
    r2 = c.new_document("b", "r")
    x = c.add_child(r2.eid, "x")
    tl = TreeLabeling(c)
    assert not tl.is_tree_ancestor(r1.eid, x.eid)


def test_ignores_links(small_tree):
    c, ids = small_tree
    c.add_link(ids["b"], ids["a"])  # intra link b -> a
    tl = TreeLabeling(c)
    assert not tl.is_tree_ancestor(ids["b"], ids["aa"])


def test_relabel_after_insert(small_tree):
    c, ids = small_tree
    tl = TreeLabeling(c)
    new = c.add_child(ids["b"], "new")
    tl.relabel_document("d")
    assert tl.is_tree_ancestor(ids["b"], new.eid)
    assert tl.subtree_size(ids["root"]) == 7
    assert tl.subtree_size(ids["b"]) == 2


def test_forget_document(small_tree):
    c, ids = small_tree
    tl = TreeLabeling(c)
    removed = c.remove_document("d")
    tl.forget_document(removed)
    assert not tl.pre and not tl.post and not tl.depth


def test_oracle_against_parent_chain():
    rng = random.Random(9)
    c = dblp_like(5, seed=9)
    tl = TreeLabeling(c)

    def chain_ancestor(u, v):
        while v is not None:
            if v == u:
                return True
            v = c.elements[v].parent
        return False

    elements = sorted(c.elements)
    for _ in range(500):
        u, v = rng.choice(elements), rng.choice(elements)
        same_doc = c.doc(u) == c.doc(v)
        expected = same_doc and chain_ancestor(u, v)
        assert tl.is_tree_ancestor(u, v) == expected
