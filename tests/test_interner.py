"""Tests for the dense node-id interner."""

import pytest

from repro.core.interner import NodeInterner


def test_ids_are_dense_and_stable():
    interner = NodeInterner()
    ids = [interner.intern(label) for label in ("a", "b", "c")]
    assert ids == [0, 1, 2]
    # re-interning returns the same id
    assert interner.intern("b") == 1
    assert len(interner) == 3


def test_bidirectional_mapping():
    interner = NodeInterner(["x", "y"])
    assert interner.get("x") == 0
    assert interner.get("missing") is None
    assert interner.label(1) == "y"
    assert interner.labels() == ["x", "y"]
    assert "x" in interner and "missing" not in interner
    assert list(interner) == ["x", "y"]


def test_arbitrary_hashables():
    interner = NodeInterner()
    assert interner.intern((1, "tuple")) == 0
    assert interner.intern(frozenset({2})) == 1
    assert interner.label(0) == (1, "tuple")


def test_copy_is_independent():
    interner = NodeInterner(["a"])
    clone = interner.copy()
    clone.intern("b")
    assert len(interner) == 1
    assert len(clone) == 2
    assert clone.get("a") == 0


def test_unknown_id_raises():
    interner = NodeInterner(["a"])
    with pytest.raises(IndexError):
        interner.label(5)
