"""Tests for the transitive-closure engines, with networkx oracle checks."""

import random

import networkx as nx
import pytest

from repro.graph import (
    DiGraph,
    DistanceClosure,
    TransitiveClosure,
    distance_closure,
    transitive_closure,
    transitive_closure_size,
)
from repro.graph.closure import ClosureBudgetExceeded


def test_chain_closure():
    g = DiGraph([(1, 2), (2, 3), (3, 4)])
    c = transitive_closure(g)
    assert c.reach[1] == {2, 3, 4}
    assert c.reach[2] == {3, 4}
    assert c.reach[4] == set()
    assert c.num_connections == 6


def test_closure_reflexive_convention():
    g = DiGraph([(1, 2)])
    c = transitive_closure(g)
    assert c.contains(1, 1)  # reflexive, implicit
    assert c.contains(2, 2)
    assert c.contains(1, 2)
    assert not c.contains(2, 1)
    assert not c.contains(99, 99)  # unknown node


def test_closure_cycle_members_reach_each_other():
    g = DiGraph([(1, 2), (2, 3), (3, 1), (3, 4)])
    c = transitive_closure(g)
    assert c.reach[1] == {2, 3, 4}
    assert c.reach[2] == {1, 3, 4}
    assert c.reach[3] == {1, 2, 4}
    assert 1 not in c.reach[1]  # self never stored
    assert c.reach[4] == set()


def test_closure_self_loop_not_stored():
    g = DiGraph([(1, 1), (1, 2)])
    c = transitive_closure(g)
    assert c.reach[1] == {2}


def test_ancestors_view():
    g = DiGraph([(1, 3), (2, 3), (3, 4)])
    c = transitive_closure(g)
    assert c.ancestors_of(4) == {1, 2, 3}
    assert c.ancestors_of(3) == {1, 2}
    assert c.ancestors_of(1) == set()


def test_connections_iterator_and_counts():
    g = DiGraph([(1, 2), (2, 3)])
    c = transitive_closure(g)
    assert set(c.connections()) == {(1, 2), (1, 3), (2, 3)}
    assert c.num_connections == 3
    assert c.num_nodes == 3
    assert c.stored_integers() == 12
    assert c.stored_integers(with_backward_index=False) == 6


def test_budget_exceeded():
    g = DiGraph((i, i + 1) for i in range(30))
    with pytest.raises(ClosureBudgetExceeded):
        transitive_closure(g, max_connections=10)
    with pytest.raises(ClosureBudgetExceeded) as exc:
        transitive_closure_size(g, max_connections=10)
    assert exc.value.count > 10


def test_budget_not_exceeded_exact_size():
    g = DiGraph([(1, 2), (2, 3)])
    assert transitive_closure_size(g) == 3
    assert transitive_closure_size(g, max_connections=3) == 3


def test_size_counts_cycles():
    g = DiGraph([(1, 2), (2, 1)])
    # 1->2, 2->1 (intra-component pairs)
    assert transitive_closure_size(g) == 2


@pytest.mark.parametrize("seed", range(10))
def test_closure_matches_networkx_oracle(seed):
    rng = random.Random(seed)
    n = 40
    edges = [
        (rng.randrange(n), rng.randrange(n))
        for _ in range(rng.randrange(10, 120))
    ]
    g = DiGraph(edges)
    for v in range(n):
        g.add_node(v)
    c = transitive_closure(g)
    nxg = nx.DiGraph(edges)
    nxg.add_nodes_from(range(n))
    for v in range(n):
        expected = set(nx.descendants(nxg, v))
        assert c.reach[v] == expected, f"node {v} seed {seed}"
    assert transitive_closure_size(g) == c.num_connections


# ---------------------------------------------------------------------------
# distance closure
# ---------------------------------------------------------------------------


def test_distance_chain():
    g = DiGraph([(1, 2), (2, 3), (3, 4)])
    d = distance_closure(g)
    assert d.distance(1, 4) == 3
    assert d.distance(1, 1) == 0
    assert d.distance(4, 1) is None
    assert d.distance(99, 1) is None


def test_distance_shortcut_wins():
    g = DiGraph([(1, 2), (2, 3), (1, 3)])
    d = distance_closure(g)
    assert d.distance(1, 3) == 1


def test_distance_cycle():
    g = DiGraph([(1, 2), (2, 3), (3, 1)])
    d = distance_closure(g)
    assert d.distance(1, 3) == 2
    assert d.distance(3, 2) == 2
    # self distance is implicit 0, not the cycle length
    assert d.distance(1, 1) == 0
    assert 1 not in d.dist[1]


def test_distance_ancestors_view():
    g = DiGraph([(1, 2), (2, 3)])
    d = distance_closure(g)
    assert d.ancestors_of(3) == {1: 2, 2: 1}
    assert d.ancestors_of(1) == {}


def test_distance_to_reachability():
    g = DiGraph([(1, 2), (2, 3)])
    d = distance_closure(g)
    c = d.to_reachability()
    assert isinstance(c, TransitiveClosure)
    assert c.reach[1] == {2, 3}


def test_distance_connections_iterator():
    g = DiGraph([(1, 2), (2, 3)])
    d = distance_closure(g)
    assert set(d.connections()) == {(1, 2, 1), (1, 3, 2), (2, 3, 1)}
    assert d.num_connections == 3


@pytest.mark.parametrize("seed", range(6))
def test_distance_matches_networkx_oracle(seed):
    rng = random.Random(1000 + seed)
    n = 30
    edges = [
        (rng.randrange(n), rng.randrange(n))
        for _ in range(rng.randrange(10, 90))
    ]
    g = DiGraph(edges)
    for v in range(n):
        g.add_node(v)
    d = distance_closure(g)
    nxg = nx.DiGraph(edges)
    nxg.add_nodes_from(range(n))
    lengths = dict(nx.all_pairs_shortest_path_length(nxg))
    for u in range(n):
        expected = {v: l for v, l in lengths.get(u, {}).items() if v != u}
        assert d.dist[u] == expected
