"""Unit tests for the serving-tier telemetry module."""

import threading

from repro.service.telemetry import (
    DEFAULT_WINDOW,
    EndpointStats,
    Telemetry,
    percentile,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0

    def test_matches_bench_arithmetic(self):
        # same nearest-rank convention as repro.bench.service_load
        from repro.bench.service_load import percentile as bench_percentile

        values = sorted([0.1, 0.5, 0.9, 2.0, 7.0, 13.0, 21.0])
        for f in (0.5, 0.9, 0.95, 0.99):
            assert percentile(values, f) == bench_percentile(values, f)


class TestEndpointStats:
    def test_counts_and_classification(self):
        stats = EndpointStats(window=16)
        stats.observe(0.010, 200)
        stats.observe(0.020, 400)   # client error: counted, not an error
        stats.observe(0.030, 500)   # server error
        stats.observe(0.000, 429)   # shed
        summary = stats.summary()
        assert summary["count"] == 4
        assert summary["errors"] == 1
        assert summary["shed"] == 1
        assert summary["window"] == 4

    def test_window_slides(self):
        stats = EndpointStats(window=4)
        for i in range(10):
            stats.observe(float(i), 200)
        summary = stats.summary()
        assert summary["count"] == 10          # all-time
        assert summary["window"] == 4          # only the newest 4 retained
        assert summary["p50_ms"] >= 6_000.0    # 6..9 s in ms

    def test_percentiles_in_ms(self):
        # nearest rank over 100 samples: p99 is the 99th value, so two
        # slow outliers are needed for it to land on the slow tail
        stats = EndpointStats(window=128)
        for _ in range(98):
            stats.observe(0.001, 200)
        stats.observe(1.0, 200)
        stats.observe(1.0, 200)
        summary = stats.summary()
        assert abs(summary["p50_ms"] - 1.0) < 1e-9
        assert abs(summary["p99_ms"] - 1000.0) < 1e-9


class TestTelemetry:
    def test_counters(self):
        t = Telemetry()
        t.counter("shed_queue_full")
        t.counter("shed_queue_full", 2)
        t.counter("shed_timeout", 5)
        assert t.counters()["shed_queue_full"] == 3
        assert t.shed_total() == 8

    def test_observe_feeds_counters_and_endpoint(self):
        t = Telemetry()
        t.observe("query", 0.01, 200)
        t.observe("query", 0.02, 200)
        t.observe("query", 0.00, 429)
        t.observe("update", 0.05, 503)
        counters = t.counters()
        assert counters["requests"] == 4
        assert counters["responses_2xx"] == 2
        assert counters["responses_4xx"] == 1
        assert counters["responses_5xx"] == 1
        snap = t.snapshot()
        assert snap["endpoints"]["query"]["count"] == 3
        assert snap["endpoints"]["query"]["shed"] == 1
        assert snap["endpoints"]["update"]["errors"] == 1

    def test_gauges_evaluate_at_snapshot_time(self):
        t = Telemetry()
        box = {"v": 1}
        t.set_gauge("depth", lambda: box["v"])
        t.set_gauge("limit", 64)
        assert t.snapshot()["gauges"] == {"depth": 1, "limit": 64}
        box["v"] = 7
        assert t.snapshot()["gauges"]["depth"] == 7  # live, not stale

    def test_snapshot_shed_block(self):
        t = Telemetry()
        t.counter("shed_queue_full", 3)
        t.counter("shed_timeout", 2)
        assert t.snapshot()["shed"] == {
            "queue_full": 3, "client_cap": 0, "timeout": 2, "total": 5,
        }

    def test_default_window(self):
        assert DEFAULT_WINDOW == 2048
        t = Telemetry(window=2)
        t.observe("q", 1.0, 200)
        t.observe("q", 2.0, 200)
        t.observe("q", 3.0, 200)
        assert t.snapshot()["endpoints"]["q"]["window"] == 2

    def test_thread_safety_totals(self):
        t = Telemetry()
        n, per = 8, 500

        def worker():
            for _ in range(per):
                t.counter("hits")
                t.observe("query", 0.001, 200)

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert t.counters()["hits"] == n * per
        assert t.counters()["requests"] == n * per
        assert t.snapshot()["endpoints"]["query"]["count"] == n * per
