"""Reconstructions of the paper's worked examples (Figures 1, 3, 5, 6).

The figures fix the qualitative structure (three linked documents, their
partitioning and skeleton graphs, separating vs non-separating
documents); we rebuild faithful instances and assert the properties the
paper reads off them.
"""

import pytest

from repro.core.cover_builder import build_cover
from repro.core.maintenance import document_separates
from repro.core.partitioning import Partitioning, compute_cross_links
from repro.core.skeleton import (
    annotate_tree_counts,
    build_psg,
    build_skeleton_graph,
)
from repro.graph import transitive_closure
from repro.xmlmodel import Collection


@pytest.fixture
def figure1_collection():
    """Figure 1: three documents with parent-child edges, one
    intra-document link and two inter-document links; the figure shows
    that for the chosen u (in d1) and v (in d2), Lout(u) ∩ Lin(v) = {5}.

    Our faithful reconstruction (element numbers follow the figure's
    spirit, not its unreadable exact layout):

    d1: 1 -> 2, 1 -> 3           (u := 1)
    d2: 4 -> 5, 5 -> 6           (v := 6)
    d3: 7 -> 8, 7 -> 9, intra 9 -> 8
    links: 3 -> 5 (d1 to d2), 8 -> 4 (d3 to d2)
    """
    c = Collection()
    ids = {}
    r = c.new_document("d1", "e1")
    ids[1] = r.eid
    ids[2] = c.add_child(r.eid, "e2").eid
    ids[3] = c.add_child(r.eid, "e3").eid
    r = c.new_document("d2", "e4")
    ids[4] = r.eid
    ids[5] = c.add_child(r.eid, "e5").eid
    ids[6] = c.add_child(ids[5], "e6").eid
    r = c.new_document("d3", "e7")
    ids[7] = r.eid
    ids[8] = c.add_child(r.eid, "e8").eid
    ids[9] = c.add_child(r.eid, "e9").eid
    c.add_link(ids[9], ids[8])  # intra-document link
    c.add_link(ids[3], ids[5])  # inter-document link d1 -> d2
    c.add_link(ids[8], ids[4])  # inter-document link d3 -> d2
    return c, ids


def test_figure1_two_hop_labels(figure1_collection):
    """u and v are connected because Lout(u) ∩ Lin(v) is non-empty; the
    figure's witness center is element 5."""
    c, ids = figure1_collection
    cover = build_cover(c.element_graph())
    cover.verify_against(transitive_closure(c.element_graph()))
    u, v = ids[1], ids[6]
    assert cover.connected(u, v)
    witness = (cover.lout_of(u) | {u}) & (cover.lin_of(v) | {v})
    assert witness, "a common center must witness the connection"
    # node 5 lies on every u -> v path, so it is a valid witness; the
    # greedy builder indeed picks a center on that path
    path_nodes = {ids[3], ids[5], ids[6], ids[1]}
    assert witness & path_nodes


def test_figure1_cross_document_reachability(figure1_collection):
    c, ids = figure1_collection
    cover = build_cover(c.element_graph())
    # d3's element 8 links to d2's root 4, reaching 5 and 6
    assert cover.connected(ids[7], ids[6])
    assert cover.connected(ids[9], ids[4])  # via intra link 9 -> 8 -> link
    assert not cover.connected(ids[6], ids[1])


def test_figure3_psg(figure1_collection):
    """Figure 3: partitioning {d1, d3} | {d2} and its PSG.

    The PSG's nodes are the endpoints of cross-partition links (3, 5, 8,
    4 in our numbering); its edges are the links; no within-partition
    target-to-source edges arise because d1/d3's sources are not
    reachable from any target in the same partition.
    """
    c, ids = figure1_collection
    groups = [["d1", "d3"], ["d2"]]
    part_of = {d: i for i, g in enumerate(groups) for d in g}
    partitioning = Partitioning(groups, compute_cross_links(c, part_of), part_of)
    covers = [
        build_cover(c.subcollection(docs).element_graph())
        for docs in partitioning.partitions
    ]
    psg = build_psg(c, partitioning, lambda pid, e: covers[pid].descendants(e))
    assert set(psg.nodes()) == {ids[3], ids[5], ids[8], ids[4]}
    assert psg.has_edge(ids[3], ids[5])
    assert psg.has_edge(ids[8], ids[4])
    # within d2: target 4 reaches nothing that is a source; target 5 either
    assert psg.num_edges() == 2


def test_figure5_skeleton_annotations(figure1_collection):
    """Figure 5: the skeleton graph's nodes are annotated with their
    (ancestor, descendant) counts in their document's tree — the root of
    an n-element document carries (1, n)."""
    c, ids = figure1_collection
    skel = build_skeleton_graph(c)
    assert set(skel.nodes()) == {ids[3], ids[5], ids[8], ids[4]}
    counts = annotate_tree_counts(c, skel.nodes())
    assert counts[ids[4]] == (1, 3)  # d2's root: 1 ancestor, 3 descendants
    assert counts[ids[3]] == (2, 1)  # leaf under d1's root
    assert counts[ids[5]] == (2, 2)  # 5 has child 6
    assert counts[ids[8]] == (2, 1)


def test_figure5_skeleton_edges(figure1_collection):
    c, ids = figure1_collection
    skel = build_skeleton_graph(c)
    # the two inter-document links
    assert skel.has_edge(ids[3], ids[5])
    assert skel.has_edge(ids[8], ids[4])
    # no target reaches a source within the same document here
    assert skel.num_edges() == 2


def test_figure6_separating_vs_non_separating():
    """Figure 6: 'Document 6 separates the document-level graph,
    document 5 does not.'

    Reconstructed topology (document-level):
        1 -> 2 -> 6, 3 -> 6, 6 -> 9   (everything into 9 runs via 6)
        1 -> 5, 5 -> 8, 4 -> 8        (8 also reachable without 5)
    """
    c = Collection()
    for n in range(1, 10):
        c.new_document(f"doc{n}", "r")
    roots = {n: c.documents[f"doc{n}"].root for n in range(1, 10)}

    def link(a, b):
        c.add_link(roots[a], roots[b])

    link(1, 2)
    link(2, 6)
    link(3, 6)
    link(6, 9)
    link(1, 5)
    link(5, 8)
    link(4, 8)
    link(1, 4)  # 1 reaches 8 both via 5 and via 4
    assert document_separates(c, "doc6")
    assert not document_separates(c, "doc5")
