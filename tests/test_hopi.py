"""Tests for the HopiIndex facade: build strategies, queries, maintenance."""

import pytest

from repro.core import HopiIndex
from repro.graph import transitive_closure
from repro.xmlmodel import dblp_like, inex_like, random_collection


@pytest.fixture(scope="module")
def dblp():
    return dblp_like(25, seed=3)


ALL_BUILDS = [
    dict(strategy="unpartitioned"),
    dict(strategy="incremental", partitioner="node_weight", partition_limit=100),
    dict(strategy="recursive", partitioner="node_weight", partition_limit=100),
    dict(strategy="recursive", partitioner="closure", partition_limit=4000),
    dict(strategy="recursive", partitioner="single"),
    dict(strategy="recursive", partitioner="node_weight",
         partition_limit=100, edge_weight="AxD"),
    dict(strategy="recursive", partitioner="closure",
         partition_limit=4000, edge_weight="A+D"),
    dict(strategy="recursive", partitioner="node_weight",
         partition_limit=100, preselect_centers=False),
    dict(strategy="recursive", partitioner="node_weight",
         partition_limit=100, psg_node_limit=4),
]


@pytest.mark.parametrize("kwargs", ALL_BUILDS)
def test_all_build_strategies_correct(dblp, kwargs):
    index = HopiIndex.build(dblp, **kwargs)
    index.verify()


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(strategy="unpartitioned", distance=True),
        dict(strategy="recursive", partitioner="node_weight",
             partition_limit=80, distance=True),
    ],
)
def test_distance_builds_correct(kwargs):
    c = dblp_like(12, seed=5)
    index = HopiIndex.build(c, **kwargs)
    assert index.is_distance_aware
    index.verify()


def test_build_rejects_unknown_options(dblp):
    with pytest.raises(ValueError):
        HopiIndex.build(dblp, strategy="bogus")
    with pytest.raises(ValueError):
        HopiIndex.build(dblp, partitioner="bogus")
    with pytest.raises(ValueError):
        HopiIndex.build(dblp, edge_weight="bogus")


def test_queries(dblp):
    index = HopiIndex.build(dblp, strategy="recursive", partitioner="closure")
    # pick a citation link: cite element -> cited root
    (u, v) = sorted(dblp.inter_links)[0]
    assert index.connected(u, v)
    article = dblp.documents[dblp.doc(u)].root
    assert index.connected(article, v)  # article ->* cite -> cited root
    assert v in index.descendants(article)
    assert article in index.ancestors(v)


def test_distance_query_requires_distance_index(dblp):
    index = HopiIndex.build(dblp)
    with pytest.raises(TypeError):
        index.distance(0, 1)


def test_distance_query():
    c = dblp_like(8, seed=9)
    index = HopiIndex.build(c, strategy="unpartitioned", distance=True)
    (u, v) = sorted(c.inter_links)[0]
    assert index.distance(u, v) == 1
    article = c.documents[c.doc(u)].root
    d = index.distance(article, v)
    assert d is not None and d >= 2


def test_build_stats_populated(dblp):
    index = HopiIndex.build(
        dblp, strategy="recursive", partitioner="node_weight", partition_limit=100
    )
    stats = index.stats
    assert stats.num_partitions >= 1
    assert stats.cover_size == index.cover.size
    assert stats.seconds_total > 0
    assert len(stats.partition_cover_seconds) == stats.num_partitions
    assert stats.parallel_makespan <= stats.seconds_total + 1e-6


def test_stats_unpartitioned(dblp):
    index = HopiIndex.build(dblp, strategy="unpartitioned")
    assert index.stats.num_partitions == 1
    assert index.stats.num_cross_links == 0


def test_size_report_with_closure(dblp):
    index = HopiIndex.build(dblp, strategy="unpartitioned")
    report = index.size_report(with_closure=True)
    closure = transitive_closure(dblp.element_graph())
    assert report.closure_connections == closure.num_connections
    assert report.compression == pytest.approx(
        closure.num_connections / index.cover.size
    )
    assert report.stored_integers == 4 * index.cover.size


def test_inex_build_entries_per_node():
    """Section 7.2: 'less than three index entries per node seems to be
    quite efficient' for tree collections."""
    c = inex_like(6, seed=2)
    index = HopiIndex.build(c, strategy="recursive", partitioner="closure")
    index.verify()
    report = index.size_report()
    assert report.entries_per_node < 3.0


def test_facade_maintenance_roundtrip():
    c = random_collection(n_docs=5, inter_links=6, seed=21)
    index = HopiIndex.build(c, strategy="recursive", partitioner="single")
    docs = sorted(c.documents)
    index.delete_document(docs[1])
    index.verify()
    root = c.new_document("extra", "r")
    leaf = c.add_child(root.eid, "leaf")
    c.add_link(leaf.eid, c.documents[docs[0]].root)
    index.insert_document("extra")
    index.verify()
    eid = index.insert_element(root.eid, "x")
    assert index.connected(root.eid, eid)
    index.verify()


def test_facade_separator_passthrough():
    c = inex_like(3, seed=1)
    index = HopiIndex.build(c)
    assert index.document_separates(sorted(c.documents)[0])


def test_unpartitioned_cover_not_larger_than_partitioned(dblp):
    """Section 7.2: the global cover achieves the best compression."""
    global_index = HopiIndex.build(dblp, strategy="unpartitioned")
    part_index = HopiIndex.build(
        dblp, strategy="recursive", partitioner="node_weight", partition_limit=60
    )
    assert global_index.cover.size <= part_index.cover.size
