"""Unit tests for the directed-graph substrate."""

import pytest

from repro.graph import DiGraph


def test_empty_graph():
    g = DiGraph()
    assert len(g) == 0
    assert g.num_edges() == 0
    assert list(g.edges()) == []
    assert 1 not in g


def test_add_nodes_and_edges():
    g = DiGraph()
    g.add_node(1)
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    assert len(g) == 3
    assert g.num_edges() == 2
    assert g.has_edge(1, 2)
    assert not g.has_edge(2, 1)
    assert g.successors(1) == {2}
    assert g.predecessors(3) == {2}


def test_constructor_from_edges():
    g = DiGraph([(1, 2), (2, 3), (1, 3)])
    assert len(g) == 3
    assert g.num_edges() == 3


def test_parallel_edges_collapse():
    g = DiGraph([(1, 2), (1, 2)])
    assert g.num_edges() == 1


def test_self_loop_allowed():
    g = DiGraph([(1, 1)])
    assert g.has_edge(1, 1)
    assert g.out_degree(1) == 1
    assert g.in_degree(1) == 1


def test_add_node_idempotent():
    g = DiGraph([(1, 2)])
    g.add_node(1)
    assert g.successors(1) == {2}


def test_remove_edge():
    g = DiGraph([(1, 2), (2, 3)])
    g.remove_edge(1, 2)
    assert not g.has_edge(1, 2)
    assert 1 in g and 2 in g
    with pytest.raises(KeyError):
        g.remove_edge(1, 2)


def test_remove_node_cleans_incident_edges():
    g = DiGraph([(1, 2), (2, 3), (3, 1), (2, 2)])
    g.remove_node(2)
    assert 2 not in g
    assert g.num_edges() == 1
    assert g.has_edge(3, 1)
    assert g.predecessors(1) == {3}
    with pytest.raises(KeyError):
        g.remove_node(2)


def test_remove_nodes_bulk():
    g = DiGraph([(1, 2), (2, 3), (3, 4)])
    g.remove_nodes([2, 3])
    assert set(g.nodes()) == {1, 4}
    assert g.num_edges() == 0


def test_degrees():
    g = DiGraph([(1, 2), (1, 3), (4, 1)])
    assert g.out_degree(1) == 2
    assert g.in_degree(1) == 1
    assert g.out_degree(2) == 0


def test_copy_is_independent():
    g = DiGraph([(1, 2)])
    h = g.copy()
    h.add_edge(2, 3)
    assert 3 not in g
    assert g.num_edges() == 1
    assert h.num_edges() == 2


def test_reversed():
    g = DiGraph([(1, 2), (2, 3)])
    r = g.reversed()
    assert r.has_edge(2, 1)
    assert r.has_edge(3, 2)
    assert r.num_edges() == 2
    # original untouched
    assert g.has_edge(1, 2)


def test_subgraph_induced():
    g = DiGraph([(1, 2), (2, 3), (3, 4), (1, 4)])
    s = g.subgraph([1, 2, 4])
    assert set(s.nodes()) == {1, 2, 4}
    assert s.has_edge(1, 2)
    assert s.has_edge(1, 4)
    assert not s.has_edge(3, 4)
    assert s.num_edges() == 2


def test_subgraph_missing_node_raises():
    g = DiGraph([(1, 2)])
    with pytest.raises(KeyError):
        g.subgraph([1, 99])


def test_hashable_nonint_nodes():
    g = DiGraph([("a", "b"), ("b", "c")])
    assert g.has_edge("a", "b")
    assert set(g.nodes()) == {"a", "b", "c"}


def test_edges_iteration_complete():
    edges = {(1, 2), (2, 3), (3, 1)}
    g = DiGraph(edges)
    assert set(g.edges()) == edges
