"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 4  # quickstart + at least three scenarios
