"""End-to-end integration tests across the whole pipeline.

XML text -> parser -> collection -> partitioning -> covers -> join ->
queries -> maintenance -> persistence -> reload, on both workload
families, checking exactness at every stage.
"""

import os

import pytest

from repro.core import HopiIndex
from repro.graph import transitive_closure
from repro.graph.traversal import is_reachable
from repro.query import QueryEngine
from repro.storage import SQLiteCoverStore, load_index, persist_index
from repro.xmlmodel import (
    dblp_like,
    export_collection,
    inex_like,
    load_collection,
)


def test_full_pipeline_from_raw_xml(tmp_path):
    """Generate -> serialise -> parse -> index -> query -> persist -> reload."""
    original = dblp_like(20, seed=31)
    xml = export_collection(original)
    collection = load_collection(xml)
    assert collection.num_elements == original.num_elements

    index = HopiIndex.build(
        collection, strategy="recursive", partitioner="closure",
        edge_weight="AxD",
    )
    index.verify()

    engine = QueryEngine(index, max_results=100000)
    graph = collection.element_graph()
    results = engine.evaluate("//article//author")
    tags = collection.tags()
    expected = {
        (a, au)
        for a in tags["article"]
        for au in tags["author"]
        if is_reachable(graph, a, au)
    }
    assert {r.bindings for r in results} == expected

    path = os.path.join(tmp_path, "pipeline.db")
    persist_index(index, path).close()
    reloaded = load_index(path)
    reloaded.verify()


def test_inex_tree_collection_end_to_end():
    collection = inex_like(8, seed=5)
    index = HopiIndex.build(collection, strategy="recursive", partitioner="closure")
    index.verify()
    # tree structure: every sec is under exactly one article
    engine = QueryEngine(index, max_results=100000)
    for r in engine.evaluate("//sec//p"):
        sec, p = r.bindings
        assert collection.doc(sec) == collection.doc(p)
    # maintenance on a link-free collection always takes the fast path
    doc = sorted(collection.documents)[0]
    report = index.delete_document(doc)
    assert report.separating is True
    index.verify()


def test_long_maintenance_session_stays_exact():
    """A churn scenario: interleaved inserts and deletes; the cover must
    track the graph exactly throughout (spot-checked) and fully at the
    end."""
    collection = dblp_like(18, seed=77)
    index = HopiIndex.build(collection, strategy="recursive", partitioner="single")
    docs = sorted(collection.documents)
    for i, victim in enumerate(docs[:6]):
        index.delete_document(victim)
        root = collection.new_document(f"gen{i}", "article")
        cite = collection.add_child(root.eid, "cite")
        survivors = sorted(collection.documents)
        target = collection.documents[survivors[i % len(survivors)]].root
        if target != cite.eid:
            collection.add_link(cite.eid, target)
        index.insert_document(f"gen{i}")
        if i % 3 == 0:
            index.verify()
    index.verify()
    closure = transitive_closure(collection.element_graph())
    assert index.cover.size >= 0
    # exactness double-check on a sample of pairs
    nodes = sorted(collection.elements)[:40]
    for u in nodes:
        for v in nodes:
            assert index.connected(u, v) == closure.contains(u, v)


def test_distance_pipeline_with_storage(tmp_path):
    collection = dblp_like(10, seed=41)
    index = HopiIndex.build(collection, strategy="unpartitioned", distance=True)
    index.verify()
    path = os.path.join(tmp_path, "dist.db")
    store = persist_index(index, path)
    (u, v) = sorted(collection.inter_links)[0]
    assert store.distance(u, v) == index.distance(u, v) == 1
    store.close()
    reloaded = load_index(path)
    assert reloaded.is_distance_aware
    reloaded.verify()


def test_cross_strategy_equivalence():
    """All build strategies must answer identically (they are different
    covers of the same closure)."""
    collection = dblp_like(15, seed=55)
    indexes = [
        HopiIndex.build(collection, strategy="unpartitioned"),
        HopiIndex.build(collection, strategy="incremental",
                        partitioner="node_weight", partition_limit=60),
        HopiIndex.build(collection, strategy="recursive",
                        partitioner="closure"),
        HopiIndex.build(collection, strategy="recursive", partitioner="single"),
    ]
    nodes = sorted(collection.elements)[:30]
    reference = indexes[0]
    for other in indexes[1:]:
        for u in nodes:
            for v in nodes:
                assert reference.connected(u, v) == other.connected(u, v)


def test_harness_runners_smoke():
    """The benchmark harness functions run end-to-end at tiny scale."""
    from repro.bench.harness import (
        run_center_preselection_ablation,
        run_distance_overhead,
        run_edge_weight_ablation,
        run_insert_document_experiment,
        run_maintenance_experiment,
        run_query_benchmark,
        run_table2,
    )

    tiny = dblp_like(25, seed=1)
    rows = run_table2(tiny, include_unpartitioned=True)
    labels = [r.label for r in rows]
    assert labels[0] == "baseline"
    assert "P5" in labels and "N10" in labels and "single" in labels
    assert labels[-1] == "global (7.2)"
    for row in rows:
        assert row.cover_size > 0
        assert row.compression > 0

    maint = run_maintenance_experiment(tiny, sample_size=6)
    assert 0.0 <= maint.separating_fraction <= 1.0
    assert maint.samples == 6

    ins = run_insert_document_experiment(tiny, n_inserts=2)
    assert ins["inserts"] == 2.0

    dist = run_distance_overhead(tiny)
    assert dist["distance_size"] >= dist["plain_size"] > 0

    pre = run_center_preselection_ablation(tiny)
    assert pre["with_preselection"] > 0

    weights = run_edge_weight_ablation(tiny)
    assert {r.label for r in weights} == {"N25/links", "N25/AxD", "N25/A+D"}

    q = run_query_benchmark(tiny, n_queries=50)
    assert q["hopi_qps"] > 0


def test_reporting_table_format():
    from repro.bench.reporting import format_table

    table = format_table(
        ["name", "value"],
        [("a", 1234), ("bb", 5.5)],
        title="T",
    )
    assert "T" in table
    assert "1,234" in table
    assert "5.5" in table
    lines = table.splitlines()
    assert len(lines) == 6  # title, rule, header, separator, 2 rows


def test_workload_scale_env(monkeypatch):
    from repro.bench import workloads

    monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
    assert workloads.workload_scale() == 2.5
    monkeypatch.delenv("REPRO_BENCH_SCALE")
    assert workloads.workload_scale() == 1.0
