"""The parallel build pipeline: serial vs process-pool equivalence.

The pipeline's contract (module docstring of :mod:`repro.core.pipeline`)
is that the final cover's label entries are **bit-identical** across
executors and worker counts, on both label backends. This suite pins
that on seeded random collections — after the build, and after a round
of Section-6 maintenance applied in lock-step to a serially-built and a
parallel-built index — plus the wire format round-trip and the executor
plumbing itself.
"""

import random
import warnings

import pytest

from repro.core.cover_builder import build_partition_cover
from repro.core.hopi import HopiIndex
from repro.core.pipeline import (
    EXECUTORS,
    BuildPipeline,
    PartitionTask,
    ProcessExecutor,
    SerialExecutor,
    ThreadsExecutor,
    _partition_cover_worker,
    make_executor,
    normalize_partitioner,
)
from repro.storage.snapshot import (
    canonical_snapshot_bytes,
    snapshot_from_bytes,
    snapshot_to_bytes,
)
from repro.xmlmodel.model import Collection

TAGS = ("a", "b", "c")


def random_collection(seed: int, *, n_docs: int = 6) -> Collection:
    """A seeded random linked collection (DAG element graph)."""
    rng = random.Random(seed)
    collection = Collection()
    elements = []
    for i in range(n_docs):
        root = collection.new_document(f"d{i}", "r")
        members = [root.eid]
        for _ in range(rng.randrange(3, 8)):
            parent = rng.choice(members)
            members.append(collection.add_child(parent, rng.choice(TAGS)).eid)
        elements.extend(members)
    for _ in range(rng.randrange(3, 3 * n_docs)):
        u, v = rng.choice(elements), rng.choice(elements)
        if u != v:
            collection.add_link(min(u, v), max(u, v))
    return collection


def entries_of(index: HopiIndex):
    return sorted(index.cover.entries())


def maintenance_round(index: HopiIndex, seed: int) -> None:
    """One deterministic round of Section-6 ops (same for any backend)."""
    rng = random.Random(seed)
    collection = index.collection
    elements = sorted(collection.elements)
    new_child = index.insert_element(rng.choice(elements), "m")
    index.insert_edge(rng.choice(elements), new_child)
    u, v = rng.sample(elements, 2)
    index.insert_edge(min(u, v), max(u, v))
    victim = sorted(collection.documents)[0]
    index.delete_document(victim)


@pytest.mark.parametrize("backend", ["sets", "arrays"])
@pytest.mark.parametrize("strategy", ["recursive", "incremental"])
@pytest.mark.parametrize("seed", [0, 1])
def test_serial_vs_process_identical(backend, strategy, seed):
    collection = random_collection(seed)
    serial = HopiIndex.build(
        collection,
        strategy=strategy,
        partitioner="node_weight",
        partition_limit=12,
        backend=backend,
    )
    parallel = HopiIndex.build(
        random_collection(seed),  # structurally identical twin
        strategy=strategy,
        partitioner="node_weight",
        partition_limit=12,
        backend=backend,
        workers=2,
    )
    assert parallel.stats.executor == "process"
    assert parallel.stats.workers == 2
    assert parallel.stats.num_partitions == serial.stats.num_partitions
    assert entries_of(serial) == entries_of(parallel)
    serial.verify()
    parallel.verify()


@pytest.mark.parametrize("backend", ["sets", "arrays"])
def test_identical_after_maintenance(backend):
    """Parallel-built indexes stay in lock-step through Section-6 ops."""
    serial = HopiIndex.build(
        random_collection(3),
        partitioner="node_weight",
        partition_limit=12,
        backend=backend,
    )
    parallel = HopiIndex.build(
        random_collection(3),
        partitioner="node_weight",
        partition_limit=12,
        backend=backend,
        workers=2,
    )
    maintenance_round(serial, seed=7)
    maintenance_round(parallel, seed=7)
    assert entries_of(serial) == entries_of(parallel)
    serial.verify()
    parallel.verify()


@pytest.mark.parametrize("backend", ["sets", "arrays"])
def test_distance_build_identical(backend):
    collection = random_collection(4, n_docs=4)
    serial = HopiIndex.build(
        collection, distance=True, partitioner="node_weight",
        partition_limit=12, backend=backend,
    )
    parallel = HopiIndex.build(
        random_collection(4, n_docs=4), distance=True,
        partitioner="node_weight", partition_limit=12, backend=backend,
        workers=2,
    )
    assert entries_of(serial) == entries_of(parallel)
    parallel.verify()


def test_wire_roundtrip_preserves_cover():
    """The CSR blob is a lossless encoding of a partition cover."""
    collection = random_collection(5)
    graph = collection.element_graph()
    cover = build_partition_cover(
        tuple(graph.nodes()), tuple(graph.edges())
    )
    from repro.core.array_cover import ArrayTwoHopCover

    arrays = ArrayTwoHopCover.from_cover(cover)
    blob = snapshot_to_bytes(arrays)
    assert isinstance(blob, bytes) and blob
    decoded = snapshot_from_bytes(blob)
    assert sorted(decoded.entries()) == sorted(cover.entries())
    assert set(decoded.nodes) == set(cover.nodes)


def test_worker_function_is_self_contained():
    """The process-pool entry point works on a bare task tuple."""
    collection = random_collection(6, n_docs=3)
    graph = collection.element_graph()
    task = PartitionTask(
        pid=9,
        nodes=tuple(graph.nodes()),
        edges=tuple(graph.edges()),
        preselected=(),
        distance=False,
    )
    pid, payload, seconds = _partition_cover_worker(task)
    assert pid == 9 and seconds >= 0
    decoded = snapshot_from_bytes(payload)
    direct = build_partition_cover(task.nodes, task.edges)
    assert sorted(decoded.entries()) == sorted(direct.entries())


def test_executor_resolution():
    assert isinstance(make_executor(None, None), SerialExecutor)
    assert isinstance(make_executor(None, 1), SerialExecutor)
    assert isinstance(make_executor(None, 4), ProcessExecutor)
    assert isinstance(make_executor("serial", 4), SerialExecutor)
    proc = make_executor("process", 1)
    assert isinstance(proc, ProcessExecutor) and proc.workers == 1
    thr = make_executor("threads", 3)
    assert isinstance(thr, ThreadsExecutor) and thr.workers == 3
    assert set(EXECUTORS) == {"serial", "process", "threads", "rpc"}
    with pytest.raises(ValueError):
        make_executor("fibers", 2)
    with pytest.raises(ValueError):
        make_executor(None, 0)
    with pytest.raises(ValueError):
        make_executor("rpc", None)  # rpc needs worker addresses
    rpc = make_executor("rpc", None, rpc_workers=["127.0.0.1:9123"])
    assert rpc.name == "rpc" and rpc.workers == 1
    # addresses alone imply the rpc executor
    assert make_executor(None, None, rpc_workers=["h:1", "h:2"]).name == "rpc"


def test_partitioner_aliases():
    assert normalize_partitioner("node-weight") == "node_weight"
    assert normalize_partitioner("closure-size") == "closure"
    assert normalize_partitioner("closure") == "closure"
    assert normalize_partitioner("single") == "single"
    with pytest.raises(ValueError):
        normalize_partitioner("metis")
    collection = random_collection(8, n_docs=3)
    via_alias = HopiIndex.build(collection, partitioner="closure-size")
    assert via_alias.stats.partitioner == "closure"


def test_pipeline_phases_accounted():
    """Phase timings and per-partition seconds land in BuildStats."""
    pipeline = BuildPipeline(
        random_collection(9),
        partitioner="node_weight",
        partition_limit=12,
        workers=2,
    )
    cover, stats = pipeline.run()
    assert stats.num_partitions >= 2
    assert len(stats.partition_cover_seconds) == stats.num_partitions
    assert stats.seconds_total >= stats.seconds_join
    assert stats.executor == "process"
    assert cover.size == stats.cover_size


def test_unpartitioned_ignores_workers():
    index = HopiIndex.build(
        random_collection(10, n_docs=3), strategy="unpartitioned", workers=4
    )
    assert index.stats.executor == "serial"
    assert index.stats.workers == 1
    index.verify()


def test_closure_partitioner_oversized_doc_warns_not_fails():
    """Regression: a single document whose closure exceeds the budget
    must degrade to a warned-about singleton partition, not an error."""
    from repro.core.partitioning import partition_by_closure_size

    collection = random_collection(11, n_docs=4)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        partitioning = partition_by_closure_size(collection, 1)
    assert [w for w in caught if issubclass(w.category, UserWarning)]
    assert partitioning.num_partitions == len(collection.documents)
    # over-budget documents become singletons; the index still builds
    index = HopiIndex.build(
        collection, partitioner="closure", partition_limit=1
    )
    index.verify()


# ---------------------------------------------------------------------------
# executor × join-shard equivalence (the PR-4 contract)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def rpc_loopback():
    """Two loopback `repro build-worker` daemons on ephemeral ports."""
    from repro.core.rpc import start_worker_thread

    servers, addresses = [], []
    for _ in range(2):
        server, address = start_worker_thread()
        servers.append(server)
        addresses.append(address)
    yield addresses
    for server in servers:
        server.shutdown()
        server.server_close()


def build_kwargs_matrix(rpc_addresses):
    """Every executor flavour the pipeline supports."""
    return [
        ("serial", dict(executor="serial")),
        ("threads", dict(executor="threads", workers=2)),
        ("process", dict(executor="process", workers=2)),
        ("rpc-loopback", dict(executor="rpc", rpc_workers=list(rpc_addresses))),
    ]


@pytest.mark.parametrize("backend", ["sets", "arrays"])
@pytest.mark.parametrize("seed", [12, 13])
def test_executor_and_shard_count_equivalence(backend, seed, rpc_loopback):
    """Snapshots are byte-identical across {serial, threads, process,
    rpc-loopback} × join shards {1, 2, 7} × both backends."""
    build = dict(
        strategy="recursive", partitioner="node_weight",
        partition_limit=12, backend=backend,
    )
    baseline = HopiIndex.build(random_collection(seed, n_docs=5), **build)
    baseline_blob = canonical_snapshot_bytes(baseline.cover)
    baseline.verify()
    for name, kwargs in build_kwargs_matrix(rpc_loopback):
        for shards in (1, 2, 7):
            index = HopiIndex.build(
                random_collection(seed, n_docs=5),
                join_shards=shards, **build, **kwargs,
            )
            blob = canonical_snapshot_bytes(index.cover)
            assert blob == baseline_blob, (
                f"{name} × join_shards={shards} diverged on {backend}"
            )
            assert index.stats.join_shards == shards


def test_parallel_join_stats_recorded():
    pipeline = BuildPipeline(
        random_collection(14),
        partitioner="node_weight",
        partition_limit=12,
        executor="threads",
        workers=2,
        join_shards=2,
    )
    cover, stats = pipeline.run()
    assert stats.join_shards == 2
    assert stats.executor == "threads"
    # union + psg + distribute walls are inside the join wall
    assert stats.seconds_join >= (
        stats.seconds_join_union + stats.seconds_join_psg
    )
    assert stats.seconds_join >= stats.seconds_join_distribute
    if stats.num_cross_links:
        assert stats.join_shard_seconds  # at least one shard ran
        assert len(stats.join_shard_seconds) <= 2
    assert cover.size == stats.cover_size


def test_join_shards_one_is_serial_join():
    index = HopiIndex.build(
        random_collection(15), partitioner="node_weight",
        partition_limit=12, workers=2, join_shards=1,
    )
    assert index.stats.join_shards == 1
    assert index.stats.join_shard_seconds == []
    index.verify()


# ---------------------------------------------------------------------------
# rpc executor plumbing
# ---------------------------------------------------------------------------


def test_rpc_frame_roundtrip():
    import io

    from repro.core.rpc import OP_RESULT, recv_frame, send_frame

    buf = io.BytesIO()
    send_frame(buf, OP_RESULT, b"payload-bytes")
    buf.seek(0)
    opcode, payload = recv_frame(buf)
    assert opcode == OP_RESULT and payload == b"payload-bytes"
    with pytest.raises(EOFError):
        recv_frame(io.BytesIO())  # clean EOF
    with pytest.raises(ConnectionError):
        recv_frame(io.BytesIO(b"R\x01"))  # truncated header


def test_rpc_parse_address():
    from repro.core.rpc import parse_address

    assert parse_address("10.0.0.5:9123") == ("10.0.0.5", 9123)
    assert parse_address("localhost:0") == ("localhost", 0)
    for bad in ("nohost", ":80", "h:not-a-port"):
        with pytest.raises(ValueError):
            parse_address(bad)


def test_rpc_executor_validation():
    from repro.core.rpc import RpcExecutor

    with pytest.raises(ValueError):
        RpcExecutor([])
    with pytest.raises(ValueError):
        RpcExecutor(["no-port-here"])
    ex = RpcExecutor([" 127.0.0.1:1 ", "127.0.0.1:2"])
    assert ex.workers == 2 and ex.addresses == ["127.0.0.1:1", "127.0.0.1:2"]


def test_rpc_worker_ping_and_task_error(rpc_loopback):
    from repro.core.rpc import (
        OP_COVER,
        RpcExecutor,
        RpcWorkerError,
        _WorkerConnection,
    )

    executor = RpcExecutor(rpc_loopback)
    assert executor.ping() == list(rpc_loopback)

    # a task that raises inside the worker comes back as RpcWorkerError
    # (and the daemon keeps serving afterwards)
    conn = _WorkerConnection(rpc_loopback[0])
    try:
        with pytest.raises(RpcWorkerError) as err:
            conn.call(OP_COVER, "not a PartitionTask")
        assert "worker" in str(err.value)
    finally:
        conn.close()
    assert executor.ping() == list(rpc_loopback)


def test_rpc_failover_to_surviving_worker(rpc_loopback):
    """A dead worker address is retired; the survivors run the build."""
    import socket

    from repro.core.rpc import RpcExecutor

    # reserve-and-release a port so the first address refuses connections
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        dead = f"127.0.0.1:{s.getsockname()[1]}"
    collection = random_collection(16, n_docs=5)
    index = HopiIndex.build(
        collection, partitioner="node_weight", partition_limit=12,
        executor="rpc", rpc_workers=[dead, rpc_loopback[0]], join_shards=2,
    )
    serial = HopiIndex.build(
        random_collection(16, n_docs=5), partitioner="node_weight",
        partition_limit=12,
    )
    assert entries_of(index) == entries_of(serial)


def test_rpc_all_workers_unreachable_fails_loudly():
    import socket

    from repro.core.rpc import RpcExecutor

    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        dead = f"127.0.0.1:{s.getsockname()[1]}"
    with pytest.raises(OSError):
        HopiIndex.build(
            random_collection(17, n_docs=4),
            partitioner="node_weight", partition_limit=12,
            executor="rpc", rpc_workers=[dead],
        )


def test_canonical_snapshot_bytes_is_order_insensitive():
    """Two equal covers built in different entry orders encode to the
    same bytes; different covers do not."""
    from repro.core.cover import TwoHopCover

    a = TwoHopCover([1, 2, 3])
    a.add_lout(1, 2)
    a.add_lin(3, 2)
    b = TwoHopCover([3, 1, 2])
    b.add_lin(3, 2)
    b.add_lout(1, 2)
    assert canonical_snapshot_bytes(a) == canonical_snapshot_bytes(b)
    b.add_lout(2, 3)
    assert canonical_snapshot_bytes(a) != canonical_snapshot_bytes(b)


def test_rpc_failover_on_mid_task_disconnect(rpc_loopback):
    """Regression: a worker that dies *mid-task* (clean FIN after
    reading the request) used to kill its puller thread with an
    uncaught EOFError and hang the build; it must be retired and its
    task re-dealt to the survivors."""
    import socket
    import threading

    from repro.core.rpc import recv_frame

    # a fake worker that reads exactly one request frame, then hangs up
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    flaky = f"127.0.0.1:{listener.getsockname()[1]}"

    def fake_worker():
        conn, _ = listener.accept()
        rfile = conn.makefile("rb")
        try:
            recv_frame(rfile)
        except (EOFError, ConnectionError):
            pass
        finally:
            rfile.close()
            conn.close()
            listener.close()

    thread = threading.Thread(target=fake_worker, daemon=True)
    thread.start()
    index = HopiIndex.build(
        random_collection(18, n_docs=5), partitioner="node_weight",
        partition_limit=12, executor="rpc",
        rpc_workers=[flaky, rpc_loopback[0]], join_shards=2,
    )
    serial = HopiIndex.build(
        random_collection(18, n_docs=5), partitioner="node_weight",
        partition_limit=12,
    )
    assert entries_of(index) == entries_of(serial)
    thread.join(timeout=5.0)
