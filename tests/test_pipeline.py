"""The parallel build pipeline: serial vs process-pool equivalence.

The pipeline's contract (module docstring of :mod:`repro.core.pipeline`)
is that the final cover's label entries are **bit-identical** across
executors and worker counts, on both label backends. This suite pins
that on seeded random collections — after the build, and after a round
of Section-6 maintenance applied in lock-step to a serially-built and a
parallel-built index — plus the wire format round-trip and the executor
plumbing itself.
"""

import random
import warnings

import pytest

from repro.core.cover_builder import build_partition_cover
from repro.core.hopi import HopiIndex
from repro.core.pipeline import (
    EXECUTORS,
    BuildPipeline,
    PartitionTask,
    ProcessExecutor,
    SerialExecutor,
    _partition_cover_worker,
    make_executor,
    normalize_partitioner,
)
from repro.storage.snapshot import snapshot_from_bytes, snapshot_to_bytes
from repro.xmlmodel.model import Collection

TAGS = ("a", "b", "c")


def random_collection(seed: int, *, n_docs: int = 6) -> Collection:
    """A seeded random linked collection (DAG element graph)."""
    rng = random.Random(seed)
    collection = Collection()
    elements = []
    for i in range(n_docs):
        root = collection.new_document(f"d{i}", "r")
        members = [root.eid]
        for _ in range(rng.randrange(3, 8)):
            parent = rng.choice(members)
            members.append(collection.add_child(parent, rng.choice(TAGS)).eid)
        elements.extend(members)
    for _ in range(rng.randrange(3, 3 * n_docs)):
        u, v = rng.choice(elements), rng.choice(elements)
        if u != v:
            collection.add_link(min(u, v), max(u, v))
    return collection


def entries_of(index: HopiIndex):
    return sorted(index.cover.entries())


def maintenance_round(index: HopiIndex, seed: int) -> None:
    """One deterministic round of Section-6 ops (same for any backend)."""
    rng = random.Random(seed)
    collection = index.collection
    elements = sorted(collection.elements)
    new_child = index.insert_element(rng.choice(elements), "m")
    index.insert_edge(rng.choice(elements), new_child)
    u, v = rng.sample(elements, 2)
    index.insert_edge(min(u, v), max(u, v))
    victim = sorted(collection.documents)[0]
    index.delete_document(victim)


@pytest.mark.parametrize("backend", ["sets", "arrays"])
@pytest.mark.parametrize("strategy", ["recursive", "incremental"])
@pytest.mark.parametrize("seed", [0, 1])
def test_serial_vs_process_identical(backend, strategy, seed):
    collection = random_collection(seed)
    serial = HopiIndex.build(
        collection,
        strategy=strategy,
        partitioner="node_weight",
        partition_limit=12,
        backend=backend,
    )
    parallel = HopiIndex.build(
        random_collection(seed),  # structurally identical twin
        strategy=strategy,
        partitioner="node_weight",
        partition_limit=12,
        backend=backend,
        workers=2,
    )
    assert parallel.stats.executor == "process"
    assert parallel.stats.workers == 2
    assert parallel.stats.num_partitions == serial.stats.num_partitions
    assert entries_of(serial) == entries_of(parallel)
    serial.verify()
    parallel.verify()


@pytest.mark.parametrize("backend", ["sets", "arrays"])
def test_identical_after_maintenance(backend):
    """Parallel-built indexes stay in lock-step through Section-6 ops."""
    serial = HopiIndex.build(
        random_collection(3),
        partitioner="node_weight",
        partition_limit=12,
        backend=backend,
    )
    parallel = HopiIndex.build(
        random_collection(3),
        partitioner="node_weight",
        partition_limit=12,
        backend=backend,
        workers=2,
    )
    maintenance_round(serial, seed=7)
    maintenance_round(parallel, seed=7)
    assert entries_of(serial) == entries_of(parallel)
    serial.verify()
    parallel.verify()


@pytest.mark.parametrize("backend", ["sets", "arrays"])
def test_distance_build_identical(backend):
    collection = random_collection(4, n_docs=4)
    serial = HopiIndex.build(
        collection, distance=True, partitioner="node_weight",
        partition_limit=12, backend=backend,
    )
    parallel = HopiIndex.build(
        random_collection(4, n_docs=4), distance=True,
        partitioner="node_weight", partition_limit=12, backend=backend,
        workers=2,
    )
    assert entries_of(serial) == entries_of(parallel)
    parallel.verify()


def test_wire_roundtrip_preserves_cover():
    """The CSR blob is a lossless encoding of a partition cover."""
    collection = random_collection(5)
    graph = collection.element_graph()
    cover = build_partition_cover(
        tuple(graph.nodes()), tuple(graph.edges())
    )
    from repro.core.array_cover import ArrayTwoHopCover

    arrays = ArrayTwoHopCover.from_cover(cover)
    blob = snapshot_to_bytes(arrays)
    assert isinstance(blob, bytes) and blob
    decoded = snapshot_from_bytes(blob)
    assert sorted(decoded.entries()) == sorted(cover.entries())
    assert set(decoded.nodes) == set(cover.nodes)


def test_worker_function_is_self_contained():
    """The process-pool entry point works on a bare task tuple."""
    collection = random_collection(6, n_docs=3)
    graph = collection.element_graph()
    task = PartitionTask(
        pid=9,
        nodes=tuple(graph.nodes()),
        edges=tuple(graph.edges()),
        preselected=(),
        distance=False,
    )
    pid, payload, seconds = _partition_cover_worker(task)
    assert pid == 9 and seconds >= 0
    decoded = snapshot_from_bytes(payload)
    direct = build_partition_cover(task.nodes, task.edges)
    assert sorted(decoded.entries()) == sorted(direct.entries())


def test_executor_resolution():
    assert isinstance(make_executor(None, None), SerialExecutor)
    assert isinstance(make_executor(None, 1), SerialExecutor)
    assert isinstance(make_executor(None, 4), ProcessExecutor)
    assert isinstance(make_executor("serial", 4), SerialExecutor)
    proc = make_executor("process", 1)
    assert isinstance(proc, ProcessExecutor) and proc.workers == 1
    assert set(EXECUTORS) == {"serial", "process"}
    with pytest.raises(ValueError):
        make_executor("threads", 2)
    with pytest.raises(ValueError):
        make_executor(None, 0)


def test_partitioner_aliases():
    assert normalize_partitioner("node-weight") == "node_weight"
    assert normalize_partitioner("closure-size") == "closure"
    assert normalize_partitioner("closure") == "closure"
    assert normalize_partitioner("single") == "single"
    with pytest.raises(ValueError):
        normalize_partitioner("metis")
    collection = random_collection(8, n_docs=3)
    via_alias = HopiIndex.build(collection, partitioner="closure-size")
    assert via_alias.stats.partitioner == "closure"


def test_pipeline_phases_accounted():
    """Phase timings and per-partition seconds land in BuildStats."""
    pipeline = BuildPipeline(
        random_collection(9),
        partitioner="node_weight",
        partition_limit=12,
        workers=2,
    )
    cover, stats = pipeline.run()
    assert stats.num_partitions >= 2
    assert len(stats.partition_cover_seconds) == stats.num_partitions
    assert stats.seconds_total >= stats.seconds_join
    assert stats.executor == "process"
    assert cover.size == stats.cover_size


def test_unpartitioned_ignores_workers():
    index = HopiIndex.build(
        random_collection(10, n_docs=3), strategy="unpartitioned", workers=4
    )
    assert index.stats.executor == "serial"
    assert index.stats.workers == 1
    index.verify()


def test_closure_partitioner_oversized_doc_warns_not_fails():
    """Regression: a single document whose closure exceeds the budget
    must degrade to a warned-about singleton partition, not an error."""
    from repro.core.partitioning import partition_by_closure_size

    collection = random_collection(11, n_docs=4)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        partitioning = partition_by_closure_size(collection, 1)
    assert [w for w in caught if issubclass(w.category, UserWarning)]
    assert partitioning.num_partitions == len(collection.documents)
    # over-budget documents become singletons; the index still builds
    index = HopiIndex.build(
        collection, partitioner="closure", partition_limit=1
    )
    index.verify()
