"""SIGKILL crash/resume for ``repro ingest`` — the satellite-3 contract.

A real subprocess ingesting into a durable store is killed with
SIGKILL mid-ingest (no atexit, no flushing — the genuine article), then
restarted with ``--resume``. The recovered index must be
**bit-identical** (canonical snapshot bytes) to an uninterrupted run
over the same source + seed, regardless of where the kill landed
relative to the WAL / publish / frontier transitions.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.storage.snapshot import canonical_snapshot_bytes
from repro.storage.wal import DurableIndexStore

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
SOURCE = "deep-tree:120"
SEED = "31"


def ingest_argv(store, *extra):
    return [
        "ingest", "--source", SOURCE, "--store", str(store),
        "--seed", SEED, "--batch-docs", "4",
        "--checkpoint-interval", "8", *extra,
    ]


def spawn_ingest(store):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *ingest_argv(store)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def recovered_bytes(store):
    durable = DurableIndexStore(str(store))
    index = durable.recover(backend="arrays")
    durable.close()
    return canonical_snapshot_bytes(index.cover), index


def test_sigkill_mid_ingest_then_resume_is_bit_identical(tmp_path):
    straight_store = tmp_path / "straight"
    assert main(ingest_argv(straight_store)) == 0
    reference, reference_index = recovered_bytes(straight_store)

    crashed_store = tmp_path / "crashed"
    proc = spawn_ingest(crashed_store)
    wal = crashed_store / "updates.wal"
    try:
        # wait for durable progress, then SIGKILL — no cleanup handlers
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if wal.exists() and wal.stat().st_size > 16:
                break
            time.sleep(0.002)
        killed_mid_run = proc.poll() is None
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - safety net
            proc.kill()
            proc.wait()

    if not killed_mid_run:
        pytest.skip("ingest finished before the kill landed")

    # the store must already be recoverable (torn tails truncated)
    partial, partial_index = recovered_bytes(crashed_store)
    assert partial_index.collection.num_documents <= 120

    assert main(ingest_argv(crashed_store, "--resume")) == 0
    resumed, resumed_index = recovered_bytes(crashed_store)
    assert resumed_index.collection.num_documents == 120
    assert resumed_index.epoch == reference_index.epoch
    assert resumed == reference


def test_resume_requires_matching_source(tmp_path):
    store = tmp_path / "store"
    assert main(ingest_argv(store)[:7] + ["--batch-docs", "4",
                                          "--max-docs", "8"]) == 0
    with pytest.raises(SystemExit, match="refusing to mix"):
        main([
            "ingest", "--source", "scale-free:120", "--store", str(store),
            "--seed", SEED, "--resume",
        ])
    with pytest.raises(SystemExit, match="refusing to mix"):
        main(ingest_argv(store, "--resume")[:7] + ["--seed", "99",
                                                   "--resume"])


def test_rerun_without_resume_is_rejected(tmp_path):
    store = tmp_path / "store"
    assert main(ingest_argv(store, "--max-docs", "8")) == 0
    with pytest.raises(SystemExit, match="pass --resume"):
        main(ingest_argv(store))


def test_resume_without_store_is_rejected(tmp_path):
    with pytest.raises(SystemExit, match="nothing to resume"):
        main(ingest_argv(tmp_path / "missing", "--resume"))


def test_resume_to_completion_is_idempotent(tmp_path):
    store = tmp_path / "store"
    assert main(ingest_argv(store, "--max-docs", "50")) == 0
    assert main(ingest_argv(store, "--resume")) == 0
    first, first_index = recovered_bytes(store)
    # resuming a finished ingest changes nothing
    assert main(ingest_argv(store, "--resume")) == 0
    again, again_index = recovered_bytes(store)
    assert again == first
    assert again_index.epoch == first_index.epoch
