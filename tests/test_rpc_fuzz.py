"""Fuzzing the RPC wire protocol: malformed frames must never wedge a worker.

The worker's contract (``repro/core/rpc.py``) is that any malformed input
— truncated header, truncated payload, a length prefix above
``MAX_FRAME``, junk opcodes, unpicklable payloads — yields either a
structured ``E`` error frame or a clean connection close, **never** a
hung handler or a crashed server. After every malformed exchange a fresh
connection must still get ``pong``.
"""

import pickle
import socket
import struct
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rpc import (
    MAX_FRAME,
    OP_ERROR,
    OP_PING,
    OP_RESULT,
    _HEADER,
    _WorkerConnection,
    recv_frame,
    send_frame,
    start_worker_thread,
)

SOCKET_TIMEOUT = 5.0


@pytest.fixture(scope="module")
def worker():
    server, address = start_worker_thread()
    yield address
    server.shutdown()
    server.server_close()


def _connect(address):
    host, port = address.rsplit(":", 1)
    sock = socket.create_connection((host, int(port)), timeout=SOCKET_TIMEOUT)
    return sock


def _exchange_raw(address, data, *, half_close=False):
    """Ship raw bytes, return (kind, payload) where kind is 'error',
    'result', or 'closed'. A socket timeout means the worker hung —
    that's the bug this fuzz exists to catch, so it raises."""
    sock = _connect(address)
    try:
        sock.sendall(data)
        if half_close:
            sock.shutdown(socket.SHUT_WR)
        rfile = sock.makefile("rb")
        try:
            opcode, payload = recv_frame(rfile)
        except (EOFError, ConnectionError):
            return ("closed", None)
        if opcode == OP_ERROR:
            return ("error", pickle.loads(payload))
        if opcode == OP_RESULT:
            return ("result", pickle.loads(payload))
        return ("frame", opcode)
    finally:
        sock.close()


def _assert_still_alive(address):
    sock = _connect(address)
    try:
        wfile = sock.makefile("wb")
        send_frame(wfile, OP_PING, pickle.dumps(None))
        wfile.flush()
        opcode, payload = recv_frame(sock.makefile("rb"))
        assert opcode == OP_RESULT
        assert pickle.loads(payload) == "pong"
    finally:
        sock.close()


@settings(deadline=None, max_examples=30)
@given(junk=st.binary(min_size=0, max_size=64))
def test_truncated_junk_never_hangs_worker(worker, junk):
    """Arbitrary bytes followed by half-close: the worker must answer
    with an error frame or close cleanly, then keep serving pings."""
    kind, detail = _exchange_raw(worker, junk, half_close=True)
    assert kind in ("error", "closed", "result")
    if kind == "error":
        assert detail[0] in ("ProtocolError", "ValueError", "UnpicklingError",
                             "EOFError", "KeyError", "AttributeError")
    _assert_still_alive(worker)


@settings(deadline=None, max_examples=20)
@given(opcode=st.binary(min_size=1, max_size=1),
       payload=st.binary(min_size=0, max_size=128))
def test_junk_opcode_with_valid_header(worker, opcode, payload):
    """A well-formed frame with an arbitrary opcode/payload: unknown
    opcodes and unpicklable payloads become structured errors."""
    data = _HEADER.pack(opcode, len(payload)) + payload
    kind, detail = _exchange_raw(worker, data, half_close=True)
    assert kind in ("error", "result", "closed")
    _assert_still_alive(worker)


def test_oversized_length_prefix_is_rejected(worker):
    data = _HEADER.pack(b"P", MAX_FRAME + 1)
    kind, detail = _exchange_raw(worker, data, half_close=True)
    assert kind == "error"
    assert detail[0] == "ProtocolError"
    _assert_still_alive(worker)


def test_truncated_payload_is_rejected(worker):
    data = _HEADER.pack(b"P", 1000) + b"only-a-little"
    kind, detail = _exchange_raw(worker, data, half_close=True)
    assert kind == "error"
    assert detail[0] == "ProtocolError"
    _assert_still_alive(worker)


def test_truncated_header_closes_cleanly(worker):
    kind, _ = _exchange_raw(worker, _HEADER.pack(b"P", 4)[:3],
                            half_close=True)
    assert kind in ("error", "closed")
    _assert_still_alive(worker)


# ---------------------------------------------------------------------------
# client-side: bounded retry with backoff on transient connect failures
# ---------------------------------------------------------------------------


def _reserve_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def test_client_retries_until_late_binding_listener_appears():
    port = _reserve_port()
    address = f"127.0.0.1:{port}"
    holder = {}

    def bind_late():
        time.sleep(0.3)
        holder["server"], _ = start_worker_thread(port=port)

    thread = threading.Thread(target=bind_late)
    thread.start()
    try:
        conn = _WorkerConnection(address, attempts=8, backoff=0.1)
        assert conn.call(OP_PING, None) == "pong"
        conn.close()
    finally:
        thread.join()
        holder["server"].shutdown()
        holder["server"].server_close()


def test_client_gives_up_after_capped_attempts():
    port = _reserve_port()  # nothing will ever listen here
    start = time.monotonic()
    with pytest.raises(OSError):
        _WorkerConnection(f"127.0.0.1:{port}", attempts=2, backoff=0.05)
    # 2 attempts, one 0.05s backoff in between: fast, bounded failure
    assert time.monotonic() - start < 5.0
