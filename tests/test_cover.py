"""Tests for the 2-hop cover data structures."""

import pytest

from repro.core.cover import DistanceTwoHopCover, TwoHopCover


@pytest.fixture
def chain_cover():
    """Hand-built cover for the chain 1 -> 2 -> 3 with center 2."""
    cover = TwoHopCover([1, 2, 3])
    cover.add_lout(1, 2)
    cover.add_lin(3, 2)
    return cover


def test_connected_via_common_center(chain_cover):
    assert chain_cover.connected(1, 3)


def test_connected_reflexive(chain_cover):
    for v in (1, 2, 3):
        assert chain_cover.connected(v, v)
    assert not chain_cover.connected(99, 99)  # unregistered node


def test_connected_implicit_self_hop(chain_cover):
    # 1 -> 2: center 2 is in Lout(1) and implicitly in {2}
    assert chain_cover.connected(1, 2)
    # 2 -> 3: center 2 is implicitly in {2} and in Lin(3)
    assert chain_cover.connected(2, 3)


def test_not_connected(chain_cover):
    assert not chain_cover.connected(3, 1)
    assert not chain_cover.connected(2, 1)
    assert not chain_cover.connected(1, 99)


def test_self_entries_dropped():
    cover = TwoHopCover([1])
    cover.add_lin(1, 1)
    cover.add_lout(1, 1)
    assert cover.size == 0


def test_size_counts_both_sides(chain_cover):
    assert chain_cover.size == 2
    assert chain_cover.stored_integers() == 8
    assert chain_cover.stored_integers(with_backward_index=False) == 4


def test_entries_iterator(chain_cover):
    assert set(chain_cover.entries()) == {("out", 1, 2), ("in", 3, 2)}


def test_descendants_ancestors(chain_cover):
    assert chain_cover.descendants(1) == {1, 2, 3}
    assert chain_cover.descendants(2) == {2, 3}
    assert chain_cover.descendants(3) == {3}
    assert chain_cover.ancestors(3) == {1, 2, 3}
    assert chain_cover.ancestors(1) == {1}
    assert chain_cover.descendants(42) == set()


def test_discard_entries(chain_cover):
    chain_cover.discard_lout(1, 2)
    assert not chain_cover.connected(1, 3)
    assert chain_cover.connected(2, 3)
    chain_cover.discard_lout(1, 2)  # idempotent


def test_set_labels_wholesale():
    cover = TwoHopCover([1, 2, 3])
    cover.add_lout(1, 2)
    cover.set_lout(1, {3})
    assert cover.lout_of(1) == {3}
    assert cover.connected(1, 3)
    # backward index updated: 2 no longer finds 1
    assert 1 not in cover.ancestors(2)


def test_remove_nodes_clears_labels_and_centers():
    cover = TwoHopCover([1, 2, 3])
    cover.add_lout(1, 2)
    cover.add_lin(3, 2)
    cover.remove_nodes({2})
    assert not cover.connected(1, 3)
    assert not cover.connected(1, 2)
    assert cover.lout_of(1) == set()
    assert cover.size == 0
    assert 2 not in cover.nodes


def test_union():
    a = TwoHopCover([1, 2])
    a.add_lout(1, 2)
    b = TwoHopCover([2, 3])
    b.add_lin(3, 2)
    a.union(b)
    assert a.connected(1, 3)
    assert a.nodes == {1, 2, 3}


def test_copy_independent(chain_cover):
    clone = chain_cover.copy()
    clone.discard_lout(1, 2)
    assert chain_cover.connected(1, 3)
    assert not clone.connected(1, 3)


def test_verify_against_detects_mismatch():
    from repro.graph import DiGraph, transitive_closure

    g = DiGraph([(1, 2)])
    closure = transitive_closure(g)
    bad = TwoHopCover([1, 2])  # empty labels: misses 1 -> 2
    with pytest.raises(AssertionError):
        bad.verify_against(closure)
    good = TwoHopCover([1, 2])
    good.add_lout(1, 2)
    good.verify_against(closure)


# ---------------------------------------------------------------------------
# distance cover
# ---------------------------------------------------------------------------


@pytest.fixture
def chain_distance_cover():
    """Distance cover for 1 -> 2 -> 3 with center 2."""
    cover = DistanceTwoHopCover([1, 2, 3])
    cover.add_lout(1, 2, 1)
    cover.add_lin(3, 2, 1)
    return cover


def test_distance_via_center(chain_distance_cover):
    assert chain_distance_cover.distance(1, 3) == 2
    assert chain_distance_cover.distance(1, 2) == 1
    assert chain_distance_cover.distance(2, 3) == 1
    assert chain_distance_cover.distance(1, 1) == 0
    assert chain_distance_cover.distance(3, 1) is None
    assert chain_distance_cover.distance(1, 42) is None


def test_distance_min_over_centers():
    # two centers witnessing different path lengths: min wins
    cover = DistanceTwoHopCover([1, 2, 3, 4])
    cover.add_lout(1, 2, 1)
    cover.add_lin(4, 2, 5)
    cover.add_lout(1, 3, 2)
    cover.add_lin(4, 3, 1)
    assert cover.distance(1, 4) == 3


def test_distance_duplicate_insert_keeps_min():
    cover = DistanceTwoHopCover([1, 2])
    cover.add_lout(1, 2, 5)
    cover.add_lout(1, 2, 3)
    cover.add_lout(1, 2, 7)
    assert cover.lout_of(1)[2] == 3


def test_distance_connected_and_neighbourhood(chain_distance_cover):
    assert chain_distance_cover.connected(1, 3)
    assert not chain_distance_cover.connected(3, 1)
    assert chain_distance_cover.descendants_within(1, 1) == {1: 0, 2: 1}
    assert chain_distance_cover.descendants_within(1, 2) == {1: 0, 2: 1, 3: 2}


def test_distance_descendants_ancestors(chain_distance_cover):
    assert chain_distance_cover.descendants(1) == {1, 2, 3}
    assert chain_distance_cover.ancestors(3) == {1, 2, 3}


def test_distance_set_and_remove():
    cover = DistanceTwoHopCover([1, 2, 3])
    cover.add_lout(1, 2, 1)
    cover.add_lin(3, 2, 1)
    cover.remove_nodes({2})
    assert cover.distance(1, 3) is None
    assert cover.size == 0


def test_distance_union_keeps_min():
    a = DistanceTwoHopCover([1, 2])
    a.add_lout(1, 2, 4)
    b = DistanceTwoHopCover([1, 2])
    b.add_lout(1, 2, 2)
    a.union(b)
    assert a.lout_of(1)[2] == 2


def test_distance_to_reachability(chain_distance_cover):
    plain = chain_distance_cover.to_reachability()
    assert plain.connected(1, 3)
    assert not plain.connected(3, 1)


def test_distance_stored_integers(chain_distance_cover):
    assert chain_distance_cover.stored_integers() == 12
    assert chain_distance_cover.stored_integers(with_backward_index=False) == 6


def test_distance_verify_against():
    from repro.graph import DiGraph, distance_closure

    g = DiGraph([(1, 2), (2, 3)])
    dc = distance_closure(g)
    cover = DistanceTwoHopCover([1, 2, 3])
    cover.add_lout(1, 2, 1)
    cover.add_lin(3, 2, 1)
    cover.verify_against(dc)
    bad = DistanceTwoHopCover([1, 2, 3])
    bad.add_lout(1, 2, 2)  # wrong distance
    bad.add_lin(3, 2, 1)
    with pytest.raises(AssertionError):
        bad.verify_against(dc)
