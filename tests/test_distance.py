"""Tests for the distance-aware 2-hop cover (Section 5)."""

import random

import pytest

from repro.core.distance import (
    DENSITY_SAMPLE_BUDGET,
    build_distance_cover,
    estimate_center_graph_edges,
    initial_distance_priority,
)
from repro.graph import DiGraph, distance_closure


def _random_digraph(rng, n, m, acyclic=False):
    g = DiGraph()
    for v in range(n):
        g.add_node(v)
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        if acyclic and u > v:
            u, v = v, u
        g.add_edge(u, v)
    return g


def test_chain_distances():
    g = DiGraph([(1, 2), (2, 3), (3, 4)])
    cover = build_distance_cover(g)
    cover.verify_against(distance_closure(g))
    assert cover.distance(1, 4) == 3
    assert cover.distance(4, 1) is None


def test_shortcut_distance():
    g = DiGraph([(1, 2), (2, 3), (1, 3)])
    cover = build_distance_cover(g)
    assert cover.distance(1, 3) == 1


def test_diamond_distances():
    g = DiGraph([(1, 2), (1, 3), (2, 4), (3, 4), (4, 5)])
    cover = build_distance_cover(g)
    cover.verify_against(distance_closure(g))


def test_cycle_distances():
    g = DiGraph([(1, 2), (2, 3), (3, 1), (3, 4)])
    cover = build_distance_cover(g)
    cover.verify_against(distance_closure(g))
    assert cover.distance(1, 3) == 2
    assert cover.distance(3, 2) == 2


def test_center_must_lie_on_shortest_path():
    # 1 -> 2 -> 4 and 1 -> 3 -> 4 plus a long detour 2 -> 5 -> 6 -> 4:
    # if 5 or 6 were used as a center for (1, 4) the reported distance
    # would be wrong.
    g = DiGraph([(1, 2), (2, 4), (1, 3), (3, 4), (2, 5), (5, 6), (6, 4)])
    cover = build_distance_cover(g)
    assert cover.distance(1, 4) == 2
    cover.verify_against(distance_closure(g))


def test_preselected_centers_distance():
    g = DiGraph([(1, 2), (2, 3), (2, 4)])
    cover = build_distance_cover(g, preselected_centers=[2])
    cover.verify_against(distance_closure(g))


@pytest.mark.parametrize("seed", range(8))
def test_random_dags_distances_exact(seed):
    rng = random.Random(seed)
    g = _random_digraph(rng, 18, rng.randrange(10, 60), acyclic=True)
    cover = build_distance_cover(g)
    cover.verify_against(distance_closure(g))


@pytest.mark.parametrize("seed", range(8))
def test_random_cyclic_distances_exact(seed):
    rng = random.Random(500 + seed)
    g = _random_digraph(rng, 14, rng.randrange(8, 50))
    cover = build_distance_cover(g)
    cover.verify_against(distance_closure(g))


def test_distance_cover_deterministic():
    g = DiGraph([(1, 2), (2, 3), (1, 4), (4, 3)])
    a = build_distance_cover(g, seed=1)
    b = build_distance_cover(g, seed=1)
    assert a.lin == b.lin and a.lout == b.lout


def test_small_sample_budget_still_exact():
    # the sampled estimate only seeds priorities; correctness must hold
    # even with a tiny budget
    rng = random.Random(3)
    g = _random_digraph(rng, 15, 40, acyclic=True)
    cover = build_distance_cover(g, sample_budget=8)
    cover.verify_against(distance_closure(g))


# ---------------------------------------------------------------------------
# density estimation (Section 5.2)
# ---------------------------------------------------------------------------


def test_estimate_excludes_non_shortest_paths():
    g = DiGraph([(1, 2), (2, 3), (1, 3)])
    dc = distance_closure(g)
    # center 2: (1,3) has d=1 but the path through 2 has length 2 -> not
    # a center-graph edge; (1,2) and (2,3) trivially are.
    anc = dict(dc.ancestors_of(2))
    anc[2] = 0
    desc = dict(dc.descendants_of(2))
    desc[2] = 0
    rng = random.Random(0)
    estimate = estimate_center_graph_edges(2, dc, anc, desc, rng)
    assert estimate == 2.0


def test_estimate_counts_shortest_path_pairs():
    g = DiGraph([(1, 2), (2, 3)])
    dc = distance_closure(g)
    anc = dict(dc.ancestors_of(2))
    anc[2] = 0
    desc = dict(dc.descendants_of(2))
    desc[2] = 0
    rng = random.Random(0)
    # candidates: (1,3) through 2, plus the reflexive-side pairs (1,2)
    # and (2,3) -> exactly 3 edges
    assert estimate_center_graph_edges(2, dc, anc, desc, rng) == 3.0


def test_estimate_sampling_upper_bounds_true_count():
    """Section 5.2's claim: the sampled estimate (98% CI upper bound)
    'never exceeded the real maximal density' — i.e. it upper-bounds the
    edge count with high probability."""
    rng = random.Random(9)
    g = _random_digraph(rng, 60, 600, acyclic=True)
    dc = distance_closure(g)
    hub = max(g, key=lambda v: len(dc.ancestors_of(v)) * len(dc.descendants_of(v)))
    anc = dict(dc.ancestors_of(hub))
    anc[hub] = 0
    desc = dict(dc.descendants_of(hub))
    desc[hub] = 0
    exact = estimate_center_graph_edges(
        hub, dc, anc, desc, random.Random(0), sample_budget=10**9
    )
    total = (len(anc) - 1) * (len(desc) - 1)
    if total <= 64:
        pytest.skip("center graph too small to force sampling")
    sampled = estimate_center_graph_edges(
        hub, dc, anc, desc, random.Random(1), sample_budget=64
    )
    # the CI upper bound should not fall below the truth (98% per draw;
    # seeds fixed so the test is deterministic)
    assert sampled >= exact * 0.8


def test_initial_distance_priority_formula():
    assert initial_distance_priority(0.0) == 0.0
    assert initial_distance_priority(16.0) == pytest.approx(2.0)
    assert initial_distance_priority(100.0) == pytest.approx(5.0)


def test_sample_budget_constant_matches_paper():
    assert DENSITY_SAMPLE_BUDGET == 13_600
