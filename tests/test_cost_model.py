"""Backend-aware cost model: planner differentials and ranked top-k.

The contract pinned here: a neutral model reproduces the legacy
count-only planner decisions *exactly*; a skewed model flips direction
and seed choices on near-equal estimates (and ``explain()`` shows the
flip plus the model that caused it); the bounded-heap ranked path is
answer-identical to full materialisation; calibration always yields a
sane, clamped model.
"""

import pytest

from repro.core.hopi import HopiIndex
from repro.query.cost import (
    DEFAULT_COST_MODELS,
    NEUTRAL_COST_MODEL,
    ProbeCostModel,
    calibrate_probe_costs,
    default_cost_model,
)
from repro.query.engine import QueryEngine
from repro.query.pathexpr import parse_path
from repro.query.planner import order_steps, plan_cost, plan_query
from repro.xmlmodel.generator import dblp_like
from repro.xmlmodel.model import Collection

#: Forward probes 3x cheaper than backward — enough skew to flip any
#: near-equal decision.
SYNTHETIC = ProbeCostModel("synthetic", 1.0, 3.0, source="synthetic")


class FakeEngine:
    """Just enough engine for :func:`plan_query`: cardinalities come
    from a tag → count table instead of a tag index."""

    planner = "selective"
    cost_model = None

    def __init__(self, counts):
        self._counts = counts

    def _candidates(self, step):
        return [(i, 1.0) for i in range(self._counts[step.tag])]

    def _anchored_count(self, step):
        return self._counts[step.tag]


@pytest.fixture(scope="module")
def small_index():
    return HopiIndex.build(
        dblp_like(8, seed=5), strategy="recursive",
        partitioner="node_weight", partition_limit=60,
    )


# ---------------------------------------------------------------------------
# model basics
# ---------------------------------------------------------------------------


def test_neutral_and_default_models():
    assert NEUTRAL_COST_MODEL.neutral
    assert default_cost_model("no-such-backend") is NEUTRAL_COST_MODEL
    for backend, model in DEFAULT_COST_MODELS.items():
        assert model.backend == backend
        assert not model.neutral
        assert model.unit("descendant", "backward") == model.backward
        assert model.unit("descendant", "forward") == model.forward
        # child joins follow parent pointers — direction-blind
        assert model.unit("child", "backward") == 1.0
        assert model.unit("child", "forward") == 1.0


def test_engine_cost_model_comes_from_the_index(small_index):
    engine = QueryEngine(small_index)
    assert engine.cost_model == default_cost_model(small_index.backend)
    pinned = small_index.calibrate_probe_costs(samples=4, repeats=1)
    try:
        assert engine.cost_model is pinned
    finally:
        small_index._probe_costs = None


def test_calibration_is_normalised_and_clamped(small_index):
    model = calibrate_probe_costs(small_index, samples=4, repeats=1)
    assert model.source == "calibrated"
    assert model.backend == small_index.backend
    assert model.forward == 1.0
    assert 0.05 <= model.backward <= 20.0


def test_calibration_falls_back_on_tiny_collections():
    index = HopiIndex.build(Collection(), strategy="unpartitioned")
    model = calibrate_probe_costs(index)
    assert model == default_cost_model(index.backend)


# ---------------------------------------------------------------------------
# planner differentials
# ---------------------------------------------------------------------------


def test_neutral_model_reduces_to_legacy_order():
    expr = parse_path("//a//b//c")
    estimates = (40, 7, 25)
    for start in range(3):
        legacy = order_steps(expr, estimates, start=start)
        neutral = order_steps(
            expr, estimates, start=start, cost_model=NEUTRAL_COST_MODEL
        )
        assert neutral == legacy
    # neutral two-step plan costs preserve the legacy endpoint order:
    # total(start) = 2 * estimate(start), so the cheaper endpoint wins
    two = parse_path("//a//b")
    assert plan_cost(two, (100, 95), NEUTRAL_COST_MODEL, start=0) == 200.0
    assert plan_cost(two, (100, 95), NEUTRAL_COST_MODEL, start=1) == 190.0


def test_cost_model_flips_the_directional_seed():
    """est = (100, 95): the count-only rule seeds at the cheaper tail
    and runs backward; with backward probes 3x dearer the modeled cost
    of the backward plan (95 + 95*3 frontier probes) dwarfs the forward
    plan (100 + 100*1), so the seed flips to position 0."""
    engine = FakeEngine({"a": 100, "b": 95})
    neutral = plan_query(
        "//a//b", engine, directional=True, cost_model=NEUTRAL_COST_MODEL
    )
    assert neutral.ops[0].position == 1
    assert neutral.ops[1].direction == "backward"
    assert neutral.cost_model is None

    skewed = plan_query(
        "//a//b", engine, directional=True, cost_model=SYNTHETIC
    )
    assert skewed.ops[0].position == 0
    assert skewed.ops[1].direction == "forward"
    assert skewed.cost_model is SYNTHETIC

    expr = parse_path("//a//b")
    assert plan_cost(expr, (100, 95), SYNTHETIC, start=0) == 200.0
    assert plan_cost(expr, (100, 95), SYNTHETIC, start=1) == 380.0


def test_cost_model_flip_is_visible_in_explain():
    engine = FakeEngine({"a": 100, "b": 95})
    neutral = plan_query(
        "//a//b", engine, directional=True, cost_model=NEUTRAL_COST_MODEL
    ).explain()
    skewed = plan_query(
        "//a//b", engine, directional=True, cost_model=SYNTHETIC
    ).explain()
    assert "backward probe: ancestors side" in neutral
    assert "costs:" not in neutral
    assert "forward probe: descendants side" in skewed
    assert "backward probe" not in skewed
    assert "costs: forward x1, backward x3" in skewed
    assert "synthetic model" in skewed


def test_cost_model_moves_the_selective_seed():
    """Non-directional: the count-only rule seeds at the global minimum
    (the middle step); a skewed model seeds where the modeled total is
    lowest even though its scan is bigger."""
    engine = FakeEngine({"a": 50, "b": 45, "c": 48})
    neutral = plan_query("//a//b//c", engine, cost_model=NEUTRAL_COST_MODEL)
    assert neutral.ops[0].position == 1
    skewed = plan_query("//a//b//c", engine, cost_model=SYNTHETIC)
    # seed 0 runs purely forward: 50 + 50*1 + 45*1 = 145; every other
    # seed pays at least one 3x backward stage
    assert skewed.ops[0].position == 0
    assert all(op.direction != "backward" for op in skewed.ops)


def test_cost_aware_plans_return_identical_answers(small_index):
    engine = QueryEngine(small_index, max_results=10**9)
    for path in ("//article//author", "//*//cite", "//article//*//author"):
        baseline = plan_query(path, engine, cost_model=NEUTRAL_COST_MODEL)
        skewed = plan_query(path, engine, cost_model=SYNTHETIC)
        a = [(r.bindings, r.score) for r in engine.evaluate(path)]
        # evaluate() replans with the engine's own model; run both
        # explicit plans through the executor via forced starts
        for plan in (baseline, skewed):
            forced = plan_query(
                path, engine, start=plan.ops[0].position,
                cost_model=plan.cost_model,
            )
            assert forced.ops == plan.ops
        assert a == sorted(a, key=lambda x: (-x[1], x[0]))


# ---------------------------------------------------------------------------
# ranked top-k heap vs full materialisation
# ---------------------------------------------------------------------------


def test_limited_evaluate_matches_full_prefix(small_index):
    engine = QueryEngine(small_index, max_results=10**9)
    full = engine.evaluate("//article//author")
    assert len(full) > 12
    for limit in (1, 5, len(full), len(full) + 10):
        heap = engine.evaluate(f"//article//author limit {limit}")
        assert [(r.bindings, r.score) for r in heap] == [
            (r.bindings, r.score) for r in full[:limit]
        ]
    windowed = engine.evaluate("//article//author limit 4 offset 3")
    assert [(r.bindings, r.score) for r in windowed] == [
        (r.bindings, r.score) for r in full[3:7]
    ]


# ---------------------------------------------------------------------------
# execution profiles in describe()/explain()
# ---------------------------------------------------------------------------


def test_execution_profiles_expose_short_circuits(small_index):
    engine = QueryEngine(small_index)
    limited = engine.plan("//article//author limit 5")
    profile = limited.execution_profile("evaluate")
    assert profile["strategy"] == "heap-topk(k=5)"
    assert "full sort" in profile["skipped"]
    assert "heap-topk(k=5)" in limited.explain()

    plain = engine.plan("//article//author")
    assert plain.execution_profile("evaluate")["strategy"] == "materialise-sort"
    count = plain.execution_profile("count")
    assert count["strategy"] == "frontier-aggregation"
    assert "scoring" in count["skipped"]
    assert plain.execution_profile("exists")["strategy"] == "first-match"
    assert plain.execution_profile("stream")["strategy"] == "lazy-stream"
    with pytest.raises(ValueError, match="unknown execution mode"):
        plain.execution_profile("sideways")

    text = engine.explain("//article//author", mode="count")
    assert "exec:  count via frontier-aggregation" in text
    described = engine.plan("//article//author").describe("exists")
    assert described["execution"]["strategy"] == "first-match"
    assert described["cost_model"]["backend"] == small_index.backend
