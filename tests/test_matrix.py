"""The workload-matrix core: product expansion, gates, runner, exit.

These tests exercise :mod:`repro.bench.matrix` with toy suites (no
real benchmarks) so the runner's semantics — cell order, shared
context, gate evaluation, CI relaxation, non-zero-exit reporting — are
pinned independently of benchmark timing.
"""

import pytest

from repro.bench.matrix import (
    Cell,
    Gate,
    MatrixRunner,
    SuiteSpec,
    bench_seed,
    bound,
    ceiling,
    in_ci,
    product,
    truth,
)


# ---------------------------------------------------------------------------
# product
# ---------------------------------------------------------------------------

def test_product_expands_in_declaration_order():
    cells = product({"a": [1, 2], "b": ["x", "y"]})
    assert cells == [
        {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
        {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
    ]


def test_product_where_filters():
    cells = product(
        {"backend": ["sets", "arrays"], "threads": [1, 4]},
        where=lambda c: not (c["backend"] == "sets" and c["threads"] == 4),
    )
    assert {"backend": "sets", "threads": 4} not in cells
    assert len(cells) == 3


def test_product_empty_axis_is_empty():
    assert product({"a": []}) == []


# ---------------------------------------------------------------------------
# gates
# ---------------------------------------------------------------------------

def test_bound_gate_pass_and_fail():
    gate = bound("g", "d", lambda e: e["v"], 2.0)
    assert gate.evaluate("s", {"v": 2.5}).passed
    result = gate.evaluate("s", {"v": 1.5})
    assert not result.passed
    assert "1.50" in result.detail and "2.0" in result.detail


def test_bound_gate_fails_on_unrecorded_value():
    gate = bound("g", "d", lambda e: e.get("missing"), 1.0)
    result = gate.evaluate("s", {})
    assert not result.passed
    assert result.detail == "not recorded"


def test_ceiling_gate():
    gate = ceiling("g", "d", lambda e: e["v"], 0.7)
    assert gate.evaluate("s", {"v": 0.5}).passed
    assert not gate.evaluate("s", {"v": 0.9}).passed


def test_truth_gate():
    gate = truth("g", "d", lambda e: e["ok"])
    assert gate.evaluate("s", {"ok": True}).passed
    assert not gate.evaluate("s", {"ok": False}).passed


def test_gate_exception_is_failure():
    gate = truth("g", "d", lambda e: e["nope"])
    result = gate.evaluate("s", {})
    assert not result.passed
    assert "KeyError" in result.detail


def test_ci_relaxation_substitutes_threshold(monkeypatch):
    gate = bound("g", "d", lambda e: e["v"], 2.0, ci_minimum=1.0)
    monkeypatch.delenv("CI", raising=False)
    assert not in_ci()
    strict = gate.evaluate("s", {"v": 1.5})
    assert not strict.passed and not strict.relaxed
    monkeypatch.setenv("CI", "1")
    assert in_ci()
    relaxed = gate.evaluate("s", {"v": 1.5})
    assert relaxed.passed and relaxed.relaxed


def test_truth_gates_never_relax(monkeypatch):
    monkeypatch.setenv("CI", "1")
    result = truth("g", "d", lambda e: False).evaluate("s", {})
    assert not result.passed and not result.relaxed


def test_bench_seed_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SEED", raising=False)
    assert bench_seed() == 2005
    monkeypatch.setenv("REPRO_BENCH_SEED", "7")
    assert bench_seed() == 7


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------

def toy_suite(name="toy", gates=None, log=None):
    log = log if log is not None else []

    def setup():
        return {"ran": []}

    def run_cell(ctx, axes):
        ctx["ran"].append(axes["i"])
        return axes["i"] * 10

    def collect(ctx, cells):
        log.append(list(ctx["ran"]))
        return {"total": sum(c.record for c in cells), "order": ctx["ran"]}

    return SuiteSpec(
        name=name,
        title="toy suite",
        cells=product({"i": [1, 2, 3]}),
        setup=setup,
        run_cell=run_cell,
        collect=collect,
        gates=gates or [],
    )


def test_runner_runs_cells_in_order_with_shared_ctx():
    runner = MatrixRunner([toy_suite()], verbose=False)
    report = runner.run()
    suite = report.suites[0]
    assert [c.record for c in suite.cells] == [10, 20, 30]
    assert suite.entry["order"] == [1, 2, 3]
    assert report.ok


def test_runner_gate_failure_flips_ok():
    failing = toy_suite(gates=[
        bound("total", "d", lambda e: e["total"], 1000.0),
        truth("always", "d", lambda e: True),
    ])
    report = MatrixRunner([failing], verbose=False).run()
    assert not report.ok
    assert [g.name for g in report.failed_gates] == ["total"]


def test_runner_selects_suites_by_name():
    runner = MatrixRunner(
        [toy_suite("one"), toy_suite("two")], verbose=False
    )
    report = runner.run(["two"])
    assert [s.name for s in report.suites] == ["two"]
    with pytest.raises(KeyError):
        runner.run(["nonexistent"])


def test_cell_label():
    cell = Cell(suite="s", axes={"backend": "arrays", "threads": 4})
    assert cell.label == "backend=arrays threads=4"


def test_gate_detail_carries_measured_value():
    gate = bound("g", "d", lambda e: e["v"], 2.0, unit=" docs/s")
    result = gate.evaluate("s", {"v": 123.4})
    assert "123.40 docs/s" in result.detail
