"""Fault-injection/load harness for serving-tier tests.

A thin re-export seam: the real generators live in
:mod:`repro.bench.faults` (inside the installed package, so the bench
harness can drive the identical scenarios it records in
``BENCH_service.json``); tests import them from here so test code
reads as ``harness.open_loop_burst(...)`` and the harness can grow
test-only helpers without touching the package.

Contents (see :mod:`repro.bench.faults` for details):

* ``cold_miss_paths(n)`` — distinct-plan paths, every request a
  result-cache miss;
* ``slow_shard(router, shard_id, delay)`` / ``dead_shard(router,
  shard_id)`` — degrade one shard of a live router;
* ``open_loop_burst(...)`` — schedule-driven load with per-request
  classification (ok/shed/degraded/unstructured/hung);
* ``cold_miss_convoy(...)`` — N clients barrier-released onto one
  cold path (coalescing checks);
* ``closed_loop_clients(...)`` — per-client request loops for tail
  latency measurement.
"""

from repro.bench.faults import (  # noqa: F401 (re-export surface)
    BurstReport,
    RequestOutcome,
    closed_loop_clients,
    cold_miss_convoy,
    cold_miss_paths,
    dead_shard,
    open_loop_burst,
    slow_shard,
)

__all__ = [
    "BurstReport",
    "RequestOutcome",
    "closed_loop_clients",
    "cold_miss_convoy",
    "cold_miss_paths",
    "dead_shard",
    "open_loop_burst",
    "slow_shard",
]
