"""Randomized backend-equivalence suite.

The tested backend must be indistinguishable from the set backend at
the query interface: on seeded random DAG and cyclic collections, both
must return identical ``connected``, ``distance``, ``ancestors`` and
``descendants`` answers — after the initial build and after arbitrary
maintenance sequences (element/edge/document insertion, edge/document
deletion). Two structurally identical collections are generated per
seed (element-id allocation is deterministic) so each backend maintains
its own collection/cover pair in lock-step.

``REPRO_BACKEND`` selects the backend under test (default ``arrays``;
CI runs the matrix a second time with ``REPRO_BACKEND=vector`` so the
sealed-slab kernels face the same oracle).
"""

import os
import random

import pytest

from repro.core.hopi import HopiIndex
from repro.graph.closure import distance_closure, transitive_closure
from repro.xmlmodel.model import Collection

TAGS = ("a", "b", "c")

#: The backend checked against the ``sets`` oracle.
BACKEND = os.environ.get("REPRO_BACKEND", "arrays")


def random_collection(seed: int, *, n_docs: int = 5, cyclic: bool = False) -> Collection:
    """A seeded random linked collection; DAG unless ``cyclic``.

    Tree edges always point from a smaller to a larger element id (ids
    are allocated in insertion order), so restricting links to
    ``source < target`` keeps the element graph acyclic.
    """
    rng = random.Random(seed)
    collection = Collection()
    elements = []
    for i in range(n_docs):
        root = collection.new_document(f"d{i}", "r")
        members = [root.eid]
        for _ in range(rng.randrange(2, 7)):
            parent = rng.choice(members)
            members.append(collection.add_child(parent, rng.choice(TAGS)).eid)
        elements.extend(members)
    for _ in range(rng.randrange(2, 3 * n_docs)):
        u, v = rng.choice(elements), rng.choice(elements)
        if u == v:
            continue
        if not cyclic and u > v:
            u, v = v, u
        collection.add_link(u, v)
    return collection


def assert_equivalent(sets_index: HopiIndex, arrays_index: HopiIndex) -> None:
    """Both backends answer identically over the full node universe."""
    nodes = sorted(sets_index.collection.elements)
    assert sorted(arrays_index.collection.elements) == nodes
    assert set(sets_index.cover.nodes) == set(arrays_index.cover.nodes)
    distance = sets_index.is_distance_aware
    for u in nodes:
        assert sets_index.descendants(u) == arrays_index.descendants(u), u
        assert sets_index.ancestors(u) == arrays_index.ancestors(u), u
        expected = [sets_index.connected(u, v) for v in nodes]
        assert [arrays_index.connected(u, v) for v in nodes] == expected, u
        assert arrays_index.connected_many(u, nodes) == expected, u
        assert sets_index.connected_many(u, nodes) == expected, u
        if distance:
            for v in nodes:
                assert sets_index.distance(u, v) == arrays_index.distance(u, v), (u, v)


def build_pair(seed: int, *, cyclic: bool, distance: bool):
    kwargs = dict(
        strategy="recursive",
        partitioner="node_weight",
        partition_limit=8,
        distance=distance,
    )
    sets_index = HopiIndex.build(
        random_collection(seed, cyclic=cyclic), backend="sets", **kwargs
    )
    arrays_index = HopiIndex.build(
        random_collection(seed, cyclic=cyclic), backend=BACKEND, **kwargs
    )
    return sets_index, arrays_index


# ---------------------------------------------------------------------------
# equivalence after the build
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("cyclic", [False, True])
def test_reachability_build_equivalence(seed, cyclic):
    sets_index, arrays_index = build_pair(seed, cyclic=cyclic, distance=False)
    assert_equivalent(sets_index, arrays_index)
    # and both are actually correct, not just identically wrong
    oracle = transitive_closure(arrays_index.collection.element_graph())
    arrays_index.cover.verify_against(oracle)


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("cyclic", [False, True])
def test_distance_build_equivalence(seed, cyclic):
    sets_index, arrays_index = build_pair(seed, cyclic=cyclic, distance=True)
    assert_equivalent(sets_index, arrays_index)
    oracle = distance_closure(arrays_index.collection.element_graph())
    arrays_index.cover.verify_against(oracle)


@pytest.mark.parametrize("strategy", ["unpartitioned", "incremental", "recursive"])
def test_all_build_strategies_equivalent(strategy):
    kwargs = dict(strategy=strategy)
    if strategy != "unpartitioned":
        kwargs.update(partitioner="closure")
    sets_index = HopiIndex.build(
        random_collection(3), backend="sets", **kwargs
    )
    arrays_index = HopiIndex.build(
        random_collection(3), backend=BACKEND, **kwargs
    )
    assert_equivalent(sets_index, arrays_index)
    assert sets_index.cover.size == arrays_index.cover.size


# ---------------------------------------------------------------------------
# equivalence through maintenance sequences
# ---------------------------------------------------------------------------


def _maintenance_script(index: HopiIndex, rng: random.Random, n_ops: int):
    """A reproducible op list derived from the collection's structure."""
    ops = []
    collection = index.collection
    links = sorted(collection.inter_links) + sorted(
        link for d in collection.documents.values() for link in d.intra_links
    )
    docs = sorted(collection.documents)
    elements = sorted(collection.elements)
    for i in range(n_ops):
        kind = rng.choice(
            ["insert_element", "insert_edge", "delete_edge", "delete_document",
             "insert_document"]
        )
        if kind == "insert_element":
            ops.append(("insert_element", rng.choice(elements), rng.choice(TAGS)))
        elif kind == "insert_edge":
            u, v = rng.choice(elements), rng.choice(elements)
            if u != v:
                ops.append(("insert_edge", u, v))
        elif kind == "delete_edge" and links:
            ops.append(("delete_edge",) + links[rng.randrange(len(links))])
        elif kind == "delete_document" and len(docs) > 2:
            ops.append(("delete_document", docs[rng.randrange(len(docs))],
                        rng.random() < 0.3))
        elif kind == "insert_document":
            ops.append(("insert_document", f"new{i}", rng.choice(elements)))
    return ops


def _apply(index: HopiIndex, op) -> None:
    kind = op[0]
    collection = index.collection
    if kind == "insert_element":
        _, parent, tag = op
        if parent in collection.elements:
            index.insert_element(parent, tag)
    elif kind == "insert_edge":
        _, u, v = op
        if u in collection.elements and v in collection.elements:
            index.insert_edge(u, v)
    elif kind == "delete_edge":
        _, u, v = op
        still_link = (u, v) in collection.inter_links or any(
            (u, v) in d.intra_links for d in collection.documents.values()
        )
        if still_link:
            index.delete_edge(u, v)
    elif kind == "delete_document":
        _, doc_id, force_general = op
        if doc_id in collection.documents:
            index.delete_document(doc_id, force_general=force_general)
    elif kind == "insert_document":
        _, doc_id, link_target = op
        root = collection.new_document(doc_id, "r")
        child = collection.add_child(root.eid, "a")
        if link_target in collection.elements:
            collection.add_link(child.eid, link_target)
        index.insert_document(doc_id)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("cyclic", [False, True])
def test_maintenance_equivalence(seed, cyclic):
    sets_index, arrays_index = build_pair(seed, cyclic=cyclic, distance=False)
    rng = random.Random(1000 + seed)
    ops = _maintenance_script(sets_index, rng, n_ops=8)
    for op in ops:
        _apply(sets_index, op)
        _apply(arrays_index, op)
        assert_equivalent(sets_index, arrays_index)
    # the maintained array cover still matches a from-scratch oracle
    oracle = transitive_closure(arrays_index.collection.element_graph())
    arrays_index.cover.verify_against(
        oracle, nodes=arrays_index.collection.elements
    )


@pytest.mark.parametrize("seed", range(3))
def test_maintenance_equivalence_distance(seed):
    sets_index, arrays_index = build_pair(seed, cyclic=False, distance=True)
    rng = random.Random(2000 + seed)
    ops = _maintenance_script(sets_index, rng, n_ops=8)
    for op in ops:
        _apply(sets_index, op)
        _apply(arrays_index, op)
        assert_equivalent(sets_index, arrays_index)
    oracle = distance_closure(arrays_index.collection.element_graph())
    arrays_index.cover.verify_against(
        oracle, nodes=arrays_index.collection.elements
    )
