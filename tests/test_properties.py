"""Property-based tests (hypothesis) for the core invariants.

Theorem 1's two directions — every connection covered, no phantom
connections — plus maintenance-equals-rebuild equivalences, checked on
randomly generated graphs and collections.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cover_builder import build_cover
from repro.core.distance import build_distance_cover
from repro.core.maintenance import delete_document, insert_document, insert_edge
from repro.graph import DiGraph, distance_closure, transitive_closure
from repro.xmlmodel import Collection
from repro.xmlmodel.parser import parse_document, serialize, ParsedElement

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def digraphs(draw, max_nodes=12, acyclic=False):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=0,
            max_size=m,
        )
    )
    g = DiGraph()
    for v in range(n):
        g.add_node(v)
    for u, v in edges:
        if u == v:
            continue
        if acyclic:
            if u == v:
                continue
            u, v = (u, v) if u < v else (v, u)
        g.add_edge(u, v)
    return g


@st.composite
def collections(draw, max_docs=5):
    n_docs = draw(st.integers(min_value=1, max_value=max_docs))
    c = Collection()
    all_elements = []
    for i in range(n_docs):
        root = c.new_document(f"doc{i}", "r")
        members = [root.eid]
        extra = draw(st.integers(min_value=0, max_value=5))
        for _ in range(extra):
            parent = draw(st.sampled_from(members))
            members.append(c.add_child(parent, "e").eid)
        all_elements.append(members)
    n_links = draw(st.integers(min_value=0, max_value=2 * n_docs))
    for _ in range(n_links):
        di = draw(st.integers(min_value=0, max_value=n_docs - 1))
        dj = draw(st.integers(min_value=0, max_value=n_docs - 1))
        u = draw(st.sampled_from(all_elements[di]))
        v = draw(st.sampled_from(all_elements[dj]))
        if u != v:
            c.add_link(u, v)
    return c


# ---------------------------------------------------------------------------
# Theorem 1 on random graphs
# ---------------------------------------------------------------------------


@SETTINGS
@given(digraphs())
def test_cover_equals_closure(g):
    cover = build_cover(g)
    cover.verify_against(transitive_closure(g))


@SETTINGS
@given(digraphs(max_nodes=9))
def test_distance_cover_equals_bfs(g):
    cover = build_distance_cover(g)
    cover.verify_against(distance_closure(g))


@SETTINGS
@given(digraphs())
def test_cover_size_within_4ceil_bound(g):
    """Sanity: the greedy cover never exceeds the trivial per-connection
    labelling (2 entries per closure connection)."""
    closure = transitive_closure(g)
    cover = build_cover(g)
    assert cover.size <= max(2 * closure.num_connections, 0)


@SETTINGS
@given(digraphs(max_nodes=10))
def test_descendants_ancestors_consistent(g):
    cover = build_cover(g)
    closure = transitive_closure(g)
    for v in g:
        assert cover.descendants(v) == closure.descendants_of(v) | {v}
        assert cover.ancestors(v) == closure.ancestors_of(v) | {v}


# ---------------------------------------------------------------------------
# maintenance ≡ rebuild
# ---------------------------------------------------------------------------


@SETTINGS
@given(collections(), st.randoms(use_true_random=False))
def test_delete_document_equals_rebuild(c, rng):
    cover = build_cover(c.element_graph())
    doc_id = rng.choice(sorted(c.documents))
    delete_document(c, cover, doc_id)
    cover.verify_against(transitive_closure(c.element_graph()))


@SETTINGS
@given(collections(max_docs=4), st.randoms(use_true_random=False))
def test_insert_edge_equals_rebuild(c, rng):
    cover = build_cover(c.element_graph())
    nodes = sorted(c.elements)
    u, v = rng.choice(nodes), rng.choice(nodes)
    if u == v:
        return
    insert_edge(c, cover, u, v)
    cover.verify_against(transitive_closure(c.element_graph()))


@SETTINGS
@given(collections(max_docs=3), st.randoms(use_true_random=False))
def test_insert_edge_distance_equals_rebuild(c, rng):
    cover = build_distance_cover(c.element_graph())
    nodes = sorted(c.elements)
    u, v = rng.choice(nodes), rng.choice(nodes)
    if u == v:
        return
    insert_edge(c, cover, u, v)
    cover.verify_against(distance_closure(c.element_graph()))


@SETTINGS
@given(collections(max_docs=4))
def test_insert_document_equals_rebuild(c):
    cover = build_cover(c.element_graph())
    root = c.new_document("fresh", "r")
    child = c.add_child(root.eid, "x")
    existing = sorted(c.documents["doc0"].elements)
    c.add_link(child.eid, existing[0])
    insert_document(c, cover, "fresh")
    cover.verify_against(transitive_closure(c.element_graph()))


# ---------------------------------------------------------------------------
# parser round-trips
# ---------------------------------------------------------------------------

_tag = st.from_regex(r"[A-Za-z][A-Za-z0-9]{0,5}", fullmatch=True)
_text = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters="<>&\"'\x00\r", categories=("L", "N", "P", "Zs")
    ),
    max_size=20,
)


@st.composite
def xml_trees(draw, depth=3):
    tag = draw(_tag)
    attrs = draw(
        st.dictionaries(_tag, _text, max_size=2)
    )
    node = ParsedElement(tag, attrs)
    node.text = draw(_text).strip()
    if depth > 0:
        for child in draw(st.lists(xml_trees(depth=depth - 1), max_size=3)):
            node.children.append(child)
    return node


@SETTINGS
@given(xml_trees())
def test_parser_serializer_roundtrip(tree):
    text = serialize(tree)
    again = parse_document(text)

    def same(a, b):
        assert a.tag == b.tag
        assert a.attributes == b.attributes
        assert a.text.strip() == b.text.strip()
        assert len(a.children) == len(b.children)
        for x, y in zip(a.children, b.children):
            same(x, y)

    same(tree, again)


# ---------------------------------------------------------------------------
# cover algebra
# ---------------------------------------------------------------------------


@SETTINGS
@given(digraphs(max_nodes=8), digraphs(max_nodes=8))
def test_union_of_disjoint_covers(g1, g2):
    """Covers of node-disjoint graphs union into a cover of the union."""
    shifted = DiGraph()
    offset = 1000
    for v in g2:
        shifted.add_node(v + offset)
    for u, v in g2.edges():
        shifted.add_edge(u + offset, v + offset)
    c1 = build_cover(g1)
    c2 = build_cover(shifted)
    c1.union(c2)
    combined = DiGraph()
    for v in g1:
        combined.add_node(v)
    combined.add_edges(g1.edges())
    for v in shifted:
        combined.add_node(v)
    combined.add_edges(shifted.edges())
    c1.verify_against(transitive_closure(combined))


# ---------------------------------------------------------------------------
# query stack: parser round-trip and planner soundness
# ---------------------------------------------------------------------------


_QUERY_TAGS = st.sampled_from(["a", "b", "book", "author", "*"])


@st.composite
def query_steps(draw, depth=1, first_in_predicate=False):
    from repro.query.pathexpr import Predicate, Step

    tag = draw(_QUERY_TAGS)
    similar = tag != "*" and draw(st.booleans())
    axis = draw(st.sampled_from(["child", "descendant"]))
    predicates = []
    if depth > 0:
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            inner = [draw(query_steps(depth=depth - 1))]
            for _ in range(draw(st.integers(min_value=0, max_value=1))):
                inner.append(draw(query_steps(depth=depth - 1)))
            predicates.append(Predicate(tuple(inner)))
    return Step(axis, tag, similar, tuple(predicates))


@st.composite
def query_expressions(draw):
    from repro.query.pathexpr import PathExpression

    steps = [draw(query_steps()) for _ in range(draw(st.integers(1, 3)))]
    limit = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=9)))
    offset = draw(st.integers(min_value=0, max_value=9))
    return PathExpression(tuple(steps), limit=limit, offset=offset)


@SETTINGS
@given(query_expressions())
def test_parse_path_str_roundtrip(expr):
    """``parse_path(str(expr)) == expr`` over the whole dialect —
    predicates (incl. nested), similarity, wildcards, windows."""
    from repro.query.pathexpr import parse_path

    assert parse_path(str(expr)) == expr


@st.composite
def reachability_paths(draw, max_steps=3):
    """Legal legacy-dialect paths over the collections() vocabulary."""
    n = draw(st.integers(min_value=1, max_value=max_steps))
    parts = []
    for _ in range(n):
        axis = draw(st.sampled_from(["/", "//"]))
        tag = draw(st.sampled_from(["r", "e", "*"]))
        parts.append(axis + tag)
    return "".join(parts)


@SETTINGS
@given(collections(), reachability_paths(), st.integers(min_value=0, max_value=2))
def test_planner_join_orders_sound(c, path, start_scaled):
    """Any legal zig-zag join order (any seed position) returns the
    same result set and scores as the naive left-to-right order, on
    both label backends."""
    from repro.core.hopi import HopiIndex
    from repro.query import QueryEngine, QueryResult, parse_path, plan_query
    from repro.query.exec import ExecContext, run_bindings

    expr = parse_path(path)
    start = start_scaled % len(expr.steps)
    baseline = None
    for backend in ("sets", "arrays"):
        index = HopiIndex.build(c, strategy="unpartitioned", backend=backend)
        engine = QueryEngine(index, max_results=10**9)
        naive = [
            (r.bindings, r.score)
            for r in engine.evaluate(expr, order="naive")
        ]
        plan = plan_query(expr, engine, start=start)
        forced = [
            QueryResult(b, engine._score_binding(index, expr, b))
            for b in run_bindings(plan, ExecContext(engine, index))
        ]
        forced.sort(key=lambda r: (-r.score, r.bindings))
        assert [(r.bindings, r.score) for r in forced] == naive
        assert engine.count(expr) == len(naive)
        if baseline is None:
            baseline = naive
        else:
            assert naive == baseline  # backends agree too
