"""Tests for the SQLite-backed store (Section 3.4's database layout)."""

import os

import pytest

from repro.core import HopiIndex
from repro.core.cover import DistanceTwoHopCover, TwoHopCover
from repro.storage import (
    MemoryCoverStore,
    SQLiteCoverStore,
    load_index,
    persist_index,
)
from repro.xmlmodel import dblp_like, random_collection


@pytest.fixture
def chain_cover():
    cover = TwoHopCover([1, 2, 3])
    cover.add_lout(1, 2)
    cover.add_lin(3, 2)
    return cover


@pytest.fixture
def store(chain_cover):
    s = SQLiteCoverStore(":memory:")
    s.save_cover(chain_cover)
    return s


def test_connection_sql(store):
    assert store.connected(1, 3)  # via the LIN/LOUT join
    assert store.connected(1, 2)  # via the self-out query
    assert store.connected(2, 3)  # via the self-in query
    assert store.connected(1, 1)  # reflexive
    assert not store.connected(3, 1)
    assert not store.connected(2, 1)


def test_connected_unknown_node(store):
    assert not store.connected(99, 99)
    assert not store.connected(1, 99)


def test_descendants_ancestors_sql(store):
    assert store.descendants(1) == {1, 2, 3}
    assert store.descendants(2) == {2, 3}
    assert store.ancestors(3) == {1, 2, 3}
    assert store.ancestors(1) == {1}


def test_cover_size_and_roundtrip(store, chain_cover):
    assert store.cover_size() == 2
    loaded = store.load_cover()
    assert isinstance(loaded, TwoHopCover)
    assert loaded.lin == chain_cover.lin
    assert loaded.lout == chain_cover.lout
    assert loaded.nodes == chain_cover.nodes


def test_distance_requires_distance_cover(store):
    with pytest.raises(TypeError):
        store.distance(1, 3)


def test_distance_store_roundtrip():
    cover = DistanceTwoHopCover([1, 2, 3, 4])
    cover.add_lout(1, 2, 1)
    cover.add_lin(3, 2, 1)
    cover.add_lin(4, 2, 3)
    s = SQLiteCoverStore(":memory:")
    s.save_cover(cover)
    assert s.distance(1, 3) == 2  # MIN(LOUT.DIST + LIN.DIST)
    assert s.distance(1, 2) == 1  # self-out variant
    assert s.distance(2, 3) == 1  # self-in variant
    assert s.distance(1, 4) == 4
    assert s.distance(3, 1) is None
    assert s.distance(2, 2) == 0
    loaded = s.load_cover()
    assert isinstance(loaded, DistanceTwoHopCover)
    assert loaded.lout == cover.lout
    assert loaded.lin == cover.lin


def test_save_cover_overwrites(store):
    new = TwoHopCover([7, 8])
    new.add_lout(7, 8)
    store.save_cover(new)
    assert store.cover_size() == 1
    assert store.connected(7, 8)
    assert not store.connected(1, 3)


def test_collection_roundtrip():
    original = dblp_like(10, seed=4)
    s = SQLiteCoverStore(":memory:")
    s.save_collection(original)
    loaded = s.load_collection()
    assert loaded.num_documents == original.num_documents
    assert loaded.num_elements == original.num_elements
    assert loaded.inter_links == original.inter_links
    for eid, element in original.elements.items():
        assert loaded.elements[eid].tag == element.tag
        assert loaded.elements[eid].doc == element.doc
        assert loaded.elements[eid].parent == element.parent
    # tree structure preserved
    for doc_id, doc in original.documents.items():
        assert loaded.documents[doc_id].children == doc.children


def test_collection_roundtrip_intra_links():
    original = random_collection(
        n_docs=3, intra_link_probability=0.8, inter_links=3, seed=6
    )
    s = SQLiteCoverStore(":memory:")
    s.save_collection(original)
    loaded = s.load_collection()
    for doc_id in original.documents:
        assert (
            loaded.documents[doc_id].intra_links
            == original.documents[doc_id].intra_links
        )


def test_persist_and_load_index(tmp_path):
    collection = dblp_like(12, seed=8)
    index = HopiIndex.build(collection, strategy="recursive", partitioner="closure")
    path = os.path.join(tmp_path, "hopi.db")
    store = persist_index(index, path)
    store.close()
    loaded = load_index(path)
    loaded.verify()
    (u, v) = sorted(collection.inter_links)[0]
    assert loaded.connected(u, v) == index.connected(u, v)


def test_sql_store_agrees_with_index_everywhere():
    collection = random_collection(n_docs=4, inter_links=5, seed=17)
    index = HopiIndex.build(collection, strategy="unpartitioned")
    store = SQLiteCoverStore(":memory:")
    store.save_collection(collection)
    store.save_cover(index.cover)
    nodes = sorted(collection.elements)
    for u in nodes:
        for v in nodes:
            assert store.connected(u, v) == index.connected(u, v), (u, v)
    for u in nodes:
        assert store.descendants(u) == index.descendants(u)
        assert store.ancestors(u) == index.ancestors(u)


def test_sql_distance_store_agrees_with_index():
    collection = random_collection(n_docs=3, inter_links=4, seed=23)
    index = HopiIndex.build(collection, strategy="unpartitioned", distance=True)
    store = SQLiteCoverStore(":memory:")
    store.save_collection(collection)
    store.save_cover(index.cover)
    nodes = sorted(collection.elements)
    for u in nodes:
        for v in nodes:
            assert store.distance(u, v) == index.distance(u, v), (u, v)


def test_memory_store_parity(chain_cover):
    mem = MemoryCoverStore(chain_cover)
    sql = SQLiteCoverStore(":memory:")
    sql.save_cover(chain_cover)
    for u in (1, 2, 3):
        for v in (1, 2, 3):
            assert mem.connected(u, v) == sql.connected(u, v)
        assert mem.descendants(u) == sql.descendants(u)
        assert mem.ancestors(u) == sql.ancestors(u)
    assert mem.cover_size() == sql.cover_size()
    with pytest.raises(TypeError):
        mem.distance(1, 3)


def test_context_manager(tmp_path):
    path = os.path.join(tmp_path, "ctx.db")
    cover = TwoHopCover([1, 2])
    cover.add_lout(1, 2)
    with SQLiteCoverStore(path) as s:
        s.save_cover(cover)
    # file persisted; reopen works
    with SQLiteCoverStore(path) as s:
        assert s.connected(1, 2)


def test_file_backed_store_uses_wal(tmp_path):
    path = os.path.join(tmp_path, "wal.db")
    with SQLiteCoverStore(path) as s:
        (mode,) = s._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"
        (sync,) = s._conn.execute("PRAGMA synchronous").fetchone()
        assert sync == 1  # NORMAL


def test_memory_store_keeps_default_journal():
    s = SQLiteCoverStore(":memory:")
    (mode,) = s._conn.execute("PRAGMA journal_mode").fetchone()
    assert mode == "memory"


def test_save_cover_accepts_array_backend(tmp_path):
    from repro.core.array_cover import ArrayTwoHopCover

    cover = ArrayTwoHopCover([1, 2, 3])
    cover.add_lout(1, 2)
    cover.add_lin(3, 2)
    store = SQLiteCoverStore(":memory:")
    store.save_cover(cover)
    assert store.cover_size() == 2
    assert store.connected(1, 3)
    loaded = store.load_cover()
    assert isinstance(loaded, TwoHopCover)
    assert loaded.connected(1, 3)


def test_save_cover_batches_large_covers():
    """A cover larger than one executemany batch persists completely."""
    from repro.storage.db import BATCH_ROWS

    cover = TwoHopCover(range(2, BATCH_ROWS + 1000))
    for node in range(2, BATCH_ROWS + 1000):
        cover.add_lout(node, 1)
    store = SQLiteCoverStore(":memory:")
    store.save_cover(cover)
    assert store.cover_size() == cover.size


def test_load_index_array_backend(tmp_path):
    collection = dblp_like(8, seed=4)
    index = HopiIndex.build(collection)
    path = os.path.join(tmp_path, "arr.db")
    persist_index(index, path).close()
    loaded = load_index(path, backend="arrays")
    assert loaded.backend == "arrays"
    nodes = sorted(collection.elements)
    for u in nodes[:30]:
        assert loaded.descendants(u) == index.descendants(u)


def test_load_index_restores_saved_backend(tmp_path):
    collection = dblp_like(6, seed=4)
    for backend in ("sets", "arrays"):
        index = HopiIndex.build(collection, backend=backend)
        path = os.path.join(tmp_path, f"{backend}.db")
        persist_index(index, path).close()
        assert load_index(path).backend == backend
        # explicit choice still overrides the stored default
        assert load_index(path, backend="sets").backend == "sets"
