"""Streaming ingestion: sources, frontier checkpoint, pipeline.

The contracts under test:

* sources are **restartable**: ``stream(cursor)`` equals the tail of
  ``stream(0)``, for the same spec + seed, across calls;
* the pipeline's streamed index answers **identically** to a
  batch-built index over the same final collection, on every label
  backend (the ingestion differential gate);
* resume **dedupes** documents that already published (the WAL-ahead-
  of-frontier crash window) and converges to the uninterrupted result;
* the frontier checkpoint round-trips atomically and refuses foreign
  formats;
* the service's ingestion-freshness gauge shows up in ``/v1/metrics``.
"""

import dataclasses
import json

import pytest

from repro.core.hopi import BACKENDS, HopiIndex
from repro.ingest import (
    DirectorySource,
    FrontierCheckpoint,
    IngestPipeline,
    collection_from_source,
    make_source,
)
from repro.query.engine import QueryEngine
from repro.service.api import ServiceAPI
from repro.service.service import QueryService
from repro.storage.snapshot import canonical_snapshot_bytes
from repro.storage.wal import DurableIndexStore
from repro.xmlmodel.model import Collection


def empty_service(backend="arrays", **kwargs):
    return QueryService(
        HopiIndex.build(Collection(), backend=backend), **kwargs
    )


def records(source, cursor=0):
    return list(source.stream(cursor))


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("spec", ["scale-free:12", "deep-tree:9", "ontology:10"])
def test_synthetic_sources_are_restartable(spec):
    full = records(make_source(spec, seed=42))
    again = records(make_source(spec, seed=42))
    assert full == again
    tail = records(make_source(spec, seed=42), cursor=5)
    assert tail == full[5:]


def test_seed_changes_the_stream():
    a = records(make_source("scale-free:12", seed=1))
    b = records(make_source("scale-free:12", seed=2))
    assert a != b


def test_children_are_topologically_ordered():
    for spec in ("scale-free:8", "deep-tree:6", "ontology:8"):
        for record in records(make_source(spec, seed=3)):
            seen = {"root"}
            for child in record.children:
                assert child["parent"] in seen
                seen.add(child["ref"])


def test_doc_links_only_target_earlier_documents():
    source = make_source("scale-free:20", seed=5)
    streamed = []
    for record in source.stream(0):
        for _, target in record.doc_links:
            assert target in streamed
        streamed.append(record.doc_id)


def test_make_source_rejects_bad_specs():
    with pytest.raises(ValueError, match="unknown source spec"):
        make_source("bogus:10")
    with pytest.raises(ValueError, match="document count"):
        make_source("scale-free:many")
    with pytest.raises(ValueError, match="needs a path"):
        make_source("dir:")


def test_directory_source_parses_links(tmp_path):
    (tmp_path / "a.xml").write_text(
        '<article><title id="t1">A</title>'
        '<cite href="#t1"/><cite href="zzz-not-yet"/></article>'
    )
    (tmp_path / "b.xml").write_text(
        '<article><cite href="a"/><cite href="a#t1"/></article>'
    )
    source = DirectorySource(tmp_path)
    a, b = records(source)
    assert a.doc_id == "a" and b.doc_id == "b"
    # href="#t1" resolves locally; the forward reference becomes a
    # doc link the pipeline will drop (its target never streams)
    assert a.local_links == [("c2", "c1")]
    assert a.doc_links == [("c3", "zzz-not-yet")]
    assert [target for _, target in b.doc_links] == ["a", "a"]
    assert source.total == 2
    # restartable: cursor skips whole files
    assert records(source, cursor=1) == [b]


# ---------------------------------------------------------------------------
# pipeline
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("spec", ["scale-free:16", "deep-tree:10", "ontology:12"])
def test_streamed_answers_match_batch_build(spec):
    service = empty_service()
    summary = IngestPipeline(
        service, make_source(spec, seed=9), batch_docs=4
    ).run()
    assert summary.docs == int(spec.split(":")[1])
    reference = collection_from_source(make_source(spec, seed=9))
    assert service.index.collection.num_documents == reference.num_documents
    assert service.index.collection.num_elements == reference.num_elements
    paths = ["//article//cite", "//book//note", "//entry//title", "//title"]
    for backend in BACKENDS:
        batch = QueryEngine(HopiIndex.build(reference, backend=backend))
        streamed = QueryEngine(service.index.with_backend(backend))
        for path in paths:
            assert (
                sorted(r.target for r in batch.evaluate(path))
                == sorted(r.target for r in streamed.evaluate(path))
            ), (spec, backend, path)


def test_pipeline_drops_dangling_doc_links(tmp_path):
    (tmp_path / "a.xml").write_text('<article><cite href="missing"/></article>')
    service = empty_service()
    summary = IngestPipeline(service, DirectorySource(tmp_path)).run()
    assert summary.docs == 1
    assert summary.dropped_links == 1
    assert summary.links == 0


def test_pipeline_resume_dedupes_published_documents():
    source_args = ("scale-free:14",)
    straight = empty_service()
    IngestPipeline(
        straight, make_source(*source_args, seed=4), batch_docs=4
    ).run()
    reference = canonical_snapshot_bytes(straight.index.cover)

    service = empty_service()
    first = IngestPipeline(
        service, make_source(*source_args, seed=4), batch_docs=4
    ).run(max_docs=6)
    assert first.docs == 6
    # resume from cursor 0: everything already published must be
    # skipped, the rest ingested — exactly the WAL-ahead crash window
    second = IngestPipeline(
        service, make_source(*source_args, seed=4), batch_docs=4, cursor=0
    ).run()
    assert second.skipped == 6
    assert second.docs == 8
    assert canonical_snapshot_bytes(service.index.cover) == reference


def test_pipeline_batches_respect_max_docs_and_batch_size(tmp_path):
    # link-free documents: nothing forces an early flush, so batch
    # boundaries land exactly on batch_docs
    for i in range(20):
        (tmp_path / f"d{i:02d}.xml").write_text("<article><title>t</title></article>")
    service = empty_service()
    summary = IngestPipeline(
        service, DirectorySource(tmp_path), batch_docs=5
    ).run(max_docs=10)
    assert summary.docs == 10
    assert summary.batches == 2
    assert service.index.collection.num_documents == 10


def test_linked_sources_flush_before_intra_batch_doc_links():
    # a doc link into the open batch forces a flush, so linked sources
    # may produce more (never fewer) batches than ceil(docs/batch_docs)
    service = empty_service()
    summary = IngestPipeline(
        service, make_source("ontology:20", seed=6), batch_docs=5
    ).run(max_docs=10)
    assert summary.docs == 10
    assert summary.batches >= 2
    assert service.index.collection.num_documents == 10


def test_pipeline_records_freshness_lags():
    service = empty_service()
    summary = IngestPipeline(
        service, make_source("scale-free:10", seed=8), batch_docs=3
    ).run()
    assert len(summary.freshness_lags) == 10
    assert summary.freshness_p50_ms >= 0.0
    assert summary.freshness_p99_ms >= summary.freshness_p50_ms
    record = summary.as_record()
    assert "freshness_lags" not in record
    assert record["docs"] == 10


def test_pipeline_writes_frontier_after_each_batch(tmp_path):
    store_dir = str(tmp_path / "store")
    store = DurableIndexStore(store_dir)
    index = HopiIndex.build(Collection(), backend="arrays")
    store.initialize(index)
    service = QueryService(index, durable_store=store)
    IngestPipeline(
        service, make_source("scale-free:9", seed=3),
        batch_docs=4, store_dir=store_dir,
    ).run()
    checkpoint = FrontierCheckpoint.load(store_dir)
    assert checkpoint is not None
    assert checkpoint.cursor == 9
    assert checkpoint.source == "scale-free:9"
    assert checkpoint.seed == 3
    assert checkpoint.epoch == service.epoch
    service.close()


# ---------------------------------------------------------------------------
# frontier checkpoint
# ---------------------------------------------------------------------------

def test_frontier_roundtrip(tmp_path):
    checkpoint = FrontierCheckpoint(
        source="scale-free:100", seed=7, cursor=42, epoch=17, docs=40,
        total=100,
    )
    checkpoint.save(str(tmp_path))
    loaded = FrontierCheckpoint.load(str(tmp_path))
    assert loaded == checkpoint


def test_frontier_load_missing_returns_none(tmp_path):
    assert FrontierCheckpoint.load(str(tmp_path)) is None


def test_frontier_rejects_unknown_version(tmp_path):
    path = FrontierCheckpoint.path_for(str(tmp_path))
    payload = dataclasses.asdict(
        FrontierCheckpoint(source="s", seed=0)
    )
    payload["version"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="version"):
        FrontierCheckpoint.load(str(tmp_path))


# ---------------------------------------------------------------------------
# the /v1/metrics freshness gauge
# ---------------------------------------------------------------------------

def test_ingest_stats_gauge_in_metrics():
    service = empty_service()
    api = ServiceAPI(service)
    status, payload = api.dispatch("/v1/metrics", {}, None)
    assert status == 200
    assert payload["ingest"]["docs_total"] == 0
    assert payload["ingest"]["freshness_p50_ms"] is None

    IngestPipeline(
        service, make_source("scale-free:8", seed=2), batch_docs=4
    ).run()
    status, payload = api.dispatch("/v1/metrics", {}, None)
    gauge = payload["ingest"]
    assert gauge["docs_total"] == 8
    assert gauge["batches_total"] >= 2
    assert gauge["last_batch_age_seconds"] >= 0.0
    assert gauge["freshness_p50_ms"] >= 0.0
    assert gauge["freshness_p99_ms"] >= gauge["freshness_p50_ms"]
