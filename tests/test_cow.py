"""Copy-on-write forks: bit-identity with deep copies, zero leakage.

The COW invariants under test are the write path's correctness core:

1. **Bit-identity.** An epoch produced by applying Section-6
   maintenance to a ``cow_copy()`` fork must serialise to exactly the
   same canonical snapshot bytes as one produced from a deep ``copy()``
   — across every label backend and workload shape.
2. **No leakage.** Mutating a fork never changes the published
   original (and vice versa): shared rows are privatised on first
   write, whole-row replacements never alias, the collection's shared
   documents are owned before their first mutation.
3. **Chained forks.** The group-commit drainer forks a fork per
   sub-batch; privatisation must hold at every depth.
"""

import pickle
import random

import pytest

from repro.core.hopi import BACKENDS, HopiIndex
from repro.core.ops import apply_update_op
from repro.storage.snapshot import canonical_snapshot_bytes
from repro.xmlmodel.generator import dblp_like, inex_like

WORKLOADS = {
    "dblp": lambda: dblp_like(12, seed=7),
    "inex": lambda: inex_like(6, elements_per_doc=40, seed=7),
}


def build(workload, backend, *, distance=False):
    return HopiIndex.build(
        WORKLOADS[workload](), backend=backend, distance=distance,
        strategy="recursive", partitioner="node_weight", partition_limit=60,
    )


def section6_ops(index):
    """A deterministic Section-6 maintenance sequence touching every
    op family, derived from whatever the index actually contains."""
    collection = index.collection
    docs = sorted(collection.documents)
    roots = [collection.documents[d].root for d in docs]
    return [
        {"op": "insert_element", "parent": roots[0], "tag": "note"},
        {"op": "insert_edge", "source": roots[1], "target": roots[2]},
        {"op": "insert_edge", "source": roots[0], "target": roots[3]},
        {"op": "delete_edge", "source": roots[1], "target": roots[2]},
        {
            "op": "insert_document", "doc_id": "cow-doc", "root_tag": "article",
            "children": [{"ref": "a", "parent": "root", "tag": "author"}],
            "links": [["a", roots[0]]],
        },
        {"op": "delete_document", "doc_id": docs[4]},
    ]


def snap(index):
    return canonical_snapshot_bytes(index.cover)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestBitIdentity:
    def test_cow_epoch_matches_deep_copy_epoch(self, workload, backend):
        index = build(workload, backend)
        baseline = snap(index)

        deep = index.copy()
        cow = index.cow_copy()
        for op in section6_ops(index):
            apply_update_op(deep, op)
        for op in section6_ops(index):
            apply_update_op(cow, op)

        assert snap(cow) == snap(deep)
        # the published original saw none of it
        assert snap(index) == baseline
        cow.verify()  # BFS-closure oracle audit

    def test_fork_isolation_both_directions(self, workload, backend):
        index = build(workload, backend)
        fork = index.cow_copy()
        baseline = snap(index)
        docs = sorted(index.collection.documents)
        root = index.collection.documents[docs[0]].root

        fork.insert_element(root, "forked")
        assert snap(index) == baseline

        # mutating the original must not bleed into the fork either
        # (both sides of a fork track their own owned rows)
        fork_bytes = snap(fork)
        index.insert_element(root, "original")
        assert snap(fork) == fork_bytes


@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestChainedForks:
    def test_fork_of_fork_privatises_at_every_depth(self, backend):
        """The group-commit pattern: shadow → per-batch trial forks."""
        index = build("dblp", backend)
        baseline = snap(index)
        ops = section6_ops(index)

        shadow = index.cow_copy()
        for op in ops[:3]:
            apply_update_op(shadow, op)
        mid = snap(shadow)

        trial = shadow.cow_copy()
        for op in ops[3:]:
            apply_update_op(trial, op)

        assert snap(index) == baseline
        assert snap(shadow) == mid  # the failed/later batch never leaked up

        # equivalent single deep-copy application
        deep = index.copy()
        for op in ops:
            apply_update_op(deep, op)
        assert snap(trial) == snap(deep)

    def test_discarded_trial_rolls_back_alone(self, backend):
        index = build("dblp", backend)
        shadow = index.cow_copy()
        docs = sorted(shadow.collection.documents)
        root = shadow.collection.documents[docs[0]].root
        shadow.insert_element(root, "kept")
        committed = snap(shadow)

        trial = shadow.cow_copy()
        trial.insert_element(root, "doomed")
        trial.delete_document(docs[1])
        del trial  # batch failed: its fork is simply dropped

        assert snap(shadow) == committed


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_distance_cover_cow_matches_deep_copy(backend):
    index = build("dblp", backend, distance=True)
    baseline = snap(index)
    deep = index.copy()
    cow = index.cow_copy()
    for op in section6_ops(index):
        apply_update_op(deep, op)
        apply_update_op(cow, op)
    assert snap(cow) == snap(deep)
    assert snap(index) == baseline


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_random_op_fuzz_never_leaks(backend):
    """Property check: arbitrary interleavings of fork mutations keep
    the published epoch's bytes frozen and stay bit-identical to the
    deep-copy twin replaying the same sequence."""
    rng = random.Random(20260808)
    index = build("dblp", backend)
    baseline = snap(index)
    deep = index.copy()
    cow = index.cow_copy()

    for step in range(40):
        collection = cow.collection
        docs = sorted(collection.documents)
        roots = [collection.documents[d].root for d in docs]
        kind = rng.choice(["insert_element", "insert_edge", "delete_edge"])
        if kind == "insert_element":
            op = {
                "op": kind,
                "parent": rng.choice(roots),
                "tag": f"t{step}",
            }
        else:
            u, v = rng.sample(roots, 2)
            op = {"op": kind, "source": u, "target": v}
        try:
            apply_update_op(cow, op)
        except (KeyError, ValueError):
            # e.g. deleting an absent edge — must fail identically
            with pytest.raises((KeyError, ValueError)):
                apply_update_op(deep, op)
            continue
        apply_update_op(deep, op)
        assert snap(index) == baseline, f"leak at step {step}: {op}"

    assert snap(cow) == snap(deep)
    cow.verify()


def test_forked_array_cover_survives_pickle():
    """Pickling deep-copies rows, so the ``id()``-keyed owned-row
    bookkeeping must not travel with the cover."""
    index = build("dblp", "arrays")
    fork = index.cow_copy()
    docs = sorted(fork.collection.documents)
    root = fork.collection.documents[docs[0]].root
    fork.insert_element(root, "pickled")

    revived = pickle.loads(pickle.dumps(fork.cover))
    assert canonical_snapshot_bytes(revived) == snap(fork)
    # a revived cover is fully private: mutating it cannot touch the fork
    before = snap(fork)
    revived.add_lin(next(iter(revived.nodes)), next(iter(revived.nodes)))
    assert snap(fork) == before
