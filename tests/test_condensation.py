"""Tests for Tarjan SCC + condensation, including a networkx oracle."""

import random

import networkx as nx
import pytest

from repro.graph import Condensation, DiGraph, strongly_connected_components
from repro.graph.traversal import is_acyclic


def _scc_sets(components):
    return {frozenset(c) for c in components}


def test_acyclic_graph_all_trivial():
    g = DiGraph([(1, 2), (2, 3), (1, 3)])
    comps = strongly_connected_components(g)
    assert _scc_sets(comps) == {frozenset({1}), frozenset({2}), frozenset({3})}


def test_single_cycle():
    g = DiGraph([(1, 2), (2, 3), (3, 1)])
    comps = strongly_connected_components(g)
    assert _scc_sets(comps) == {frozenset({1, 2, 3})}


def test_two_cycles_bridge():
    g = DiGraph([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)])
    comps = strongly_connected_components(g)
    assert _scc_sets(comps) == {frozenset({1, 2}), frozenset({3, 4})}


def test_components_reverse_topological():
    g = DiGraph([(1, 2), (2, 3)])
    comps = strongly_connected_components(g)
    order = {frozenset(c): i for i, c in enumerate(comps)}
    # every edge goes from later to earlier in the list
    assert order[frozenset({3})] < order[frozenset({2})] < order[frozenset({1})]


def test_isolated_node_is_component():
    g = DiGraph()
    g.add_node(7)
    comps = strongly_connected_components(g)
    assert _scc_sets(comps) == {frozenset({7})}


def test_self_loop_component():
    g = DiGraph([(1, 1), (1, 2)])
    comps = strongly_connected_components(g)
    assert _scc_sets(comps) == {frozenset({1}), frozenset({2})}


def test_condensation_dag_structure():
    g = DiGraph([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3), (1, 4)])
    cond = Condensation(g)
    assert len(cond) == 2
    assert is_acyclic(cond.dag)
    c12 = cond.component_of[1]
    c34 = cond.component_of[3]
    assert cond.component_of[2] == c12
    assert cond.component_of[4] == c34
    assert cond.dag.has_edge(c12, c34)
    assert not cond.dag.has_edge(c34, c12)


def test_condensation_representative_and_sizes():
    g = DiGraph([(1, 2), (2, 1), (3, 1)])
    cond = Condensation(g)
    assert cond.representative(1) == cond.representative(2)
    assert cond.component_size(1) == 2
    assert cond.component_size(3) == 1
    assert not cond.is_dag_input
    dag_cond = Condensation(DiGraph([(1, 2)]))
    assert dag_cond.is_dag_input


def test_deep_cycle_no_recursion_limit():
    n = 30_000
    edges = [(i, i + 1) for i in range(n)] + [(n, 0)]
    g = DiGraph(edges)
    comps = strongly_connected_components(g)
    assert len(comps) == 1
    assert len(comps[0]) == n + 1


@pytest.mark.parametrize("seed", range(8))
def test_scc_matches_networkx_oracle(seed):
    rng = random.Random(seed)
    n = 60
    edges = [
        (rng.randrange(n), rng.randrange(n))
        for _ in range(rng.randrange(20, 160))
    ]
    g = DiGraph(edges)
    for v in range(n):
        g.add_node(v)
    nxg = nx.DiGraph(edges)
    nxg.add_nodes_from(range(n))
    ours = _scc_sets(strongly_connected_components(g))
    theirs = {frozenset(c) for c in nx.strongly_connected_components(nxg)}
    assert ours == theirs
