"""Unit tests for the array-backed cover family.

Protocol behaviours are mostly exercised by the randomized equivalence
suite (``test_equivalence.py``); this file covers the array-specific
machinery: sorted-array primitives, galloping merges, CSR round-trips
and the batched ``connected_many`` hot path.
"""

from array import array

import pytest

from repro.core.array_cover import (
    ArrayDistanceCover,
    ArrayTwoHopCover,
    galloping_intersects,
    galloping_min_plus,
    sorted_contains,
    sorted_insert,
    sorted_remove,
)
from repro.core.cover import CoverProtocol, DistanceTwoHopCover, TwoHopCover


# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------


def test_sorted_insert_remove_contains():
    arr = array("i")
    assert sorted_insert(arr, 5) and sorted_insert(arr, 1) and sorted_insert(arr, 3)
    assert list(arr) == [1, 3, 5]
    assert not sorted_insert(arr, 3)  # duplicate
    assert sorted_contains(arr, 3) and not sorted_contains(arr, 4)
    assert sorted_remove(arr, 3) and not sorted_remove(arr, 3)
    assert list(arr) == [1, 5]


@pytest.mark.parametrize(
    "a, b, expected",
    [
        ([], [1, 2], False),
        ([1, 3, 5], [2, 4, 6], False),
        ([1, 3, 5], [5, 7], True),
        ([10], list(range(100)), True),
        ([200], list(range(100)), False),  # disjoint ranges short-circuit
        (list(range(0, 50, 2)), list(range(1, 50, 2)), False),
        ([7], [7], True),
    ],
)
def test_galloping_intersects(a, b, expected):
    assert galloping_intersects(array("i", a), array("i", b)) is expected
    assert galloping_intersects(array("i", b), array("i", a)) is expected


def test_galloping_min_plus():
    c1, d1 = array("i", [1, 4, 9]), array("i", [5, 1, 2])
    c2, d2 = array("i", [2, 4, 9]), array("i", [1, 3, 1])
    # common centers: 4 (1+3=4) and 9 (2+1=3)
    assert galloping_min_plus(c1, d1, c2, d2) == 3
    assert galloping_min_plus(c1, d1, array("i", [3]), array("i", [0])) is None
    assert galloping_min_plus(array("i"), array("i"), c2, d2) is None


# ---------------------------------------------------------------------------
# the cover protocol
# ---------------------------------------------------------------------------


def test_array_covers_satisfy_protocol():
    assert isinstance(ArrayTwoHopCover(), CoverProtocol)
    assert isinstance(ArrayDistanceCover(), CoverProtocol)
    assert isinstance(TwoHopCover(), CoverProtocol)
    assert isinstance(DistanceTwoHopCover(), CoverProtocol)
    assert not ArrayTwoHopCover.is_distance_aware
    assert ArrayDistanceCover.is_distance_aware


def test_basic_label_semantics():
    cover = ArrayTwoHopCover([1, 2, 3, 4])
    cover.add_lout(1, 2)
    cover.add_lin(3, 2)
    assert cover.connected(1, 3)          # shared center 2
    assert cover.connected(1, 1)          # implicit self
    assert not cover.connected(3, 1)
    assert not cover.connected(1, 99)     # unknown node
    cover.add_lout(1, 3)                  # v itself as center
    assert cover.connected(1, 3)
    assert cover.lout_of(1) == {2, 3}
    assert cover.nodes_with_lout_center(2) == {1}
    assert cover.size == 3
    assert cover.stored_integers() == 12


def test_self_entries_are_dropped():
    cover = ArrayTwoHopCover([1])
    cover.add_lin(1, 1)
    cover.add_lout(1, 1)
    assert cover.size == 0


def test_discard_and_set_labels():
    cover = ArrayTwoHopCover([1, 2, 3])
    cover.add_lout(1, 2)
    cover.add_lout(1, 3)
    cover.discard_lout(1, 2)
    assert cover.lout_of(1) == {3}
    assert cover.nodes_with_lout_center(2) == set()
    cover.set_lout(1, {2})
    assert cover.lout_of(1) == {2}
    assert cover.nodes_with_lout_center(3) == set()
    cover.set_lout(1, ())
    assert cover.lout_of(1) == set()
    assert cover.size == 0


def test_remove_nodes_purges_labels_and_centers():
    cover = ArrayTwoHopCover([1, 2, 3])
    cover.add_lout(1, 2)
    cover.add_lin(3, 2)
    cover.remove_nodes({2})
    assert 2 not in cover.nodes
    assert cover.size == 0
    assert not cover.connected(1, 3)


def test_connected_many_matches_pointwise():
    cover = ArrayTwoHopCover(range(6))
    cover.add_lout(0, 2)
    cover.add_lin(3, 2)
    cover.add_lin(4, 2)
    cover.add_lout(0, 5)
    candidates = list(range(6)) + [77]
    batched = cover.connected_many(0, candidates)
    assert batched == [cover.connected(0, c) for c in candidates]
    assert cover.connected_many(77, candidates) == [False] * len(candidates)


def test_connected_many_excludes_non_universe_centers():
    """A center referenced by a label but outside the node universe is
    rejected by connected(); the batched path must agree."""
    cover = ArrayTwoHopCover([1, 2])
    cover.add_lout(1, 5)  # 5 interned as a center, never added as a node
    assert not cover.connected(1, 5)
    assert cover.connected_many(1, [5, 2, 1]) == [
        cover.connected(1, 5), cover.connected(1, 2), cover.connected(1, 1)
    ]
    sets_cover = TwoHopCover([1, 2])
    sets_cover.add_lout(1, 5)
    assert cover.connected_many(1, [5]) == sets_cover.connected_many(1, [5])


def test_union_and_copy_across_backends():
    sets_cover = TwoHopCover([1, 2, 3])
    sets_cover.add_lout(1, 2)
    arr = ArrayTwoHopCover([3, 4])
    arr.add_lin(4, 2)
    arr.union(sets_cover)
    assert arr.lout_of(1) == {2}
    assert arr.connected(1, 4)
    clone = arr.copy()
    clone.add_lout(3, 4)
    assert arr.lout_of(3) == set()


def test_distance_min_on_duplicate_insert():
    cover = ArrayDistanceCover([1, 2, 3])
    cover.add_lout(1, 2, 5)
    cover.add_lout(1, 2, 3)   # improves
    cover.add_lout(1, 2, 9)   # ignored
    cover.add_lin(3, 2, 1)
    assert cover.distance(1, 3) == 4
    assert cover.lout_of(1) == {2: 3}
    assert cover.distance(1, 1) == 0
    assert cover.distance(3, 1) is None
    assert cover.connected(1, 3)


def test_distance_self_hop_disjuncts():
    cover = ArrayDistanceCover([1, 2])
    cover.add_lout(1, 2, 4)   # center = v itself
    assert cover.distance(1, 2) == 4
    cover2 = ArrayDistanceCover([1, 2])
    cover2.add_lin(2, 1, 7)   # center = u itself
    assert cover2.distance(1, 2) == 7


def test_distance_to_reachability():
    cover = ArrayDistanceCover([1, 2, 3])
    cover.add_lout(1, 2, 2)
    cover.add_lin(3, 2, 1)
    reach = cover.to_reachability()
    assert reach.connected(1, 3)
    assert reach.size == cover.size


# ---------------------------------------------------------------------------
# CSR round-trips
# ---------------------------------------------------------------------------


def test_csr_roundtrip_reachability():
    cover = ArrayTwoHopCover(range(5))
    cover.add_lout(0, 2)
    cover.add_lin(3, 2)
    cover.add_lin(4, 0)
    back = ArrayTwoHopCover.from_csr(cover.to_csr())
    assert back.size == cover.size
    assert set(back.nodes) == set(cover.nodes)
    for u in range(5):
        for v in range(5):
            assert back.connected(u, v) == cover.connected(u, v)
        assert back.descendants(u) == cover.descendants(u)
        assert back.ancestors(u) == cover.ancestors(u)


def test_csr_roundtrip_distance():
    cover = ArrayDistanceCover(range(5))
    cover.add_lout(0, 2, 1)
    cover.add_lin(3, 2, 2)
    cover.add_lin(4, 0, 5)
    back = ArrayDistanceCover.from_csr(cover.to_csr())
    for u in range(5):
        for v in range(5):
            assert back.distance(u, v) == cover.distance(u, v)


def test_from_cover_preserves_entries():
    sets_cover = TwoHopCover(range(4))
    sets_cover.add_lout(0, 1)
    sets_cover.add_lout(0, 2)
    sets_cover.add_lin(3, 1)
    arr = ArrayTwoHopCover.from_cover(sets_cover)
    assert sorted(arr.entries()) == sorted(sets_cover.entries())
    dist = DistanceTwoHopCover(range(4))
    dist.add_lout(0, 1, 2)
    dist.add_lin(3, 1, 1)
    darr = ArrayDistanceCover.from_cover(dist)
    assert sorted(darr.entries()) == sorted(dist.entries())
