"""Tests for the command-line interface."""

import os
import pathlib

import pytest

from repro.cli import main


@pytest.fixture
def corpus(tmp_path):
    out = tmp_path / "corpus"
    assert main(["generate", "dblp", "-n", "12", "-o", str(out), "--seed", "5"]) == 0
    return out


@pytest.fixture
def index_path(corpus, tmp_path):
    db = tmp_path / "hopi.db"
    assert main(["build", str(corpus), "-o", str(db)]) == 0
    return db


def test_generate_writes_xml_files(corpus):
    files = sorted(corpus.glob("*.xml"))
    assert len(files) == 12
    assert files[0].read_text().startswith("<article")


def test_generate_inex(tmp_path):
    out = tmp_path / "inex"
    assert main(["generate", "inex", "-n", "3", "-o", str(out)]) == 0
    assert len(list(out.glob("*.xml"))) == 3


def test_build_creates_database(index_path):
    assert index_path.exists()
    assert index_path.stat().st_size > 0


def test_build_options(corpus, tmp_path):
    db = tmp_path / "opt.db"
    assert main([
        "build", str(corpus), "-o", str(db),
        "--strategy", "incremental", "--partitioner", "node_weight",
        "--partition-limit", "80", "--edge-weight", "AxD",
    ]) == 0
    assert db.exists()


def test_build_backend_arrays(corpus, tmp_path, capsys):
    db = tmp_path / "arr.db"
    assert main(["build", str(corpus), "-o", str(db), "--backend", "arrays"]) == 0
    out = capsys.readouterr().out
    assert "backend = arrays" in out
    assert main(["verify", str(db)]) == 0


def test_backend_flag_in_help(capsys):
    for sub in ("build", "query", "serve"):
        with pytest.raises(SystemExit):
            main([sub, "--help"])
        out = capsys.readouterr().out
        assert "--backend {sets,arrays,vector}" in out


def test_serve_rejects_unknown_backend(index_path, capsys):
    with pytest.raises(SystemExit):
        main(["serve", str(index_path), "--backend", "bogus"])
    err = capsys.readouterr().err
    assert "invalid choice: 'bogus'" in err


def test_serve_shard_flags_in_help(capsys):
    with pytest.raises(SystemExit):
        main(["serve", "--help"])
    out = capsys.readouterr().out
    assert "--shards" in out
    assert "--shard-workers" in out


def test_query_backends_agree(index_path, capsys):
    assert main(["query", str(index_path), "//article//author",
                 "--backend", "sets", "--limit", "50"]) == 0
    sets_out = capsys.readouterr().out
    assert main(["query", str(index_path), "//article//author",
                 "--backend", "arrays", "--limit", "50"]) == 0
    arrays_out = capsys.readouterr().out
    assert sets_out == arrays_out
    assert "<author>" in arrays_out


def test_invalid_backend_rejected(corpus, tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["build", str(corpus), "-o", str(tmp_path / "x.db"),
              "--backend", "bitmaps"])


def test_build_distance(corpus, tmp_path, capsys):
    db = tmp_path / "dist.db"
    assert main(["build", str(corpus), "-o", str(db), "--distance"]) == 0
    r1 = main(["connected", str(db), "0", "1", "--distance"])
    out = capsys.readouterr().out
    assert "distance:" in out


def test_build_no_documents(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(SystemExit):
        main(["build", str(empty), "-o", str(tmp_path / "x.db")])


def test_build_duplicate_stems(tmp_path):
    a = tmp_path / "a"
    b = tmp_path / "b"
    a.mkdir(), b.mkdir()
    (a / "doc.xml").write_text("<r/>")
    (b / "doc.xml").write_text("<r/>")
    with pytest.raises(SystemExit):
        main(["build", str(a), str(b), "-o", str(tmp_path / "x.db")])


def test_query(index_path, capsys):
    assert main(["query", str(index_path), "//article//author"]) == 0
    out = capsys.readouterr().out
    assert "<author>" in out


def test_query_limit(index_path, capsys):
    main(["query", str(index_path), "//article//author", "--limit", "2"])
    out = capsys.readouterr().out
    assert len(out.strip().splitlines()) <= 2


def test_connected_exit_codes(index_path, capsys):
    # element 0 is the first article root; its title is element 1
    assert main(["connected", str(index_path), "0", "1"]) == 0
    out = capsys.readouterr().out
    assert "connected" in out
    # title (1) cannot reach the root (0)
    assert main(["connected", str(index_path), "1", "0"]) == 1


def test_stats(index_path, capsys):
    assert main(["stats", str(index_path), "--closure"]) == 0
    out = capsys.readouterr().out
    assert "cover entries" in out
    assert "compression" in out
    assert "reachability" in out


def test_delete_doc_updates_file(index_path, capsys):
    assert main(["delete-doc", str(index_path), "dblp3"]) == 0
    out = capsys.readouterr().out
    assert "deleted 'dblp3'" in out
    assert main(["verify", str(index_path)]) == 0
    # the document is gone from a reloaded index
    from repro.storage import load_index

    assert "dblp3" not in load_index(str(index_path)).collection.documents


def test_delete_missing_doc(index_path):
    with pytest.raises(SystemExit):
        main(["delete-doc", str(index_path), "nope"])


def test_verify(index_path, capsys):
    assert main(["verify", str(index_path)]) == 0
    assert "verified" in capsys.readouterr().out


def test_build_from_single_files(tmp_path):
    f1 = tmp_path / "one.xml"
    f2 = tmp_path / "two.xml"
    f1.write_text('<a><ref xlink:href="two"/></a>')
    f2.write_text("<b><c/></b>")
    db = tmp_path / "f.db"
    assert main(["build", str(f1), str(f2), "-o", str(db)]) == 0
    assert main(["verify", str(db)]) == 0
