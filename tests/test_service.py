"""Tests for the serving tier: caches, coalescing, epochs, HTTP.

The centrepiece is the torn-read property: N reader threads querying
while a maintenance sequence hot-swaps the index must always observe
answers consistent with exactly one epoch — verified against per-epoch
oracles on both label backends.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.hopi import HopiIndex
from repro.query.engine import QueryEngine
from repro.service import (
    CoalescingCache,
    EpochHolder,
    LRUCache,
    QueryService,
    UpdateError,
    make_server,
)
from repro.storage.snapshot import save_snapshot
from repro.xmlmodel.generator import dblp_like


def build_index(backend="arrays", n_docs=12, seed=17):
    return HopiIndex.build(
        dblp_like(n_docs, seed=seed), backend=backend,
        strategy="recursive", partitioner="node_weight", partition_limit=60,
    )


@pytest.fixture(scope="module")
def arrays_index():
    return build_index("arrays")


def signature(results):
    return tuple((r.bindings, round(r.score, 9)) for r in results)


# ---------------------------------------------------------------------------
# LRU cache
# ---------------------------------------------------------------------------


class TestLRUCache:
    def test_put_get_and_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b", "fallback") == "fallback"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_get_or_create(self):
        cache = LRUCache(2)
        calls = []
        assert cache.get_or_create("k", lambda: calls.append(1) or 42) == 42
        assert cache.get_or_create("k", lambda: calls.append(1) or 43) == 42
        assert len(calls) == 1

    def test_get_or_create_concurrent_misses_compute_once(self):
        """Regression: two threads missing concurrently used to both
        run the factory, with the second ``put`` silently overwriting
        the first — get_or_create now has single-flight semantics."""
        cache = LRUCache(4)
        barrier = threading.Barrier(2)
        follower_started = threading.Event()
        calls = []
        results = []

        def factory():
            calls.append(threading.get_ident())
            # hold the leader until the second thread has entered
            # get_or_create, forcing the miss windows to overlap
            follower_started.wait(timeout=5.0)
            return object()

        def leader():
            barrier.wait()
            results.append(cache.get_or_create("k", factory))

        def follower():
            barrier.wait()
            follower_started.set()
            results.append(cache.get_or_create("k", factory))

        threads = [
            threading.Thread(target=leader),
            threading.Thread(target=follower),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert len(calls) == 1, "factory must run exactly once"
        assert len(results) == 2 and results[0] is results[1]
        assert cache.get("k") is results[0]

    def test_get_or_create_factory_error_not_cached(self):
        cache = LRUCache(2)
        with pytest.raises(RuntimeError):
            cache.get_or_create("k", lambda: (_ for _ in ()).throw(
                RuntimeError("boom")
            ))
        # the failure is not cached and does not wedge the key
        assert cache.get_or_create("k", lambda: 7) == 7

    def test_peek_does_not_count(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("zzz") is None
        assert cache.hits == 0 and cache.misses == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)


# ---------------------------------------------------------------------------
# in-flight coalescing
# ---------------------------------------------------------------------------


class TestCoalescingCache:
    def test_concurrent_identical_computations_run_once(self):
        cache = CoalescingCache(8)
        gate = threading.Event()
        computed = []
        sources = []
        lock = threading.Lock()

        def compute():
            gate.wait(timeout=5)
            with lock:
                computed.append(1)
            return "value"

        def request():
            value, source = cache.get_or_compute("key", compute)
            with lock:
                sources.append((value, source))

        threads = [threading.Thread(target=request) for _ in range(8)]
        for t in threads:
            t.start()
        # let every thread reach wait-or-compute, then open the gate
        deadline = threading.Event()
        deadline.wait(0.05)
        gate.set()
        for t in threads:
            t.join()
        assert len(computed) == 1
        values = {v for v, _ in sources}
        assert values == {"value"}
        kinds = [s for _, s in sources]
        assert kinds.count("computed") == 1
        assert cache.coalesced == kinds.count("coalesced")
        # late caller hits the cache
        assert cache.get_or_compute("key", compute)[1] == "hit"

    def test_error_propagates_to_waiters_and_is_not_cached(self):
        cache = CoalescingCache(8)

        def boom():
            raise RuntimeError("compute failed")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("key", boom)
        # the failure is not cached: the next call recomputes
        value, source = cache.get_or_compute("key", lambda: 7)
        assert (value, source) == (7, "computed")


# ---------------------------------------------------------------------------
# epoch holder
# ---------------------------------------------------------------------------


def test_epoch_must_advance(arrays_index):
    service = QueryService(arrays_index.copy())
    holder = service._holder
    with pytest.raises(ValueError):
        holder.publish(holder.current)


# ---------------------------------------------------------------------------
# QueryService read path
# ---------------------------------------------------------------------------


class TestServiceReads:
    def test_matches_direct_engine(self, arrays_index):
        service = QueryService(arrays_index.copy())
        engine = QueryEngine(arrays_index)
        response = service.query("//article//author")
        assert signature(response.results) == signature(
            engine.evaluate("//article//author")
        )
        assert response.epoch == 0
        assert response.source == "computed"

    def test_result_cache_and_limit_share_entry(self, arrays_index):
        service = QueryService(arrays_index.copy())
        first = service.query("//article//author")
        second = service.query("//article//author", limit=3)
        assert second.source == "hit"
        assert second.results == first.results[:3]

    def test_count_is_untruncated(self, arrays_index):
        service = QueryService(arrays_index.copy(), max_results=2)
        epoch, n = service.count("//article//author")
        assert epoch == 0
        full = QueryEngine(arrays_index, max_results=10**9)
        assert n == len(full.evaluate("//article//author"))
        assert n > 2  # the query() path would truncate; count must not

    def test_connected_and_distance(self, arrays_index):
        service = QueryService(arrays_index.copy())
        collection = arrays_index.collection
        root = sorted(collection.documents)[0]
        doc_root = collection.documents[root].root
        child = sorted(collection.documents[root].elements)[1]
        epoch, connected = service.connected(doc_root, child)
        assert epoch == 0 and connected
        with pytest.raises(TypeError):
            service.distance(doc_root, child)  # not distance-aware

    def test_probe_coalescing_visible_in_stats(self, arrays_index):
        service = QueryService(arrays_index.copy())
        service.query("//article//author")
        service.query("//article//cite")
        stats = service.stats()
        assert stats["probe_cache"]["hits"] + stats["probe_cache"]["misses"] > 0
        assert stats["requests"]["query"] == 2

    def test_backward_probes_hit_cache_on_second_run(self, arrays_index):
        """Backward (ancestors-side) probes land in the per-epoch cache
        under ``("bwd", target, step_key)`` keys, so a second
        backward-heavy query in the same epoch reuses them instead of
        recomputing every ancestor intersection."""
        service = QueryService(arrays_index.copy())
        # ``//*//cite`` seeds at the selective tail and extends backward
        service.query("//*//cite")
        first = service.stats()["probe_cache"]
        assert first["misses"] > 0 and first["hits"] == 0
        # a window clause changes the result-cache key, not the probes
        service.query("//*//cite limit 5")
        second = service.stats()["probe_cache"]
        assert second["hits"] >= first["misses"]
        assert second["misses"] == first["misses"]


# ---------------------------------------------------------------------------
# QueryService write path
# ---------------------------------------------------------------------------


class TestServiceUpdates:
    def test_update_swaps_epoch_and_invalidates(self, arrays_index):
        service = QueryService(arrays_index.copy())
        before = service.query("//article//author")
        doc = sorted(service.index.collection.documents)[0]
        report = service.update([{"op": "delete_document", "doc_id": doc}])
        assert report["epoch"] == 1
        assert report["applied"] == 1
        after = service.query("//article//author")
        assert after.epoch == 1
        assert after.source == "computed"  # new epoch, fresh entry
        assert len(after.results) < len(before.results)
        service.index.verify()

    def test_update_batch_is_atomic(self, arrays_index):
        service = QueryService(arrays_index.copy())
        doc = sorted(service.index.collection.documents)[0]
        root = service.index.collection.documents[doc].root
        with pytest.raises(UpdateError):
            service.update([
                {"op": "insert_element", "parent": root, "tag": "note"},
                {"op": "delete_document", "doc_id": "no-such-doc"},
            ])
        # nothing applied: epoch unchanged, element not inserted
        assert service.epoch == 0
        assert "note" not in service.index.collection.tags()

    def test_update_empty_batch_is_noop(self, arrays_index):
        service = QueryService(arrays_index.copy())
        assert service.update([]) == {"epoch": 0, "applied": 0, "reports": []}

    def test_unknown_and_malformed_ops(self, arrays_index):
        service = QueryService(arrays_index.copy())
        with pytest.raises(UpdateError):
            service.update([{"op": "florble"}])
        with pytest.raises(UpdateError):
            service.update(["not-a-dict"])

    def test_insert_document_compound_op(self, arrays_index):
        service = QueryService(arrays_index.copy())
        target_doc = sorted(service.index.collection.documents)[0]
        target = service.index.collection.documents[target_doc].root
        report = service.update([{
            "op": "insert_document",
            "doc_id": "svcdoc",
            "root_tag": "article",
            "children": [
                {"ref": "a", "tag": "author"},
                {"ref": "c", "parent": "a", "tag": "cite"},
            ],
            "links": [["c", target]],
        }])
        assert report["epoch"] == 1
        refs = report["reports"][0]["elements"]
        assert set(refs) == {"root", "a", "c"}
        # the link is live: the new cite reaches the cited document root
        _, connected = service.connected(refs["c"], target)
        assert connected
        service.index.verify()

    def test_insert_document_rejects_cross_document_parent(self, arrays_index):
        """A child parented into another document would be added to the
        collection but never integrated into the cover — must be a
        rejected batch, not silent index corruption."""
        service = QueryService(arrays_index.copy())
        other_doc = sorted(service.index.collection.documents)[0]
        foreign = service.index.collection.documents[other_doc].root
        with pytest.raises(UpdateError, match="not an element of the new"):
            service.update([{
                "op": "insert_document",
                "doc_id": "baddoc",
                "children": [{"parent": foreign, "tag": "author"}],
            }])
        assert service.epoch == 0
        assert "baddoc" not in service.index.collection.documents
        # every collection element is still covered
        for e in service.index.collection.elements:
            assert e in service.index.cover.nodes

    def test_negative_limit_rejected(self, arrays_index):
        service = QueryService(arrays_index.copy())
        with pytest.raises(ValueError, match="non-negative"):
            service.query("//article//author", limit=-1)

    def test_apply_arbitrary_mutator(self, arrays_index):
        service = QueryService(arrays_index.copy())
        docs = sorted(service.index.collection.documents)

        def mutator(shadow):
            return shadow.delete_document(docs[1]).operation

        epoch, op = service.apply(mutator)
        assert (epoch, op) == (1, "delete_document")
        assert docs[1] not in service.index.collection.documents

    def test_rebuild_op(self, arrays_index):
        service = QueryService(arrays_index.copy())
        report = service.update([{"op": "rebuild", "strategy": "unpartitioned"}])
        assert report["epoch"] == 1
        assert report["reports"][0]["cover_size"] == service.index.cover.size
        service.index.verify()


# ---------------------------------------------------------------------------
# snapshot hot-reload
# ---------------------------------------------------------------------------


class TestSnapshotReload:
    def test_reload_cover_hot_swaps(self, tmp_path, arrays_index):
        service = QueryService(arrays_index.copy())
        before = service.query("//article//author")
        # an offline rebuild produces a (differently shaped) snapshot
        rebuilt = arrays_index.copy().rebuild(strategy="unpartitioned")
        snap = tmp_path / "rebuilt.snap"
        save_snapshot(snap, rebuilt.cover)
        epoch = service.reload_cover(snap)
        assert epoch == 1
        after = service.query("//article//author")
        assert after.epoch == 1
        assert signature(after.results) == signature(before.results)

    def test_reload_cover_from_store(self, tmp_path, arrays_index):
        """A polling maintenance thread shares one SnapshotCoverStore;
        the service re-reads through its reload()."""
        from repro.storage.snapshot import SnapshotCoverStore

        service = QueryService(arrays_index.copy())
        snap = tmp_path / "live.snap"
        store = SnapshotCoverStore(snap)
        store.save_cover(arrays_index.copy().rebuild(strategy="unpartitioned").cover)
        epoch = service.reload_cover(store)
        assert epoch == 1
        response = service.query("//article//author")
        assert response.epoch == 1 and response.results

    def test_reload_rejects_noncovering_snapshot(self, tmp_path, arrays_index):
        shrunk = arrays_index.copy()
        doc = sorted(shrunk.collection.documents)[0]
        shrunk.delete_document(doc)
        snap = tmp_path / "shrunk.snap"
        save_snapshot(snap, shrunk.cover)
        service = QueryService(arrays_index.copy())
        with pytest.raises(UpdateError):
            service.reload_cover(snap)
        assert service.epoch == 0


# ---------------------------------------------------------------------------
# the torn-read property: concurrent readers + writer, both backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["sets", "arrays"])
def test_concurrent_readers_never_observe_torn_epochs(backend):
    """N reader threads during a maintenance sequence: every answer must
    equal the oracle of exactly the epoch it reports — fully pre- or
    fully post-swap, never a mix."""
    index = build_index(backend)
    paths = ["//article//author", "//article//cite", "//article//title"]
    collection = index.collection
    docs = sorted(collection.documents)
    roots = [collection.documents[d].root for d in docs]
    ops = [
        [{"op": "insert_element", "parent": roots[1], "tag": "note"}],
        [{"op": "delete_document", "doc_id": docs[2]}],
        [{"op": "insert_edge", "source": roots[3], "target": roots[4]}],
        [{"op": "delete_document", "doc_id": docs[5]}],
    ]

    # ---- per-epoch oracles, computed by replaying the sequence offline
    oracle = {}
    replica = index.copy()

    def snap(epoch):
        engine = QueryEngine(replica)
        oracle[epoch] = {p: signature(engine.evaluate(p)) for p in paths}

    snap(0)
    replay = QueryService(replica.copy())
    for i, batch in enumerate(ops):
        replay.update(batch)
        replica = replay.index
        snap(i + 1)

    # ---- live run: 4 readers at full speed, writer swapping in between
    service = QueryService(index)
    mismatches = []
    errors = []
    lock = threading.Lock()
    writer_done = threading.Event()
    n_readers = 4
    # the writer passes the barrier with the readers, so no update can
    # complete before every reader is live; readers also run a minimum
    # number of cycles so the overlap is real, not vacuous; one extra
    # prober hammers /v1/stats + /v1/healthz the whole time — the ops
    # counters must never tear mid-swap (negative ages, epoch jumps)
    start = threading.Barrier(n_readers + 2)
    min_iters = 10 * len(paths)

    def reader():
        start.wait(timeout=30)
        i = 0
        last_epoch = -1
        while (
            i < min_iters
            or not writer_done.is_set()
            or i % len(paths) != 0
        ):
            path = paths[i % len(paths)]
            i += 1
            try:
                response = service.query(path)
            except BaseException as exc:  # noqa: BLE001
                with lock:
                    errors.append(exc)
                return
            got = signature(response.results)
            expected = oracle[response.epoch][path]
            if got != expected:
                with lock:
                    mismatches.append((path, response.epoch))
            if response.epoch < last_epoch:
                with lock:
                    mismatches.append(("epoch went backwards", response.epoch))
            last_epoch = response.epoch
            if i > 20_000:  # safety net on slow machines
                break

    def prober():
        """stats() and healthz() under concurrent hot-swap: epoch and
        swap counters must stay monotone and the derived ages must
        never go negative — a torn read of ``_published_at`` vs the
        holder would show up here as a negative age or a swap count
        ahead of the epoch."""
        start.wait(timeout=30)
        last_epoch = -1
        last_swaps = -1
        while not writer_done.is_set():
            for payload in (service.stats(), service.healthz()):
                epoch = payload["epoch"]
                swaps = payload["swaps"]
                age = payload.get("epoch_age_seconds")
                uptime = payload.get("uptime_seconds")
                if not 0 <= epoch <= len(ops):
                    with lock:
                        mismatches.append(("probe epoch out of range", epoch))
                if not 0 <= swaps <= len(ops):
                    with lock:
                        mismatches.append(("probe swaps out of range", swaps))
                if epoch < last_epoch or swaps < last_swaps:
                    with lock:
                        mismatches.append(
                            ("probe counters went backwards", (epoch, swaps))
                        )
                if age is not None and age < 0:
                    with lock:
                        mismatches.append(("negative epoch age", age))
                if uptime is not None and uptime < 0:
                    with lock:
                        mismatches.append(("negative uptime", uptime))
                last_epoch = max(last_epoch, epoch)
                last_swaps = max(last_swaps, swaps)

    readers = [threading.Thread(target=reader) for _ in range(n_readers)]
    readers.append(threading.Thread(target=prober))
    for t in readers:
        t.start()
    start.wait(timeout=30)
    for batch in ops:
        service.update(batch)
    writer_done.set()
    for t in readers:
        t.join()

    assert not errors
    assert not mismatches
    assert service.epoch == len(ops)
    # final state agrees with the offline replay on both backends
    final_engine = QueryEngine(service.index)
    for path in paths:
        assert signature(final_engine.evaluate(path)) == oracle[len(ops)][path]


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------


@pytest.fixture()
def http_service(arrays_index):
    service = QueryService(arrays_index.copy())
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield service, base
    server.shutdown()
    server.server_close()


def get_json(url):
    with urllib.request.urlopen(url) as resp:
        return resp.status, json.loads(resp.read())


def post_json(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req) as resp:
        return resp.status, json.loads(resp.read())


class TestHTTP:
    def test_query_endpoint(self, http_service):
        service, base = http_service
        status, data = get_json(f"{base}/query?path=//article//author&limit=5")
        assert status == 200
        assert data["epoch"] == 0
        assert data["count"] == len(data["results"]) <= 5
        first = data["results"][0]
        assert {"score", "element", "doc", "tag", "bindings"} <= set(first)

    def test_count_connected_stats(self, http_service):
        service, base = http_service
        status, count = get_json(f"{base}/count?path=//article//author")
        assert status == 200 and count["count"] > 0
        root = sorted(service.index.collection.documents)[0]
        eid = service.index.collection.documents[root].root
        status, conn = get_json(
            f"{base}/connected?source={eid}&target={eid}"
        )
        assert status == 200 and conn["connected"] is True
        status, stats = get_json(f"{base}/stats")
        assert status == 200
        assert stats["requests"].get("count", 0) == 1
        assert stats["epoch"] == 0

    def test_update_endpoint_hot_swaps(self, http_service):
        service, base = http_service
        root_doc = sorted(service.index.collection.documents)[0]
        root = service.index.collection.documents[root_doc].root
        status, report = post_json(
            f"{base}/update",
            {"ops": [{"op": "insert_element", "parent": root, "tag": "httpnote"}]},
        )
        assert status == 200 and report["epoch"] == 1
        status, data = get_json(f"{base}/query?path=//article//httpnote")
        assert status == 200 and data["epoch"] == 1
        # every article reaching the insertion point (via citation
        # links) matches; all matches target the one new element
        assert data["count"] >= 1
        assert {r["tag"] for r in data["results"]} == {"httpnote"}

    def test_error_statuses(self, http_service):
        _, base = http_service
        for url in [
            f"{base}/query?path=%%%bogus",
            f"{base}/query",                      # missing path param
            f"{base}/query?path=//article&limit=-1",
            f"{base}/connected?source=x&target=1",
            f"{base}/distance?source=0&target=1",  # not distance-aware
        ]:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(url)
            assert err.value.code == 400
            assert "error" in json.loads(err.value.read())
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/no-such-endpoint")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            post_json(f"{base}/update", {"ops": [{"op": "florble"}]})
        assert err.value.code == 400
        # valid JSON but not an object/list must be a 400, not a 500
        for bad_body in ["a string", 42, {"ops": "not-a-list"}]:
            with pytest.raises(urllib.error.HTTPError) as err:
                post_json(f"{base}/update", bad_body)
            assert err.value.code == 400

    def test_malformed_update_is_400_and_epoch_unchanged(self, http_service):
        """Regression: malformed /update batches used to surface as raw
        500s; they must be structured 400s that never touch the index."""
        service, base = http_service
        epoch_before = service.epoch
        size_before = service.index.cover.size

        # body that is not valid JSON at all
        req = urllib.request.Request(
            f"{base}/update", data=b'{"ops": [not json',
            method="POST", headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        assert err.value.code == 400
        assert "error" in json.loads(err.value.read())

        # parseable JSON whose op shapes are malformed in various ways
        root_doc = sorted(service.index.collection.documents)[0]
        root = service.index.collection.documents[root_doc].root
        bad_batches = [
            {"ops": [{"op": "insert_element", "parent": None, "tag": "x"}]},
            {"ops": [{"op": "insert_document", "doc_id": "z9",
                      "children": [42]}]},          # child not an object
            {"ops": [{"op": "insert_edge", "source": "abc", "target": 1}]},
            {"ops": [41, 42]},                        # ops not objects
            # a valid op followed by a broken one: all-or-nothing means
            # even the valid prefix must be discarded
            {"ops": [{"op": "insert_element", "parent": root, "tag": "ok"},
                     {"op": "florble"}]},
        ]
        for batch in bad_batches:
            with pytest.raises(urllib.error.HTTPError) as err:
                post_json(f"{base}/update", batch)
            assert err.value.code == 400, batch
            assert "error" in json.loads(err.value.read())

        status, stats = get_json(f"{base}/stats")
        assert status == 200
        assert stats["epoch"] == epoch_before, "failed batch advanced the epoch"
        assert service.epoch == epoch_before
        assert service.index.cover.size == size_before
        assert service.stats()["swaps"] == 0

    def test_concurrent_http_clients(self, http_service):
        service, base = http_service
        errors = []

        def client():
            try:
                for _ in range(10):
                    status, data = get_json(
                        f"{base}/query?path=//article//cite&limit=3"
                    )
                    assert status == 200
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert service.stats()["result_cache"]["hits"] > 0


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------


def test_cli_serve_smoke(tmp_path):
    """`repro serve --max-requests` serves real HTTP and exits."""
    from repro.cli import main

    corpus = tmp_path / "corpus"
    db = tmp_path / "hopi.db"
    assert main(["generate", "dblp", "-n", "6", "-o", str(corpus)]) == 0
    assert main(["build", str(corpus), "-o", str(db), "--backend", "arrays"]) == 0

    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()

    result = {}

    def run():
        result["rc"] = main([
            "serve", str(db), "--port", str(port), "--max-requests", "1",
        ])

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    deadline = 5.0
    status = data = None
    import time as _time
    t0 = _time.time()
    while _time.time() - t0 < deadline:
        try:
            status, data = get_json(
                f"http://127.0.0.1:{port}/query?path=//article//author&limit=2"
            )
            break
        except (urllib.error.URLError, ConnectionError):
            _time.sleep(0.05)
    thread.join(timeout=5)
    assert status == 200
    assert data["count"] >= 0
    assert result.get("rc") == 0


class TestV1HTTP:
    """The versioned surface: pagination, explain, structured errors,
    deprecated legacy aliases."""

    def test_v1_query_pagination(self, http_service):
        _, base = http_service
        status, full = get_json(f"{base}/v1/query?path=//article//author")
        assert status == 200
        assert "deprecated" not in full
        total = full["total"]
        assert total == full["count"] > 4
        assert full["next_offset"] is None
        assert full["truncated"] is False

        status, page = get_json(
            f"{base}/v1/query?path=//article//author&limit=3&offset=2"
        )
        assert status == 200
        assert (page["count"], page["offset"], page["limit"]) == (3, 2, 3)
        assert page["total"] == total
        assert page["next_offset"] == 5
        assert page["results"] == full["results"][2:5]

        status, tail = get_json(
            f"{base}/v1/query?path=//article//author&offset={total - 1}"
        )
        assert tail["count"] == 1 and tail["next_offset"] is None

    def test_v1_expression_window_interacts_with_pagination(self, http_service):
        _, base = http_service
        path = "//article//author%20limit%202"
        status, data = get_json(f"{base}/v1/query?path={path}")
        assert status == 200
        assert data["path"] == "//article//author limit 2"
        assert data["count"] == data["total"] == 2

    def test_v1_count_and_stats(self, http_service):
        service, base = http_service
        status, data = get_json(f"{base}/v1/count?path=//article//author")
        assert status == 200
        assert data["count"] == service.count("//article//author")[1]
        status, stats = get_json(f"{base}/v1/stats")
        assert status == 200
        assert stats["legacy_hits"] == 0

    def test_v1_explain(self, http_service):
        _, base = http_service
        status, data = get_json(f"{base}/v1/explain?path=//*//author")
        assert status == 200
        plan = data["plan"]
        assert plan["backend"] == "arrays"
        assert plan["mode"] == "selective"
        assert {s["step"] for s in plan["steps"]} == {"//*", "//author"}
        assert all(s["estimate"] > 0 for s in plan["steps"])
        assert [op["op"] for op in plan["order"]] == ["scan", "descendant"]
        assert "order:" in plan["text"]

    def test_v1_structured_errors(self, http_service):
        _, base = http_service
        for url in [
            f"{base}/v1/query?path=//article&limit=0",
            f"{base}/v1/query?path=//article&limit=-1",
            f"{base}/v1/query?path=//article&limit=abc",
            f"{base}/v1/query?path=//article&offset=-1",
            f"{base}/v1/query?path=%%%bogus",
            f"{base}/v1/connected?source=x&target=1",
        ]:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(url)
            assert err.value.code == 400, url
            error = json.loads(err.value.read())["error"]
            assert error["code"] == "bad_request" and error["message"], url
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/v1/no-such")
        assert err.value.code == 404
        assert json.loads(err.value.read())["error"]["code"] == "not_found"
        # /explain is v1-only: the legacy alias must 404, not dispatch
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/explain?path=//article")
        assert err.value.code == 404

    def test_legacy_int_param_validation_is_400_not_500(self, http_service):
        _, base = http_service
        for query in ["limit=-1", "limit=abc", "offset=-2"]:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/query?path=//article&{query}")
            assert err.value.code == 400, query
            payload = json.loads(err.value.read())
            assert isinstance(payload["error"], str)  # legacy flat shape
        # the legacy limit=0 contract (empty 200 page) must survive —
        # only /v1 rejects a zero limit
        status, data = get_json(f"{base}/query?path=//article&limit=0")
        assert status == 200 and data["results"] == []
        assert data["deprecated"] is True

    def test_legacy_aliases_deprecated_and_counted(self, http_service):
        service, base = http_service
        status, legacy = get_json(f"{base}/query?path=//article//author&limit=2")
        assert status == 200 and legacy["deprecated"] is True
        status, count = get_json(f"{base}/count?path=//article//author")
        assert count["deprecated"] is True
        status, v1 = get_json(f"{base}/v1/query?path=//article//author&limit=2")
        assert "deprecated" not in v1
        assert [r["element"] for r in v1["results"]] == [
            r["element"] for r in legacy["results"]
        ]
        status, stats = get_json(f"{base}/v1/stats")
        assert stats["legacy_hits"] == 2
        assert stats["requests"]["legacy:query"] == 1
        assert stats["requests"]["legacy:count"] == 1

    def test_v1_update_hot_swap_never_leaks_deleted_elements(self, http_service):
        """Satellite: a stale candidate memo must never leak deleted
        elements into /v1/query answers across a hot-swap (each epoch
        publishes a fresh engine with fresh memos)."""
        service, base = http_service
        path = "//article//author"
        status, before = get_json(f"{base}/v1/query?path={path}")
        assert status == 200 and before["results"]
        victim_doc = before["results"][0]["doc"]
        deleted = set(
            service.index.collection.documents[victim_doc].elements
        )
        status, report = post_json(
            f"{base}/v1/update",
            {"ops": [{"op": "delete_document", "doc_id": victim_doc}]},
        )
        assert status == 200 and report["epoch"] == before["epoch"] + 1

        status, after = get_json(f"{base}/v1/query?path={path}")
        assert after["epoch"] == report["epoch"]
        survivors = {
            e for r in after["results"] for e in r["bindings"]
        }
        assert not survivors & deleted
        assert after["total"] < before["total"]
        # the same holds through the service object (no HTTP cache quirks)
        response = service.query(path)
        assert response.epoch == report["epoch"]
        assert not {
            e for r in response.results for e in r.bindings
        } & deleted

    def test_truncated_flag_when_max_results_hit(self, arrays_index):
        """total is a lower bound once the ranked list hits max_results
        — the payload must say so instead of lying silently."""
        service = QueryService(arrays_index.copy(), max_results=3)
        response = service.query("//article//author")
        assert response.truncated is True
        assert response.total == 3
        _, exact = service.count("//article//author")
        assert exact > 3

        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = f"http://127.0.0.1:{server.server_address[1]}"
            status, data = get_json(f"{base}/v1/query?path=//article//author")
            assert data["truncated"] is True and data["total"] == 3
        finally:
            server.shutdown()
            server.server_close()
