"""Tests for the path-expression parser, ontology, and query engine."""

import pytest

from repro.core import HopiIndex
from repro.query import (
    QueryEngine,
    TagOntology,
    default_ontology,
    parse_path,
)
from repro.query.pathexpr import PathSyntaxError
from repro.xmlmodel import Collection, dblp_like


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def test_parse_descendant_steps():
    expr = parse_path("//book//author")
    assert len(expr) == 2
    assert expr.steps[0].axis == "descendant"
    assert expr.steps[0].tag == "book"
    assert expr.steps[1].tag == "author"


def test_parse_child_steps():
    expr = parse_path("/bib/book/title")
    assert [s.axis for s in expr.steps] == ["child"] * 3
    assert [s.tag for s in expr.steps] == ["bib", "book", "title"]


def test_parse_mixed_and_wildcard():
    expr = parse_path("/bib//book/*")
    assert [s.axis for s in expr.steps] == ["child", "descendant", "child"]
    assert expr.steps[2].tag == "*"


def test_parse_similarity():
    expr = parse_path("//~book//author")
    assert expr.steps[0].similar
    assert not expr.steps[1].similar


def test_parse_roundtrip_str():
    for text in ["//book//author", "/a/b//c", "//~publication/*"]:
        assert str(parse_path(text)) == text


@pytest.mark.parametrize(
    "bad", ["", "book", "//", "/", "//~*", "//book]", "book//author"]
)
def test_parse_errors(bad):
    with pytest.raises(PathSyntaxError):
        parse_path(bad)


# ---------------------------------------------------------------------------
# ontology
# ---------------------------------------------------------------------------


def test_ontology_identity():
    onto = TagOntology()
    assert onto.similarity("a", "a") == 1.0
    assert onto.similarity("a", "b") == 0.0


def test_ontology_symmetric():
    onto = TagOntology()
    onto.relate("book", "monography", 0.9)
    assert onto.similarity("book", "monography") == 0.9
    assert onto.similarity("monography", "book") == 0.9


def test_ontology_invalid_score():
    onto = TagOntology()
    with pytest.raises(ValueError):
        onto.relate("a", "b", 0.0)
    with pytest.raises(ValueError):
        onto.relate("a", "b", 1.5)


def test_similar_tags_sorted():
    onto = default_ontology()
    ranked = onto.similar_tags(
        "book", ["monography", "publication", "article", "unrelated"]
    )
    tags = [t for t, _ in ranked]
    assert tags[0] == "monography"
    assert "unrelated" not in tags


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def bib_index():
    """Small two-document bibliography with a citation link."""
    c = Collection()
    bib = c.new_document("bib1", "bib")
    book = c.add_child(bib.eid, "book")
    c.add_child(book.eid, "title").text = "The Art"
    author = c.add_child(book.eid, "author")
    author.text = "Knuth"
    cite = c.add_child(book.eid, "cite")

    mono = c.new_document("bib2", "monography")
    c.add_child(mono.eid, "title").text = "Another"
    c.add_child(mono.eid, "author").text = "Dijkstra"

    c.add_link(cite.eid, mono.eid)
    index = HopiIndex.build(c, strategy="unpartitioned")
    return c, index, {
        "bib": bib.eid, "book": book.eid, "author": author.eid,
        "cite": cite.eid, "mono": mono.eid,
    }


def test_descendant_query(bib_index):
    c, index, ids = bib_index
    engine = QueryEngine(index)
    results = engine.evaluate("//book//author")
    # both authors match: the book's own and, across the citation link,
    # the monography's author — the paper's wildcard-over-links case
    authors = {r.target for r in results}
    assert ids["author"] in authors
    assert len(authors) == 2


def test_child_query_absolute(bib_index):
    c, index, ids = bib_index
    engine = QueryEngine(index)
    results = engine.evaluate("/bib/book")
    assert {r.target for r in results} == {ids["book"]}
    # non-root 'book' start yields nothing on an absolute path
    assert engine.evaluate("/book") == []


def test_wildcard_query(bib_index):
    c, index, ids = bib_index
    engine = QueryEngine(index)
    results = engine.evaluate("/bib/book/*")
    tags = {c.elements[r.target].tag for r in results}
    assert tags == {"title", "author", "cite"}


def test_similarity_query(bib_index):
    c, index, ids = bib_index
    engine = QueryEngine(index)
    results = engine.evaluate("//~book//author")
    # ~book matches book (1.0) and monography (0.9): authors under both
    targets = {r.target for r in results}
    assert len(targets) == 2
    # exact-tag match ranks first
    assert results[0].score >= results[-1].score


def test_similarity_threshold(bib_index):
    c, index, ids = bib_index
    engine = QueryEngine(index, similarity_threshold=0.95)
    results = engine.evaluate("//~book")
    tags = {c.elements[r.target].tag for r in results}
    assert tags == {"book"}  # monography (0.9) filtered out


def test_no_match(bib_index):
    _, index, _ = bib_index
    engine = QueryEngine(index)
    assert engine.evaluate("//nonexistent//author") == []
    assert engine.count("//nonexistent") == 0


def test_bindings_capture_full_path(bib_index):
    c, index, ids = bib_index
    engine = QueryEngine(index)
    results = engine.evaluate("//bib//cite")
    (r,) = results
    assert r.bindings == (ids["bib"], ids["cite"])


def test_distance_ranking():
    """Section 5.1: nearer matches rank higher."""
    c = Collection()
    root = c.new_document("d", "book")
    near = c.add_child(root.eid, "author")
    near.text = "Near"
    mid = c.add_child(root.eid, "chapter")
    sect = c.add_child(mid.eid, "section")
    far = c.add_child(sect.eid, "author")
    far.text = "Far"
    index = HopiIndex.build(c, strategy="unpartitioned", distance=True)
    engine = QueryEngine(index)
    results = engine.evaluate("//book//author")
    assert [r.target for r in results] == [near.eid, far.eid]
    assert results[0].score > results[1].score


def test_count_and_max_results(bib_index):
    _, index, _ = bib_index
    engine = QueryEngine(index, max_results=1)
    assert len(engine.evaluate("//book//author")) == 1
    full = QueryEngine(index)
    assert full.count("//book//author") == 2


def test_refresh_after_maintenance():
    c = dblp_like(6, seed=2)
    index = HopiIndex.build(c, strategy="unpartitioned")
    engine = QueryEngine(index)
    before = engine.count("//article//author")
    doc = sorted(c.documents)[0]
    index.delete_document(doc)
    engine.refresh()
    after = engine.count("//article//author")
    assert after < before


def test_query_on_dblp_matches_naive_evaluation():
    """Oracle check: //article//cite via HOPI equals naive tree+link BFS."""
    from repro.graph.traversal import is_reachable

    c = dblp_like(10, seed=7)
    graph = c.element_graph()
    index = HopiIndex.build(c, strategy="recursive", partitioner="closure")
    engine = QueryEngine(index, max_results=100_000)
    got = {
        r.bindings
        for r in engine.evaluate("//article//cite")
    }
    tags = c.tags()
    expected = {
        (a, ci)
        for a in tags.get("article", [])
        for ci in tags.get("cite", [])
        if a != ci and is_reachable(graph, a, ci)
    }
    assert got == expected


# ---------------------------------------------------------------------------
# counting path and candidate memoization
# ---------------------------------------------------------------------------


def test_count_equals_full_evaluation_across_shapes():
    """The aggregated counting path must agree with materialised
    evaluation on child steps, descendant steps, wildcards and ~tags."""
    c = dblp_like(10, seed=13)
    index = HopiIndex.build(c, strategy="recursive", partitioner="closure")
    full = QueryEngine(index, max_results=10**9)
    for path in [
        "//article//author",
        "//article//cite",
        "//article//*",
        "//~article//author",
        "/article/author",
        "/article",
        "//author",
        "//article//cite//author",
        "//nonexistent//author",
    ]:
        assert full.count(path) == len(full.evaluate(path)), path


def test_count_ignores_max_results_truncation():
    c = dblp_like(8, seed=13)
    index = HopiIndex.build(c, strategy="unpartitioned")
    truncated = QueryEngine(index, max_results=1)
    full = QueryEngine(index, max_results=10**9)
    n = full.count("//article//author")
    assert truncated.count("//article//author") == n
    assert n > 1  # the workload actually exercises the truncation


def test_count_distance_aware_index():
    """Counting must not require distance lookups (no scoring)."""
    c = dblp_like(6, seed=3)
    index = HopiIndex.build(c, strategy="unpartitioned", distance=True)
    engine = QueryEngine(index, max_results=10**9)
    assert engine.count("//article//cite") == len(engine.evaluate("//article//cite"))


def test_candidates_memoized_per_tag_and_invalidated_on_refresh():
    c = dblp_like(6, seed=2)
    index = HopiIndex.build(c, strategy="unpartitioned")
    engine = QueryEngine(index)
    expr = parse_path("//article//author//author")
    first = engine._candidates(expr.steps[1])
    again = engine._candidates(expr.steps[2])
    assert first is again  # same (tag, similar) key -> same memo entry
    index.delete_document(sorted(c.documents)[0])
    engine.refresh()
    fresh = engine._candidates(expr.steps[1])
    assert fresh is not first
    assert len(fresh) < len(first)


def test_evaluate_against_explicit_index():
    """Pooled engines: one engine's tag index, another backend's cover."""
    c = dblp_like(8, seed=5)
    sets_index = HopiIndex.build(c, strategy="unpartitioned", backend="sets")
    arrays_index = sets_index.with_backend("arrays")
    engine = QueryEngine(sets_index, max_results=10**9)
    default = engine.evaluate("//article//cite")
    explicit = engine.evaluate("//article//cite", index=arrays_index)
    assert [(r.bindings, r.score) for r in default] == [
        (r.bindings, r.score) for r in explicit
    ]
    assert engine.count("//article//cite", index=arrays_index) == len(default)


def test_evaluate_with_probe_substitute():
    """A substitute probe sees (source, step_key, candidates) and its
    answer is trusted — the serving tier's coalescing hook."""
    c = dblp_like(6, seed=5)
    index = HopiIndex.build(c, strategy="unpartitioned")
    engine = QueryEngine(index, max_results=10**9)
    seen = []

    def probe(source, step_key, cand_elems):
        seen.append((source, step_key))
        flags = index.connected_many(source, cand_elems)
        return [i for i, ok in enumerate(flags) if ok]

    with_probe = engine.evaluate("//article//cite", probe=probe)
    assert seen and all(key == ("cite", False) for _, key in seen)
    assert [r.bindings for r in with_probe] == [
        r.bindings for r in engine.evaluate("//article//cite")
    ]
