"""The query-stack redesign's safety net.

Three families of checks pin the AST → logical plan → physical
operators pipeline to the pre-redesign evaluator:

* a **differential suite** against a frozen copy of the legacy
  left-to-right evaluator (bit-identical bindings, scores *and*
  ordering, on both label backends, with and without probe
  substitution);
* **planner soundness** — every legal zig-zag join order (each possible
  seed position) returns the same result set and scores;
* behaviour of the new surface: predicates, expression windows,
  ``exists``/``stream`` early termination, ``explain`` and
  :class:`PreparedQuery`.
"""

import pytest

from repro.core import HopiIndex
from repro.query import (
    PreparedQuery,
    QueryEngine,
    QueryResult,
    build_logical_plan,
    parse_path,
    plan_key,
    plan_query,
)
from repro.query.exec import ExecContext, run_bindings, run_count
from repro.query.plan import (
    ChildJoin,
    DescendantJoin,
    Filter,
    Limit,
    Rank,
    Scan,
)
from repro.xmlmodel import Collection, dblp_like


# ---------------------------------------------------------------------------
# the frozen legacy evaluator (verbatim semantics of the pre-redesign
# QueryEngine.evaluate/count; supports the legacy dialect only)
# ---------------------------------------------------------------------------


def reference_evaluate(engine, path, *, index=None, probe=None):
    """The legacy left-to-right evaluator, kept as the oracle."""
    index = index or engine.index
    expr = parse_path(path) if isinstance(path, str) else path
    first, *rest = expr.steps

    partial = []
    for e, score in engine._candidates(first):
        if first.axis == "child":
            if engine.collection.elements[e].parent is not None:
                continue
        partial.append(((e,), score))

    for step in rest:
        candidates = engine._candidates(step)
        grown = []
        if step.axis == "child":
            by_parent = {}
            for e, score in candidates:
                parent = engine.collection.elements[e].parent
                if parent is not None:
                    by_parent.setdefault(parent, []).append((e, score))
            for bindings, score in partial:
                for e, tag_score in by_parent.get(bindings[-1], ()):
                    grown.append((bindings + (e,), score * tag_score))
        else:
            step_key = (step.tag, step.similar)
            cand_elems = [e for e, _ in candidates]
            reach_cache = {}
            for bindings, score in partial:
                prev = bindings[-1]
                reach = reach_cache.get(prev)
                if reach is None:
                    reach = engine._reachable(
                        index, probe, prev, step_key, cand_elems
                    )
                    reach_cache[prev] = reach
                for i in reach:
                    e, tag_score = candidates[i]
                    if e == prev:
                        continue
                    hop = engine._hop_score(index, prev, e)
                    grown.append((bindings + (e,), score * tag_score * hop))
        partial = grown
        if not partial:
            break

    results = [QueryResult(b, s) for b, s in partial]
    results.sort(key=lambda r: (-r.score, r.bindings))
    return results[: engine.max_results]


def reference_count(engine, path, *, index=None, probe=None):
    """The legacy aggregated counting path, kept as the oracle."""
    index = index or engine.index
    expr = parse_path(path) if isinstance(path, str) else path
    first, *rest = expr.steps

    tails = {}
    for e, _ in engine._candidates(first):
        if first.axis == "child":
            if engine.collection.elements[e].parent is not None:
                continue
        tails[e] = tails.get(e, 0) + 1

    for step in rest:
        candidates = engine._candidates(step)
        grown = {}
        if step.axis == "child":
            for e, _ in candidates:
                parent = engine.collection.elements[e].parent
                if parent in tails:
                    grown[e] = grown.get(e, 0) + tails[parent]
        else:
            step_key = (step.tag, step.similar)
            cand_elems = [e for e, _ in candidates]
            for prev, multiplicity in tails.items():
                for i in engine._reachable(
                    index, probe, prev, step_key, cand_elems
                ):
                    e = cand_elems[i]
                    if e == prev:
                        continue
                    grown[e] = grown.get(e, 0) + multiplicity
        tails = grown
        if not tails:
            break
    return sum(tails.values())


LEGACY_PATHS = [
    "//article//author",
    "//article//cite",
    "//article//*",
    "//*//author",
    "//~article//author",
    "/article/authors/author",
    "/article",
    "//author",
    "//article//cite//author",
    "//article//citations//cite",
    "//nonexistent//author",
    "/article//cite//*",
]


@pytest.fixture(scope="module", params=["sets", "arrays"])
def backend_engines(request):
    """(engine, distance_engine) per label backend, on one collection."""
    c = dblp_like(12, seed=31)
    index = HopiIndex.build(
        c, strategy="recursive", partitioner="closure",
        backend=request.param,
    )
    dist = HopiIndex.build(
        c, strategy="unpartitioned", distance=True, backend=request.param
    )
    return (
        QueryEngine(index, max_results=10**9),
        QueryEngine(dist, max_results=10**9),
    )


def as_pairs(results):
    return [(r.bindings, r.score) for r in results]


class TestDifferential:
    """New pipeline ≡ frozen legacy evaluator, bit for bit."""

    @pytest.mark.parametrize("path", LEGACY_PATHS)
    def test_evaluate_matches_reference(self, backend_engines, path):
        engine, dist_engine = backend_engines
        for eng in (engine, dist_engine):
            expected = as_pairs(reference_evaluate(eng, path))
            for order in ("naive", "selective"):
                got = as_pairs(eng.evaluate(path, order=order))
                assert got == expected, (path, order)

    @pytest.mark.parametrize("path", LEGACY_PATHS)
    def test_count_matches_reference(self, backend_engines, path):
        engine, dist_engine = backend_engines
        for eng in (engine, dist_engine):
            expected = reference_count(eng, path)
            for order in ("naive", "selective"):
                assert eng.count(path, order=order) == expected, (path, order)

    def test_matches_reference_under_probe_substitution(self, backend_engines):
        engine, _ = backend_engines
        index = engine.index
        calls = []

        def probe(source, step_key, cand_elems):
            calls.append((source, step_key))
            flags = index.connected_many(source, cand_elems)
            return [i for i, ok in enumerate(flags) if ok]

        for path in ["//article//cite", "//*//author", "//article//cite//author"]:
            expected = as_pairs(reference_evaluate(engine, path, probe=probe))
            got = as_pairs(engine.evaluate(path, probe=probe))
            assert got == expected, path
            assert engine.count(path, probe=probe) == reference_count(
                engine, path, probe=probe
            )
        assert calls, "the probe substitute must actually be exercised"

    def test_truncation_matches_reference(self, backend_engines):
        engine, _ = backend_engines
        truncated = QueryEngine(engine.index, max_results=7)
        path = "//article//author"
        assert as_pairs(truncated.evaluate(path)) == as_pairs(
            reference_evaluate(truncated, path)
        )
        assert len(truncated.evaluate(path)) == 7


class TestPlannerSoundness:
    """Any legal zig-zag order returns the same results and scores."""

    @pytest.mark.parametrize(
        "path", ["//article//cite//author", "/article//cite/title",
                 "//*//cite//*", "//~article//author//*"]
    )
    def test_every_seed_position_agrees(self, backend_engines, path):
        engine, _ = backend_engines
        expr = parse_path(path)
        baseline = as_pairs(engine.evaluate(path, order="naive"))
        for start in range(len(expr.steps)):
            plan = plan_query(expr, engine, start=start)
            ctx = ExecContext(engine, engine.index)
            results = [
                QueryResult(b, engine._score_binding(engine.index, expr, b))
                for b in run_bindings(plan, ctx)
            ]
            results.sort(key=lambda r: (-r.score, r.bindings))
            assert as_pairs(results) == baseline, (path, start)

    def test_directional_counts_agree_both_ways(self, backend_engines):
        engine, _ = backend_engines
        for path in ["//article//cite//author", "//*//author"]:
            expr = parse_path(path)
            forward = run_count(
                plan_query(expr, engine, start=0),
                ExecContext(engine, engine.index),
            )
            backward = run_count(
                plan_query(expr, engine, start=len(expr.steps) - 1),
                ExecContext(engine, engine.index),
            )
            assert forward == backward == engine.count(path), path

    def test_count_rejects_zigzag_plans(self, backend_engines):
        engine, _ = backend_engines
        expr = parse_path("//article//cite//author")
        plan = plan_query(expr, engine, start=1)  # middle seed: mixed
        if len({op.direction for op in plan.ops[1:]}) > 1:
            with pytest.raises(ValueError):
                run_count(plan, ExecContext(engine, engine.index))

    def test_selective_seeds_at_rare_tail(self):
        c = dblp_like(10, seed=3)
        rare = c.add_child(
            c.documents[sorted(c.documents)[0]].root, "erratum"
        )
        index = HopiIndex.build(c, strategy="unpartitioned")
        engine = QueryEngine(index)
        plan = engine.plan("//*//erratum")
        assert plan.ops[0] == plan.ops[0].__class__("scan", 1, "seed")
        assert plan.ops[1].direction == "backward"
        results = engine.evaluate("//*//erratum")
        assert {r.target for r in results} == {rare.eid}


# ---------------------------------------------------------------------------
# the new dialect: predicates and windows
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def pred_fixture():
    """Two books (one with an author, one without) plus a linked note."""
    c = Collection()
    bib = c.new_document("d1", "bib")
    with_author = c.add_child(bib.eid, "book")
    author = c.add_child(with_author.eid, "author")
    c.add_child(with_author.eid, "title")
    without = c.add_child(bib.eid, "book")
    c.add_child(without.eid, "title")

    note_doc = c.new_document("d2", "note")
    deep = c.add_child(note_doc.eid, "remark")
    c.add_link(without.eid, note_doc.eid)  # book2 -> note doc (link)
    index = HopiIndex.build(c, strategy="unpartitioned")
    ids = dict(bib=bib.eid, book1=with_author.eid, book2=without.eid,
               author=author.eid, note=note_doc.eid, remark=deep.eid)
    return QueryEngine(index, max_results=10**9), ids


class TestPredicatesAndWindows:
    def test_child_existence_predicate(self, pred_fixture):
        engine, ids = pred_fixture
        results = engine.evaluate("//book[author]")
        assert {r.target for r in results} == {ids["book1"]}

    def test_descendant_existence_predicate_crosses_links(self, pred_fixture):
        engine, ids = pred_fixture
        # only book2 reaches a remark — through the link to the note doc
        results = engine.evaluate("//book[//remark]")
        assert {r.target for r in results} == {ids["book2"]}

    def test_nested_predicate(self, pred_fixture):
        engine, ids = pred_fixture
        results = engine.evaluate("/bib[book[author]]")
        assert {r.target for r in results} == {ids["bib"]}
        assert engine.evaluate("/bib[book[remark]]") == []

    def test_predicates_filter_without_scoring(self, pred_fixture):
        engine, ids = pred_fixture
        plain = {r.target: r.score for r in engine.evaluate("//book")}
        filtered = engine.evaluate("//book[author]")
        assert all(plain[r.target] == r.score for r in filtered)

    def test_count_and_exists_with_predicates(self, pred_fixture):
        engine, _ = pred_fixture
        for path in ["//book[author]", "//book[//remark]", "//bib[book]//title"]:
            assert engine.count(path) == len(engine.evaluate(path)), path
        assert engine.exists("//book[author]")
        assert not engine.exists("//book[nonexistent]")

    def test_window_slices_ranked_results(self, backend_engines):
        engine, _ = backend_engines
        full = engine.evaluate("//article//author")
        windowed = engine.evaluate("//article//author limit 5 offset 3")
        assert as_pairs(windowed) == as_pairs(full)[3:8]
        offset_only = engine.evaluate("//article//author offset 4")
        assert as_pairs(offset_only) == as_pairs(full)[4:]

    def test_count_ignores_window(self, backend_engines):
        engine, _ = backend_engines
        assert engine.count("//article//author limit 1") == engine.count(
            "//article//author"
        )

    def test_stream_is_lazy_and_windowed(self, backend_engines):
        engine, _ = backend_engines
        full = engine.evaluate("//article//author")
        streamed = list(engine.stream("//article//author limit 4"))
        assert len(streamed) == 4
        expected = {(r.bindings, r.score) for r in full}
        assert all((r.bindings, r.score) in expected for r in streamed)

    def test_stream_terminates_early(self):
        """A limited stream must not probe every head element."""
        c = dblp_like(10, seed=5)
        index = HopiIndex.build(c, strategy="unpartitioned")
        engine = QueryEngine(index)
        probes = []

        def probe(source, step_key, cand_elems):
            probes.append(source)
            flags = index.connected_many(source, cand_elems)
            return [i for i, ok in enumerate(flags) if ok]

        list(engine.stream("//article//cite limit 1", probe=probe,
                           order="naive"))
        limited = len(probes)
        probes.clear()
        list(engine.stream("//article//cite", probe=probe, order="naive"))
        assert limited < len(probes)


# ---------------------------------------------------------------------------
# plans, keys, prepared queries
# ---------------------------------------------------------------------------


class TestPlanApi:
    def test_logical_plan_shape(self):
        plan = build_logical_plan("/bib//book[author]//title limit 3 offset 1")
        kinds = [type(n) for n in plan.nodes]
        assert kinds == [Scan, DescendantJoin, Filter, DescendantJoin,
                         Rank, Limit]
        scan = plan.nodes[0]
        assert scan.anchored and scan.position == 0
        assert plan.nodes[-1] == Limit(3, 1)

    def test_child_join_node(self):
        plan = build_logical_plan("//book/title")
        assert type(plan.nodes[1]) is ChildJoin

    def test_plan_key_canonicalises(self):
        assert plan_key("  //book//author  ") == "//book//author"
        assert plan_key("//a offset 2 limit 5") == plan_key(
            "//a limit 5 offset 2"
        )

    def test_prepared_query_binds_per_engine(self, backend_engines):
        engine, _ = backend_engines
        prepared = engine.prepare("//article//author")
        assert prepared.key == "//article//author"
        plan = prepared.bind(engine)
        assert plan.key == prepared.key
        assert [op.position for op in plan.ops] in ([0, 1], [1, 0])

    def test_explain_mentions_order_and_estimates(self, backend_engines):
        engine, _ = backend_engines
        text = engine.explain("//article//author")
        assert "order:" in text and "candidates" in text
        naive = engine.explain("//article//author", order="naive")
        assert "naive" in naive

    def test_plan_describe_is_json_safe(self, backend_engines):
        import json

        engine, _ = backend_engines
        payload = engine.plan("//article[//cite]//author limit 2").describe()
        json.dumps(payload)
        assert payload["limit"] == 2
        assert len(payload["steps"]) == 2
        assert payload["steps"][0]["predicates"] == 1


# ---------------------------------------------------------------------------
# refresh after maintenance (stale memos must never leak)
# ---------------------------------------------------------------------------


class TestRefresh:
    def test_all_memos_invalidated(self):
        c = dblp_like(6, seed=2)
        index = HopiIndex.build(c, strategy="unpartitioned")
        engine = QueryEngine(index)
        expr = parse_path("//article//author")
        step = expr.steps[1]
        engine.evaluate(expr)
        engine.plan(expr)
        before_map = engine._candidate_map(step)
        before_parents = engine._parent_map(step)
        doc = sorted(c.documents)[0]
        deleted = set(c.documents[doc].elements)
        index.delete_document(doc)
        engine.refresh()
        assert engine._candidate_map(step) is not before_map
        assert engine._parent_map(step) is not before_parents
        after = engine.evaluate(expr)
        assert after and not any(
            e in deleted for r in after for e in r.bindings
        )
        assert engine.count(expr) == len(after)
