"""Tests for the partition-cover joins (Sections 3.3 and 4.1).

Theorem 1 / Corollary 1 are exercised by verifying joined covers against
the transitive-closure oracle on both hand-built and random collections.
"""

import pytest

from repro.core.cover import TwoHopCover
from repro.core.cover_builder import build_cover
from repro.core.distance import build_distance_cover
from repro.core.join import (
    insert_link,
    insert_link_distance,
    join_covers_incremental,
    join_covers_incremental_distance,
    join_covers_recursive,
)
from repro.core.partitioning import (
    Partitioning,
    compute_cross_links,
    partition_by_node_weight,
)
from repro.graph import DiGraph, distance_closure, transitive_closure
from repro.xmlmodel import dblp_like, random_collection


def _partition_and_cover(collection, partitioning, distance=False):
    covers = []
    for docs in partitioning.partitions:
        graph = collection.subcollection(docs).element_graph()
        if distance:
            covers.append(build_distance_cover(graph))
        else:
            covers.append(build_cover(graph))
    return covers


def _manual_partitioning(collection, groups):
    part_of = {d: i for i, g in enumerate(groups) for d in g}
    return Partitioning(groups, compute_cross_links(collection, part_of), part_of)


@pytest.fixture
def chain_collection():
    """d1 -> d2 -> d3 linked in a chain (see test_skeleton fixture)."""
    from repro.xmlmodel import Collection

    c = Collection()
    r1 = c.new_document("d1", "r")
    c.add_child(r1.eid, "a")
    s1 = c.add_child(r1.eid, "s")
    r2 = c.new_document("d2", "r")
    t2 = c.add_child(r2.eid, "t")
    s2 = c.add_child(t2.eid, "s")
    c.add_child(r2.eid, "b")
    t3 = c.new_document("d3", "t")
    c.add_child(t3.eid, "c")
    c.add_link(s1.eid, t2.eid)
    c.add_link(s2.eid, t3.eid)
    return c


def test_insert_link_figure2():
    """Figure 2: v becomes the center for ancestors of u and descendants
    of v."""
    g = DiGraph([(1, 2), (3, 4)])
    cover = build_cover(g)
    cover.verify_against(transitive_closure(g))
    g.add_edge(2, 3)
    added = insert_link(cover, 2, 3)
    assert added > 0
    cover.verify_against(transitive_closure(g))
    # 3 (= v) is the center on both sides
    assert 3 in cover.lout_of(1)
    assert 3 in cover.lin_of(4)


def test_insert_link_idempotent_when_connected():
    g = DiGraph([(1, 2), (2, 3)])
    cover = build_cover(g)
    size = cover.size
    insert_link(cover, 1, 3)  # already connected: entries may be added
    cover.verify_against(transitive_closure(DiGraph([(1, 2), (2, 3), (1, 3)])))


def test_incremental_join_chain(chain_collection):
    c = chain_collection
    partitioning = _manual_partitioning(c, [["d1"], ["d2"], ["d3"]])
    covers = _partition_and_cover(c, partitioning)
    joined = join_covers_incremental(covers, partitioning.cross_links)
    joined.verify_against(transitive_closure(c.element_graph()))


def test_recursive_join_chain(chain_collection):
    c = chain_collection
    partitioning = _manual_partitioning(c, [["d1"], ["d2"], ["d3"]])
    covers = _partition_and_cover(c, partitioning)
    joined = join_covers_recursive(c, partitioning, covers)
    joined.verify_against(transitive_closure(c.element_graph()))


def test_recursive_join_no_cross_links():
    c = random_collection(n_docs=4, inter_links=0, seed=1)
    partitioning = _manual_partitioning(c, [[d] for d in sorted(c.documents)])
    covers = _partition_and_cover(c, partitioning)
    joined = join_covers_recursive(c, partitioning, covers)
    joined.verify_against(transitive_closure(c.element_graph()))


@pytest.mark.parametrize("seed", range(6))
def test_joins_agree_with_oracle_random(seed):
    c = random_collection(n_docs=6, inter_links=8, seed=seed)
    partitioning = partition_by_node_weight(c, 15, seed=seed)
    covers = _partition_and_cover(c, partitioning)
    oracle = transitive_closure(c.element_graph())
    inc = join_covers_incremental(covers, partitioning.cross_links)
    inc.verify_against(oracle)
    rec = join_covers_recursive(c, partitioning, covers)
    rec.verify_against(oracle)


@pytest.mark.parametrize("seed", range(4))
def test_recursive_join_with_psg_limit(seed):
    c = random_collection(n_docs=8, inter_links=14, seed=100 + seed)
    partitioning = partition_by_node_weight(c, 12, seed=seed)
    covers = _partition_and_cover(c, partitioning)
    joined = join_covers_recursive(c, partitioning, covers, psg_node_limit=3)
    joined.verify_against(transitive_closure(c.element_graph()))


def test_recursive_join_on_dblp():
    c = dblp_like(30, seed=4)
    partitioning = partition_by_node_weight(c, 120, seed=0)
    covers = _partition_and_cover(c, partitioning)
    joined = join_covers_recursive(c, partitioning, covers)
    joined.verify_against(transitive_closure(c.element_graph()))


def test_recursive_join_smaller_than_incremental_on_dblp():
    """The headline claim: the new join produces a smaller cover (Table 2
    shows ~40% reduction for P5/P10)."""
    c = dblp_like(60, seed=11)
    partitioning = partition_by_node_weight(c, 150, seed=0)
    covers = _partition_and_cover(c, partitioning)
    inc = join_covers_incremental(
        [cov.copy() for cov in covers], partitioning.cross_links
    )
    rec = join_covers_recursive(c, partitioning, covers)
    oracle = transitive_closure(c.element_graph())
    inc.verify_against(oracle)
    rec.verify_against(oracle)
    assert rec.size <= inc.size


# ---------------------------------------------------------------------------
# distance-aware joins
# ---------------------------------------------------------------------------


def test_insert_link_distance_exact():
    g = DiGraph([(1, 2), (3, 4)])
    cover = build_distance_cover(g)
    g.add_edge(2, 3)
    insert_link_distance(cover, 2, 3)
    cover.verify_against(distance_closure(g))
    assert cover.distance(1, 4) == 3


def test_insert_link_distance_improves_existing():
    g = DiGraph([(1, 2), (2, 3), (3, 4)])
    cover = build_distance_cover(g)
    assert cover.distance(1, 4) == 3
    g.add_edge(1, 4)
    insert_link_distance(cover, 1, 4)
    cover.verify_against(distance_closure(g))
    assert cover.distance(1, 4) == 1


def test_incremental_join_distance_chain(chain_collection):
    c = chain_collection
    partitioning = _manual_partitioning(c, [["d1"], ["d2"], ["d3"]])
    covers = _partition_and_cover(c, partitioning, distance=True)
    joined = join_covers_incremental_distance(covers, partitioning.cross_links)
    joined.verify_against(distance_closure(c.element_graph()))


@pytest.mark.parametrize("seed", range(4))
def test_incremental_join_distance_random(seed):
    c = random_collection(n_docs=5, inter_links=7, seed=200 + seed)
    partitioning = partition_by_node_weight(c, 12, seed=seed)
    covers = _partition_and_cover(c, partitioning, distance=True)
    joined = join_covers_incremental_distance(covers, partitioning.cross_links)
    joined.verify_against(distance_closure(c.element_graph()))


# ---------------------------------------------------------------------------
# the incremental join's empty-label short-circuit
# ---------------------------------------------------------------------------


class ProbeCountingCover(TwoHopCover):
    """A set-backed cover that counts ancestor/descendant probes."""

    def __init__(self, nodes=()):
        super().__init__(nodes)
        self.probes = 0

    def ancestors(self, v):
        self.probes += 1
        return super().ancestors(v)

    def descendants(self, u):
        self.probes += 1
        return super().descendants(u)


def test_insert_link_skips_probes_for_fresh_endpoints():
    """Regression: endpoints with empty labels have ancestors == {u} and
    descendants == {v} by definition; insert_link must not pay an
    ancestors()/descendants() probe against the growing cover for them."""
    cover = ProbeCountingCover()
    added = insert_link(cover, 1, 2)
    assert cover.probes == 0, "fresh endpoints must not probe the cover"
    assert added == 1  # exactly Lout(1) ∋ 2; Lin(2) would be a self-entry
    assert cover.connected(1, 2) and not cover.connected(2, 1)

    # a second disconnected link: still no probing needed
    insert_link(cover, 3, 4)
    assert cover.probes == 0

    # chaining onto labelled endpoints must still probe (2 has a Lin
    # entry => descendants(2) goes through the backward index; 1 now
    # carries Lout => ancestors via nodes_with_lout_center)
    insert_link(cover, 2, 3)
    assert cover.probes == 2
    g = DiGraph([(1, 2), (3, 4), (2, 3)])
    cover.verify_against(transitive_closure(g))


def test_incremental_join_probe_count_on_fresh_links():
    """Covers whose link endpoints are unlabeled join without a single
    ancestor/descendant probe (the common leaf-to-leaf link case)."""
    left = ProbeCountingCover([1, 2])    # no label entries at all
    right = ProbeCountingCover([3, 4])
    merged = join_covers_incremental(
        [left, right], [(1, 3)], cover_factory=ProbeCountingCover
    )
    assert isinstance(merged, ProbeCountingCover)
    assert merged.probes == 0
    assert merged.connected(1, 3) and not merged.connected(3, 1)
    assert merged.connected(2, 2)  # universe survived the union


def test_incremental_join_still_probes_labelled_endpoints():
    c = random_collection(n_docs=5, inter_links=9, seed=77)
    partitioning = partition_by_node_weight(c, 12, seed=0)
    covers = _partition_and_cover(c, partitioning)
    counting = join_covers_incremental(
        covers, partitioning.cross_links, cover_factory=ProbeCountingCover
    )
    counting.verify_against(transitive_closure(c.element_graph()))
    # the short-circuit is an optimisation, not a behaviour change:
    # the default factory joins to the identical cover
    plain = join_covers_incremental(covers, partitioning.cross_links)
    assert sorted(counting.entries()) == sorted(plain.entries())
