"""Tests for center graphs and the densest-subgraph 2-approximation."""

import itertools
import random

import pytest

from repro.core.center_graph import (
    CenterGraph,
    densest_subgraph,
    initial_density_upper_bound,
)


def test_center_graph_drops_isolated_nodes():
    cg = CenterGraph("w", {1: {10}, 2: set()})
    assert 2 not in cg.adj
    assert cg.num_edges == 1
    assert cg.num_nodes == 2


def test_center_graph_density():
    cg = CenterGraph("w", {1: {10, 11}, 2: {10}})
    # nodes: {1, 2} in-side, {10, 11} out-side; 3 edges
    assert cg.num_nodes == 4
    assert cg.density == pytest.approx(3 / 4)
    assert CenterGraph("w", {}).density == 0.0


def test_densest_empty():
    assert densest_subgraph({}) == (0.0, set(), set())
    assert densest_subgraph({1: set()}) == (0.0, set(), set())


def test_densest_single_edge():
    density, in_side, out_side = densest_subgraph({1: {2}})
    assert density == pytest.approx(0.5)
    assert in_side == {1}
    assert out_side == {2}


def test_densest_complete_bipartite_is_whole_graph():
    adj = {u: {10, 11, 12} for u in (1, 2, 3)}
    density, in_side, out_side = densest_subgraph(adj)
    assert density == pytest.approx(9 / 6)
    assert in_side == {1, 2, 3}
    assert out_side == {10, 11, 12}


def test_densest_prefers_dense_core():
    # dense core: 3x3 complete; pendant: node 99 with a single edge
    adj = {u: {10, 11, 12} for u in (1, 2, 3)}
    adj[99] = {42}
    density, in_side, out_side = densest_subgraph(adj)
    assert 99 not in in_side
    assert 42 not in out_side
    assert density == pytest.approx(9 / 6)


def test_densest_overlapping_namespaces():
    # the same id on both sides must not be conflated
    adj = {1: {1, 2}, 2: {1}}
    density, in_side, out_side = densest_subgraph(adj)
    assert density == pytest.approx(3 / 4)
    assert in_side == {1, 2}
    assert out_side == {1, 2}


def _exact_densest(adj):
    """Brute-force densest subgraph over all vertex subsets (tiny inputs)."""
    in_nodes = [u for u, vs in adj.items() if vs]
    out_nodes = sorted({v for vs in adj.values() for v in vs}, key=repr)
    best = 0.0
    for r_in in range(1, len(in_nodes) + 1):
        for ins in itertools.combinations(in_nodes, r_in):
            for r_out in range(1, len(out_nodes) + 1):
                for outs in itertools.combinations(out_nodes, r_out):
                    edges = sum(
                        1 for u in ins for v in adj[u] if v in set(outs)
                    )
                    best = max(best, edges / (len(ins) + len(outs)))
    return best


@pytest.mark.parametrize("seed", range(12))
def test_densest_is_2_approximation(seed):
    rng = random.Random(seed)
    adj = {
        u: {v for v in range(10, 15) if rng.random() < 0.4}
        for u in range(4)
    }
    adj = {u: vs for u, vs in adj.items() if vs}
    if not adj:
        return
    exact = _exact_densest(adj)
    approx, in_side, out_side = densest_subgraph(adj)
    assert approx <= exact + 1e-9
    assert approx >= exact / 2 - 1e-9
    # returned density matches the returned node sets
    if in_side:
        edges = sum(1 for u in in_side for v in adj.get(u, ()) if v in out_side)
        assert approx == pytest.approx(edges / (len(in_side) + len(out_side)))


def test_initial_density_upper_bound():
    assert initial_density_upper_bound(0, 5) == 0.0
    assert initial_density_upper_bound(3, 3) == pytest.approx(1.5)
    # matches the complete-bipartite density a*d/(a+d)
    assert initial_density_upper_bound(2, 8) == pytest.approx(1.6)


@pytest.mark.parametrize("a,d", [(1, 1), (2, 3), (5, 5), (1, 9)])
def test_initial_bound_dominates_peeled_density(a, d):
    # the closed form must upper-bound what peeling finds on the actual
    # initial center graph (complete bipartite minus the diagonal)
    adj = {("i", u): {("o", v) for v in range(d)} for u in range(a)}
    density, _, _ = densest_subgraph(adj)
    assert initial_density_upper_bound(a, d) >= density - 1e-9
