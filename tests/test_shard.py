"""Sharded serving: the scatter-gather router must be bit-identical.

The differential matrix pins the ISSUE's core acceptance criterion:
`/v1/query` answers (results, scores, ``total``, pagination), counts,
``connected``/``distance`` and update semantics through a
:class:`ShardRouter` are **bit-identical** to single-process serving —
on a DBLP-like and a linked-INEX-like collection, for the in-process
and RPC shard executors, at 1/2/4 shards.
"""

import json
import random
import threading
import urllib.request

import pytest

from repro.core.hopi import HopiIndex
from repro.core.rpc import start_worker_thread
from repro.service import (
    QueryService,
    ShardRouter,
    ShardUnavailableError,
    make_server,
    shard_of,
)
from repro.service.shard import ShardRegistry, derive_shard_views, restrict_cover
from repro.xmlmodel.generator import dblp_like, inex_like


def linked_inex(n_docs=6, seed=11):
    """A small INEX-like collection with cross-document citation links
    (deep elements → other documents' roots), so descendant steps cross
    shard boundaries."""
    collection = inex_like(n_docs, seed=seed, elements_per_doc=60)
    rng = random.Random(seed)
    docs = sorted(collection.documents)
    by_doc = {d: [] for d in docs}
    for eid in sorted(collection.elements):
        by_doc[collection.elements[eid].doc].append(eid)
    for i, doc in enumerate(docs):
        if i == 0:
            continue
        members = by_doc[doc]
        for _ in range(3):
            source = members[rng.randrange(len(members) // 2, len(members))]
            target_doc = docs[rng.randrange(0, i)]
            collection.add_link(
                source, collection.documents[target_doc].root
            )
    return collection


DBLP_PATHS = [
    "//article//author",
    "//article//cite",
    "//article[keywords]//cite",
    "//article//cite//article",
    "//article//cite//article//author",
    "//article//author limit 4 offset 1",
    "//authors//author limit 3",
]

INEX_PATHS = [
    "//article//p",
    "//sec//st",
    "//article[fm]//ss",
    "//sec//article",
    "//sec//article//title",
    "//article//p limit 5 offset 2",
]


def make_collection(kind):
    if kind == "dblp":
        return dblp_like(16, seed=3)
    return linked_inex()


def paths_for(kind):
    return DBLP_PATHS if kind == "dblp" else INEX_PATHS


def signature(response):
    return (
        [(r.score, r.bindings) for r in response.results],
        response.total,
        response.offset,
        response.truncated,
        response.epoch,
    )


def assert_query_parity(single, router, paths):
    for path in paths:
        for kwargs in ({}, {"limit": 3}, {"limit": 5, "offset": 2},
                       {"offset": 1}):
            a = single.query(path, **kwargs)
            b = router.query(path, **kwargs)
            assert signature(a) == signature(b), (path, kwargs)
        assert single.count(path) == router.count(path), path


# ---------------------------------------------------------------------------
# differential matrix: collections x shard counts x executors
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["dblp", "inex"])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_local_router_is_bit_identical(kind, shards):
    collection = make_collection(kind)
    index = HopiIndex.build(collection, backend="arrays")
    single = QueryService(index.copy(), max_results=40)
    with ShardRouter(index.copy(), shards, max_results=40) as router:
        assert_query_parity(single, router, paths_for(kind))


@pytest.mark.parametrize("kind", ["dblp", "inex"])
def test_rpc_router_is_bit_identical(kind):
    collection = make_collection(kind)
    index = HopiIndex.build(collection, backend="arrays")
    single = QueryService(index.copy(), max_results=40)
    s1, a1 = start_worker_thread()
    s2, a2 = start_worker_thread()
    try:
        # 4 shards over 2 workers: two shards share one worker process
        with ShardRouter(index.copy(), 4, workers=[a1, a2],
                         max_results=40) as router:
            assert router.executor == "rpc"
            assert_query_parity(single, router, paths_for(kind))
    finally:
        for server in (s1, s2):
            server.shutdown()
            server.server_close()


@pytest.mark.parametrize("shards", [2, 4])
def test_connected_and_distance_parity(shards):
    collection = dblp_like(16, seed=3)
    index = HopiIndex.build(collection, backend="arrays", distance=True)
    single = QueryService(index.copy())
    rng = random.Random(9)
    elements = sorted(collection.elements)
    with ShardRouter(index.copy(), shards) as router:
        pairs = [(rng.choice(elements), rng.choice(elements))
                 for _ in range(60)]
        # unknown endpoints must behave like single-process serving too
        pairs += [(elements[0], 10 ** 6)]
        for u, v in pairs:
            assert single.connected(u, v) == router.connected(u, v), (u, v)
            assert single.distance(u, v) == router.distance(u, v), (u, v)


def test_sets_backend_router_parity():
    collection = dblp_like(10, seed=5)
    index = HopiIndex.build(collection, backend="sets")
    single = QueryService(index.copy(), max_results=30)
    with ShardRouter(index.copy(), 3, max_results=30) as router:
        assert_query_parity(single, router, DBLP_PATHS[:4])


# ---------------------------------------------------------------------------
# updates: generations, rolling swap, parity after mutation
# ---------------------------------------------------------------------------


UPDATE_OPS = [
    {"op": "insert_element", "parent": 0, "tag": "note"},
    {"op": "insert_document", "doc_id": "fresh", "root_tag": "article",
     "children": [{"ref": "a", "tag": "authors"},
                  {"ref": "b", "parent": "a", "tag": "author"}],
     "links": []},
    {"op": "delete_document", "doc_id": "dblp3"},
]


def test_update_parity_and_generations():
    collection = dblp_like(16, seed=3)
    index = HopiIndex.build(collection, backend="arrays")
    single = QueryService(index.copy(), max_results=40)
    with ShardRouter(index.copy(), 3, max_results=40) as router:
        ra = single.update([dict(op) for op in UPDATE_OPS])
        rb = router.update([dict(op) for op in UPDATE_OPS])
        assert ra["epoch"] == rb["epoch"]
        assert ra["applied"] == rb["applied"]
        assert router.epoch == single.epoch
        assert_query_parity(single, router, DBLP_PATHS)


def test_update_failure_is_all_or_nothing():
    collection = dblp_like(8, seed=1)
    index = HopiIndex.build(collection, backend="arrays")
    with ShardRouter(index, 2) as router:
        before = router.epoch
        baseline = signature(router.query("//article//author"))
        from repro.service import UpdateError

        with pytest.raises(UpdateError):
            router.update([
                {"op": "insert_element", "parent": 0, "tag": "note"},
                {"op": "delete_document", "doc_id": "missing-doc"},
            ])
        assert router.epoch == before
        assert signature(router.query("//article//author")) == baseline


def test_rolling_swap_never_tears():
    """The bench harness's per-epoch oracle, against the router: every
    concurrent response during rolling generation swaps must match the
    offline replay of the epoch it claims to come from."""
    from repro.bench.service_load import run_hot_swap_under_load

    collection = dblp_like(12, seed=7)
    index = HopiIndex.build(collection, backend="arrays")
    with ShardRouter(index, 3, max_results=100) as router:
        paths = ["//article//author", "//article//cite//article"]
        result = run_hot_swap_under_load(
            router, paths, threads=3, requests_per_thread=40, updates=3
        )
    assert result.errors == 0
    assert result.torn == 0
    assert result.updates == 3
    assert len(set(result.epochs_observed)) > 1


def test_registry_keeps_last_two_generations():
    collection = dblp_like(8, seed=1)
    index = HopiIndex.build(collection, backend="arrays")
    registry = ShardRegistry()
    views = derive_shard_views(index, 1)
    for generation in (0, 1, 2):
        view = views[0]
        view.index.epoch = generation
        registry.execute({
            "op": "install", "shard": 0, "generation": generation,
            "index": view.index, "owned_docs": view.owned_docs,
        })
    # generation 0 pruned, 1 and 2 answer
    with pytest.raises(LookupError):
        registry.execute({"op": "query", "shard": 0, "generation": 0,
                          "path": "//article//author"})
    for generation in (1, 2):
        reply = registry.execute({
            "op": "query", "shard": 0, "generation": generation,
            "path": "//article//author",
        })
        assert reply["matches"] > 0


# ---------------------------------------------------------------------------
# failover: dead shard -> structured degraded error, never a hang
# ---------------------------------------------------------------------------


def test_dead_shard_degrades_instead_of_hanging():
    collection = dblp_like(10, seed=5)
    index = HopiIndex.build(collection, backend="arrays")
    s1, a1 = start_worker_thread()
    s2, a2 = start_worker_thread()
    router = ShardRouter(index, 2, workers=[a1, a2],
                         fanout_timeout=5.0, connect_attempts=1)
    try:
        assert router.query("//article//author").total > 0
        # kill worker 2: stop the listener and sever live connections
        s2.shutdown()
        s2.server_close()
        router._clients[1].close()
        with pytest.raises(ShardUnavailableError) as excinfo:
            router.query("//article//cite")
        assert excinfo.value.shards == [1]
        health = router.healthz()
        assert health["status"] == "degraded"
        assert health["ready"] is False
        assert health["shards_down"] == [1]
        stats = router.stats()
        assert stats["per_shard"][0]["reachable"] is True
        assert stats["per_shard"][1]["reachable"] is False
    finally:
        router.close()
        s1.shutdown()
        s1.server_close()


# ---------------------------------------------------------------------------
# HTTP layer: healthz + parity + structured 503
# ---------------------------------------------------------------------------


def _serve(service):
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, f"http://{host}:{port}"


def _get(url):
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_healthz_single_process():
    collection = dblp_like(8, seed=1)
    service = QueryService(HopiIndex.build(collection, backend="arrays"))
    server, base = _serve(service)
    try:
        status, payload = _get(f"{base}/v1/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["ready"] is True
        assert payload["sharded"] is False
        assert payload["epoch"] == 0
        assert payload["epoch_age_seconds"] >= 0
    finally:
        server.shutdown()
        server.server_close()


def test_http_parity_and_sharded_health():
    collection = dblp_like(12, seed=3)
    index = HopiIndex.build(collection, backend="arrays")
    single = QueryService(index.copy(), max_results=40)
    router = ShardRouter(index.copy(), 2, max_results=40)
    server_a, base_a = _serve(single)
    server_b, base_b = _serve(router)
    try:
        for query in ("path=//article//author&limit=3&offset=1",
                      "path=//article//cite//article"):
            status_a, a = _get(f"{base_a}/v1/query?{query}")
            status_b, b = _get(f"{base_b}/v1/query?{query}")
            assert status_a == status_b == 200
            for volatile in ("seconds", "cached"):
                a.pop(volatile), b.pop(volatile)
            assert a == b, query
        status, health = _get(f"{base_b}/v1/healthz")
        assert status == 200
        assert health["sharded"] is True
        assert health["shards_down"] == []
        assert len(health["shards"]) == 2
        status, stats = _get(f"{base_b}/v1/stats")
        assert stats["sharded"] is True
        assert len(stats["per_shard"]) == 2
        assert "fan_out" in stats
    finally:
        for server in (server_a, server_b):
            server.shutdown()
            server.server_close()
        router.close()


def test_http_dead_shard_returns_structured_503():
    collection = dblp_like(8, seed=1)
    index = HopiIndex.build(collection, backend="arrays")
    s1, a1 = start_worker_thread()
    s2, a2 = start_worker_thread()
    router = ShardRouter(index, 2, workers=[a1, a2],
                         fanout_timeout=5.0, connect_attempts=1)
    server, base = _serve(router)
    try:
        s2.shutdown()
        s2.server_close()
        router._clients[1].close()
        status, payload = _get(f"{base}/v1/query?path=//article//author")
        assert status == 503
        assert payload["degraded"] is True
        assert payload["shards_down"] == [1]
        assert payload["error"]["code"] == "shard_unavailable"
        status, health = _get(f"{base}/v1/healthz")
        assert status == 503
        assert health["status"] == "degraded"
    finally:
        server.shutdown()
        server.server_close()
        router.close()
        s1.shutdown()
        s1.server_close()


# ---------------------------------------------------------------------------
# building blocks
# ---------------------------------------------------------------------------


def test_shard_of_is_stable_and_total():
    for shards in (1, 2, 4, 7):
        for doc in ("dblp0", "dblp1", "inex5", "x"):
            s = shard_of(doc, shards)
            assert 0 <= s < shards
            assert s == shard_of(doc, shards)  # deterministic


def test_views_cover_ownership_disjointly():
    collection = dblp_like(16, seed=3)
    index = HopiIndex.build(collection, backend="arrays")
    views = derive_shard_views(index, 4)
    owned = [doc for view in views for doc in view.owned_docs]
    assert sorted(owned) == sorted(collection.documents)
    for view in views:
        # forward-closed: every link target doc of a view doc is in view
        view_docs = set(view.index.collection.documents)
        assert set(view.owned_docs) <= view_docs
        for u, v in collection.inter_links:
            if collection.elements[u].doc in view_docs:
                assert collection.elements[v].doc in view_docs


def test_restrict_cover_exact_on_view_pairs():
    collection = dblp_like(12, seed=3)
    index = HopiIndex.build(collection, backend="arrays")
    view = derive_shard_views(index, 3)[1]
    restricted = view.index
    rng = random.Random(4)
    members = sorted(restricted.collection.elements)
    for _ in range(200):
        u, v = rng.choice(members), rng.choice(members)
        assert restricted.connected(u, v) == index.connected(u, v), (u, v)
