"""Tests for the CSR snapshot format and its CoverStore."""

import pytest

from repro.core.array_cover import ArrayDistanceCover, ArrayTwoHopCover
from repro.core.cover import TwoHopCover
from repro.core.hopi import HopiIndex
from repro.storage import SnapshotCoverStore, load_snapshot, save_snapshot
from repro.xmlmodel.generator import dblp_like


@pytest.fixture(scope="module")
def small_index():
    return HopiIndex.build(
        dblp_like(20, seed=9), backend="arrays",
        strategy="recursive", partitioner="node_weight", partition_limit=40,
    )


def test_roundtrip_reachability(tmp_path, small_index):
    path = tmp_path / "cover.snap"
    written = save_snapshot(path, small_index.cover)
    assert written == path.stat().st_size > 0
    loaded = load_snapshot(path)
    assert isinstance(loaded, ArrayTwoHopCover)
    assert loaded.size == small_index.cover.size
    assert set(loaded.nodes) == set(small_index.cover.nodes)
    nodes = sorted(small_index.collection.elements)[:40]
    for u in nodes:
        assert loaded.descendants(u) == small_index.descendants(u)
        assert loaded.ancestors(u) == small_index.ancestors(u)
        assert loaded.connected_many(u, nodes) == small_index.connected_many(u, nodes)


def test_roundtrip_distance(tmp_path):
    index = HopiIndex.build(
        dblp_like(10, seed=9), backend="arrays", distance=True,
        strategy="recursive", partitioner="node_weight", partition_limit=40,
    )
    path = tmp_path / "dist.snap"
    save_snapshot(path, index.cover)
    loaded = load_snapshot(path)
    assert isinstance(loaded, ArrayDistanceCover)
    nodes = sorted(index.collection.elements)[:30]
    for u in nodes:
        for v in nodes:
            assert loaded.distance(u, v) == index.distance(u, v)


def test_snapshot_store_queries(tmp_path, small_index):
    path = tmp_path / "store.snap"
    store = SnapshotCoverStore(path)
    store.save_cover(small_index.cover)
    assert store.cover_size() == small_index.cover.size
    nodes = sorted(small_index.collection.elements)[:20]
    for u in nodes:
        assert store.descendants(u) == small_index.descendants(u)
        for v in nodes:
            assert store.connected(u, v) == small_index.connected(u, v)
    with pytest.raises(TypeError):
        store.distance(nodes[0], nodes[1])


def test_snapshot_store_isolated_from_live_mutation(tmp_path):
    """After save_cover, the store answers from persisted state even if
    the caller keeps mutating its live cover."""
    cover = ArrayTwoHopCover([1, 2, 5])
    cover.add_lout(1, 2)
    store = SnapshotCoverStore(tmp_path / "live.snap")
    store.save_cover(cover)
    cover.add_lout(1, 9)
    cover.add_lin(5, 9)
    assert not store.connected(1, 5)
    fresh = SnapshotCoverStore(tmp_path / "live.snap")
    assert store.cover_size() == fresh.cover_size() == 1


def test_snapshot_store_converts_set_covers(tmp_path):
    cover = TwoHopCover([1, 2, 3])
    cover.add_lout(1, 2)
    cover.add_lin(3, 2)
    store = SnapshotCoverStore(tmp_path / "sets.snap")
    store.save_cover(cover)
    assert store.connected(1, 3)
    assert store.load_cover().size == cover.size


def test_save_rejects_set_covers_directly(tmp_path):
    with pytest.raises(TypeError):
        save_snapshot(tmp_path / "bad.snap", TwoHopCover([1]))


def test_save_rejects_non_integer_labels(tmp_path):
    cover = ArrayTwoHopCover(["a", "b"])
    cover.add_lout("a", "b")
    with pytest.raises(TypeError):
        save_snapshot(tmp_path / "bad.snap", cover)


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "garbage.snap"
    path.write_bytes(b"not a snapshot at all")
    with pytest.raises(ValueError):
        load_snapshot(path)


def test_load_rejects_truncated_snapshot(tmp_path, small_index):
    """A partially written snapshot must fail loudly, not load as a
    silently corrupt cover."""
    path = tmp_path / "trunc.snap"
    save_snapshot(path, small_index.cover)
    blob = path.read_bytes()
    for cut in (4, 9, 17):  # aligned and misaligned truncations
        path.write_bytes(blob[:-cut])
        with pytest.raises(ValueError, match="truncated snapshot"):
            load_snapshot(path)


def test_store_reload_picks_up_rewrites(tmp_path, small_index):
    """The hot-reload path: an offline rebuild replaces the file; the
    store re-reads it on reload() and serves the fresh cover."""
    path = tmp_path / "live.snap"
    store = SnapshotCoverStore(path)
    store.save_cover(small_index.cover)
    before = store.cover_size()

    rebuilt = small_index.copy().rebuild(strategy="unpartitioned")
    save_snapshot(path, rebuilt.cover)
    assert store.cover_size() == before  # stale until told to reload
    store.reload()
    assert store.cover_size() == rebuilt.cover.size


def test_store_reload_if_changed(tmp_path, small_index):
    import os

    path = tmp_path / "live.snap"
    store = SnapshotCoverStore(path)
    store.save_cover(small_index.cover)
    assert store.reload_if_changed() is False

    rebuilt = small_index.copy().rebuild(strategy="unpartitioned")
    save_snapshot(path, rebuilt.cover)
    # force a distinct mtime even on coarse-grained filesystems
    stat = path.stat()
    os.utime(path, (stat.st_atime, stat.st_mtime + 1))
    assert store.reload_if_changed() is True
    assert store.cover_size() == rebuilt.cover.size
    assert store.reload_if_changed() is False


def test_failed_save_leaves_existing_snapshot_intact(tmp_path):
    """A validation error must not truncate a previously good snapshot."""
    from repro.core.array_cover import ArrayTwoHopCover
    from repro.core.cover import TwoHopCover
    from repro.storage.snapshot import load_snapshot

    path = tmp_path / "cover.snap"
    good = ArrayTwoHopCover([1, 2, 3])
    good.add_lout(1, 2)
    good.add_lin(3, 2)
    save_snapshot(path, good)

    with pytest.raises(TypeError):
        save_snapshot(path, TwoHopCover([1, 2]))  # wrong flavour

    reloaded = load_snapshot(path)
    assert sorted(reloaded.entries()) == sorted(good.entries())


def test_snapshot_bytes_roundtrip_matches_file(tmp_path):
    """snapshot_to_bytes/from_bytes is the same encoding as the file."""
    from repro.core.array_cover import ArrayTwoHopCover
    from repro.storage.snapshot import snapshot_from_bytes, snapshot_to_bytes

    cover = ArrayTwoHopCover([1, 2, 3])
    cover.add_lout(1, 2)
    cover.add_lin(3, 2)
    blob = snapshot_to_bytes(cover)
    path = tmp_path / "cover.snap"
    assert save_snapshot(path, cover) == len(blob)
    assert path.read_bytes() == blob
    assert sorted(snapshot_from_bytes(blob).entries()) == sorted(cover.entries())
