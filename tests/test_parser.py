"""Tests for the from-scratch XML parser, serialiser and collection loader."""

import pytest

from repro.xmlmodel import (
    XMLSyntaxError,
    load_collection,
    parse_document,
    serialize,
)


def test_parse_minimal():
    root = parse_document("<a/>")
    assert root.tag == "a"
    assert root.children == []
    assert root.attributes == {}


def test_parse_nested_elements():
    root = parse_document("<a><b><c/></b><d/></a>")
    assert [c.tag for c in root.children] == ["b", "d"]
    assert root.children[0].children[0].tag == "c"


def test_parse_attributes_both_quotes():
    root = parse_document("""<a x="1" y='two'/>""")
    assert root.attributes == {"x": "1", "y": "two"}


def test_parse_text_content():
    root = parse_document("<a>hello <b>bold</b> world</a>")
    assert "hello" in root.text and "world" in root.text
    assert root.children[0].text == "bold"


def test_parse_entities():
    root = parse_document("<a x=\"&lt;&amp;&gt;\">&quot;&apos;&#65;&#x42;</a>")
    assert root.attributes["x"] == "<&>"
    assert root.text == "\"'AB"


def test_parse_unknown_entity_raises():
    with pytest.raises(XMLSyntaxError):
        parse_document("<a>&nope;</a>")


def test_parse_comment_and_prolog():
    text = """<?xml version="1.0"?>
    <!-- a comment -->
    <!DOCTYPE a>
    <a><!-- inner --><b/></a>"""
    root = parse_document(text)
    assert root.tag == "a"
    assert len(root.children) == 1


def test_parse_cdata():
    root = parse_document("<a><![CDATA[<not><parsed>&amp;]]></a>")
    assert root.text == "<not><parsed>&amp;"


def test_parse_processing_instruction_inside():
    root = parse_document("<a><?pi data?><b/></a>")
    assert len(root.children) == 1


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "<a>",
        "<a></b>",
        "<a",
        "<a x=/>",
        "<a x=1/>",
        '<a x="1/>',
        "<a/><b/>",
        "<a><!-- unterminated </a>",
        "<a><![CDATA[ unterminated </a>",
        "text only",
    ],
)
def test_parse_errors(bad):
    with pytest.raises(XMLSyntaxError):
        parse_document(bad)


def test_error_carries_offset():
    with pytest.raises(XMLSyntaxError) as exc:
        parse_document("<a></b>")
    assert exc.value.pos > 0


def test_serialize_roundtrip_compact():
    text = '<a x="1"><b>hi</b><c/></a>'
    root = parse_document(text)
    again = parse_document(serialize(root))
    assert again.tag == root.tag
    assert again.attributes == root.attributes
    assert [c.tag for c in again.children] == ["b", "c"]
    assert again.children[0].text == "hi"


def test_serialize_escapes():
    root = parse_document("<a/>")
    root.text = 'x < y & "z"'
    root.attributes["q"] = 'he said "hi" & left'
    again = parse_document(serialize(root))
    assert again.text == root.text
    assert again.attributes["q"] == root.attributes["q"]


def test_serialize_pretty_roundtrip():
    text = "<a><b><c/></b></a>"
    pretty = serialize(parse_document(text), indent=2)
    assert "\n" in pretty
    again = parse_document(pretty)
    assert again.children[0].children[0].tag == "c"


def test_iter_and_find_all():
    root = parse_document("<a><b/><c><b/></c></a>")
    assert root.num_elements == 4
    assert len(root.find_all("b")) == 2


# ---------------------------------------------------------------------------
# load_collection: XLink resolution
# ---------------------------------------------------------------------------


def test_load_collection_inter_document_root_link():
    docs = {
        "paper1": '<article><cite xlink:href="paper2"/></article>',
        "paper2": "<article><title>t</title></article>",
    }
    c = load_collection(docs)
    assert c.num_documents == 2
    assert len(c.inter_links) == 1
    ((u, v),) = c.inter_links
    assert c.doc(u) == "paper1"
    assert v == c.documents["paper2"].root


def test_load_collection_anchor_link():
    docs = {
        "a": '<r><ref xlink:href="b#sec2"/></r>',
        "b": '<r><sec id="sec1"/><sec id="sec2"/></r>',
    }
    c = load_collection(docs)
    ((u, v),) = c.inter_links
    assert c.elements[v].attributes["id"] == "sec2"


def test_load_collection_intra_link():
    docs = {"a": '<r><x id="t"/><ref href="#t"/></r>'}
    c = load_collection(docs)
    assert len(c.documents["a"].intra_links) == 1
    assert not c.inter_links


def test_load_collection_dangling_href_ignored():
    docs = {"a": '<r><ref xlink:href="missing#x"/><ref xlink:href="nodoc"/></r>'}
    c = load_collection(docs)
    assert c.num_links == 0


def test_load_collection_preserves_text_and_attrs():
    docs = {"a": '<r kind="x"><t>hello</t></r>'}
    c = load_collection(docs)
    root = c.documents["a"].root
    assert c.elements[root].attributes["kind"] == "x"
    tags = c.tags()
    (tid,) = tags["t"]
    assert c.elements[tid].text == "hello"


def test_load_collection_href_priority():
    # xlink:href wins over href when both are present
    docs = {
        "a": '<r><ref xlink:href="b" href="c"/></r>',
        "b": "<r/>",
        "c": "<r/>",
    }
    c = load_collection(docs)
    ((u, v),) = c.inter_links
    assert c.doc(v) == "b"


def test_nesting_depth_limit():
    """Pathologically deep input fails with a clean XMLSyntaxError, not a
    RecursionError."""
    deep = "<a>" * 500 + "</a>" * 500
    with pytest.raises(XMLSyntaxError, match="nesting"):
        parse_document(deep)


def test_nesting_below_limit_ok():
    depth = 150
    text = "".join(f"<e{i}>" for i in range(depth)) + "".join(
        f"</e{i}>" for i in reversed(range(depth))
    )
    root = parse_document(text)
    assert root.tag == "e0"


def test_sibling_depth_not_cumulative():
    """Depth tracks nesting, not total element count."""
    text = "<r>" + "<x/>" * 1000 + "</r>"
    root = parse_document(text)
    assert len(root.children) == 1000
