"""Distance-aware ranked retrieval (Section 5; the XXL use case).

Builds a distance-aware HOPI index and runs the paper's motivating query
``//~book//author``: tag similarity expands ``~book`` to monography /
publication, and results are ranked by both tag similarity and link
distance — "a path where an author element is found far away from a
book element should be ranked lower than an author that is a child or
grandchild of a book."

Run:  python examples/distance_ranking.py
"""

from repro.core import HopiIndex
from repro.query import QueryEngine, TagOntology
from repro.xmlmodel import Collection


def build_library():
    """A small mixed-vocabulary digital library."""
    c = Collection()

    book = c.new_document("tcs-handbook", "book")
    c.add_child(book.eid, "title").text = "Handbook of TCS"
    near_author = c.add_child(book.eid, "author")
    near_author.text = "J. van Leeuwen"
    part = c.add_child(book.eid, "part")
    chapter = c.add_child(part.eid, "chapter")
    section = c.add_child(chapter.eid, "section")
    far_author = c.add_child(section.eid, "author")
    far_author.text = "Contributor Deep Down"

    mono = c.new_document("automata-mono", "monography")
    c.add_child(mono.eid, "title").text = "Automata Theory"
    mono_author = c.add_child(mono.eid, "author")
    mono_author.text = "M. Rabin"

    # the book's bibliography links to the monography
    bib = c.add_child(book.eid, "bibliography")
    ref = c.add_child(bib.eid, "reference")
    c.add_link(ref.eid, mono.eid)
    return c


def main():
    collection = build_library()
    index = HopiIndex.build(collection, strategy="unpartitioned", distance=True)
    print(f"distance-aware index: |L| = {index.cover.size} entries "
          f"(3 ints each with the DIST column)\n")

    # distance lookups via MIN(LOUT.DIST + LIN.DIST)
    book_root = collection.documents["tcs-handbook"].root
    for e in collection.elements.values():
        if e.tag == "author":
            d = index.distance(book_root, e.eid)
            print(f"distance(book, author {e.text!r}) = {d}")

    ontology = TagOntology()
    ontology.relate("book", "monography", 0.9)
    ontology.relate("book", "publication", 0.8)
    engine = QueryEngine(index, ontology=ontology)

    print("\n//~book//author, ranked (similarity x distance decay):")
    for r in engine.evaluate("//~book//author"):
        author = collection.elements[r.target]
        container = collection.elements[r.bindings[0]]
        print(
            f"  score {r.score:.3f}: {author.text!r} "
            f"(under <{container.tag}> at distance "
            f"{index.distance(r.bindings[0], r.target)})"
        )

    print("\nlimited-length lookup: authors within 2 hops of the book root:")
    nearby = index.cover.descendants_within(book_root, 2)
    for eid, dist in sorted(nearby.items(), key=lambda kv: kv[1]):
        e = collection.elements[eid]
        if e.tag == "author":
            print(f"  {e.text!r} at distance {dist}")

    index.verify()
    print("\ndistances verified against the BFS oracle ✓")


if __name__ == "__main__":
    main()
