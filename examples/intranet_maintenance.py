"""Incremental maintenance in a dynamic intranet (Section 6).

Simulates the paper's target environment — "dynamic XML data collections
such as large intranets" — where documents are added, modified and
removed continuously and the index must follow without a rebuild:

1. documents arrive (insert_document = new partition + link merge),
2. a page is restructured (modify = delete + reinsert),
3. pages are retired — taking the Theorem-2 fast path when the document
   separates the document-level graph and the Theorem-3 partial
   recomputation otherwise.

Run:  python examples/intranet_maintenance.py
"""

from repro.core import HopiIndex
from repro.xmlmodel import dblp_like


def main():
    collection = dblp_like(60, seed=3)
    index = HopiIndex.build(collection, strategy="recursive", partitioner="closure")
    print(f"initial: {collection} -> |L| = {index.cover.size}")

    # ------------------------------------------------------------------
    # 1. a new document arrives, citing two existing ones
    # ------------------------------------------------------------------
    root = collection.new_document("new-survey", "article")
    collection.add_child(root.eid, "title").text = "A survey of everything"
    cites = collection.add_child(root.eid, "citations")
    for target_doc in ["dblp3", "dblp17"]:
        cite = collection.add_child(cites.eid, "cite")
        collection.add_link(cite.eid, collection.documents[target_doc].root)
    report = index.insert_document("new-survey")
    print(
        f"insert 'new-survey': +{report.entries_delta} entries "
        f"in {report.seconds * 1000:.1f} ms"
    )
    assert index.connected(root.eid, collection.documents["dblp3"].root)

    # ------------------------------------------------------------------
    # 2. retire documents: fast path vs general path
    # ------------------------------------------------------------------
    separating = [
        d for d in sorted(collection.documents) if index.document_separates(d)
    ]
    non_separating = [
        d for d in sorted(collection.documents)
        if d not in separating
    ]
    print(
        f"\n{len(separating)}/{collection.num_documents} documents separate "
        f"the document-level graph (paper: ~60% for DBLP)"
    )

    victim = separating[0]
    report = index.delete_document(victim)
    print(
        f"delete separating {victim!r}: Theorem-2 fast path, "
        f"{report.entries_delta} entry delta, {report.seconds * 1000:.1f} ms"
    )

    if non_separating:
        victim = non_separating[0]
        report = index.delete_document(victim)
        print(
            f"delete non-separating {victim!r}: Theorem-3 general path, "
            f"recomputed region of {report.recovered_region_size} elements, "
            f"{report.seconds * 1000:.1f} ms"
        )

    # ------------------------------------------------------------------
    # 3. a link rots away
    # ------------------------------------------------------------------
    u, v = sorted(collection.inter_links)[0]
    report = index.delete_edge(u, v)
    kind = "absorbed (still reachable)" if report.separating else "recomputed"
    print(f"\ndelete link {u}->{v}: {kind}, {report.seconds * 1000:.1f} ms")

    # ------------------------------------------------------------------
    # the invariant the whole section is about
    # ------------------------------------------------------------------
    index.verify()
    print(
        f"\nafter all updates: {collection} -> |L| = {index.cover.size}; "
        "cover verified against a fresh closure ✓"
    )
    print(
        "(the paper recommends occasional rebuilds when space efficiency "
        "degrades over time — compare HopiIndex.build again)"
    )


if __name__ == "__main__":
    main()
