"""Parallel divide-and-conquer index construction (Sections 4-5).

The paper's scalability argument: partition the collection, build each
partition's 2-hop cover *independently* ("this can even be done on
different machines"), then join along the cross-partition links. This
example builds the same synthetic collection three ways —

1. serially through the facade (the baseline),
2. with a 4-process pool (``workers=4``),
3. phase by phase through :class:`repro.core.pipeline.BuildPipeline`,

— verifies the covers are bit-identical, and prints the per-phase
timing breakdown the ``BENCH_build.json`` trajectory tracks.

Run:  python examples/parallel_build.py
"""

from repro.core import HopiIndex
from repro.core.pipeline import BuildPipeline
from repro.xmlmodel.generator import dblp_like


def main() -> None:
    collection = dblp_like(150, seed=2005)
    print(
        f"collection: {collection.num_documents} documents, "
        f"{collection.num_elements} elements, {collection.num_links} links\n"
    )
    limit = max(collection.num_elements // 16, 1)

    # -- 1. the classic serial build ------------------------------------
    serial = HopiIndex.build(
        collection,
        strategy="recursive",
        partitioner="node-weight",   # CLI-style alias for "node_weight"
        partition_limit=limit,
        backend="arrays",
    )

    # -- 2. the same build, partition covers in a 4-process pool --------
    parallel = HopiIndex.build(
        collection,
        strategy="recursive",
        partitioner="node-weight",
        partition_limit=limit,
        backend="arrays",
        workers=4,                   # executor defaults to "process"
    )

    assert sorted(serial.cover.entries()) == sorted(parallel.cover.entries())
    print("serial and 4-worker covers are bit-identical "
          f"(|L| = {serial.cover.size})\n")

    for label, stats in (("serial", serial.stats), ("workers=4", parallel.stats)):
        print(
            f"{label:>10}: total {stats.seconds_total:6.2f}s | "
            f"partition {stats.seconds_partitioning:5.2f}s | "
            f"covers {stats.seconds_partition_covers:5.2f}s "
            f"({stats.num_partitions} partitions, "
            f"slowest {max(stats.partition_cover_seconds, default=0):.3f}s) | "
            f"join {stats.seconds_join:5.2f}s | executor {stats.executor}"
        )

    # -- 3. the orchestrator, phase by phase ----------------------------
    # BuildPipeline exposes each phase for callers that want to reuse a
    # partitioning, ship tasks to their own executor, or inspect the
    # compact picklable task objects the process pool consumes.
    pipeline = BuildPipeline(
        collection,
        partitioner="node_weight",
        partition_limit=limit,
        backend="arrays",
        workers=2,
    )
    partitioning = pipeline.partition()
    tasks = pipeline.partition_tasks(partitioning)
    print(
        f"\nphase view: {partitioning.num_partitions} partitions, "
        f"{len(partitioning.cross_links)} cross-partition links; "
        f"task 0 ships {len(tasks[0].nodes)} nodes / "
        f"{len(tasks[0].edges)} edges"
    )
    results = pipeline.build_partition_covers(tasks)
    cover = pipeline.join(partitioning, [r.cover for r in results])
    assert sorted(cover.entries()) == sorted(serial.cover.entries())
    print(f"phase-by-phase cover identical again (|L| = {cover.size})")

    # -- 4. distributed: RPC workers + sharded join ---------------------
    # The paper: partition covers "can even be [built] on different
    # machines". Two loopback `repro build-worker` daemons stand in for
    # the build cluster here; the cross-link join is sharded over the
    # same workers (join_shards defaults to the worker count).
    from repro.core.rpc import start_worker_thread

    server_a, addr_a = start_worker_thread()
    server_b, addr_b = start_worker_thread()
    try:
        distributed = HopiIndex.build(
            collection,
            strategy="recursive",
            partitioner="node-weight",
            partition_limit=limit,
            backend="arrays",
            executor="rpc",
            rpc_workers=[addr_a, addr_b],
        )
    finally:
        for server in (server_a, server_b):
            server.shutdown()
            server.server_close()
    assert sorted(distributed.cover.entries()) == sorted(
        serial.cover.entries()
    )
    stats = distributed.stats
    print(
        f"\nrpc build over {addr_a} + {addr_b}: identical cover, "
        f"join sharded {stats.join_shards} ways "
        f"(join {stats.seconds_join:.2f}s)"
    )


if __name__ == "__main__":
    main()
