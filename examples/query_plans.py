"""Query plans tour: the AST → logical plan → operator pipeline.

Builds a small citation-linked collection with a deliberately rare
tag, then shows what the PR-5 query stack adds over plain evaluation:

1. ``explain()`` — the physical plan, with cardinality estimates and
   the join order/direction the selectivity planner chose;
2. the planner win — ``//*//erratum`` evaluated naively (left-to-right
   forward probes) vs planned (seeded at the rare tail, backward
   ``ancestors``-side probes), with identical results;
3. the new dialect — ``[predicate]`` existence filters and
   ``limit``/``offset`` windows;
4. ``PreparedQuery`` — parse once, bind per engine, the canonical plan
   key the serving tier caches by;
5. early termination — ``exists()`` and a windowed ``stream()``.

Run: ``PYTHONPATH=src python examples/query_plans.py``
"""

import time

from repro.core import HopiIndex
from repro.query import QueryEngine
from repro.xmlmodel.generator import dblp_like


def main() -> None:
    collection = dblp_like(120, seed=2005)
    docs = sorted(collection.documents)
    for doc_id in docs[::40]:  # a handful of rare 'erratum' elements
        collection.add_child(collection.documents[doc_id].root, "erratum")
    index = HopiIndex.build(collection, backend="arrays")
    engine = QueryEngine(index, max_results=10**9)

    print("== 1. explain(): the plan for a selective-tail query ==")
    print(engine.explain("//*//erratum"))
    print()
    print("   …and the naive left-to-right order it replaced:")
    print(engine.explain("//*//erratum", order="naive"))
    print()

    print("== 2. planned vs naive: same answers, different wall ==")
    t0 = time.perf_counter()
    naive = engine.evaluate("//*//erratum", order="naive")
    naive_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    planned = engine.evaluate("//*//erratum")
    planned_s = time.perf_counter() - t0
    assert [(r.bindings, r.score) for r in naive] == [
        (r.bindings, r.score) for r in planned
    ]
    print(
        f"   {len(planned)} matches; naive {naive_s * 1e3:.1f} ms, "
        f"planned {planned_s * 1e3:.1f} ms "
        f"({naive_s / max(planned_s, 1e-9):.1f}x)"
    )
    print()

    print("== 3. predicates and windows ==")
    cited = engine.evaluate("//article[citations]//author limit 5")
    print(f"   //article[citations]//author limit 5 -> {len(cited)} results")
    page2 = engine.evaluate("//article//author limit 5 offset 5")
    print(f"   //article//author limit 5 offset 5   -> {len(page2)} results "
          "(page 2 of the ranked list)")
    print()

    print("== 4. PreparedQuery: parse once, bind per engine/epoch ==")
    prepared = engine.prepare("  //article//author   limit 5  ")
    print(f"   canonical plan key: {prepared.key!r}")
    plan = prepared.bind(engine)
    print(f"   bound order: {[(op.op, op.position, op.direction) for op in plan.ops]}")
    print()

    print("== 5. early termination: exists() and stream() ==")
    print(f"   exists //article//erratum: {engine.exists('//article//erratum')}")
    print(f"   exists //article//nonexistent: "
          f"{engine.exists('//article//nonexistent')}")
    first_three = list(engine.stream("//article//author limit 3"))
    print(f"   stream limit 3 pulled {len(first_three)} bindings "
          "without draining the pipeline")


if __name__ == "__main__":
    main()
