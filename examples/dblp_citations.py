"""Citation search over a DBLP-style collection (the paper's Section 1
motivation: path expressions with wildcards over inter-document links).

Generates a synthetic DBLP-like collection, builds HOPI with the new
structurally recursive algorithm, and answers the queries that plain
tree indexes cannot: transitive citation reachability and
``//``-wildcard path expressions that cross document boundaries.

Run:  python examples/dblp_citations.py
"""

from repro.core import HopiIndex
from repro.query import QueryEngine
from repro.xmlmodel import dblp_like


def main():
    collection = dblp_like(120, seed=7)
    print(f"collection: {collection}")

    index = HopiIndex.build(
        collection,
        strategy="recursive",       # Section 4.1's join
        partitioner="closure",      # Section 4.3's partitioner
        edge_weight="AxD",          # Section 4.3's connection weights
    )
    stats = index.stats
    print(
        f"built in {stats.seconds_total:.2f}s: {stats.num_partitions} "
        f"partitions, {stats.num_cross_links} cross links, "
        f"|L| = {stats.cover_size}"
    )
    report = index.size_report(with_closure=True)
    print(
        f"transitive closure: {report.closure_connections:,} connections; "
        f"compression factor {report.compression:.1f}\n"
    )

    # --- transitive citation analysis --------------------------------
    docs = sorted(collection.documents)
    roots = {d: collection.documents[d].root for d in docs}
    seed_doc = docs[0]
    influenced = [
        d for d in docs
        if d != seed_doc and index.connected(roots[d], roots[seed_doc])
    ]
    print(
        f"{seed_doc} is (transitively) cited by {len(influenced)} "
        f"publications, e.g. {influenced[:5]}"
    )

    # most influential publication = most reachable-from others
    influence = {
        d: sum(
            1 for other in docs
            if other != d and index.connected(roots[other], roots[d])
        )
        for d in docs
    }
    top = sorted(influence, key=influence.get, reverse=True)[:3]
    print("most cited (transitively):")
    for d in top:
        title = next(
            (
                e.text
                for e in collection.elements.values()
                if e.doc == d and e.tag == "title"
            ),
            "?",
        )
        print(f"  {d} ({influence[d]} reaching publications): {title!r}")

    # --- wildcard path queries across links ---------------------------
    engine = QueryEngine(index, max_results=10)
    print("\n//article//author (crosses citation links):")
    for r in engine.evaluate("//article//author")[:5]:
        author = collection.elements[r.target]
        print(f"  score {r.score:.2f}: {author.text!r} in {author.doc}")

    print("\n//~publication//keyword (ontology expands ~publication):")
    for r in engine.evaluate("//~publication//keyword")[:5]:
        kw = collection.elements[r.target]
        print(f"  score {r.score:.2f}: {kw.text!r} in {kw.doc}")


if __name__ == "__main__":
    main()
