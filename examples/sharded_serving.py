"""Sharded serving: scatter-gather over per-shard QueryServices.

Builds one HOPI index over a DBLP-like collection, then serves it three
ways and shows they answer identically:

1. single-process :class:`repro.service.QueryService` (the baseline);
2. a 2-shard in-process :class:`repro.service.ShardRouter` — documents
   are hash-partitioned, every query is scattered to both shards and the
   ranked per-shard answers are heap-merged;
3. the same router over two loopback RPC workers (the ``repro
   build-worker`` daemon, speaking the ``S`` shard frames).

It then hot-swaps the index through the router — generations roll in
shard-by-shard, readers never see a torn answer — and finally kills one
worker to demonstrate the structured degraded mode.

Run:  python examples/sharded_serving.py
(or:  repro serve index.db --shards 2)
"""

from repro.core import HopiIndex
from repro.core.rpc import start_worker_thread
from repro.service import QueryService, ShardRouter, ShardUnavailableError
from repro.xmlmodel.generator import dblp_like

PATH = "//article//cite//article"


def show(label, response):
    top = [(round(r.score, 3), r.bindings) for r in response.results[:3]]
    print(f"  {label}: total={response.total} epoch={response.epoch} "
          f"top={top}")


def main():
    collection = dblp_like(24, seed=7)
    print(f"collection: {collection}")
    index = HopiIndex.build(collection, backend="arrays")
    print(f"index: {index}\n")

    # ---- 1. single-process baseline -----------------------------------
    single = QueryService(index.copy(), max_results=50)
    baseline = single.query(PATH, limit=5)
    print(f"single-process {PATH!r} (limit 5):")
    show("baseline", baseline)

    # ---- 2. in-process 2-shard router ---------------------------------
    with ShardRouter(index.copy(), 2, max_results=50) as router:
        sharded = router.query(PATH, limit=5)
        show("2 shards", sharded)
        same = [(r.score, r.bindings) for r in baseline.results] == \
               [(r.score, r.bindings) for r in sharded.results]
        print(f"  bit-identical to single-process: {same}")
        health = router.healthz()
        print(f"  healthz: status={health['status']} "
              f"shards={len(health['shards'])} down={health['shards_down']}")

        # ---- rolling hot swap ----------------------------------------
        roots = sorted(d.root for d in collection.documents.values())
        report = router.update(
            [{"op": "insert_element", "parent": roots[0], "tag": "note"}]
        )
        print(f"\nrolling swap: generations install shard-by-shard, "
              f"epoch {sharded.epoch} -> {report['epoch']}")
        show("post-swap", router.query(PATH, limit=5))

    # ---- 3. the same router over two loopback RPC workers -------------
    s1, a1 = start_worker_thread()
    s2, a2 = start_worker_thread()
    router = ShardRouter(index.copy(), 2, workers=[a1, a2],
                         max_results=50, connect_attempts=1,
                         fanout_timeout=10.0)
    try:
        print(f"\nrpc executor over workers {a1} and {a2}:")
        show("2 shards/rpc", router.query(PATH, limit=5))

        # ---- failover: kill one worker -> structured degraded mode ----
        s2.shutdown()
        s2.server_close()
        router._clients[1].close()
        try:
            router.query("//article//author")
        except ShardUnavailableError as exc:
            print(f"  worker 2 killed -> ShardUnavailableError "
                  f"(shards_down={exc.shards}) — a structured 503 over "
                  f"HTTP, never a hang")
        print(f"  healthz now: {router.healthz()['status']}")
    finally:
        router.close()
        s1.shutdown()
        s1.server_close()


if __name__ == "__main__":
    main()
