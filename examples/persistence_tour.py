"""Database persistence tour (Section 3.4's LIN/LOUT layout on SQLite).

Parses raw XML with XLink attributes, builds an index, persists cover
*and* collection into one SQLite file, reopens it, and answers queries
straight from SQL — the paper's deployment model (theirs was Oracle 9.2;
the schema and queries are identical).

Run:  python examples/persistence_tour.py
"""

import os
import tempfile

from repro.core import HopiIndex
from repro.storage import SQLiteCoverStore, load_index, persist_index
from repro.xmlmodel import load_collection

RAW_DOCUMENTS = {
    "portal": """
        <site>
          <page id="home">
            <title>Welcome</title>
            <ref xlink:href="docs#install"/>
          </page>
          <page id="news"><ref xlink:href="#home"/></page>
        </site>
    """,
    "docs": """
        <manual>
          <chapter id="install">
            <title>Installation</title>
            <see xlink:href="faq"/>
          </chapter>
          <chapter id="usage"><title>Usage</title></chapter>
        </manual>
    """,
    "faq": """
        <faq>
          <entry><q>Does it work?</q><a>Yes.</a></entry>
        </faq>
    """,
}


def main():
    # 1. parse XML (from-scratch parser; hrefs resolve to links)
    collection = load_collection(RAW_DOCUMENTS)
    print(f"parsed: {collection}")
    print(f"inter-document links: {sorted(collection.inter_links)}")

    # 2. build and persist
    index = HopiIndex.build(collection)
    path = os.path.join(tempfile.mkdtemp(), "hopi.db")
    store = persist_index(index, path)
    print(
        f"\npersisted to {path}: {store.cover_size()} label entries "
        f"({os.path.getsize(path):,} bytes on disk)"
    )

    # 3. query with the paper's SQL, directly against the store
    tags = collection.tags()
    (site,) = tags["site"]
    (faq_root,) = tags["faq"]
    print(
        "\nSELECT COUNT(*) FROM LIN, LOUT WHERE ...  "
        f"-> site ->* faq: {store.connected(site, faq_root)}"
    )
    print(f"descendants of the portal root (SQL): {sorted(store.descendants(site))}")
    store.close()

    # 4. reopen later: the file is self-contained
    reloaded = load_index(path)
    reloaded.verify()
    print("\nreloaded index verifies against a fresh closure ✓")

    # the reloaded index supports maintenance like the original
    reloaded.delete_document("faq")
    reloaded.verify()
    print("deleted 'faq' incrementally on the reloaded index ✓")

    # 5. persist the updated state back
    with SQLiteCoverStore(path) as s:
        s.save_collection(reloaded.collection)
        s.save_cover(reloaded.cover)
    print(f"updated state written back ({os.path.getsize(path):,} bytes)")


if __name__ == "__main__":
    main()
