"""Quickstart: build a HOPI index over the paper's Figure-1 collection.

Builds the three-document example collection of Figure 1 (parent-child
edges, one intra-document link, two inter-document links), constructs a
2-hop cover, and demonstrates the label semantics: ``u ->* v`` iff
``(Lout(u) ∪ {u}) ∩ (Lin(v) ∪ {v}) ≠ ∅``.

Run:  python examples/quickstart.py
"""

from repro.core import HopiIndex
from repro.xmlmodel import Collection


def build_figure1_collection():
    """The element-level graph of Figure 1 (three linked documents)."""
    c = Collection()
    ids = {}

    d1 = c.new_document("d1", "article")          # element 1
    ids[1] = d1.eid
    ids[2] = c.add_child(d1.eid, "title").eid      # element 2
    ids[3] = c.add_child(d1.eid, "cite").eid       # element 3

    d2 = c.new_document("d2", "article")          # element 4
    ids[4] = d2.eid
    ids[5] = c.add_child(d2.eid, "section").eid    # element 5
    ids[6] = c.add_child(ids[5], "author").eid     # element 6

    d3 = c.new_document("d3", "article")          # element 7
    ids[7] = d3.eid
    ids[8] = c.add_child(d3.eid, "cite").eid       # element 8
    ids[9] = c.add_child(d3.eid, "ref").eid        # element 9

    c.add_link(ids[9], ids[8])  # intra-document link (dashed arrow)
    c.add_link(ids[3], ids[5])  # inter-document link d1 -> d2 (strong arrow)
    c.add_link(ids[8], ids[4])  # inter-document link d3 -> d2
    return c, ids


def main():
    collection, ids = build_figure1_collection()
    print(f"collection: {collection}")

    index = HopiIndex.build(collection)
    print(f"index: {index}")
    print(f"cover size |L| = {index.cover.size} entries "
          f"(vs {4 * index.cover.size} stored ints with backward index)\n")

    u, v = ids[1], ids[6]  # u in d1, v deep inside d2
    print(f"Lout(u={u}) = {sorted(index.cover.lout_of(u))}")
    print(f"Lin (v={v}) = {sorted(index.cover.lin_of(v))}")
    witness = (index.cover.lout_of(u) | {u}) & (index.cover.lin_of(v) | {v})
    print(f"intersection (with implicit self) = {sorted(witness)} "
          f"=> connected: {index.connected(u, v)}\n")

    print("reachability across documents and links:")
    for a, b in [(1, 6), (7, 6), (9, 4), (6, 1), (3, 5)]:
        print(f"  {a} ->* {b}: {index.connected(ids[a], ids[b])}")

    print(f"\ndescendants of d1's root: {sorted(index.descendants(ids[1]))}")
    print(f"ancestors of element 6:   {sorted(index.ancestors(ids[6]))}")

    # the cover is exact — verify against a BFS oracle
    index.verify()
    print("\nverified against the transitive-closure oracle ✓")


if __name__ == "__main__":
    main()
