"""Beyond XML: 2-hop reachability over a software dependency graph.

The paper's future work (Section 8) points out that compressing the
transitive closure is useful far beyond XML. This example indexes a
package dependency graph: "does upgrading X affect Y?" is a reachability
query, "how far downstream?" is a distance query, and publishing or
yanking a release is incremental maintenance.

Run:  python examples/dependency_graph.py
"""

import random

from repro.graph import DiGraph, transitive_closure
from repro.graph.reachability import ReachabilityIndex


def build_dependency_graph(n_packages=120, seed=5):
    """Layered synthetic package graph (apps -> libs -> core)."""
    rng = random.Random(seed)
    g = DiGraph()
    names = [f"pkg{i}" for i in range(n_packages)]
    for name in names:
        g.add_node(name)
    for i, name in enumerate(names):
        # depend on a few earlier (more fundamental) packages
        for _ in range(rng.randint(1, 4)):
            if i == 0:
                break
            g.add_edge(name, names[rng.randrange(i)])
    return g


def main():
    graph = build_dependency_graph()
    closure = transitive_closure(graph)
    index = ReachabilityIndex(graph, distance=True)
    print(
        f"dependency graph: {len(graph)} packages, {graph.num_edges()} edges; "
        f"closure {closure.num_connections:,} pairs -> "
        f"{index.size:,} label entries "
        f"({closure.num_connections / index.size:.1f}x compression)\n"
    )

    # impact analysis: what does pkg3 transitively depend on?
    deps = index.descendants("pkg3") - {"pkg3"}
    dependents = index.ancestors("pkg3") - {"pkg3"}
    print(f"pkg3 depends on {len(deps)} packages "
          f"and is depended on by {len(dependents)}")

    # hop distance = how indirect the dependency is
    fundamental = min(graph, key=lambda p: graph.out_degree(p))
    chains = {
        p: index.distance(p, fundamental)
        for p in sorted(dependents | {"pkg3"})
        if index.distance(p, fundamental) is not None
    }
    deepest = max(chains.items(), key=lambda kv: kv[1], default=None)
    if deepest:
        print(f"longest dependency chain onto {fundamental}: "
              f"{deepest[0]} at {deepest[1]} hops")

    # maintenance: a new release adds a dependency; a yank removes one
    index.add_node("pkg-new")
    index.add_edge("pkg-new", "pkg3")
    print(f"\nafter publishing pkg-new -> pkg3: "
          f"pkg-new transitively depends on {len(index.descendants('pkg-new')) - 1} packages")

    some_edge = next(iter(graph.edges()))
    index.remove_edge(*some_edge)
    print(f"after yanking {some_edge[0]} -> {some_edge[1]}: index still exact...")
    index.verify()
    print("verified against the BFS oracle ✓")


if __name__ == "__main__":
    main()
