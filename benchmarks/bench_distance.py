"""E12-E13 — Section 5: the distance-aware cover.

The abstract claims "low space overhead for including distance
information in the index"; Section 5.2 claims the sampled initial
density estimate "never exceeded the real maximal density" in their
experiments. Both are measured here.

On entry-count overhead: a distance cover is inherently larger than a
reachability cover of the same graph because a center may only cover
pairs it has a *shortest* path between — centers are shareable across
fewer pairs. The per-entry byte overhead of the DIST column itself is
3/2.
"""

import random

import pytest

from repro.core.distance import (
    build_distance_cover,
    estimate_center_graph_edges,
)
from repro.core.hopi import HopiIndex
from repro.graph.closure import distance_closure
from repro.graph.digraph import DiGraph


def test_distance_build_overhead(benchmark, dblp):
    """E12: distance vs plain cover, same build configuration."""
    limit = max(dblp.num_elements // 16, 1)

    plain = HopiIndex.build(
        dblp, strategy="recursive", partitioner="node_weight",
        partition_limit=limit,
    )

    index = benchmark.pedantic(
        lambda: HopiIndex.build(
            dblp, strategy="recursive", partitioner="node_weight",
            partition_limit=limit, distance=True,
        ),
        rounds=1,
        iterations=1,
    )
    entry_overhead = index.cover.size / plain.cover.size
    benchmark.extra_info.update(
        plain_size=plain.cover.size,
        distance_size=index.cover.size,
        entry_overhead=round(entry_overhead, 2),
        byte_overhead=round(1.5 * entry_overhead, 2),
    )
    # the overhead stays within a small constant factor of the plain cover
    assert entry_overhead < 6.0


def test_distance_query_correct_sample(benchmark, dblp):
    """Distance answers equal BFS distances on sampled pairs."""
    index = HopiIndex.build(
        dblp, strategy="recursive", partitioner="node_weight",
        partition_limit=max(dblp.num_elements // 16, 1), distance=True,
    )
    oracle = distance_closure(dblp.element_graph())
    rng = random.Random(3)
    nodes = sorted(dblp.elements)
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(2000)]

    answers = benchmark(lambda: [index.distance(u, v) for u, v in pairs])
    expected = [oracle.distance(u, v) for u, v in pairs]
    assert answers == expected


def test_distance_query_backends(benchmark, dblp):
    """Array vs set backend on point distance queries (same cover)."""
    sets_index = HopiIndex.build(
        dblp, strategy="recursive", partitioner="node_weight",
        partition_limit=max(dblp.num_elements // 16, 1), distance=True,
    )
    arrays_index = sets_index.with_backend("arrays")
    rng = random.Random(7)
    nodes = sorted(dblp.elements)
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(2000)]

    import time

    t0 = time.perf_counter()
    expected = [sets_index.distance(u, v) for u, v in pairs]
    sets_seconds = time.perf_counter() - t0

    answers = benchmark(
        lambda: [arrays_index.distance(u, v) for u, v in pairs]
    )
    benchmark.extra_info.update(sets_seconds=round(sets_seconds, 4))
    assert answers == expected


def test_density_estimate_upper_bounds(benchmark):
    """E13: across random graphs, the 98%-CI sampled estimate stays at or
    above the true center-graph edge count (so the priority queue never
    undershoots badly)."""
    rng = random.Random(42)

    def run_sweep():
        violations = 0
        checks = 0
        for trial in range(10):
            g = DiGraph()
            n = 40
            for v in range(n):
                g.add_node(v)
            for _ in range(300):
                u, v = rng.randrange(n), rng.randrange(n)
                if u < v:
                    g.add_edge(u, v)
            dc = distance_closure(g)
            for w in list(g)[:10]:
                anc = dict(dc.ancestors_of(w))
                anc[w] = 0
                desc = dict(dc.descendants_of(w))
                desc[w] = 0
                if (len(anc) - 1) * (len(desc) - 1) < 50:
                    continue
                exact = estimate_center_graph_edges(
                    w, dc, anc, desc, random.Random(0), sample_budget=10**9
                )
                sampled = estimate_center_graph_edges(
                    w, dc, anc, desc, random.Random(trial), sample_budget=50
                )
                checks += 1
                if sampled < exact:
                    violations += 1
        return checks, violations

    checks, violations = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    benchmark.extra_info.update(checks=checks, violations=violations)
    if checks:
        # the paper observed zero violations; allow the CI's nominal 2%
        # failure rate plus slack for the tiny 50-sample budget
        assert violations <= max(0.25 * checks, 1)


def test_distance_build_speed_small(benchmark):
    """Raw distance-builder throughput on a mid-size random DAG."""
    rng = random.Random(5)
    g = DiGraph()
    n = 250
    for v in range(n):
        g.add_node(v)
    for _ in range(700):
        u, v = rng.randrange(n), rng.randrange(n)
        if u < v:
            g.add_edge(u, v)

    cover = benchmark.pedantic(
        lambda: build_distance_cover(g), rounds=1, iterations=1
    )
    benchmark.extra_info.update(cover_size=cover.size)
    cover.verify_against(distance_closure(g))
