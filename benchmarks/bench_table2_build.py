"""E2-E7 — Table 2 and the Section-7.2 in-text results: build time/size.

One benchmark per Table-2 row. Results accumulate in a module-level
registry; the later rows assert the paper's cross-row claims:

* the new recursive join beats the old incremental join in both time and
  cover size (paper: 10-15x faster, ~40% smaller for P5/P10);
* cover size over partition granularity is U-shaped (P50 worse than
  P5/P10);
* the N-series (closure-size-aware partitioner) matches the P-series
  cover sizes with balanced per-partition closures;
* the unpartitioned global cover achieves the best compression but the
  worst build time (paper: 267x vs 21.6-34.6x; 45h23m vs hours);
* the INEX build needs < 3 entries per node.
"""

import pytest

from repro.bench.harness import N_SERIES, P_SERIES, PAPER_TABLE2, run_build
from repro.core.hopi import HopiIndex
from repro.core.partitioning import partition_by_closure_size, partition_closure_sizes
from repro.core.stats import entries_per_node

_ROWS = {}


def _bench_build(benchmark, collection, closure_size, label, **kwargs):
    row = benchmark.pedantic(
        lambda: run_build(
            collection, label, closure_connections=closure_size, **kwargs
        ),
        rounds=1,
        iterations=1,
    )
    _ROWS[label] = row
    paper = PAPER_TABLE2.get(label)
    benchmark.extra_info.update(
        cover_size=row.cover_size,
        compression=round(row.compression, 2),
        partitions=row.num_partitions,
        paper_seconds=paper[0] if paper else None,
        paper_size=paper[1] if paper else None,
        paper_compression=paper[2] if paper else None,
    )
    return row


def test_build_baseline_old_join(benchmark, dblp, dblp_closure_size):
    """E2: old partitioner + old incremental link-at-a-time join."""
    limit = max(int(dblp.num_elements * P_SERIES["P10"]), 1)
    row = _bench_build(
        benchmark, dblp, dblp_closure_size, "baseline",
        strategy="incremental", partitioner="node_weight",
        partition_limit=limit,
    )
    assert row.compression > 1.0


@pytest.mark.parametrize("label", list(P_SERIES))
def test_build_p_series(benchmark, dblp, dblp_closure_size, label):
    """E3: old partitioner with the new recursive join (P5..P50)."""
    limit = max(int(dblp.num_elements * P_SERIES[label]), 1)
    row = _bench_build(
        benchmark, dblp, dblp_closure_size, label,
        strategy="recursive", partitioner="node_weight",
        partition_limit=limit,
    )
    assert row.compression > 1.0
    if label == "P50" and "P5" in _ROWS:
        # the U-shape: overly large partitions hurt the joined cover
        assert row.cover_size >= _ROWS["P5"].cover_size
    if "baseline" in _ROWS:
        # the paper's headline: new join never loses to the old one
        assert row.cover_size < _ROWS["baseline"].cover_size
        assert row.seconds < _ROWS["baseline"].seconds


def test_build_single_doc_partitions(benchmark, dblp, dblp_closure_size):
    """E4: every document its own partition ('naive')."""
    row = _bench_build(
        benchmark, dblp, dblp_closure_size, "single",
        strategy="recursive", partitioner="single",
    )
    assert row.num_partitions == dblp.num_documents


@pytest.mark.parametrize("label", list(N_SERIES))
def test_build_n_series(benchmark, dblp, dblp_closure_size, label):
    """E5: new closure-size-aware partitioner (N10..N100)."""
    limit = max(int(dblp_closure_size * N_SERIES[label]), 100)
    row = _bench_build(
        benchmark, dblp, dblp_closure_size, label,
        strategy="recursive", partitioner="closure",
        partition_limit=limit,
    )
    assert row.compression > 1.0
    if "P10" in _ROWS:
        # "similar results to the old partitioning algorithm": within 2x
        assert row.cover_size < 2 * _ROWS["P10"].cover_size


def test_n_series_closure_balance(benchmark, dblp, dblp_closure_size):
    """E5 balance claim: the new partitioner yields partitions of similar
    closure size, enabling near-linear parallel speedup."""
    limit = max(int(dblp_closure_size * N_SERIES["N25"]), 100)

    def build_partitioning():
        return partition_by_closure_size(dblp, limit, seed=0)

    partitioning = benchmark.pedantic(build_partitioning, rounds=1, iterations=1)
    sizes = partition_closure_sizes(dblp, partitioning)
    grown = [
        s for s, docs in zip(sizes, partitioning.partitions) if len(docs) > 1
    ]
    benchmark.extra_info.update(
        partitions=partitioning.num_partitions,
        max_closure=max(sizes),
        budget=limit,
    )
    assert max(sizes) <= limit or any(
        len(d) == 1 for d in partitioning.partitions
    )
    if grown:
        assert max(grown) <= limit


def test_unpartitioned_global_cover(benchmark, dblp, dblp_closure_size):
    """E6: the Section-7.2 global cover — best compression, worst time."""
    row = _bench_build(
        benchmark, dblp, dblp_closure_size, "global (7.2)",
        strategy="unpartitioned",
    )
    for label in ("baseline", "P5", "P10"):
        if label in _ROWS:
            assert row.compression >= _ROWS[label].compression
            assert row.seconds >= _ROWS[label].seconds


def test_inex_entries_per_node(benchmark, inex):
    """E7: INEX build stays below 3 index entries per node."""
    index = benchmark.pedantic(
        lambda: HopiIndex.build(
            inex, strategy="recursive", partitioner="closure"
        ),
        rounds=1,
        iterations=1,
    )
    epn = entries_per_node(index.cover.size, inex.num_elements)
    benchmark.extra_info.update(
        cover_size=index.cover.size, entries_per_node=round(epn, 3)
    )
    assert epn < 3.0
