"""E8-E11 — Section 7.3: incremental index maintenance.

Paper reference points: ~60% of the DBLP documents separate the
collection (100% of INEX, which has no links); the separator test took
2 s and a separating delete 13 s on their setup (a 6.5x ratio over the
test); non-separating deletes recompute part of the closure and can be
more expensive than rebuilding.
"""

import random

import pytest

from repro.core.cover_builder import build_cover
from repro.core.maintenance import (
    delete_document,
    document_separates,
    insert_document,
)


@pytest.fixture(scope="module")
def dblp_cover(dblp):
    return build_cover(dblp.element_graph())


def _scratch(collection, cover):
    return collection.subcollection(collection.documents), cover.copy()


def test_separating_fraction(benchmark, dblp):
    """E8: fraction of documents whose deletion takes the fast path."""
    docs = sorted(dblp.documents)
    rng = random.Random(7)
    sample = rng.sample(docs, min(40, len(docs)))

    def classify_all():
        return sum(document_separates(dblp, d) for d in sample)

    separating = benchmark.pedantic(classify_all, rounds=1, iterations=1)
    fraction = separating / len(sample)
    benchmark.extra_info.update(
        separating_fraction=round(fraction, 3),
        paper_fraction=0.6,
        sample=len(sample),
    )
    # citation-linked collections sit between "all" and "none": the
    # paper measured ~60%, our generator lands in the same band
    assert 0.2 <= fraction <= 0.95


def test_separating_fraction_inex(benchmark, inex):
    """E8 (INEX): without inter-document links every document separates."""
    docs = sorted(inex.documents)

    def classify_all():
        return sum(document_separates(inex, d) for d in docs)

    separating = benchmark.pedantic(classify_all, rounds=1, iterations=1)
    assert separating == len(docs)


def test_separator_test_time(benchmark, dblp):
    """E9a: the separator test itself (paper: ~2 s on 6,210 docs)."""
    docs = sorted(dblp.documents)
    rng = random.Random(3)
    sample = rng.sample(docs, min(20, len(docs)))
    it = iter(sample * 1000)

    benchmark(lambda: document_separates(dblp, next(it)))


def test_separating_delete(benchmark, dblp, dblp_cover):
    """E9b: deleting a separating document (paper: ~13 s, i.e. ~6.5x the
    test time)."""
    docs = sorted(dblp.documents)
    rng = random.Random(5)
    separating = [
        d for d in rng.sample(docs, min(30, len(docs)))
        if document_separates(dblp, d)
    ]
    assert separating, "sample contained no separating documents"
    it = iter(separating * 200)

    def delete_one():
        scratch, cover = _scratch(dblp, dblp_cover)
        report = delete_document(scratch, cover, next(it))
        assert report.separating is True
        return report

    benchmark.pedantic(delete_one, rounds=min(5, len(separating)), iterations=1)


def test_nonseparating_delete_vs_rebuild(benchmark, dblp, dblp_cover):
    """E10: the general (Theorem 3) deletion recomputes part of the
    closure; its cost grows with the connected region and can approach
    or exceed a rebuild."""
    import time

    docs = sorted(dblp.documents)
    rng = random.Random(9)
    non_separating = [
        d for d in rng.sample(docs, min(40, len(docs)))
        if not document_separates(dblp, d)
    ]
    if not non_separating:
        pytest.skip("no non-separating documents in the sample")
    it = iter(non_separating * 100)

    def delete_one():
        scratch, cover = _scratch(dblp, dblp_cover)
        report = delete_document(scratch, cover, next(it))
        assert report.separating is False
        return report

    report = benchmark.pedantic(
        delete_one, rounds=min(3, len(non_separating)), iterations=1
    )
    t0 = time.perf_counter()
    build_cover(dblp.element_graph())
    rebuild_seconds = time.perf_counter() - t0
    benchmark.extra_info.update(
        recovered_region=report.recovered_region_size,
        rebuild_seconds=round(rebuild_seconds, 3),
        paper_note="deletes of highly connected docs exceeded rebuild",
    )
    # the recomputed region is a real fraction of the graph
    assert report.recovered_region_size > 0


def test_insert_document(benchmark, dblp, dblp_cover):
    """E11: inserting a new document = new partition + link merge."""
    counter = iter(range(10_000))

    def insert_one():
        scratch, cover = _scratch(dblp, dblp_cover)
        doc_id = f"bench-{next(counter)}"
        root = scratch.new_document(doc_id, "article")
        cite = scratch.add_child(root.eid, "cite")
        target = scratch.documents[sorted(dblp.documents)[0]].root
        scratch.add_link(cite.eid, target)
        return insert_document(scratch, cover, doc_id)

    report = benchmark.pedantic(insert_one, rounds=5, iterations=1)
    assert report.entries_delta > 0


def test_insert_edge(benchmark, dblp, dblp_cover):
    """E11b: single-link insertion (Figure 2's rule)."""
    from repro.core.maintenance import insert_edge

    rng = random.Random(13)
    docs = sorted(dblp.documents)

    def insert_one():
        scratch, cover = _scratch(dblp, dblp_cover)
        u = scratch.documents[rng.choice(docs)].root
        v = scratch.documents[rng.choice(docs)].root
        if u == v:
            return None
        return insert_edge(scratch, cover, u, v)

    benchmark.pedantic(insert_one, rounds=5, iterations=1)
