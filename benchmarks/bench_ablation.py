"""E14-E15 — ablations of the paper's design choices.

* Section 4.2: preselecting cross-partition link targets as center nodes
  "gave some decrease in cover size, but the effects were marginal
  (about 10,000 entries less)" — i.e. a small, non-negative saving.
* Section 4.3: connection-based edge weights (A*D / A+D) versus plain
  link counts for the partitioner; the paper found the new partitioner
  with A*D weights "gave similar results to the old partitioning
  algorithm, while the other combinations were not as good".
"""

import pytest

from repro.bench.harness import N_SERIES, run_build
from repro.core.hopi import HopiIndex


def test_center_preselection(benchmark, dblp):
    """E14: cover size with vs without center preselection."""
    kwargs = dict(
        strategy="recursive",
        partitioner="node_weight",
        partition_limit=max(int(dblp.num_elements * 0.06), 1),
    )
    without = HopiIndex.build(dblp, preselect_centers=False, **kwargs)
    with_pre = benchmark.pedantic(
        lambda: HopiIndex.build(dblp, preselect_centers=True, **kwargs),
        rounds=1,
        iterations=1,
    )
    saving = without.cover.size - with_pre.cover.size
    benchmark.extra_info.update(
        with_preselection=with_pre.cover.size,
        without_preselection=without.cover.size,
        entries_saved=saving,
        paper_note="~10k entries saved of ~10M (marginal)",
    )
    # marginal but not harmful: the preselected build stays within 5%
    assert with_pre.cover.size <= 1.05 * without.cover.size


@pytest.mark.parametrize("mode", ["links", "AxD", "A+D"])
def test_edge_weights(benchmark, dblp, dblp_closure_size, mode):
    """E15: partitioner edge-weight schemes under the N25 budget."""
    limit = max(int(dblp_closure_size * N_SERIES["N25"]), 100)
    row = benchmark.pedantic(
        lambda: run_build(
            dblp,
            f"N25/{mode}",
            closure_connections=dblp_closure_size,
            strategy="recursive",
            partitioner="closure",
            partition_limit=limit,
            edge_weight=mode,
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        cover_size=row.cover_size,
        compression=round(row.compression, 2),
        partitions=row.num_partitions,
    )
    assert row.compression > 1.0
