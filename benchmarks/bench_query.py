"""E16 — query performance.

The paper defers query benchmarks to [26] ("this was already covered");
we reproduce the essentials: HOPI connection tests versus online BFS and
versus the materialised closure, descendant enumeration, the SQL-backed
store versus the in-memory store, end-to-end path-expression
evaluation, and the label-backend comparison on the descendant-step
workload (recorded as a ``BENCH_query.json`` trajectory entry).
"""

import os
import pathlib
import random

import pytest

from repro.bench.harness import (
    descendant_step_workload,
    emit_bench_query_entry,
    run_backend_query_benchmark,
    run_planner_benchmark,
    run_topk_benchmark,
)
from repro.core.hopi import HopiIndex
from repro.graph.closure import transitive_closure
from repro.graph.traversal import is_reachable
from repro.query import QueryEngine
from repro.storage import MemoryCoverStore, SQLiteCoverStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def built(dblp):
    index = HopiIndex.build(
        dblp, strategy="recursive", partitioner="node_weight",
        partition_limit=max(dblp.num_elements // 16, 1),
    )
    rng = random.Random(11)
    nodes = sorted(dblp.elements)
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(1000)]
    return index, pairs


def test_connection_hopi(benchmark, built):
    index, pairs = built
    answers = benchmark(lambda: [index.connected(u, v) for u, v in pairs])
    benchmark.extra_info.update(positive=sum(answers))


def test_connection_bfs_baseline(benchmark, dblp, built):
    index, pairs = built
    graph = dblp.element_graph()
    answers = benchmark(lambda: [is_reachable(graph, u, v) for u, v in pairs])
    assert answers == [index.connected(u, v) for u, v in pairs]


def test_connection_materialized_closure(benchmark, dblp, built):
    index, pairs = built
    closure = transitive_closure(dblp.element_graph())
    benchmark.extra_info.update(
        closure_connections=closure.num_connections,
        cover_entries=index.cover.size,
        compression=round(closure.num_connections / index.cover.size, 1),
    )
    answers = benchmark(lambda: [closure.contains(u, v) for u, v in pairs])
    assert answers == [index.connected(u, v) for u, v in pairs]


def test_descendants_hopi(benchmark, built):
    index, pairs = built
    sources = [u for u, _ in pairs[:200]]
    benchmark(lambda: [index.descendants(u) for u in sources])


def test_connection_sql_store(benchmark, built):
    index, pairs = built
    store = SQLiteCoverStore(":memory:")
    store.save_cover(index.cover)
    answers = benchmark(lambda: [store.connected(u, v) for u, v in pairs])
    assert answers == [index.connected(u, v) for u, v in pairs]


def test_connection_memory_store(benchmark, built):
    index, pairs = built
    store = MemoryCoverStore(index.cover)
    benchmark(lambda: [store.connected(u, v) for u, v in pairs])


def test_path_expression_wildcard(benchmark, built):
    """//article//cite across citation links — the motivating query."""
    index, _ = built
    engine = QueryEngine(index, max_results=100_000)
    results = benchmark(lambda: engine.evaluate("//article//cite"))
    benchmark.extra_info.update(matches=len(results))
    assert results


# ---------------------------------------------------------------------------
# label backends on the descendant-step workload
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def descendant_workload(dblp, built):
    """Sources (article roots) x candidates (most frequent tag) — the
    same workload the harness records in BENCH_query.json."""
    index, _ = built
    sources, candidates = descendant_step_workload(dblp)
    return index, sources, candidates


def test_descendant_step_sets(benchmark, descendant_workload):
    index, sources, candidates = descendant_workload
    sets_index = index.with_backend("sets")
    benchmark(
        lambda: [sets_index.connected_many(s, candidates) for s in sources]
    )


def test_descendant_step_arrays(benchmark, descendant_workload):
    index, sources, candidates = descendant_workload
    arrays_index = index.with_backend("arrays")
    answers = benchmark(
        lambda: [arrays_index.connected_many(s, candidates) for s in sources]
    )
    sets_index = index.with_backend("sets")
    assert answers == [sets_index.connected_many(s, candidates) for s in sources]


def test_descendant_step_vector(benchmark, descendant_workload):
    index, sources, candidates = descendant_workload
    vector_index = index.with_backend("vector")
    vector_index.connected_many(sources[0], candidates)  # seal slabs
    answers = benchmark(
        lambda: [vector_index.connected_many(s, candidates) for s in sources]
    )
    sets_index = index.with_backend("sets")
    assert answers == [sets_index.connected_many(s, candidates) for s in sources]


def test_backend_comparison_records_trajectory(dblp):
    """Arrays beat sets and vector beats arrays on the descendant-step
    workload; the planner beats the naive order on the selective-tail
    workload; the bounded heap beats full materialisation on the
    ranked-topk workload.

    The default run only checks that every backend (and both join
    orders, and both ranked-evaluation strategies) produces identical
    answers — equality is enforced inside the harness; no wall-clock
    assertion, so shared CI runners can't fail the build on timing
    noise. Set ``REPRO_BENCH_RECORD=1`` to enforce the regression bars
    (arrays ≥ 2x sets, vector ≥ 1.5x arrays, planned ≥ 2x naive, heap
    > 1x full) and append the measurement to the repo-root
    BENCH_query.json trajectory (the acceptance record lives there)."""
    rows = run_backend_query_benchmark(
        dblp, backends=("sets", "arrays", "vector")
    )
    planner = run_planner_benchmark()
    topk = run_topk_benchmark(dblp)
    assert set(rows) == {"sets", "arrays", "vector"}
    assert set(planner) == {"sets", "arrays"}
    if os.environ.get("REPRO_BENCH_RECORD"):
        entry = emit_bench_query_entry(
            rows, planner=planner, topk=topk,
            path=REPO_ROOT / "BENCH_query.json",
        )
        assert entry["speedup_arrays_vs_sets"] >= 2.0, entry
        assert entry["speedup_vector_vs_arrays"] >= 1.5, entry
        assert entry["speedup_planned_vs_naive"] >= 2.0, entry
        assert entry["speedup_heap_vs_full"] > 1.0, entry
