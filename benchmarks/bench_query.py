"""E16 — query performance.

The paper defers query benchmarks to [26] ("this was already covered");
we reproduce the essentials: HOPI connection tests versus online BFS and
versus the materialised closure, descendant enumeration, the SQL-backed
store versus the in-memory store, and end-to-end path-expression
evaluation.
"""

import random

import pytest

from repro.core.hopi import HopiIndex
from repro.graph.closure import transitive_closure
from repro.graph.traversal import is_reachable
from repro.query import QueryEngine
from repro.storage import MemoryCoverStore, SQLiteCoverStore


@pytest.fixture(scope="module")
def built(dblp):
    index = HopiIndex.build(
        dblp, strategy="recursive", partitioner="node_weight",
        partition_limit=max(dblp.num_elements // 16, 1),
    )
    rng = random.Random(11)
    nodes = sorted(dblp.elements)
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(1000)]
    return index, pairs


def test_connection_hopi(benchmark, built):
    index, pairs = built
    answers = benchmark(lambda: [index.connected(u, v) for u, v in pairs])
    benchmark.extra_info.update(positive=sum(answers))


def test_connection_bfs_baseline(benchmark, dblp, built):
    index, pairs = built
    graph = dblp.element_graph()
    answers = benchmark(lambda: [is_reachable(graph, u, v) for u, v in pairs])
    assert answers == [index.connected(u, v) for u, v in pairs]


def test_connection_materialized_closure(benchmark, dblp, built):
    index, pairs = built
    closure = transitive_closure(dblp.element_graph())
    benchmark.extra_info.update(
        closure_connections=closure.num_connections,
        cover_entries=index.cover.size,
        compression=round(closure.num_connections / index.cover.size, 1),
    )
    answers = benchmark(lambda: [closure.contains(u, v) for u, v in pairs])
    assert answers == [index.connected(u, v) for u, v in pairs]


def test_descendants_hopi(benchmark, built):
    index, pairs = built
    sources = [u for u, _ in pairs[:200]]
    benchmark(lambda: [index.descendants(u) for u in sources])


def test_connection_sql_store(benchmark, built):
    index, pairs = built
    store = SQLiteCoverStore(":memory:")
    store.save_cover(index.cover)
    answers = benchmark(lambda: [store.connected(u, v) for u, v in pairs])
    assert answers == [index.connected(u, v) for u, v in pairs]


def test_connection_memory_store(benchmark, built):
    index, pairs = built
    store = MemoryCoverStore(index.cover)
    benchmark(lambda: [store.connected(u, v) for u, v in pairs])


def test_path_expression_wildcard(benchmark, built):
    """//article//cite across citation links — the motivating query."""
    index, _ = built
    engine = QueryEngine(index, max_results=100_000)
    results = benchmark(lambda: engine.evaluate("//article//cite"))
    benchmark.extra_info.update(matches=len(results))
    assert results
