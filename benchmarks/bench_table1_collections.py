"""E1 — Table 1: features of the benchmark collections.

Regenerates the paper's collection-statistics table for the scaled
workloads and records every column in the benchmark's ``extra_info``.
The timed operation is the full generation + serialisation pipeline.
"""

from repro.bench.harness import PAPER_TABLE1
from repro.xmlmodel.export import collection_size_bytes
from repro.xmlmodel.generator import dblp_like, inex_like


def test_table1_dblp_features(benchmark):
    def generate():
        collection = dblp_like(150, seed=2005)
        return collection, collection_size_bytes(collection)

    collection, size_bytes = benchmark.pedantic(generate, rounds=1, iterations=1)
    paper = PAPER_TABLE1["DBLP"]
    benchmark.extra_info.update(
        docs=collection.num_documents,
        elements=collection.num_elements,
        links=collection.num_links,
        size_mb=round(size_bytes / 1e6, 3),
        paper_docs=paper["docs"],
        paper_elements=paper["elements"],
        paper_links=paper["links"],
    )
    # structural profile matches the paper's DBLP subset
    per_doc = collection.num_elements / collection.num_documents
    assert 15 <= per_doc <= 40  # paper: 27.2
    links_per_doc = len(collection.inter_links) / collection.num_documents
    assert 1 <= links_per_doc <= 10  # paper: 4.1


def test_table1_inex_features(benchmark):
    def generate():
        collection = inex_like(15, seed=2005, elements_per_doc=380)
        return collection, collection_size_bytes(collection)

    collection, size_bytes = benchmark.pedantic(generate, rounds=1, iterations=1)
    paper = PAPER_TABLE1["INEX"]
    benchmark.extra_info.update(
        docs=collection.num_documents,
        elements=collection.num_elements,
        links=collection.num_links,
        size_mb=round(size_bytes / 1e6, 3),
        paper_docs=paper["docs"],
        paper_elements=paper["elements"],
    )
    # the defining property: a pure tree collection, no links at all
    assert collection.num_links == 0
    # an order of magnitude more elements per document than DBLP
    per_doc = collection.num_elements / collection.num_documents
    assert per_doc >= 200
