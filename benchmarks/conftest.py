"""Shared fixtures for the benchmark suite.

Benchmarks run at a reduced scale (half the harness default) so the full
suite stays in the minutes range; ``REPRO_BENCH_SCALE`` scales up.
All collections are session-scoped and treated as read-only — benchmarks
that mutate state copy first.
"""

import pytest

from repro.bench.workloads import bench_dblp, bench_inex, workload_scale
from repro.graph.closure import transitive_closure_size

BENCH_SCALE = 0.5


@pytest.fixture(scope="session")
def dblp():
    """DBLP-like benchmark collection (~150 docs at default scale)."""
    return bench_dblp(BENCH_SCALE * workload_scale())


@pytest.fixture(scope="session")
def inex():
    """INEX-like benchmark collection (no links, deep trees)."""
    return bench_inex(BENCH_SCALE * workload_scale())


@pytest.fixture(scope="session")
def dblp_closure_size(dblp):
    return transitive_closure_size(dblp.element_graph())
