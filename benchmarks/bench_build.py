"""Offline-build benchmarks: the parallel divide-and-conquer pipeline.

The acceptance bars of the build pipeline live here:

* a ``workers=4`` process-pool build is ≥ 1.8x faster than the serial
  build on the benchmark collection (measured on multi-core hosts;
  conservatively modeled from per-partition timings on single-CPU
  hosts — see :mod:`repro.bench.build_bench`);
* the parallel build's cover entries are **identical** to the serial
  build's, on both label backends — always enforced, every run.

Like ``bench_query.py``, the default run keeps wall-clock assertions
off so shared CI runners cannot fail on timing noise; set
``REPRO_BENCH_RECORD=1`` to enforce the speedup bar and append the
measurement to the repo-root ``BENCH_build.json`` trajectory.
"""

import os
import pathlib

import pytest

from repro.bench.build_bench import (
    emit_bench_build_entry,
    lpt_makespan,
    run_build_benchmark,
)
from repro.core.hopi import HopiIndex

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.mark.parametrize("backend", ["sets", "arrays"])
def test_parallel_build_identical_covers(benchmark, inex, backend):
    """workers=2 process build == serial build, entry for entry."""
    limit = max(inex.num_elements // 8, 1)
    serial = HopiIndex.build(
        inex, strategy="recursive", partitioner="node_weight",
        partition_limit=limit, backend=backend,
    )

    def parallel_build():
        return HopiIndex.build(
            inex, strategy="recursive", partitioner="node_weight",
            partition_limit=limit, backend=backend, workers=2,
        )

    parallel = benchmark.pedantic(parallel_build, rounds=1, iterations=1)
    assert sorted(parallel.cover.entries()) == sorted(serial.cover.entries())
    benchmark.extra_info.update(
        serial_seconds=serial.stats.seconds_total,
        parallel_seconds=parallel.stats.seconds_total,
        partitions=serial.stats.num_partitions,
    )


def test_lpt_makespan_properties():
    assert lpt_makespan([], 4) == 0.0
    assert lpt_makespan([3.0], 4) == 3.0
    # perfect split: four equal tasks over four bins
    assert lpt_makespan([1.0] * 4, 4) == 1.0
    # never better than the critical path or the average load
    times = [5.0, 3.0, 3.0, 2.0, 2.0, 1.0]
    mk = lpt_makespan(times, 4)
    assert mk >= max(times)
    assert mk >= sum(times) / 4


def test_build_benchmark_records_trajectory():
    """The full offline-build run; speedup bar under RECORD=1."""
    result = run_build_benchmark(repeats=2)
    assert result["covers_identical_all"]
    for coll in result["collections"].values():
        for row in coll["backends"].values():
            assert row["covers_identical"]
            assert row["serial_seconds"] > 0
    if os.environ.get("REPRO_BENCH_RECORD"):
        entry = emit_bench_build_entry(
            result, path=REPO_ROOT / "BENCH_build.json"
        )
        # The bar holds for both sources: "measured" is the wall-clock
        # ratio; "modeled-single-cpu" schedules only the serial
        # per-partition compute onto the workers and keeps the
        # *measured* pool overhead (spawn, pickle, wire, conversion)
        # fully serial, so executor-overhead regressions still sink it.
        assert entry["speedup_workers4"] >= 1.8, (
            f"workers=4 speedup {entry['speedup_workers4']}x "
            f"({entry['speedup_source']}) below the 1.8x bar: {entry}"
        )
