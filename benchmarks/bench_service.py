"""Serving-tier benchmarks: caching, concurrency scaling, hot swap.

The acceptance bars of the serving tier live here:

* cached repeat queries ≥ 10x faster than cold evaluation;
* ≥ 2x aggregate closed-loop throughput at 4 client threads vs 1
  (overlapping working sets share the result cache and coalesce
  in-flight work, so scaling survives the GIL);
* an ``/update`` hot-swap completing during sustained querying with
  zero failed requests and zero torn (cross-epoch) answers.

Like ``bench_query.py``, the default run keeps wall-clock assertions
off so shared CI runners cannot fail on timing noise; set
``REPRO_BENCH_RECORD=1`` to enforce the bars and append the measurement
to the repo-root ``BENCH_service.json`` trajectory.
"""

import os
import pathlib

import pytest

from repro.bench.service_load import (
    emit_bench_service_entry,
    run_cold_vs_cached,
    run_closed_loop,
    run_hot_swap_under_load,
    run_service_benchmark,
    service_query_mix,
)
from repro.core.hopi import HopiIndex
from repro.service import QueryService

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def served_index(dblp):
    return HopiIndex.build(
        dblp, strategy="recursive", partitioner="node_weight",
        partition_limit=max(dblp.num_elements // 16, 1),
        backend="arrays",
    )


@pytest.fixture(scope="module")
def query_mix(dblp):
    paths = service_query_mix(dblp)
    assert paths
    return paths


def test_cold_vs_cached(benchmark, served_index, query_mix):
    result = benchmark.pedantic(
        lambda: run_cold_vs_cached(served_index, query_mix),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(result)
    assert result["speedup"] > 1.0


def test_closed_loop_four_threads(benchmark, served_index, query_mix):
    def run():
        service = QueryService(served_index.copy())
        return run_closed_loop(
            service, query_mix, threads=4, requests_per_thread=200
        )

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        rps=row.throughput_rps, p99_ms=row.p99_ms, hit_rate=row.hit_rate
    )
    assert row.errors == 0


def test_hot_swap_under_load(served_index, query_mix):
    """Zero failed requests, zero torn answers — always enforced."""
    service = QueryService(served_index.copy())
    result = run_hot_swap_under_load(
        service, query_mix, threads=4, requests_per_thread=200, updates=3
    )
    assert result.updates == 3
    assert result.errors == 0
    assert result.torn == 0
    # readers must have crossed epochs (the swap happened under load)
    assert len(result.epochs_observed) >= 2


def test_service_benchmark_records_trajectory(dblp):
    """The full serving-tier run; acceptance bars under RECORD=1."""
    result = run_service_benchmark(dblp, requests_per_thread=200, updates=3)
    assert result["hot_swap"]["errors"] == 0
    assert result["hot_swap"]["torn"] == 0
    if os.environ.get("REPRO_BENCH_RECORD"):
        entry = emit_bench_service_entry(
            result, path=REPO_ROOT / "BENCH_service.json"
        )
        assert entry["cold_vs_cached"]["speedup"] >= 10.0, entry
        assert entry["throughput_scaling_4v1"] >= 2.0, entry
