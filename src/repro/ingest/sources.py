"""Ingestion sources: where the streamed documents come from.

A source is an ordered, restartable stream of :class:`DocRecord`
items — the parsed shape of one document plus its outgoing links,
ready to become one ``insert_document`` wire op. Restartability is the
contract that makes crash/resume exact: ``stream(cursor)`` must yield
the *same* documents in the same order for the same constructor
arguments, starting at position ``cursor``. The synthetic generators
get this from seeded RNGs (re-deriving each document independently of
how far a previous run got); the directory walker gets it from sorted
filenames.

Link endpoints:

* intra-document links name local child refs (resolved inside the
  ``insert_document`` op itself);
* inter-document links name a *previously streamed* document by id and
  always target its root — the hub-into-document profile of the
  paper's hybrid collections (and of :func:`~repro.bench.workloads.
  bench_inex_linked`). Targeting roots keeps resume trivial: a link
  target is resolvable from the recovered collection alone
  (``documents[doc_id].root``), with no side lookup table to persist.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

#: an intra-document link: (local source ref, local target ref)
LocalLink = Tuple[str, str]
#: an inter-document link: (local source ref, target document id)
DocLink = Tuple[str, str]


@dataclass
class DocRecord:
    """One discovered document, in ``insert_document`` op shape.

    ``children`` entries are ``{"ref", "parent", "tag"}`` dicts in
    topological order (a parent ref always precedes its children), so
    the op applies in one pass **and** the ref -> element-id mapping is
    recoverable from the collection after a crash: element ids are
    allocated sequentially, hence ``sorted(document.elements)`` is
    ``[root] + [children in list order]``.
    """

    doc_id: str
    root_tag: str
    children: List[Dict[str, str]] = field(default_factory=list)
    local_links: List[LocalLink] = field(default_factory=list)
    doc_links: List[DocLink] = field(default_factory=list)

    @property
    def num_elements(self) -> int:
        return 1 + len(self.children)


class Source:
    """Base interface: a named, restartable document stream."""

    #: the ``--source`` spec string that recreates this source
    spec: str = ""
    #: total documents the stream will yield, when known up front
    total: Optional[int] = None

    def stream(self, cursor: int = 0) -> Iterator[DocRecord]:
        raise NotImplementedError


class ScaleFreeSource(Source):
    """A scale-free citation graph, one article at a time.

    Preferential attachment (Barabási–Albert flavoured): each new
    document cites earlier documents with probability proportional to
    their in-degree-so-far, so a few early hubs accumulate most of the
    links — the long-tailed profile that stresses the cover join far
    more than the uniform DBLP generator. Every document is derived
    from its own ``(seed, index)``-keyed RNG, so ``stream(cursor)``
    restarts exactly without replaying the prefix.
    """

    def __init__(
        self, n_docs: int, *, seed: int = 2005, cites: int = 3
    ) -> None:
        if n_docs < 1:
            raise ValueError(f"n_docs must be >= 1, got {n_docs}")
        self.n_docs = n_docs
        self.seed = seed
        self.cites = cites
        self.spec = f"scale-free:{n_docs}"
        self.total = n_docs

    def _doc_id(self, i: int) -> str:
        return f"sf{i:06d}"

    def stream(self, cursor: int = 0) -> Iterator[DocRecord]:
        for i in range(cursor, self.n_docs):
            rng = random.Random(f"{self.seed}:scale-free:{i}")
            children = [
                {"ref": "title", "parent": "root", "tag": "title"},
            ]
            for a in range(rng.randrange(1, 4)):
                children.append(
                    {"ref": f"author{a}", "parent": "root", "tag": "author"}
                )
            doc_links: List[DocLink] = []
            if i > 0:
                n_cites = rng.randrange(1, self.cites + 1)
                for c in range(n_cites):
                    ref = f"cite{c}"
                    children.append(
                        {"ref": ref, "parent": "root", "tag": "cite"}
                    )
                    # preferential attachment without materialising the
                    # degree table: sampling j ~ min of two uniforms
                    # skews linearly toward early (high-degree) hubs
                    j = min(rng.randrange(0, i), rng.randrange(0, i))
                    doc_links.append((ref, self._doc_id(j)))
            yield DocRecord(
                doc_id=self._doc_id(i),
                root_tag="article",
                children=children,
                doc_links=doc_links,
            )


class DeepTreeSource(Source):
    """Deep recursive trees: one long spine per document, with twigs.

    The INEX-ish stress shape for the maintenance path — every
    ``insert_document`` integrates a tall ancestor chain into the
    cover, the worst case for the Section-6.1 new-partition rule.
    Occasional links into earlier documents keep the stream connected.
    """

    def __init__(
        self, n_docs: int, *, seed: int = 2005, depth: int = 24
    ) -> None:
        if n_docs < 1:
            raise ValueError(f"n_docs must be >= 1, got {n_docs}")
        self.n_docs = n_docs
        self.seed = seed
        self.depth = depth
        self.spec = f"deep-tree:{n_docs}"
        self.total = n_docs

    def _doc_id(self, i: int) -> str:
        return f"dt{i:06d}"

    def stream(self, cursor: int = 0) -> Iterator[DocRecord]:
        tags = ("section", "subsection", "paragraph", "item")
        for i in range(cursor, self.n_docs):
            rng = random.Random(f"{self.seed}:deep-tree:{i}")
            depth = rng.randrange(self.depth // 2, self.depth + 1)
            children = []
            parent = "root"
            for level in range(depth):
                ref = f"s{level}"
                children.append(
                    {"ref": ref, "parent": parent,
                     "tag": tags[min(level, len(tags) - 1)]}
                )
                parent = ref
                if rng.random() < 0.3:  # a twig off the spine
                    children.append(
                        {"ref": f"t{level}", "parent": ref, "tag": "note"}
                    )
            doc_links: List[DocLink] = []
            if i > 0 and rng.random() < 0.5:
                # the deepest element references an earlier document
                doc_links.append(
                    (parent, self._doc_id(rng.randrange(0, i)))
                )
            yield DocRecord(
                doc_id=self._doc_id(i),
                root_tag="book",
                children=children,
                doc_links=doc_links,
            )


class OntologyMixSource(Source):
    """Ontology-heavy tag mixes: synonym clusters + intra-links.

    Documents draw their tags from small synonym clusters (``author`` /
    ``creator`` / ``writer`` ...) so ``~tag`` similarity queries fan
    out across the vocabulary, and carry intra-document reference
    links — the shape that stresses the planner's similarity expansion
    rather than raw reachability.
    """

    CLUSTERS = (
        ("author", "creator", "writer"),
        ("title", "name", "heading"),
        ("abstract", "summary", "synopsis"),
        ("reference", "citation", "pointer"),
    )

    def __init__(self, n_docs: int, *, seed: int = 2005) -> None:
        if n_docs < 1:
            raise ValueError(f"n_docs must be >= 1, got {n_docs}")
        self.n_docs = n_docs
        self.seed = seed
        self.spec = f"ontology:{n_docs}"
        self.total = n_docs

    def _doc_id(self, i: int) -> str:
        return f"om{i:06d}"

    def stream(self, cursor: int = 0) -> Iterator[DocRecord]:
        for i in range(cursor, self.n_docs):
            rng = random.Random(f"{self.seed}:ontology:{i}")
            children = []
            refs: List[str] = []
            for k in range(rng.randrange(4, 10)):
                cluster = self.CLUSTERS[rng.randrange(len(self.CLUSTERS))]
                tag = cluster[rng.randrange(len(cluster))]
                ref = f"e{k}"
                parent = "root" if not refs or rng.random() < 0.5 else (
                    refs[rng.randrange(len(refs))]
                )
                children.append({"ref": ref, "parent": parent, "tag": tag})
                refs.append(ref)
            local_links: List[LocalLink] = []
            if len(refs) >= 2 and rng.random() < 0.6:
                a, b = rng.sample(range(len(refs)), 2)
                local_links.append((refs[a], refs[b]))
            doc_links: List[DocLink] = []
            if i > 0 and rng.random() < 0.4:
                doc_links.append(
                    (refs[rng.randrange(len(refs))],
                     self._doc_id(rng.randrange(0, i)))
                )
            yield DocRecord(
                doc_id=self._doc_id(i),
                root_tag="entry",
                children=children,
                local_links=local_links,
                doc_links=doc_links,
            )


class DirectorySource(Source):
    """Walk a directory of ``*.xml`` files in sorted order.

    Files parse through the repo's own recursive-descent parser; link
    attributes follow the XLink convention of
    :func:`~repro.xmlmodel.parser.load_collection`: ``href="#anchor"``
    becomes an intra-document link to the element whose ``id`` matches,
    ``xlink:href="docname"`` an inter-document link to that document's
    root. Cross-document anchor references (``docname#anchor``) and
    references to documents not yet streamed degrade to the target
    document's root / are dropped, with a count kept — a crawl
    discovers what it discovers.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        href_attributes: Sequence[str] = ("xlink:href", "href"),
        id_attribute: str = "id",
    ) -> None:
        self.path = Path(path)
        if not self.path.is_dir():
            raise ValueError(f"not a directory: {self.path}")
        self.href_attributes = tuple(href_attributes)
        self.id_attribute = id_attribute
        self._files = sorted(self.path.rglob("*.xml"))
        self.spec = f"dir:{self.path}"
        self.total = len(self._files)

    def stream(self, cursor: int = 0) -> Iterator[DocRecord]:
        from repro.xmlmodel.parser import parse_document

        for file in self._files[cursor:]:
            parsed = parse_document(file.read_text())
            doc_id = file.stem
            children: List[Dict[str, str]] = []
            anchors: Dict[str, str] = {}  # id attribute -> local ref
            hrefs: List[Tuple[str, str]] = []  # (local ref, href)
            counter = 0
            # BFS in child order keeps children topologically sorted
            # (parents always precede their children in the op)
            queue = [(parsed, "root")]
            while queue:
                node, ref = queue.pop(0)
                if self.id_attribute in node.attributes:
                    anchors[node.attributes[self.id_attribute]] = ref
                for attr in self.href_attributes:
                    if attr in node.attributes:
                        hrefs.append((ref, node.attributes[attr]))
                        break
                for child in node.children:
                    counter += 1
                    child_ref = f"c{counter}"
                    children.append(
                        {"ref": child_ref, "parent": ref, "tag": child.tag}
                    )
                    queue.append((child, child_ref))
            local_links: List[LocalLink] = []
            doc_links: List[DocLink] = []
            for source_ref, href in hrefs:
                if href.startswith("#"):
                    target_ref = anchors.get(href[1:])
                    if target_ref is not None and target_ref != source_ref:
                        local_links.append((source_ref, target_ref))
                else:
                    target_doc = href.partition("#")[0] or doc_id
                    if target_doc != doc_id:
                        doc_links.append((source_ref, target_doc))
            yield DocRecord(
                doc_id=doc_id,
                root_tag=parsed.tag,
                children=children,
                local_links=local_links,
                doc_links=doc_links,
            )


def collection_from_source(source: Source):
    """Batch-materialise a source into a fresh ``Collection``.

    The reference half of the ingestion differential gate: streaming a
    source through the pipeline and batch-building over this collection
    must answer every query identically. Dangling inter-document links
    are dropped, exactly as the pipeline drops them.
    """
    from repro.xmlmodel.model import Collection

    collection = Collection()
    for record in source.stream(0):
        refs = {"root": collection.new_document(
            record.doc_id, record.root_tag
        ).eid}
        for child in record.children:
            refs[child["ref"]] = collection.add_child(
                refs[child["parent"]], child["tag"]
            ).eid
        for source_ref, target_ref in record.local_links:
            collection.add_link(refs[source_ref], refs[target_ref])
        for source_ref, target_doc in record.doc_links:
            target = collection.documents.get(target_doc)
            if target is not None:
                collection.add_link(refs[source_ref], target.root)
    return collection


def make_source(spec: str, *, seed: int = 2005) -> Source:
    """Build a source from its ``--source`` spec string.

    ``dir:PATH`` walks a directory of XML files; ``scale-free:N``,
    ``deep-tree:N`` and ``ontology:N`` stream N synthetic documents
    (all three seeded — the same spec + seed is the same stream).
    """
    kind, _, arg = spec.partition(":")
    if kind == "dir":
        if not arg:
            raise ValueError("dir: source needs a path, e.g. dir:docs/")
        return DirectorySource(arg)
    if kind in ("scale-free", "deep-tree", "ontology"):
        try:
            n_docs = int(arg)
        except ValueError:
            raise ValueError(
                f"{kind}: source needs a document count, e.g. {kind}:1000"
            )
        if kind == "scale-free":
            return ScaleFreeSource(n_docs, seed=seed)
        if kind == "deep-tree":
            return DeepTreeSource(n_docs, seed=seed)
        return OntologyMixSource(n_docs, seed=seed)
    raise ValueError(
        f"unknown source spec {spec!r} (expected dir:PATH, scale-free:N, "
        "deep-tree:N or ontology:N)"
    )
