"""The ingestion pipeline: stream -> batch -> group-commit -> checkpoint.

:class:`IngestPipeline` pulls :class:`~repro.ingest.sources.DocRecord`
items off a source, turns each into one self-contained
``insert_document`` wire op (the document's links ride in the same op,
so a document is either fully published or not at all), batches ops
and pushes each batch through
:meth:`~repro.service.service.QueryService.update` — the group-commit
COW write path, WAL-logged when the service has a durable store. After
every acknowledged batch the frontier checkpoint advances (see
:mod:`repro.ingest.frontier` for the crash-window analysis).

Inter-document links always target a *previously published*
document's root. The pipeline enforces the "previously published" part
by flushing the open batch early whenever a new document references a
document still sitting in it — stream order (sources only cite
backwards) then guarantees the target is resolvable from the served
collection. Dangling targets (a directory walk's forward references)
are dropped and counted, like
:func:`~repro.xmlmodel.parser.load_collection` ignores unresolvable
hrefs.

Freshness lag is measured per document: the clock starts when the
record leaves the source (discovery) and stops when its batch's new
epoch is acknowledged (publish). The p50/p99 of those lags are the
serving tier's ingestion-freshness figure in ``BENCH_service.json``
and the ``/v1/metrics`` gauge.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.ingest.frontier import FrontierCheckpoint
from repro.ingest.sources import DocRecord, Source


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1,
        max(0, int(round(fraction * (len(sorted_values) - 1)))),
    )
    return sorted_values[index]


@dataclass
class IngestSummary:
    """What one :meth:`IngestPipeline.run` call accomplished."""

    source: str
    seed: int
    docs: int = 0
    elements: int = 0
    skipped: int = 0
    batches: int = 0
    links: int = 0
    dropped_links: int = 0
    seconds: float = 0.0
    docs_per_second: float = 0.0
    freshness_p50_ms: float = 0.0
    freshness_p99_ms: float = 0.0
    epoch: int = 0
    cursor: int = 0
    resumed_from: int = 0
    freshness_lags: List[float] = field(default_factory=list, repr=False)

    def as_record(self) -> Dict[str, Any]:
        record = asdict(self)
        record.pop("freshness_lags")
        return record


class IngestPipeline:
    """Stream one source into a serving ``QueryService``.

    Args:
        service: the target — anything with the ``update(ops)`` /
            ``index`` surface (:class:`~repro.service.service.
            QueryService`; give it a ``durable_store`` to make the
            ingest crash-resumable). When the service exposes
            ``record_ingest``, per-batch freshness samples are pushed
            to it so ``/v1/metrics`` can report the gauge.
        source: the document stream.
        batch_docs: documents per ``update`` batch (the group-commit
            knob: bigger batches amortise publishes, smaller ones cut
            freshness lag).
        store_dir: directory of the durable store; when set, the
            frontier checkpoint is written here after every
            acknowledged batch.
        cursor: stream position to start at (a resume passes the
            recovered frontier's cursor).
    """

    def __init__(
        self,
        service: Any,
        source: Source,
        *,
        batch_docs: int = 8,
        store_dir: Optional[str] = None,
        cursor: int = 0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if batch_docs < 1:
            raise ValueError(f"batch_docs must be >= 1, got {batch_docs}")
        self.service = service
        self.source = source
        self.batch_docs = batch_docs
        self.store_dir = store_dir
        self.cursor = cursor
        self._clock = clock

    # -- op assembly ----------------------------------------------------
    def _build_op(
        self, doc: DocRecord, summary: IngestSummary
    ) -> Dict[str, Any]:
        collection = self.service.index.collection
        links: List[List[Any]] = []
        for source_ref, target_ref in doc.local_links:
            links.append([source_ref, target_ref])
            summary.links += 1
        for source_ref, target_doc in doc.doc_links:
            target = collection.documents.get(target_doc)
            if target is None:
                summary.dropped_links += 1
                continue
            links.append([source_ref, target.root])
            summary.links += 1
        return {
            "op": "insert_document",
            "doc_id": doc.doc_id,
            "root_tag": doc.root_tag,
            "children": doc.children,
            "links": links,
        }

    # -- the run loop ---------------------------------------------------
    def run(self, *, max_docs: Optional[int] = None) -> IngestSummary:
        """Ingest until the source is exhausted (or ``max_docs``).

        Returns the summary; raises if an update batch is rejected
        (the op vocabulary is all-or-nothing, so a raise means the
        failed batch published nothing and the frontier still points
        at it).
        """
        summary = IngestSummary(
            source=self.source.spec,
            seed=getattr(self.source, "seed", 0),
            epoch=getattr(self.service, "epoch", 0),
            cursor=self.cursor,
            resumed_from=self.cursor,
        )
        existing = set(self.service.index.collection.documents)
        batch_docs: List[DocRecord] = []
        batch_ids: set = set()
        batch_ops: List[Dict[str, Any]] = []
        batch_discovered: List[float] = []
        lags: List[float] = []
        position = self.cursor
        t_run = self._clock()

        def flush() -> None:
            nonlocal batch_docs, batch_ids, batch_ops, batch_discovered
            if not batch_ops:
                return
            report = self.service.update(batch_ops)
            t_ack = self._clock()
            batch_lags = [t_ack - t for t in batch_discovered]
            lags.extend(batch_lags)
            summary.docs += len(batch_ops)
            summary.elements += sum(d.num_elements for d in batch_docs)
            summary.batches += 1
            summary.epoch = report["epoch"]
            summary.cursor = position
            recorder = getattr(self.service, "record_ingest", None)
            if recorder is not None:
                recorder(len(batch_ops), batch_lags)
            if self.store_dir is not None:
                FrontierCheckpoint(
                    source=self.source.spec,
                    seed=getattr(self.source, "seed", 0),
                    cursor=position,
                    epoch=summary.epoch,
                    docs=summary.docs + summary.skipped,
                    total=self.source.total,
                ).save(self.store_dir)
            batch_docs, batch_ids = [], set()
            batch_ops, batch_discovered = [], []

        for doc in self.source.stream(self.cursor):
            if max_docs is not None and summary.docs + len(batch_ops) >= max_docs:
                break
            if doc.doc_id in existing:
                # the WAL was ahead of the frontier when we crashed —
                # this document already published; skipping is exact
                # because its links rode in the same op
                position += 1
                summary.skipped += 1
                summary.cursor = position
                continue
            if any(target in batch_ids for _, target in doc.doc_links):
                flush()  # the link target must be published first
            t_disc = self._clock()
            op = self._build_op(doc, summary)
            batch_docs.append(doc)
            batch_ids.add(doc.doc_id)
            batch_ops.append(op)
            batch_discovered.append(t_disc)
            existing.add(doc.doc_id)
            position += 1
            if len(batch_ops) >= self.batch_docs:
                flush()
        flush()

        summary.seconds = self._clock() - t_run
        summary.docs_per_second = (
            summary.docs / summary.seconds if summary.seconds > 0 else 0.0
        )
        lags.sort()
        summary.freshness_lags = lags
        summary.freshness_p50_ms = _percentile(lags, 0.50) * 1e3
        summary.freshness_p99_ms = _percentile(lags, 0.99) * 1e3
        return summary
