"""The ingestion frontier checkpoint: how far the stream got, durably.

One small JSON file (``frontier.json``) living next to the durable
store's ``index.db`` + ``updates.wal``. After every acknowledged batch
the pipeline rewrites it atomically (tmp file + fsync + ``os.replace``
— the same discipline as the snapshot checkpoint), recording:

* ``source`` / ``seed`` — the spec that recreates the stream, so a
  resume can refuse a mismatched ``--source``;
* ``cursor`` — documents acknowledged **and** checkpointed; the resume
  restarts the stream here;
* ``epoch`` — the service epoch of the last acknowledged batch;
* ``docs`` / ``total`` — progress accounting for operators.

Crash windows: the WAL fsyncs *before* an update publishes, and the
frontier is written *after* the publish is acknowledged. A crash
between the two leaves the WAL ahead of the frontier — replay recovers
documents the frontier doesn't know about. That's why the pipeline's
resume path also skips any streamed document already present in the
recovered collection (dedupe by ``doc_id``): re-applying
``insert_document`` would be rejected, and skipping it is exact
because documents are self-contained ops (their links ride in the
same op).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Union

FRONTIER_FILENAME = "frontier.json"
_FORMAT_VERSION = 1


@dataclass
class FrontierCheckpoint:
    """The persisted frontier state (see module docstring)."""

    source: str
    seed: int
    cursor: int = 0
    epoch: int = 0
    docs: int = 0
    total: Optional[int] = None

    @staticmethod
    def path_for(store_dir: Union[str, Path]) -> Path:
        return Path(store_dir) / FRONTIER_FILENAME

    @classmethod
    def load(cls, store_dir: Union[str, Path]) -> Optional["FrontierCheckpoint"]:
        """Read the checkpoint, or ``None`` when none was ever written.

        A torn/corrupt file (killed mid-``os.replace`` is impossible,
        but a hand-edited one isn't) raises — resuming from a frontier
        we can't trust silently would corrupt the differential gate.
        """
        path = cls.path_for(store_dir)
        if not path.exists():
            return None
        payload = json.loads(path.read_text())
        version = payload.pop("version", None)
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported frontier checkpoint version {version!r} "
                f"in {path}"
            )
        return cls(**payload)

    def save(self, store_dir: Union[str, Path]) -> None:
        """Atomically rewrite the checkpoint (tmp + fsync + replace)."""
        path = self.path_for(store_dir)
        payload = {"version": _FORMAT_VERSION, **asdict(self)}
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=0)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
