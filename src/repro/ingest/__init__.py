"""Streaming graph ingestion: frontier -> parser -> graph-writer.

The crawl-style pipeline that feeds the serving tier documents and
links *as they are discovered*, instead of starting every scenario
from a fully materialised DBLP/INEX collection. Documents stream from
a :mod:`~repro.ingest.sources` source (a directory walker over XML
files, or the synthetic scale-free / deep-tree / ontology-mix
generators), are batched into ``insert_document`` wire ops, and ride
:meth:`~repro.service.service.QueryService.update`'s group-commit
through the COW fork + durable-WAL write path — which is what makes
ingestion crash-resumable: the :mod:`~repro.ingest.frontier`
checkpoint records how far the stream got, and a restart with
``--resume`` replays the WAL, reloads the checkpoint and continues
from the first unacknowledged document.
"""

from repro.ingest.frontier import FrontierCheckpoint
from repro.ingest.pipeline import IngestPipeline, IngestSummary
from repro.ingest.sources import (
    DirectorySource,
    DocRecord,
    DeepTreeSource,
    OntologyMixSource,
    ScaleFreeSource,
    collection_from_source,
    make_source,
)

__all__ = [
    "DeepTreeSource",
    "DirectorySource",
    "DocRecord",
    "FrontierCheckpoint",
    "IngestPipeline",
    "IngestSummary",
    "OntologyMixSource",
    "ScaleFreeSource",
    "collection_from_source",
    "make_source",
]
