"""DDL and query strings for the database-backed HOPI index (Section 3.4).

Mirrors the paper's layout:

* ``LIN(ID, INID, DIST)`` — one row per ``Lin`` entry; ``DIST`` is NULL
  for reachability covers (Section 5.1 adds it for distance covers).
* ``LOUT(ID, OUTID, DIST)`` — one row per ``Lout`` entry.
* a **forward** index on ``(ID, INID)`` / ``(ID, OUTID)`` — realised as
  the tables' primary keys with ``WITHOUT ROWID``, SQLite's equivalent
  of Oracle's index-organized tables the paper uses;
* a **backward** index on ``(INID, ID)`` / ``(OUTID, ID)`` — "the
  additional backward index doubles the disk space needed".

Collection tables (``DOCUMENTS``, ``ELEMENTS``, ``LINKS``) make an index
file self-contained; ``META`` records whether the cover is
distance-aware.
"""

SCHEMA = """
CREATE TABLE IF NOT EXISTS META (
    KEY   TEXT PRIMARY KEY,
    VALUE TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS LIN (
    ID    INTEGER NOT NULL,
    INID  INTEGER NOT NULL,
    DIST  INTEGER,
    PRIMARY KEY (ID, INID)
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS LOUT (
    ID     INTEGER NOT NULL,
    OUTID  INTEGER NOT NULL,
    DIST   INTEGER,
    PRIMARY KEY (ID, OUTID)
) WITHOUT ROWID;

CREATE INDEX IF NOT EXISTS LIN_BACKWARD  ON LIN  (INID, ID);
CREATE INDEX IF NOT EXISTS LOUT_BACKWARD ON LOUT (OUTID, ID);

CREATE TABLE IF NOT EXISTS DOCUMENTS (
    DOC_ID TEXT PRIMARY KEY,
    ROOT   INTEGER NOT NULL
);

CREATE TABLE IF NOT EXISTS ELEMENTS (
    EID    INTEGER PRIMARY KEY,
    DOC_ID TEXT NOT NULL,
    TAG    TEXT NOT NULL,
    PARENT INTEGER,
    TEXT   TEXT NOT NULL DEFAULT ''
);

CREATE INDEX IF NOT EXISTS ELEMENTS_BY_DOC ON ELEMENTS (DOC_ID);
CREATE INDEX IF NOT EXISTS ELEMENTS_BY_TAG ON ELEMENTS (TAG);

CREATE TABLE IF NOT EXISTS LINKS (
    SOURCE INTEGER NOT NULL,
    TARGET INTEGER NOT NULL,
    KIND   TEXT NOT NULL CHECK (KIND IN ('intra', 'inter')),
    PRIMARY KEY (SOURCE, TARGET)
) WITHOUT ROWID;
"""

#: The paper's connection test (Section 3.4): intersect Lout(u) with
#: Lin(v) by an indexed join. A non-zero count means connected.
CONNECTION_QUERY = """
SELECT COUNT(*) FROM LIN, LOUT
WHERE LOUT.ID = ? AND LIN.ID = ?
  AND LOUT.OUTID = LIN.INID
"""

#: The "simple additional queries" compensating for self-entries not
#: being stored: u ∈ Lin(v)?  /  v ∈ Lout(u)?
SELF_IN_QUERY = "SELECT 1 FROM LIN WHERE ID = ? AND INID = ? LIMIT 1"
SELF_OUT_QUERY = "SELECT 1 FROM LOUT WHERE ID = ? AND OUTID = ? LIMIT 1"

#: The paper's distance query (Section 5.1).
DISTANCE_QUERY = """
SELECT MIN(LOUT.DIST + LIN.DIST) AS B
FROM LIN, LOUT
WHERE LOUT.ID = ? AND LIN.ID = ?
  AND LOUT.OUTID = LIN.INID
"""

#: Self-entry variants of the distance query: center = v (din = 0) and
#: center = u (dout = 0).
SELF_OUT_DISTANCE_QUERY = "SELECT MIN(DIST) FROM LOUT WHERE ID = ? AND OUTID = ?"
SELF_IN_DISTANCE_QUERY = "SELECT MIN(DIST) FROM LIN WHERE ID = ? AND INID = ?"

#: Descendant enumeration via the backward index (all four disjuncts of
#: the label semantics; see TwoHopCover.descendants).
DESCENDANTS_QUERY = """
SELECT LIN.ID FROM LIN WHERE LIN.INID = ?
UNION
SELECT LOUT.OUTID FROM LOUT WHERE LOUT.ID = ?
UNION
SELECT LIN.ID
FROM LOUT JOIN LIN ON LIN.INID = LOUT.OUTID
WHERE LOUT.ID = ?
"""

ANCESTORS_QUERY = """
SELECT LOUT.ID FROM LOUT WHERE LOUT.OUTID = ?
UNION
SELECT LIN.INID FROM LIN WHERE LIN.ID = ?
UNION
SELECT LOUT.ID
FROM LIN JOIN LOUT ON LOUT.OUTID = LIN.INID
WHERE LIN.ID = ?
"""
