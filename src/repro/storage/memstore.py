"""In-memory cover store with the same interface as the SQL backend.

Used as the no-database baseline in the query-performance benchmark
(E16): identical semantics, no SQL layer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Union

from repro.core.cover import DistanceTwoHopCover, TwoHopCover
from repro.storage.base import CoverStore

Cover = Union[TwoHopCover, DistanceTwoHopCover]


class MemoryCoverStore(CoverStore):
    """Wraps an in-memory cover (any backend) behind the
    :class:`CoverStore` interface."""

    def __init__(self, cover: Cover) -> None:
        self._cover = cover

    def save_cover(self, cover: Cover) -> None:
        self._cover = cover

    def connected(self, u: int, v: int) -> bool:
        return self._cover.connected(u, v)

    def connected_many(self, u: int, candidates: Sequence[int]) -> List[bool]:
        return self._cover.connected_many(u, candidates)

    def distance(self, u: int, v: int) -> Optional[int]:
        if not self._cover.is_distance_aware:
            raise TypeError("store does not hold a distance-aware cover")
        return self._cover.distance(u, v)

    def descendants(self, u: int) -> Set[int]:
        return self._cover.descendants(u)

    def ancestors(self, v: int) -> Set[int]:
        return self._cover.ancestors(v)

    def cover_size(self) -> int:
        return self._cover.size

    def load_cover(self) -> Cover:
        return self._cover
