"""SQLite-backed HOPI store (Section 3.4 on SQLite instead of Oracle).

:class:`SQLiteCoverStore` persists a 2-hop cover (and optionally the
collection it indexes) into a single database file and answers queries
with the paper's SQL statements. ``:memory:`` databases are supported
for tests and benchmarks.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, List, Optional, Set, Union

from repro.core.cover import DistanceTwoHopCover, TwoHopCover
from repro.core.hopi import HopiIndex, backend_of, convert_cover
from repro.storage import schema
from repro.storage.base import CoverStore
from repro.xmlmodel.model import Collection

Cover = Union[TwoHopCover, DistanceTwoHopCover]

#: rows per ``executemany`` flush — large enough to amortise the SQL
#: statement dispatch, small enough to bound peak row-buffer memory.
BATCH_ROWS = 10_000


class SQLiteCoverStore(CoverStore):
    """A 2-hop cover stored in LIN/LOUT tables with forward + backward
    indexes.

    File-backed databases are opened with ``journal_mode=WAL`` and
    ``synchronous=NORMAL`` — the standard bulk-write/point-read tuning
    (readers never block the writer, fsync only at checkpoints).
    ``:memory:`` databases keep SQLite's defaults.

    Args:
        path: database file path, or ``":memory:"``.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        if path != ":memory:":
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(schema.SCHEMA)
        self._conn.commit()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _insert_batched_keyed(
        self, cur: sqlite3.Cursor, sql_by_key: Dict[str, str], keyed_rows
    ) -> None:
        """Stream ``(key, row)`` pairs into per-key ``executemany``
        batches of :data:`BATCH_ROWS` — the single flush policy for all
        bulk writes."""
        batches: Dict[str, List[tuple]] = {key: [] for key in sql_by_key}
        for key, row in keyed_rows:
            batch = batches[key]
            batch.append(row)
            if len(batch) >= BATCH_ROWS:
                cur.executemany(sql_by_key[key], batch)
                batch.clear()
        for key, batch in batches.items():
            if batch:
                cur.executemany(sql_by_key[key], batch)


    def save_cover(self, cover: Cover) -> None:
        """(Re)write the LIN/LOUT tables from an in-memory cover.

        Works for any :class:`repro.core.cover.CoverProtocol` backend —
        rows are streamed from ``cover.entries()`` in
        :data:`BATCH_ROWS`-sized ``executemany`` batches.
        """
        distance = cover.is_distance_aware
        cur = self._conn.cursor()
        cur.execute("DELETE FROM LIN")
        cur.execute("DELETE FROM LOUT")
        cur.execute(
            "INSERT OR REPLACE INTO META (KEY, VALUE) VALUES ('distance', ?)",
            ("1" if distance else "0",),
        )
        cur.execute(
            "INSERT OR REPLACE INTO META (KEY, VALUE) VALUES ('nodes', ?)",
            (",".join(str(n) for n in sorted(cover.nodes)),),
        )
        # remember which label backend the cover was built with, so
        # loads (and CLI queries) default to the same representation
        cur.execute(
            "INSERT OR REPLACE INTO META (KEY, VALUE) VALUES ('backend', ?)",
            (backend_of(cover),),
        )
        if distance:
            sql = {
                "in": "INSERT INTO LIN (ID, INID, DIST) VALUES (?, ?, ?)",
                "out": "INSERT INTO LOUT (ID, OUTID, DIST) VALUES (?, ?, ?)",
            }
        else:
            sql = {
                "in": "INSERT INTO LIN (ID, INID) VALUES (?, ?)",
                "out": "INSERT INTO LOUT (ID, OUTID) VALUES (?, ?)",
            }
        # one pass over entries(), dispatching rows into per-table batches
        self._insert_batched_keyed(
            cur, sql, ((kind, tuple(row)) for kind, *row in cover.entries())
        )
        self._conn.commit()

    def load_cover(self) -> Cover:
        """Materialise the stored cover back into memory."""
        cur = self._conn.cursor()
        distance = self._meta("distance") == "1"
        nodes_blob = self._meta("nodes") or ""
        nodes = [int(x) for x in nodes_blob.split(",") if x]
        if distance:
            dcov = DistanceTwoHopCover(nodes)
            for node, center, dist in cur.execute("SELECT ID, INID, DIST FROM LIN"):
                dcov.add_lin(node, center, dist)
            for node, center, dist in cur.execute(
                "SELECT ID, OUTID, DIST FROM LOUT"
            ):
                dcov.add_lout(node, center, dist)
            return dcov
        cov = TwoHopCover(nodes)
        for node, center in cur.execute("SELECT ID, INID FROM LIN"):
            cov.add_lin(node, center)
        for node, center in cur.execute("SELECT ID, OUTID FROM LOUT"):
            cov.add_lout(node, center)
        return cov

    def save_collection(self, collection: Collection) -> None:
        cur = self._conn.cursor()
        cur.execute("DELETE FROM DOCUMENTS")
        cur.execute("DELETE FROM ELEMENTS")
        cur.execute("DELETE FROM LINKS")
        # executemany consumes generators lazily with one statement
        # compile — no extra batching layer needed for single-table
        # streams (save_cover needs the keyed variant because one
        # entries() stream feeds two INSERT statements)
        cur.executemany(
            "INSERT INTO DOCUMENTS (DOC_ID, ROOT) VALUES (?, ?)",
            ((d.doc_id, d.root) for d in collection.documents.values()),
        )
        cur.executemany(
            "INSERT INTO ELEMENTS (EID, DOC_ID, TAG, PARENT, TEXT) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                (e.eid, e.doc, e.tag, e.parent, e.text)
                for e in collection.elements.values()
            ),
        )
        links = [
            (u, v, "inter") for (u, v) in collection.inter_links
        ] + [
            (u, v, "intra")
            for d in collection.documents.values()
            for (u, v) in d.intra_links
        ]
        cur.executemany(
            "INSERT INTO LINKS (SOURCE, TARGET, KIND) VALUES (?, ?, ?)", links
        )
        self._conn.commit()

    def load_collection(self) -> Collection:
        cur = self._conn.cursor()
        collection = Collection()
        roots: Dict[str, int] = dict(
            cur.execute("SELECT DOC_ID, ROOT FROM DOCUMENTS")
        )
        elements = list(
            cur.execute(
                "SELECT EID, DOC_ID, TAG, PARENT, TEXT FROM ELEMENTS ORDER BY EID"
            )
        )
        # rebuild in eid order: parents always have smaller ids than
        # their children by construction, so one pass suffices
        for eid, doc_id, tag, parent, text in elements:
            if parent is None:
                if eid != roots[doc_id]:
                    raise ValueError(
                        f"corrupt store: root mismatch for {doc_id!r}"
                    )
                # allocate with the exact same id
                collection._next_id = eid
                element = collection.new_document(doc_id, tag)
            else:
                collection._next_id = eid
                element = collection.add_child(parent, tag)
            if element.eid != eid:
                raise ValueError("corrupt store: non-contiguous element ids")
            element.text = text
        max_eid = max((e[0] for e in elements), default=-1)
        collection._next_id = max_eid + 1
        for source, target, _kind in cur.execute(
            "SELECT SOURCE, TARGET, KIND FROM LINKS"
        ):
            collection.add_link(source, target)
        return collection

    # ------------------------------------------------------------------
    # queries (the paper's SQL)
    # ------------------------------------------------------------------
    def _meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT VALUE FROM META WHERE KEY = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    def _node_known(self, v: int) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM ELEMENTS WHERE EID = ? LIMIT 1", (v,)
        ).fetchone()
        if row:
            return True
        # fall back to label presence when no collection is stored
        for q in (
            "SELECT 1 FROM LIN WHERE ID = ? LIMIT 1",
            "SELECT 1 FROM LOUT WHERE ID = ? LIMIT 1",
            "SELECT 1 FROM LIN WHERE INID = ? LIMIT 1",
            "SELECT 1 FROM LOUT WHERE OUTID = ? LIMIT 1",
        ):
            if self._conn.execute(q, (v,)).fetchone():
                return True
        nodes_blob = self._meta("nodes") or ""
        return str(v) in nodes_blob.split(",") if nodes_blob else False

    def connected(self, u: int, v: int) -> bool:
        if u == v:
            return self._node_known(u)
        cur = self._conn.cursor()
        if cur.execute(schema.SELF_OUT_QUERY, (u, v)).fetchone():
            return True
        if cur.execute(schema.SELF_IN_QUERY, (v, u)).fetchone():
            return True
        (count,) = cur.execute(schema.CONNECTION_QUERY, (u, v)).fetchone()
        return count > 0

    def distance(self, u: int, v: int) -> Optional[int]:
        if self._meta("distance") != "1":
            raise TypeError("store does not hold a distance-aware cover")
        if u == v:
            return 0 if self._node_known(u) else None
        cur = self._conn.cursor()
        best: Optional[int] = None
        (d,) = cur.execute(schema.SELF_OUT_DISTANCE_QUERY, (u, v)).fetchone()
        if d is not None:
            best = d
        (d,) = cur.execute(schema.SELF_IN_DISTANCE_QUERY, (v, u)).fetchone()
        if d is not None and (best is None or d < best):
            best = d
        (d,) = cur.execute(schema.DISTANCE_QUERY, (u, v)).fetchone()
        if d is not None and (best is None or d < best):
            best = d
        return best

    def descendants(self, u: int) -> Set[int]:
        result = {
            row[0]
            for row in self._conn.execute(schema.DESCENDANTS_QUERY, (u, u, u))
        }
        result.add(u)
        return result

    def ancestors(self, v: int) -> Set[int]:
        result = {
            row[0]
            for row in self._conn.execute(schema.ANCESTORS_QUERY, (v, v, v))
        }
        result.add(v)
        return result

    def cover_size(self) -> int:
        (n_in,) = self._conn.execute("SELECT COUNT(*) FROM LIN").fetchone()
        (n_out,) = self._conn.execute("SELECT COUNT(*) FROM LOUT").fetchone()
        return n_in + n_out

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SQLiteCoverStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def persist_index(index: HopiIndex, path: str) -> SQLiteCoverStore:
    """Write a built index (cover + collection) to a database file.

    The index's epoch is stored alongside (META key ``epoch``), so a
    reload — and the update WAL's replay-on-restart, which skips logged
    records at or below the checkpointed epoch — can resume the epoch
    sequence instead of restarting from zero.
    """
    store = SQLiteCoverStore(path)
    store.save_collection(index.collection)
    store.save_cover(index.cover)
    store._conn.execute(
        "INSERT OR REPLACE INTO META (KEY, VALUE) VALUES ('epoch', ?)",
        (str(index.epoch),),
    )
    store._conn.commit()
    return store


def load_index(path: str, *, backend: Optional[str] = None) -> HopiIndex:
    """Load a previously persisted index back into memory.

    Args:
        path: the database file.
        backend: label backend for the loaded cover (``"sets"`` or
            ``"arrays"``). ``None`` (default) restores the backend the
            index was saved with.
    """
    with SQLiteCoverStore(path) as store:
        collection = store.load_collection()
        cover = store.load_cover()
        if backend is None:
            backend = store._meta("backend") or "sets"
        epoch = int(store._meta("epoch") or "0")
    cover.add_nodes(collection.elements)
    index = HopiIndex(collection, convert_cover(cover, backend))
    index.epoch = epoch
    return index
