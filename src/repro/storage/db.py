"""SQLite-backed HOPI store (Section 3.4 on SQLite instead of Oracle).

:class:`SQLiteCoverStore` persists a 2-hop cover (and optionally the
collection it indexes) into a single database file and answers queries
with the paper's SQL statements. ``:memory:`` databases are supported
for tests and benchmarks.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Optional, Set, Union

from repro.core.cover import DistanceTwoHopCover, TwoHopCover
from repro.core.hopi import HopiIndex
from repro.storage import schema
from repro.storage.base import CoverStore
from repro.xmlmodel.model import Collection

Cover = Union[TwoHopCover, DistanceTwoHopCover]


class SQLiteCoverStore(CoverStore):
    """A 2-hop cover stored in LIN/LOUT tables with forward + backward
    indexes.

    Args:
        path: database file path, or ``":memory:"``.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(schema.SCHEMA)
        self._conn.commit()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save_cover(self, cover: Cover) -> None:
        """(Re)write the LIN/LOUT tables from an in-memory cover."""
        distance = isinstance(cover, DistanceTwoHopCover)
        cur = self._conn.cursor()
        cur.execute("DELETE FROM LIN")
        cur.execute("DELETE FROM LOUT")
        cur.execute(
            "INSERT OR REPLACE INTO META (KEY, VALUE) VALUES ('distance', ?)",
            ("1" if distance else "0",),
        )
        cur.execute(
            "INSERT OR REPLACE INTO META (KEY, VALUE) VALUES ('nodes', ?)",
            (",".join(str(n) for n in sorted(cover.nodes)),),
        )
        if distance:
            cur.executemany(
                "INSERT INTO LIN (ID, INID, DIST) VALUES (?, ?, ?)",
                (
                    (node, center, dist)
                    for node, entries in cover.lin.items()
                    for center, dist in entries.items()
                ),
            )
            cur.executemany(
                "INSERT INTO LOUT (ID, OUTID, DIST) VALUES (?, ?, ?)",
                (
                    (node, center, dist)
                    for node, entries in cover.lout.items()
                    for center, dist in entries.items()
                ),
            )
        else:
            cur.executemany(
                "INSERT INTO LIN (ID, INID) VALUES (?, ?)",
                (
                    (node, center)
                    for node, centers in cover.lin.items()
                    for center in centers
                ),
            )
            cur.executemany(
                "INSERT INTO LOUT (ID, OUTID) VALUES (?, ?)",
                (
                    (node, center)
                    for node, centers in cover.lout.items()
                    for center in centers
                ),
            )
        self._conn.commit()

    def load_cover(self) -> Cover:
        """Materialise the stored cover back into memory."""
        cur = self._conn.cursor()
        distance = self._meta("distance") == "1"
        nodes_blob = self._meta("nodes") or ""
        nodes = [int(x) for x in nodes_blob.split(",") if x]
        if distance:
            dcov = DistanceTwoHopCover(nodes)
            for node, center, dist in cur.execute("SELECT ID, INID, DIST FROM LIN"):
                dcov.add_lin(node, center, dist)
            for node, center, dist in cur.execute(
                "SELECT ID, OUTID, DIST FROM LOUT"
            ):
                dcov.add_lout(node, center, dist)
            return dcov
        cov = TwoHopCover(nodes)
        for node, center in cur.execute("SELECT ID, INID FROM LIN"):
            cov.add_lin(node, center)
        for node, center in cur.execute("SELECT ID, OUTID FROM LOUT"):
            cov.add_lout(node, center)
        return cov

    def save_collection(self, collection: Collection) -> None:
        cur = self._conn.cursor()
        cur.execute("DELETE FROM DOCUMENTS")
        cur.execute("DELETE FROM ELEMENTS")
        cur.execute("DELETE FROM LINKS")
        cur.executemany(
            "INSERT INTO DOCUMENTS (DOC_ID, ROOT) VALUES (?, ?)",
            ((d.doc_id, d.root) for d in collection.documents.values()),
        )
        cur.executemany(
            "INSERT INTO ELEMENTS (EID, DOC_ID, TAG, PARENT, TEXT) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                (e.eid, e.doc, e.tag, e.parent, e.text)
                for e in collection.elements.values()
            ),
        )
        rows = [
            (u, v, "inter") for (u, v) in collection.inter_links
        ] + [
            (u, v, "intra")
            for d in collection.documents.values()
            for (u, v) in d.intra_links
        ]
        cur.executemany(
            "INSERT INTO LINKS (SOURCE, TARGET, KIND) VALUES (?, ?, ?)", rows
        )
        self._conn.commit()

    def load_collection(self) -> Collection:
        cur = self._conn.cursor()
        collection = Collection()
        roots: Dict[str, int] = dict(
            cur.execute("SELECT DOC_ID, ROOT FROM DOCUMENTS")
        )
        elements = list(
            cur.execute(
                "SELECT EID, DOC_ID, TAG, PARENT, TEXT FROM ELEMENTS ORDER BY EID"
            )
        )
        # rebuild in eid order: parents always have smaller ids than
        # their children by construction, so one pass suffices
        for eid, doc_id, tag, parent, text in elements:
            if parent is None:
                if eid != roots[doc_id]:
                    raise ValueError(
                        f"corrupt store: root mismatch for {doc_id!r}"
                    )
                # allocate with the exact same id
                collection._next_id = eid
                element = collection.new_document(doc_id, tag)
            else:
                collection._next_id = eid
                element = collection.add_child(parent, tag)
            if element.eid != eid:
                raise ValueError("corrupt store: non-contiguous element ids")
            element.text = text
        max_eid = max((e[0] for e in elements), default=-1)
        collection._next_id = max_eid + 1
        for source, target, _kind in cur.execute(
            "SELECT SOURCE, TARGET, KIND FROM LINKS"
        ):
            collection.add_link(source, target)
        return collection

    # ------------------------------------------------------------------
    # queries (the paper's SQL)
    # ------------------------------------------------------------------
    def _meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT VALUE FROM META WHERE KEY = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    def _node_known(self, v: int) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM ELEMENTS WHERE EID = ? LIMIT 1", (v,)
        ).fetchone()
        if row:
            return True
        # fall back to label presence when no collection is stored
        for q in (
            "SELECT 1 FROM LIN WHERE ID = ? LIMIT 1",
            "SELECT 1 FROM LOUT WHERE ID = ? LIMIT 1",
            "SELECT 1 FROM LIN WHERE INID = ? LIMIT 1",
            "SELECT 1 FROM LOUT WHERE OUTID = ? LIMIT 1",
        ):
            if self._conn.execute(q, (v,)).fetchone():
                return True
        nodes_blob = self._meta("nodes") or ""
        return str(v) in nodes_blob.split(",") if nodes_blob else False

    def connected(self, u: int, v: int) -> bool:
        if u == v:
            return self._node_known(u)
        cur = self._conn.cursor()
        if cur.execute(schema.SELF_OUT_QUERY, (u, v)).fetchone():
            return True
        if cur.execute(schema.SELF_IN_QUERY, (v, u)).fetchone():
            return True
        (count,) = cur.execute(schema.CONNECTION_QUERY, (u, v)).fetchone()
        return count > 0

    def distance(self, u: int, v: int) -> Optional[int]:
        if self._meta("distance") != "1":
            raise TypeError("store does not hold a distance-aware cover")
        if u == v:
            return 0 if self._node_known(u) else None
        cur = self._conn.cursor()
        best: Optional[int] = None
        (d,) = cur.execute(schema.SELF_OUT_DISTANCE_QUERY, (u, v)).fetchone()
        if d is not None:
            best = d
        (d,) = cur.execute(schema.SELF_IN_DISTANCE_QUERY, (v, u)).fetchone()
        if d is not None and (best is None or d < best):
            best = d
        (d,) = cur.execute(schema.DISTANCE_QUERY, (u, v)).fetchone()
        if d is not None and (best is None or d < best):
            best = d
        return best

    def descendants(self, u: int) -> Set[int]:
        result = {
            row[0]
            for row in self._conn.execute(schema.DESCENDANTS_QUERY, (u, u, u))
        }
        result.add(u)
        return result

    def ancestors(self, v: int) -> Set[int]:
        result = {
            row[0]
            for row in self._conn.execute(schema.ANCESTORS_QUERY, (v, v, v))
        }
        result.add(v)
        return result

    def cover_size(self) -> int:
        (n_in,) = self._conn.execute("SELECT COUNT(*) FROM LIN").fetchone()
        (n_out,) = self._conn.execute("SELECT COUNT(*) FROM LOUT").fetchone()
        return n_in + n_out

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SQLiteCoverStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def persist_index(index: HopiIndex, path: str) -> SQLiteCoverStore:
    """Write a built index (cover + collection) to a database file."""
    store = SQLiteCoverStore(path)
    store.save_collection(index.collection)
    store.save_cover(index.cover)
    return store


def load_index(path: str) -> HopiIndex:
    """Load a previously persisted index back into memory."""
    with SQLiteCoverStore(path) as store:
        collection = store.load_collection()
        cover = store.load_cover()
    cover.nodes |= set(collection.elements)
    return HopiIndex(collection, cover)
