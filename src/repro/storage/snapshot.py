"""Compact CSR-style binary snapshots of array-backed covers.

The SQLite store keeps one row per label entry — ideal for the paper's
SQL query shapes, but (de)serialising a large cover costs one Python
tuple per row. A snapshot instead writes the cover exactly as the
array backend holds it in memory: a node-id table plus CSR blocks
(``indptr`` offsets + one flat, sorted data array) for ``Lin``,
``Lout`` and both backward indexes. Save and load move whole blocks
with ``array.tobytes`` / ``array.frombytes`` — zero per-row Python
work, and the loaded cover needs no index rebuilding.

Layout (all little-endian)::

    magic  b"HOPICSR1"
    flags  uint32 (bit 0: distance-aware)
    then a sequence of length-prefixed sections:
        nodes      int64[]  external element ids, interner order
        active     int32[]  internal ids of the active node universe
        lin_ptr    int64[]  CSR offsets, len = nodes + 1
        lin_dat    int32[]  concatenated sorted Lin center ids
        lout_ptr / lout_dat
        ilin_ptr / ilin_dat    backward index (center -> nodes)
        ilout_ptr / ilout_dat
        lin_dist   int32[]  (distance covers only, aligned with lin_dat)
        lout_dist  int32[]

Snapshots require integer node labels (element ids always are); covers
over exotic hashables belong in the SQLite or memory stores.

Beyond on-disk persistence the same encoding doubles as the **wire
format of the parallel build pipeline** (:mod:`repro.core.pipeline`):
:func:`snapshot_to_bytes` / :func:`snapshot_from_bytes` run the dump
and load against an in-memory buffer, so a ``multiprocessing`` worker
can return its partition cover to the parent as one compact, picklable
``bytes`` blob instead of a deep object graph.
"""

from __future__ import annotations

import io
import struct
import sys
from array import array
from pathlib import Path
from typing import BinaryIO, List, Optional, Set, Union

from repro.core.array_cover import ArrayDistanceCover, ArrayTwoHopCover
from repro.storage.base import CoverStore

MAGIC = b"HOPICSR1"
_FLAG_DISTANCE = 1

ArrayCover = Union[ArrayTwoHopCover, ArrayDistanceCover]


def _write_array(fh: BinaryIO, arr: array) -> None:
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts
        arr = arr[:]
        arr.byteswap()
    fh.write(struct.pack("<cQ", arr.typecode.encode(), len(arr)))
    fh.write(arr.tobytes())


def _read_array(fh: BinaryIO) -> array:
    header = fh.read(9)
    if len(header) != 9:
        raise ValueError("truncated snapshot: section header missing")
    typecode, length = struct.unpack("<cQ", header)
    arr = array(typecode.decode())
    payload = fh.read(length * arr.itemsize)
    if len(payload) != length * arr.itemsize:
        raise ValueError(
            f"truncated snapshot: expected {length * arr.itemsize} bytes, "
            f"got {len(payload)}"
        )
    arr.frombytes(payload)
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts
        arr.byteswap()
    return arr


def dump_snapshot(fh: BinaryIO, cover: ArrayCover) -> None:
    """Write the CSR encoding of an array-backed cover to a stream."""
    if not isinstance(cover, (ArrayTwoHopCover, ArrayDistanceCover)):
        raise TypeError(
            "snapshots hold array-backed covers; convert with "
            "convert_cover(cover, 'arrays') first"
        )
    payload = cover.to_csr()
    labels = payload["labels"]
    if not all(isinstance(x, int) for x in labels):
        raise TypeError("snapshot node labels must be integers (element ids)")
    flags = _FLAG_DISTANCE if payload["distance"] else 0
    fh.write(MAGIC)
    fh.write(struct.pack("<I", flags))
    _write_array(fh, array("q", labels))
    _write_array(fh, payload["active"])
    for key in ("lin", "lout", "inv_lin", "inv_lout"):
        indptr, data = payload[key]
        _write_array(fh, indptr)
        _write_array(fh, data)
    if flags & _FLAG_DISTANCE:
        _write_array(fh, payload["lin_dist"])
        _write_array(fh, payload["lout_dist"])


def read_snapshot(fh: BinaryIO, *, name: str = "<stream>") -> ArrayCover:
    """Read one CSR encoding from a stream into an array-backed cover."""
    magic = fh.read(len(MAGIC))
    if magic != MAGIC:
        raise ValueError(f"{name}: not a HOPI CSR snapshot")
    (flags,) = struct.unpack("<I", fh.read(4))
    labels = list(_read_array(fh))
    active = _read_array(fh)
    blocks = {}
    for key in ("lin", "lout", "inv_lin", "inv_lout"):
        indptr = _read_array(fh)
        data = _read_array(fh)
        blocks[key] = (indptr, data)
    payload = {
        "labels": labels,
        "active": active,
        **blocks,
    }
    if flags & _FLAG_DISTANCE:
        payload["distance"] = True
        payload["lin_dist"] = _read_array(fh)
        payload["lout_dist"] = _read_array(fh)
        return ArrayDistanceCover.from_csr(payload)
    payload["distance"] = False
    return ArrayTwoHopCover.from_csr(payload)


def save_snapshot(path: Union[str, Path], cover: ArrayCover) -> int:
    """Write an array-backed cover to ``path``; returns bytes written.

    Set-backed covers must be converted first
    (:func:`repro.core.hopi.convert_cover`) — the snapshot is the
    serialised form of the array representation. The encoding is fully
    serialised *before* the target is opened, so a validation error
    (wrong cover flavour, non-integer labels) never truncates an
    existing snapshot file.
    """
    data = snapshot_to_bytes(cover)
    path = Path(path)
    path.write_bytes(data)
    return len(data)


def load_snapshot(path: Union[str, Path]) -> ArrayCover:
    """Load a snapshot back into an array-backed cover."""
    with open(path, "rb") as fh:
        return read_snapshot(fh, name=str(path))


def snapshot_to_bytes(cover: ArrayCover) -> bytes:
    """The CSR encoding as one ``bytes`` blob.

    The parallel build pipeline's wire format: workers encode their
    partition cover with this and ship the blob through the process
    pool's pickle channel — one contiguous buffer instead of thousands
    of small array objects.
    """
    buf = io.BytesIO()
    dump_snapshot(buf, cover)
    return buf.getvalue()


def snapshot_from_bytes(data: bytes) -> ArrayCover:
    """Decode a :func:`snapshot_to_bytes` blob back into an array cover."""
    return read_snapshot(io.BytesIO(data), name="<bytes>")


def canonical_snapshot_bytes(cover) -> bytes:
    """A byte-deterministic snapshot encoding of any cover.

    Plain snapshots serialise the array backend's interner order, which
    depends on construction history (union order, maintenance, backend
    conversions). Here the cover is re-represented with nodes interned
    in sorted order and entries inserted in sorted order, so **any two
    covers with equal node universes and label-entry sets encode to
    identical bytes** — regardless of backend, executor, worker count
    or join shard count. The equivalence test suite and the CI
    rpc-smoke job rely on this to diff whole builds with one byte
    comparison.
    """
    factory = ArrayDistanceCover if cover.is_distance_aware else ArrayTwoHopCover
    fresh = factory(sorted(cover.nodes))
    if cover.is_distance_aware:
        for kind, node, center, dist in sorted(cover.entries()):
            add = fresh.add_lin if kind == "in" else fresh.add_lout
            add(node, center, dist)
    else:
        for kind, node, center in sorted(cover.entries()):
            add = fresh.add_lin if kind == "in" else fresh.add_lout
            add(node, center)
    return snapshot_to_bytes(fresh)


class SnapshotCoverStore(CoverStore):
    """A :class:`CoverStore` over a CSR snapshot file.

    Queries are answered by the materialised array cover (loaded lazily
    on first use); :meth:`save_cover` rewrites the file.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._cover: Optional[ArrayCover] = None
        self._loaded_mtime_ns: Optional[int] = None

    def _loaded(self) -> ArrayCover:
        if self._cover is None:
            # stat *before* reading: if the file is rewritten while we
            # load, the recorded mtime predates the rewrite and the next
            # reload_if_changed() picks the new version up (stale-safe)
            mtime_ns = self.path.stat().st_mtime_ns
            self._cover = load_snapshot(self.path)
            self._loaded_mtime_ns = mtime_ns
        return self._cover

    def reload(self) -> ArrayCover:
        """Drop the cached cover and re-read the file.

        The store half of the service layer's hot-reload path
        (``QueryService.reload_cover`` accepts a store and calls this):
        an index rebuilt offline (e.g. after cover-quality degradation,
        Section 6's "occasional rebuilds") is picked up without
        restarting the process — the service loads the fresh cover into
        a shadow epoch and hot-swaps it under live queries.
        """
        self._cover = None
        return self._loaded()

    def reload_if_changed(self) -> bool:
        """Reload when the file changed since it was last read.

        Returns True when a fresh cover was loaded. Cheap enough to poll
        from a maintenance thread (one ``stat`` per call).
        """
        mtime_ns = self.path.stat().st_mtime_ns
        if self._cover is not None and mtime_ns == self._loaded_mtime_ns:
            return False
        self.reload()
        return True

    def save_cover(self, cover) -> None:
        from repro.core.hopi import convert_cover

        converted = convert_cover(cover, "arrays")
        save_snapshot(self.path, converted)
        # cache a private copy: the caller may keep mutating its live
        # cover, and the store must keep answering from persisted state
        self._cover = converted.copy()
        self._loaded_mtime_ns = self.path.stat().st_mtime_ns

    def load_cover(self) -> ArrayCover:
        return self._loaded()

    def connected(self, u: int, v: int) -> bool:
        return self._loaded().connected(u, v)

    def connected_many(self, u: int, candidates) -> List[bool]:
        return self._loaded().connected_many(u, candidates)

    def distance(self, u: int, v: int) -> Optional[int]:
        cover = self._loaded()
        if not cover.is_distance_aware:
            raise TypeError("store does not hold a distance-aware cover")
        return cover.distance(u, v)

    def descendants(self, u: int) -> Set[int]:
        return self._loaded().descendants(u)

    def ancestors(self, v: int) -> Set[int]:
        return self._loaded().ancestors(v)

    def cover_size(self) -> int:
        return self._loaded().size
