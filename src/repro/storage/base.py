"""The store interface shared by the SQL and in-memory backends."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Set

from repro.core.cover import DistanceTwoHopCover, TwoHopCover


class CoverStore(ABC):
    """Query interface over a persisted 2-hop cover.

    Implementations answer the paper's four query shapes: connection
    test, shortest distance (when the stored cover is distance-aware),
    and ancestor/descendant enumeration.
    """

    @abstractmethod
    def connected(self, u: int, v: int) -> bool:
        """Reachability test ``u ->* v``."""

    @abstractmethod
    def distance(self, u: int, v: int) -> Optional[int]:
        """Shortest distance or None; requires a distance-aware cover."""

    @abstractmethod
    def descendants(self, u: int) -> Set[int]:
        """All elements reachable from ``u`` (including ``u``)."""

    @abstractmethod
    def ancestors(self, v: int) -> Set[int]:
        """All elements reaching ``v`` (including ``v``)."""

    @abstractmethod
    def cover_size(self) -> int:
        """Number of stored label entries (|L|)."""

    @abstractmethod
    def load_cover(self) -> "TwoHopCover | DistanceTwoHopCover":
        """Materialise the stored cover back into memory."""
