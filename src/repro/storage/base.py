"""The store interface shared by every persistence backend.

Three implementations exist, one per storage representation:

* :class:`repro.storage.memstore.MemoryCoverStore` — wraps a live
  in-memory cover (no serialisation; benchmark baseline);
* :class:`repro.storage.db.SQLiteCoverStore` — the paper's relational
  LIN/LOUT layout with forward + backward indexes (Section 3.4);
* :class:`repro.storage.snapshot.SnapshotCoverStore` — compact CSR
  binary snapshots of array-backed covers.

Adding a backend means implementing this ABC; everything above the
storage layer (CLI, benchmarks, query engine) only sees ``CoverStore``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Set

from repro.core.cover import DistanceTwoHopCover, TwoHopCover


class CoverStore(ABC):
    """Persistence + query interface over a stored 2-hop cover.

    Implementations answer the paper's four query shapes: connection
    test, shortest distance (when the stored cover is distance-aware),
    and ancestor/descendant enumeration.
    """

    @abstractmethod
    def save_cover(self, cover) -> None:
        """(Re)write the stored cover from an in-memory one."""

    @abstractmethod
    def connected(self, u: int, v: int) -> bool:
        """Reachability test ``u ->* v``."""

    def connected_many(self, u: int, candidates: Sequence[int]) -> List[bool]:
        """Batched connection tests; backends override when they can do
        better than one probe per candidate."""
        return [self.connected(u, c) for c in candidates]

    @abstractmethod
    def distance(self, u: int, v: int) -> Optional[int]:
        """Shortest distance or None; requires a distance-aware cover."""

    @abstractmethod
    def descendants(self, u: int) -> Set[int]:
        """All elements reachable from ``u`` (including ``u``)."""

    @abstractmethod
    def ancestors(self, v: int) -> Set[int]:
        """All elements reaching ``v`` (including ``v``)."""

    @abstractmethod
    def cover_size(self) -> int:
        """Number of stored label entries (|L|)."""

    @abstractmethod
    def load_cover(self) -> "TwoHopCover | DistanceTwoHopCover":
        """Materialise the stored cover back into memory."""
