"""Persistence backends for the HOPI index (Section 3.4).

The paper stores the 2-hop cover in two relational tables ``LIN(ID,
INID)`` and ``LOUT(ID, OUTID)`` (plus a ``DIST`` column for
distance-aware covers, Section 5.1), indexed forward *and* backward, and
evaluates connection tests as one indexed join. This package reproduces
that design and adds an array-native snapshot format behind one backend
interface:

* :mod:`repro.storage.base` — the :class:`CoverStore` contract every
  backend implements;
* :mod:`repro.storage.schema` — DDL and the paper's query strings;
* :mod:`repro.storage.db` — :class:`SQLiteCoverStore`, answering
  connection/distance/ancestor/descendant queries in SQL (batched
  ``executemany`` writes, WAL tuning on file databases), plus
  collection persistence for a fully self-contained index file;
* :mod:`repro.storage.snapshot` — CSR-style binary snapshots that
  round-trip array-backed covers without per-row Python overhead;
* :mod:`repro.storage.memstore` — an in-memory store with the same
  interface (the benchmark baseline for the SQL overhead).
"""

from repro.storage.base import CoverStore
from repro.storage.db import SQLiteCoverStore, load_index, persist_index
from repro.storage.memstore import MemoryCoverStore
from repro.storage.snapshot import (
    SnapshotCoverStore,
    load_snapshot,
    save_snapshot,
    snapshot_from_bytes,
    snapshot_to_bytes,
)

__all__ = [
    "CoverStore",
    "SQLiteCoverStore",
    "MemoryCoverStore",
    "SnapshotCoverStore",
    "load_index",
    "persist_index",
    "load_snapshot",
    "save_snapshot",
    "snapshot_from_bytes",
    "snapshot_to_bytes",
]
