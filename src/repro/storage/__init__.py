"""Database-backed persistence of the HOPI index (Section 3.4).

The paper stores the 2-hop cover in two relational tables ``LIN(ID,
INID)`` and ``LOUT(ID, OUTID)`` (plus a ``DIST`` column for
distance-aware covers, Section 5.1), indexed forward *and* backward, and
evaluates connection tests as one indexed join. This package reproduces
that design on SQLite (the paper used Oracle 9.2 — the layout and the
SQL are schema-level and carry over verbatim):

* :mod:`repro.storage.schema` — DDL and the paper's query strings;
* :mod:`repro.storage.db` — :class:`SQLiteCoverStore`, answering
  connection/distance/ancestor/descendant queries in SQL, plus
  collection persistence for a fully self-contained index file;
* :mod:`repro.storage.memstore` — an in-memory store with the same
  interface (the benchmark baseline for the SQL overhead).
"""

from repro.storage.base import CoverStore
from repro.storage.db import SQLiteCoverStore, load_index, persist_index
from repro.storage.memstore import MemoryCoverStore

__all__ = [
    "CoverStore",
    "SQLiteCoverStore",
    "MemoryCoverStore",
    "load_index",
    "persist_index",
]
