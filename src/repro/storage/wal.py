"""Durable update WAL and crash-recoverable index store.

The serving tier publishes epochs atomically in memory, but a process
crash used to lose every update since the last explicit snapshot. This
module closes that gap with the classic write-ahead protocol:

1. before an epoch is published, its wire-format ops (the
   :mod:`repro.core.ops` dialect) are appended to ``updates.wal`` and
   fsynced;
2. every ``checkpoint_interval`` records the full index is rewritten to
   ``index.db`` (temp file + atomic rename) and the WAL is reset;
3. on restart, :meth:`DurableIndexStore.recover` loads the snapshot and
   replays only WAL records *newer than the snapshot epoch* — replay is
   idempotent because records carry the epoch they produced.

Record format (binary, little-endian)::

    magic   "HOPIWAL1"                      (file header, 8 bytes)
    record  u32 length | u32 crc32 | length bytes of UTF-8 JSON
    payload {"epoch": E, "ops": [...]}

A crash mid-append leaves a torn tail: a record whose length field,
payload, or CRC is incomplete or corrupt. Replay stops at the first
torn record and truncates the file back to the last good offset, so the
next append continues from a clean boundary. Ops that cannot be
serialised (arbitrary Python mutators via ``QueryService.apply``) are
not loggable — callers must force a checkpoint instead, which this
module supports via :meth:`DurableIndexStore.checkpoint`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.hopi import HopiIndex
from repro.core.ops import apply_update_op
from repro.storage.db import load_index, persist_index

MAGIC = b"HOPIWAL1"
_HEADER = struct.Struct("<II")  # length, crc32

#: records appended since the last checkpoint before the next publish
#: forces one. Keeps replay cost (and WAL size) bounded without paying
#: a full snapshot rewrite on every small update batch.
DEFAULT_CHECKPOINT_INTERVAL = 64


class WALCrash(RuntimeError):
    """Raised by a crash hook to simulate dying at an injection point."""


class UpdateWAL:
    """Append-only log of ``(epoch, ops)`` records with fsync durability.

    The file handle stays open in append mode between writes; ``fsync``
    runs after every record so an acknowledged append survives a crash.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = None
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            with open(path, "wb") as fh:
                fh.write(MAGIC)
                fh.flush()
                os.fsync(fh.fileno())

    def _handle(self):
        if self._fh is None:
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, epoch: int, ops: List[Dict[str, Any]]) -> None:
        """Durably log one update batch that produced ``epoch``."""
        payload = json.dumps(
            {"epoch": epoch, "ops": ops}, separators=(",", ":")
        ).encode("utf-8")
        fh = self._handle()
        fh.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())

    def replay(self) -> Iterator[Tuple[int, List[Dict[str, Any]]]]:
        """Yield ``(epoch, ops)`` for every intact record, oldest first.

        Stops at (and truncates) a torn tail — an incomplete or
        CRC-corrupt final record left by a crash mid-append.
        """
        self.close()
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as fh:
            if fh.read(len(MAGIC)) != MAGIC:
                raise ValueError(f"{self.path}: not a HOPI update WAL")
            good = fh.tell()
            while True:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    break
                length, crc = _HEADER.unpack(header)
                payload = fh.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    break
                try:
                    record = json.loads(payload.decode("utf-8"))
                except ValueError:
                    break
                good = fh.tell()
                yield int(record["epoch"]), record["ops"]
        if os.path.getsize(self.path) > good:
            with open(self.path, "r+b") as fh:
                fh.truncate(good)

    def reset(self) -> None:
        """Drop all records (after a checkpoint made them redundant)."""
        self.close()
        with open(self.path, "wb") as fh:
            fh.write(MAGIC)
            fh.flush()
            os.fsync(fh.fileno())

    def record_count(self) -> int:
        """Number of intact records currently in the log."""
        return sum(1 for _ in self.replay())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class DurableIndexStore:
    """A snapshot + WAL pair that recovers the latest published epoch.

    Layout under ``root``::

        index.db      SQLite snapshot (collection + cover + epoch META)
        updates.wal   ops logged since that snapshot

    The serving tier calls :meth:`log` before each publish and
    :meth:`checkpoint` when the interval is exceeded (or when an update
    is not expressible as wire-format ops). ``crash_hook`` is a test
    seam: it is invoked with the injection-point name at each durability
    transition and may raise :class:`WALCrash` to simulate dying there.

    Injection points:

    * ``"appended"``   — ops are in the WAL, epoch not yet published;
    * ``"published"``  — epoch visible to readers, checkpoint pending;
    * ``"checkpointed"`` — snapshot rewritten, WAL about to reset.
    """

    def __init__(
        self,
        root: str,
        *,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        crash_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.db_path = os.path.join(root, "index.db")
        self.wal_path = os.path.join(root, "updates.wal")
        self.checkpoint_interval = checkpoint_interval
        self.crash_hook = crash_hook
        self.wal = UpdateWAL(self.wal_path)
        self._since_checkpoint = self.wal.record_count()

    def fire(self, point: str) -> None:
        """Invoke the crash hook (if any) at a named injection point."""
        if self.crash_hook is not None:
            self.crash_hook(point)

    def exists(self) -> bool:
        """Whether a snapshot has been initialised under ``root``."""
        return os.path.exists(self.db_path)

    def initialize(self, index: HopiIndex) -> None:
        """Seed the store from a freshly built (or loaded) index."""
        self.checkpoint(index)

    def log(self, epoch: int, ops: List[Dict[str, Any]]) -> None:
        """Durably append one update batch *before* it is published."""
        self.wal.append(epoch, ops)
        self._since_checkpoint += 1
        self.fire("appended")

    def checkpoint_due(self) -> bool:
        return self._since_checkpoint >= self.checkpoint_interval

    def checkpoint(self, index: HopiIndex) -> None:
        """Atomically rewrite the snapshot, then reset the WAL.

        The snapshot lands via temp-file + ``os.replace`` so a crash
        mid-write leaves the old snapshot intact; a crash *between* the
        rename and the WAL reset is harmless because replay skips
        records at or below the snapshot epoch.
        """
        tmp = self.db_path + ".tmp"
        if os.path.exists(tmp):
            os.remove(tmp)
        store = persist_index(index, tmp)
        store.close()
        os.replace(tmp, self.db_path)
        # WAL-journal side files of the temp database are stale now
        for suffix in ("-wal", "-shm"):
            leftover = tmp + suffix
            if os.path.exists(leftover):
                os.remove(leftover)
        self.fire("checkpointed")
        self.wal.reset()
        self._since_checkpoint = 0

    def recover(self, *, backend: Optional[str] = None) -> HopiIndex:
        """Load the snapshot and replay newer WAL records onto it.

        Returns the index at the highest durably-logged epoch. Records
        at or below the snapshot epoch (possible after a crash between
        checkpoint-rename and WAL reset) are skipped — replay is
        idempotent.
        """
        index = load_index(self.db_path, backend=backend)
        for epoch, ops in self.wal.replay():
            if epoch <= index.epoch:
                continue
            for op in ops:
                apply_update_op(index, op)
            index.epoch = epoch
        return index

    def close(self) -> None:
        self.wal.close()
