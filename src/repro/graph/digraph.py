"""A compact mutable directed graph over hashable node ids.

The HOPI algorithms operate on three graphs of very different sizes: the
element-level graph (hundreds of thousands of nodes in the paper), the
document-level graph, and skeleton graphs. All of them are instances of
:class:`DiGraph`, which stores forward and reverse adjacency as
``dict[node, set[node]]``. Dense integer ids are recommended (the XML
layer assigns them) but any hashable id works, which keeps the document-
level graph readable in tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


class DiGraph:
    """Mutable directed graph with forward and reverse adjacency sets.

    Parallel edges are collapsed (edge sets); self-loops are allowed but
    the XML layer never produces them. All mutating operations keep the
    forward and reverse adjacency views consistent.
    """

    __slots__ = ("_succ", "_pred")

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> None:
        """Add an isolated node (a no-op if it already exists)."""
        if v not in self._succ:
            self._succ[v] = set()
            self._pred[v] = set()

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the edge ``u -> v``, creating endpoints as needed."""
        self.add_node(u)
        self.add_node(v)
        self._succ[u].add(v)
        self._pred[v].add(u)

    def add_edges(self, edges: Iterable[Edge]) -> None:
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``u -> v``.

        Raises:
            KeyError: if the edge is not present.
        """
        try:
            self._succ[u].remove(v)
            self._pred[v].remove(u)
        except KeyError:
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph") from None

    def remove_node(self, v: Node) -> None:
        """Remove a node and all incident edges.

        Raises:
            KeyError: if the node is not present.
        """
        if v not in self._succ:
            raise KeyError(f"node {v!r} not in graph")
        for w in self._succ.pop(v):
            self._pred[w].discard(v)
        for u in self._pred.pop(v):
            self._succ[u].discard(v)

    def remove_nodes(self, nodes: Iterable[Node]) -> None:
        for v in nodes:
            self.remove_node(v)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, v: Node) -> bool:
        return v in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def nodes(self) -> Iterator[Node]:
        return iter(self._succ)

    def edges(self) -> Iterator[Edge]:
        for u, targets in self._succ.items():
            for v in targets:
                yield (u, v)

    def has_edge(self, u: Node, v: Node) -> bool:
        targets = self._succ.get(u)
        return targets is not None and v in targets

    def successors(self, v: Node) -> Set[Node]:
        """The set of direct successors of ``v`` (do not mutate)."""
        return self._succ[v]

    def predecessors(self, v: Node) -> Set[Node]:
        """The set of direct predecessors of ``v`` (do not mutate)."""
        return self._pred[v]

    def out_degree(self, v: Node) -> int:
        return len(self._succ[v])

    def in_degree(self, v: Node) -> int:
        return len(self._pred[v])

    def num_edges(self) -> int:
        return sum(len(t) for t in self._succ.values())

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "DiGraph":
        g = DiGraph()
        g._succ = {v: set(t) for v, t in self._succ.items()}
        g._pred = {v: set(t) for v, t in self._pred.items()}
        return g

    def reversed(self) -> "DiGraph":
        """A new graph with every edge direction flipped."""
        g = DiGraph()
        g._succ = {v: set(t) for v, t in self._pred.items()}
        g._pred = {v: set(t) for v, t in self._succ.items()}
        return g

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """The induced subgraph on ``nodes`` (edges with both ends inside)."""
        keep = set(nodes)
        g = DiGraph()
        for v in keep:
            if v not in self._succ:
                raise KeyError(f"node {v!r} not in graph")
            g.add_node(v)
        for v in keep:
            for w in self._succ[v]:
                if w in keep:
                    g.add_edge(v, w)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"DiGraph(|V|={len(self)}, |E|={self.num_edges()})"
