"""Strongly connected components and the condensation DAG.

2-hop reachability covers are naturally defined on DAGs: all members of a
strongly connected component reach exactly the same nodes, so HOPI labels
one representative per component and shares its labels. XML collections
are almost-trees, but inter-document links (citations, cross-references)
can close cycles, so the substrate must handle the general case.

Tarjan's algorithm is implemented iteratively — element-level graphs have
paths far deeper than CPython's recursion limit.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.graph.digraph import DiGraph, Node


def strongly_connected_components(graph: DiGraph) -> List[List[Node]]:
    """Tarjan's SCC algorithm, iteratively, in reverse topological order.

    Returns:
        A list of components; each component is a list of original nodes.
        Components are emitted in reverse topological order of the
        condensation (every edge goes from a later component to an
        earlier one in the returned list).
    """
    index: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[List[Node]] = []
    counter = 0

    for root in graph:
        if root in index:
            continue
        # Each work item is (node, iterator over its successors).
        work = [(root, iter(graph.successors(root)))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(graph.successors(w))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
            if lowlink[v] == index[v]:
                component: List[Node] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
    return components


class Condensation:
    """The condensation DAG of a directed graph.

    Every node of the original graph maps to the id of its component
    (``component_of``); component ids are dense integers ``0..k-1``
    assigned so that the condensation's edges always go from a component
    to one emitted earlier by Tarjan, i.e. ids form a reverse topological
    order. The condensation DAG itself is exposed as ``dag`` with the
    component ids as nodes.
    """

    def __init__(self, graph: DiGraph) -> None:
        comps = strongly_connected_components(graph)
        self.members: List[List[Node]] = comps
        self.component_of: Dict[Node, int] = {}
        for cid, comp in enumerate(comps):
            for v in comp:
                self.component_of[v] = cid
        self.dag = DiGraph()
        for cid in range(len(comps)):
            self.dag.add_node(cid)
        for u, v in graph.edges():
            cu, cv = self.component_of[u], self.component_of[v]
            if cu != cv:
                self.dag.add_edge(cu, cv)
        self._nontrivial = any(len(c) > 1 for c in comps)

    @property
    def is_dag_input(self) -> bool:
        """True iff the original graph was already acyclic (all SCCs trivial)."""
        return not self._nontrivial

    def representative(self, v: Node) -> Node:
        """A canonical member of ``v``'s component (first discovered)."""
        return self.members[self.component_of[v]][0]

    def component_size(self, v: Node) -> int:
        return len(self.members[self.component_of[v]])

    def __len__(self) -> int:
        return len(self.members)
