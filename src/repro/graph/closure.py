"""Transitive-closure engines.

The transitive closure is both the *input* of the 2-hop cover computation
(Section 3.2 takes ``C(G) = (V, T(G))``) and the *baseline* HOPI is
compared against (Table 2's compression ratios divide the number of
closure connections by the number of cover entries).

Two engines are provided:

* :func:`transitive_closure` — reachability sets via SCC condensation and
  set-union in reverse-topological order, optionally aborting when a
  connection budget is exceeded (this powers the closure-size-aware
  partitioner of Section 4.3).
* :func:`distance_closure` — per-source BFS producing shortest hop
  distances, the input of the distance-aware cover of Section 5.

Both use the paper's *strict, reflexive-implicit* convention: the pair
``(u, u)`` is never stored. Reflexive reachability is always true by
definition, and the cover likewise keeps self-labels implicit. A node on
a cycle does reach distinct members of its component, and those pairs
*are* stored.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.graph.condensation import Condensation
from repro.graph.digraph import DiGraph, Node


class ClosureBudgetExceeded(Exception):
    """Raised when a closure computation exceeds ``max_connections``.

    Carries the number of connections counted so far in ``count`` (a
    lower bound on the true closure size).
    """

    def __init__(self, count: int) -> None:
        super().__init__(f"transitive closure exceeds budget (>= {count} connections)")
        self.count = count


class TransitiveClosure:
    """Materialised strict transitive closure ``T(G)``.

    ``reach[u]`` is the set of nodes ``v != u`` with a path ``u ->* v``.
    The ancestor view is derived lazily on first use.
    """

    def __init__(self, reach: Dict[Node, Set[Node]]) -> None:
        self.reach = reach
        self._coreach: Optional[Dict[Node, Set[Node]]] = None

    # -- queries --------------------------------------------------------
    def contains(self, u: Node, v: Node) -> bool:
        """True iff ``u ->* v`` (reflexively: always true for ``u == v``)."""
        if u == v:
            return u in self.reach
        targets = self.reach.get(u)
        return targets is not None and v in targets

    def descendants_of(self, u: Node) -> Set[Node]:
        """Strict descendants of ``u`` (no self unless on a cycle — never stored)."""
        return self.reach[u]

    def ancestors_of(self, v: Node) -> Set[Node]:
        """Strict ancestors of ``v``; the reverse map is built on first call."""
        if self._coreach is None:
            coreach: Dict[Node, Set[Node]] = {u: set() for u in self.reach}
            for u, targets in self.reach.items():
                for v2 in targets:
                    coreach[v2].add(u)
            self._coreach = coreach
        return self._coreach[v]

    def connections(self) -> Iterator[Tuple[Node, Node]]:
        for u, targets in self.reach.items():
            for v in targets:
                yield (u, v)

    @property
    def num_connections(self) -> int:
        return sum(len(t) for t in self.reach.values())

    @property
    def num_nodes(self) -> int:
        return len(self.reach)

    def stored_integers(self, *, with_backward_index: bool = True) -> int:
        """Integers needed to store the closure as a database table.

        The paper's accounting (Section 7.2): two integers per connection
        in the forward table, doubled when a backward index for ancestor
        queries is added (344,992,370 connections -> 1,379,969,480 ints).
        """
        per = 4 if with_backward_index else 2
        return per * self.num_connections


def transitive_closure(
    graph: DiGraph,
    *,
    max_connections: Optional[int] = None,
) -> TransitiveClosure:
    """Compute the strict transitive closure of an arbitrary digraph.

    The graph is condensed into its SCC DAG; component reachability sets
    are accumulated by set union in reverse topological order (Tarjan
    emits components sinks-first, so a single forward pass suffices);
    node-level sets are then expanded from the component-level sets.

    Args:
        graph: input graph (cycles allowed).
        max_connections: optional budget; when the *node-level* connection
            count provably exceeds it, :class:`ClosureBudgetExceeded` is
            raised. Used by the Section-4.3 partitioner to grow partitions
            "until the transitive closure is as large as the available
            memory".

    Raises:
        ClosureBudgetExceeded: see ``max_connections``.
    """
    cond = Condensation(graph)
    k = len(cond)
    # comp_reach[c] = set of component ids reachable from c (strict).
    comp_reach: list[Set[int]] = [set() for _ in range(k)]
    sizes = [len(m) for m in cond.members]

    running = 0
    for cid in range(k):  # sinks first: components list is reverse topological
        acc: Set[int] = set()
        for succ in cond.dag.successors(cid):
            acc.add(succ)
            acc.update(comp_reach[succ])
        comp_reach[cid] = acc
        # node-level connections contributed by this component:
        #   |members| * (|members| - 1) intra-component pairs
        #   + |members| * sum of member counts of reachable components
        reach_nodes = sum(sizes[c] for c in acc)
        running += sizes[cid] * (sizes[cid] - 1) + sizes[cid] * reach_nodes
        if max_connections is not None and running > max_connections:
            raise ClosureBudgetExceeded(running)

    reach: Dict[Node, Set[Node]] = {}
    for cid, members in enumerate(cond.members):
        base: Set[Node] = set()
        for c in comp_reach[cid]:
            base.update(cond.members[c])
        if len(members) > 1:
            member_set = set(members)
            for v in members:
                targets = base | member_set
                targets.discard(v)
                reach[v] = targets
        else:
            reach[members[0]] = base
    return TransitiveClosure(reach)


def transitive_closure_size(
    graph: DiGraph, *, max_connections: Optional[int] = None
) -> int:
    """Number of strict connections in ``T(G)`` without keeping node sets.

    Same budget semantics as :func:`transitive_closure` but only counts,
    which is what the partition grower needs.
    """
    cond = Condensation(graph)
    k = len(cond)
    comp_reach: list[Set[int]] = [set() for _ in range(k)]
    sizes = [len(m) for m in cond.members]
    running = 0
    for cid in range(k):
        acc: Set[int] = set()
        for succ in cond.dag.successors(cid):
            acc.add(succ)
            acc.update(comp_reach[succ])
        comp_reach[cid] = acc
        reach_nodes = sum(sizes[c] for c in acc)
        running += sizes[cid] * (sizes[cid] - 1) + sizes[cid] * reach_nodes
        if max_connections is not None and running > max_connections:
            raise ClosureBudgetExceeded(running)
    return running


class DistanceClosure:
    """Materialised shortest-path (hop count) closure.

    ``dist[u]`` maps each strict descendant ``v`` of ``u`` to the length
    of the shortest path ``u ->* v``; ``d(u, u) = 0`` is implicit.
    """

    def __init__(self, dist: Dict[Node, Dict[Node, int]]) -> None:
        self.dist = dist
        self._codist: Optional[Dict[Node, Dict[Node, int]]] = None

    def distance(self, u: Node, v: Node) -> Optional[int]:
        """Shortest distance ``u -> v`` or ``None`` when unreachable."""
        if u == v:
            return 0 if u in self.dist else None
        return self.dist.get(u, {}).get(v)

    def contains(self, u: Node, v: Node) -> bool:
        return self.distance(u, v) is not None

    def descendants_of(self, u: Node) -> Dict[Node, int]:
        return self.dist[u]

    def ancestors_of(self, v: Node) -> Dict[Node, int]:
        if self._codist is None:
            codist: Dict[Node, Dict[Node, int]] = {u: {} for u in self.dist}
            for u, targets in self.dist.items():
                for w, d in targets.items():
                    codist[w][u] = d
            self._codist = codist
        return self._codist[v]

    def connections(self) -> Iterator[Tuple[Node, Node, int]]:
        for u, targets in self.dist.items():
            for v, d in targets.items():
                yield (u, v, d)

    @property
    def num_connections(self) -> int:
        return sum(len(t) for t in self.dist.values())

    def to_reachability(self) -> TransitiveClosure:
        """Forget distances, keeping the reachability sets."""
        return TransitiveClosure({u: set(t) for u, t in self.dist.items()})


def distance_closure(graph: DiGraph) -> DistanceClosure:
    """All-pairs shortest hop distances via one BFS per node.

    Quadratic in the worst case — exactly why the paper partitions the
    graph before running the cover computation.
    """
    dist: Dict[Node, Dict[Node, int]] = {}
    for source in graph:
        d: Dict[Node, int] = {}
        queue: deque[Node] = deque([source])
        level = {source: 0}
        while queue:
            v = queue.popleft()
            for w in graph.successors(v):
                if w not in level:
                    level[w] = level[v] + 1
                    d[w] = level[w]
                    queue.append(w)
        d.pop(source, None)
        dist[source] = d
    return DistanceClosure(dist)
