"""Traversals and reachability primitives on :class:`~repro.graph.digraph.DiGraph`.

These are the building blocks of everything HOPI does: ancestor and
descendant sets (Section 3.2's ``Cin``/``Cout``), BFS distances for the
distance-aware cover (Section 5), the bounded BFS used by the skeleton-
graph weight estimation (Section 4.3), and topological order for the
set-union transitive-closure engine.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.graph.digraph import DiGraph, Node


def bfs_order(graph: DiGraph, source: Node) -> List[Node]:
    """Nodes reachable from ``source`` in breadth-first order (incl. source)."""
    seen: Set[Node] = {source}
    order: List[Node] = [source]
    queue: deque[Node] = deque([source])
    while queue:
        v = queue.popleft()
        for w in graph.successors(v):
            if w not in seen:
                seen.add(w)
                order.append(w)
                queue.append(w)
    return order


def bfs_distances(
    graph: DiGraph,
    source: Node,
    *,
    reverse: bool = False,
    max_depth: Optional[int] = None,
) -> Dict[Node, int]:
    """Shortest hop-count distances from ``source`` to reachable nodes.

    Args:
        graph: the graph to traverse.
        source: start node.
        reverse: traverse predecessor edges instead (distances *to* source).
        max_depth: stop expanding beyond this distance (used by the
            bounded skeleton-graph traversal of Section 4.3).

    Returns:
        Mapping node -> distance, including ``source`` at distance 0.
    """
    neighbours: Callable[[Node], Set[Node]]
    neighbours = graph.predecessors if reverse else graph.successors
    dist: Dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        v = queue.popleft()
        d = dist[v]
        if max_depth is not None and d >= max_depth:
            continue
        for w in neighbours(v):
            if w not in dist:
                dist[w] = d + 1
                queue.append(w)
    return dist


def descendants(graph: DiGraph, source: Node, *, strict: bool = False) -> Set[Node]:
    """All nodes reachable from ``source``.

    With ``strict=True`` the source itself is excluded unless it lies on a
    cycle through itself (matching the reflexive-closure convention the
    paper uses: every node is an ancestor/descendant of itself).
    """
    reached = set(bfs_order(graph, source))
    if strict:
        reached.discard(source)
    return reached


def ancestors(graph: DiGraph, source: Node, *, strict: bool = False) -> Set[Node]:
    """All nodes that can reach ``source`` (via reverse BFS)."""
    seen: Set[Node] = {source}
    queue: deque[Node] = deque([source])
    while queue:
        v = queue.popleft()
        for w in graph.predecessors(v):
            if w not in seen:
                seen.add(w)
                queue.append(w)
    if strict:
        seen.discard(source)
    return seen


def is_reachable(graph: DiGraph, u: Node, v: Node) -> bool:
    """True iff there is a (possibly empty) path from ``u`` to ``v``.

    This is the naive online oracle the HOPI index replaces; it is used
    by tests and by the query-performance baseline benchmark (E16).
    """
    if u == v:
        return True
    seen: Set[Node] = {u}
    queue: deque[Node] = deque([u])
    while queue:
        x = queue.popleft()
        for w in graph.successors(x):
            if w == v:
                return True
            if w not in seen:
                seen.add(w)
                queue.append(w)
    return False


def multi_source_reaches(
    graph: DiGraph,
    sources: Iterable[Node],
    targets: Set[Node],
    *,
    forbidden: Optional[Set[Node]] = None,
) -> bool:
    """True iff any node in ``sources`` reaches any node in ``targets``.

    ``forbidden`` nodes are never entered (they may appear in sources, in
    which case they are skipped). This is the separator test of Section
    6.2: does any ancestor of a document still reach any descendant once
    the document is removed from the document-level graph?
    """
    forbidden = forbidden or set()
    seen: Set[Node] = set()
    queue: deque[Node] = deque()
    for s in sources:
        if s in forbidden or s in seen or s not in graph:
            continue
        if s in targets:
            return True
        seen.add(s)
        queue.append(s)
    while queue:
        v = queue.popleft()
        for w in graph.successors(v):
            if w in forbidden or w in seen:
                continue
            if w in targets:
                return True
            seen.add(w)
            queue.append(w)
    return False


def dfs_postorder(graph: DiGraph, source: Node) -> List[Node]:
    """Iterative depth-first postorder of the nodes reachable from source."""
    post: List[Node] = []
    seen: Set[Node] = {source}
    # stack entries: (node, iterator over successors)
    stack = [(source, iter(sorted(graph.successors(source), key=repr)))]
    while stack:
        v, it = stack[-1]
        advanced = False
        for w in it:
            if w not in seen:
                seen.add(w)
                stack.append((w, iter(sorted(graph.successors(w), key=repr))))
                advanced = True
                break
        if not advanced:
            post.append(v)
            stack.pop()
    return post


def topological_order(graph: DiGraph) -> List[Node]:
    """Kahn topological order of a DAG.

    Raises:
        ValueError: if the graph contains a cycle.
    """
    indeg = {v: graph.in_degree(v) for v in graph}
    queue: deque[Node] = deque(v for v, d in indeg.items() if d == 0)
    order: List[Node] = []
    while queue:
        v = queue.popleft()
        order.append(v)
        for w in graph.successors(v):
            indeg[w] -= 1
            if indeg[w] == 0:
                queue.append(w)
    if len(order) != len(graph):
        raise ValueError("graph has a cycle; no topological order exists")
    return order


def is_acyclic(graph: DiGraph) -> bool:
    """True iff the graph is a DAG."""
    try:
        topological_order(graph)
    except ValueError:
        return False
    return True
