"""Directed-graph substrate used by the HOPI index.

This package implements, from scratch, every graph primitive the paper
relies on: a mutable directed graph over dense integer node ids
(:mod:`repro.graph.digraph`), traversals and reachability
(:mod:`repro.graph.traversal`), Tarjan strongly-connected components and
the condensation DAG (:mod:`repro.graph.condensation`), and several
transitive-closure engines including a distance-annotated closure
(:mod:`repro.graph.closure`).
"""

from repro.graph.digraph import DiGraph
from repro.graph.traversal import (
    ancestors,
    bfs_distances,
    bfs_order,
    descendants,
    dfs_postorder,
    is_acyclic,
    is_reachable,
    topological_order,
)
from repro.graph.condensation import Condensation, strongly_connected_components
from repro.graph.closure import (
    DistanceClosure,
    TransitiveClosure,
    distance_closure,
    transitive_closure,
    transitive_closure_size,
)

__all__ = [
    "DiGraph",
    "ancestors",
    "bfs_distances",
    "bfs_order",
    "descendants",
    "dfs_postorder",
    "is_acyclic",
    "is_reachable",
    "topological_order",
    "Condensation",
    "strongly_connected_components",
    "DistanceClosure",
    "TransitiveClosure",
    "distance_closure",
    "transitive_closure",
    "transitive_closure_size",
]
