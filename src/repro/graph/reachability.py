"""Generic 2-hop reachability index for arbitrary directed graphs.

The paper's future work (Section 8): "As indexing connections in XML
collections is not the only application for compressing the transitive
closure of a graph, we will consider applications of this technique in
other scenarios." This module is that application path: a thin,
XML-free facade over the same cover machinery for any
:class:`~repro.graph.digraph.DiGraph` — call graphs, citation networks,
dependency graphs, workflow DAGs.

Example::

    from repro.graph import DiGraph
    from repro.graph.reachability import ReachabilityIndex

    calls = DiGraph([("main", "parse"), ("parse", "lex"), ("main", "emit")])
    index = ReachabilityIndex(calls)
    index.reachable("main", "lex")        # True
    index.descendants("parse")           # {'parse', 'lex'}
    index.add_edge("emit", "optimize")  # incremental maintenance
"""

from __future__ import annotations

from typing import Hashable, Optional, Set

from repro.core.cover import DistanceTwoHopCover, TwoHopCover
from repro.core.cover_builder import build_cover
from repro.core.distance import build_distance_cover
from repro.core.join import insert_link, insert_link_distance
from repro.graph.digraph import DiGraph
from repro.graph.traversal import descendants as graph_descendants
from repro.graph.traversal import is_reachable

Node = Hashable


class ReachabilityIndex:
    """A 2-hop cover over an arbitrary digraph, kept in sync with it.

    Args:
        graph: the graph to index (referenced, not copied — mutate it
            only through this index).
        distance: index shortest hop distances too (Section 5).
    """

    def __init__(self, graph: DiGraph, *, distance: bool = False) -> None:
        self._graph = graph
        self._distance = distance
        if distance:
            self._cover: "TwoHopCover | DistanceTwoHopCover" = (
                build_distance_cover(graph)
            )
        else:
            self._cover = build_cover(graph)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def reachable(self, u: Node, v: Node) -> bool:
        """``u ->* v`` in O(|Lout(u)| + |Lin(v)|)."""
        return self._cover.connected(u, v)

    def distance(self, u: Node, v: Node) -> Optional[int]:
        """Shortest hop distance, or None (requires ``distance=True``)."""
        if not self._distance:
            raise TypeError("index was built without distance=True")
        return self._cover.distance(u, v)

    def descendants(self, u: Node) -> Set[Node]:
        return self._cover.descendants(u)

    def ancestors(self, v: Node) -> Set[Node]:
        return self._cover.ancestors(v)

    @property
    def size(self) -> int:
        """Number of label entries (the compressed closure size)."""
        return self._cover.size

    @property
    def cover(self) -> "TwoHopCover | DistanceTwoHopCover":
        return self._cover

    # ------------------------------------------------------------------
    # maintenance (Section 6 specialised to bare graphs)
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> None:
        self._graph.add_node(v)
        self._cover.add_node(v)

    def add_edge(self, u: Node, v: Node) -> None:
        """Insert an edge and integrate it (Figure 2's center rule)."""
        self._graph.add_edge(u, v)
        self._cover.add_node(u)
        self._cover.add_node(v)
        if self._distance:
            insert_link_distance(self._cover, u, v)
        else:
            insert_link(self._cover, u, v)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Delete an edge; re-covers the affected region (Theorem 3's
        scheme on the bare graph)."""
        self._graph.remove_edge(u, v)
        if not self._distance and is_reachable(self._graph, u, v):
            return  # absorbed: every label entry is still witnessed
        self._rebuild_affected(
            self._cover.ancestors(u), self._cover.descendants(v)
        )

    def remove_node(self, v: Node) -> None:
        """Delete a node with all incident edges."""
        affected_out = self._cover.ancestors(v) - {v}
        affected_in = self._cover.descendants(v) - {v}
        self._graph.remove_node(v)
        self._cover.remove_nodes({v})
        self._rebuild_affected(affected_out, affected_in)

    def _rebuild_affected(
        self, affected_out: Set[Node], affected_in: Set[Node]
    ) -> None:
        region: Set[Node] = set()
        for s in affected_out:
            if s in self._graph:
                region |= graph_descendants(self._graph, s)
        sub = self._graph.subgraph(region)
        if self._distance:
            fresh: "TwoHopCover | DistanceTwoHopCover" = build_distance_cover(sub)
        else:
            fresh = build_cover(sub)
        # same splice as document deletion: replace ancestor out-labels,
        # filter descendant in-labels, union the rest
        from repro.core.maintenance import _splice_fresh_cover

        _splice_fresh_cover(
            self._cover,
            fresh,
            {a for a in affected_out if a in self._graph},
            {d for d in affected_in if d in self._graph},
        )

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Audit against a BFS oracle (tests/debugging)."""
        from repro.graph.closure import distance_closure, transitive_closure

        if self._distance:
            self._cover.verify_against(distance_closure(self._graph))
        else:
            self._cover.verify_against(transitive_closure(self._graph))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "distance" if self._distance else "reachability"
        return f"ReachabilityIndex({kind}, nodes={len(self._graph)}, size={self.size})"
