"""Incremental index maintenance (Section 6 of the paper).

All operations mutate the collection *and* its 2-hop cover in lock-step,
so that after any sequence of operations the cover represents exactly
the connections of the current element-level graph — the invariant the
paper's Theorems 2 and 3 establish and our property tests check against
a from-scratch rebuild.

* **Insertions** (Section 6.1): isolated nodes are trivial; a new edge
  ``(u, v)`` is integrated with the link-insertion rule of Section 3.3
  (``v`` becomes the center of every new connection); a new document is
  treated as a fresh partition — its cover is computed standalone,
  unioned in, and its incident links are integrated one at a time.

* **Deletions** (Section 6.2): deleting a document ``d_i`` takes the
  **fast path of Theorem 2** when ``d_i`` *separates* the document-level
  graph (every ancestor-to-descendant path runs through it): labels of
  ancestor elements drop all centers in ``V_di ∪ V_D``, labels of
  descendant elements drop all centers in ``V_di ∪ V_A``, and ``d_i``'s
  elements disappear. Otherwise the **general algorithm of Theorem 3**
  partially recomputes the closure: starting from the surviving
  ancestors of ``d_i``'s elements, the reachable region is re-covered
  from scratch and spliced into the old cover (ancestors' ``Lout`` are
  replaced; descendants' ``Lin`` drop ancestor-side centers and gain the
  fresh ones).

* **Edge deletion**: same structure as general document deletion, with
  a fast path — if the edge's endpoints remain connected after removal,
  a reachability cover is unchanged (distance covers always take the
  general path: a lost shortest path changes distances even when
  connectivity survives).

* **Modifications** (Section 6.3): drop and reinsert the document.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Set, Tuple, Union

from repro.core.cover import DistanceTwoHopCover, TwoHopCover
from repro.core.cover_builder import build_cover
from repro.core.distance import build_distance_cover
from repro.core.join import insert_link, insert_link_distance
from repro.graph.traversal import (
    ancestors as graph_ancestors,
    descendants as graph_descendants,
    is_reachable,
    multi_source_reaches,
)
from repro.xmlmodel.model import Collection, DocId, ElementId

Cover = Union[TwoHopCover, DistanceTwoHopCover]


@dataclass
class MaintenanceReport:
    """What a maintenance operation did (consumed by the benchmarks)."""

    operation: str
    separating: Optional[bool] = None
    entries_delta: int = 0
    recovered_region_size: int = 0
    seconds: float = 0.0


#: Signature of the ``on_change`` hook every maintenance op accepts:
#: called exactly once per completed operation, with its report, before
#: the op returns. :class:`repro.core.hopi.HopiIndex` threads its epoch
#: counter through this, and the service layer uses the epoch to
#: invalidate caches and publish hot-swapped indexes.
ChangeHook = Callable[[MaintenanceReport], None]


def _notify(on_change: Optional[ChangeHook], report: MaintenanceReport) -> MaintenanceReport:
    if on_change is not None:
        on_change(report)
    return report


def _is_distance(cover: Cover) -> bool:
    # protocol attribute, not isinstance: array-backed covers qualify too
    return cover.is_distance_aware


# ---------------------------------------------------------------------------
# insertions (Section 6.1)
# ---------------------------------------------------------------------------


def insert_element(
    collection: Collection,
    cover: Cover,
    parent: ElementId,
    tag: str,
    *,
    on_change: Optional[ChangeHook] = None,
) -> ElementId:
    """Insert a new element under ``parent`` and its tree edge.

    The element is added to the collection, then the parent-child edge is
    integrated like any other edge.
    """
    element = collection.add_child(parent, tag)
    cover.add_node(element.eid)
    insert_edge(
        collection,
        cover,
        parent,
        element.eid,
        _already_in_collection=True,
        on_change=on_change,
    )
    return element.eid


def insert_edge(
    collection: Collection,
    cover: Cover,
    u: ElementId,
    v: ElementId,
    *,
    _already_in_collection: bool = False,
    on_change: Optional[ChangeHook] = None,
) -> MaintenanceReport:
    """Insert the edge/link ``u -> v`` (Section 6.1, Figure 2).

    On a *complete* cover a single integration pass is exact, including
    for distance covers: any pair whose shortest path uses the new edge
    decomposes as ``a ->* u -> v ->* d`` where the sub-distances are
    unchanged by the insertion (a shortest path cannot traverse the new
    edge twice).
    """
    start = time.perf_counter()
    if not _already_in_collection:
        collection.add_link(u, v)
    before = cover.size
    if _is_distance(cover):
        insert_link_distance(cover, u, v)
    else:
        insert_link(cover, u, v)
    return _notify(
        on_change,
        MaintenanceReport(
            operation="insert_edge",
            entries_delta=cover.size - before,
            seconds=time.perf_counter() - start,
        ),
    )


def insert_document(
    collection: Collection,
    cover: Cover,
    doc_id: DocId,
    *,
    on_change: Optional[ChangeHook] = None,
) -> MaintenanceReport:
    """Integrate a document already present in the collection.

    "A new document with outgoing and incoming links can be inserted by
    considering the document as a new partition, computing the 2–hop
    cover for this partition and applying the algorithm for merging
    partitions" — the document's standalone cover is unioned in and each
    incident inter-document link is integrated with the link rule.

    The caller builds the document (``new_document`` / ``add_child`` /
    ``add_link``) first, then calls this once.
    """
    start = time.perf_counter()
    before = cover.size
    doc = collection.documents[doc_id]
    doc_graph = doc.element_graph()
    if _is_distance(cover):
        local: Cover = build_distance_cover(doc_graph, cover_factory=type(cover))
    else:
        local = build_cover(doc_graph, cover_factory=type(cover))
    cover.union(local)
    incident = [
        (u, v)
        for (u, v) in sorted(collection.inter_links)
        if collection.doc(u) == doc_id or collection.doc(v) == doc_id
    ]
    for u, v in incident:
        if _is_distance(cover):
            insert_link_distance(cover, u, v)
        else:
            insert_link(cover, u, v)
    return _notify(
        on_change,
        MaintenanceReport(
            operation="insert_document",
            entries_delta=cover.size - before,
            seconds=time.perf_counter() - start,
        ),
    )


# ---------------------------------------------------------------------------
# the separator test (Section 6.2, Figure 6)
# ---------------------------------------------------------------------------


def document_separates(collection: Collection, doc_id: DocId) -> bool:
    """Does ``doc_id`` separate the document-level graph ``G_D(X)``?

    True iff every ancestor document and descendant document of
    ``doc_id`` are connected *only* through paths containing it — after
    removing it, no ancestor reaches any descendant (multi-source BFS).
    Documents on a document-level cycle through ``doc_id`` (ancestor and
    descendant at once) void the precondition of Theorem 2, so the test
    conservatively returns False in that case.
    """
    doc_graph = collection.document_graph()
    anc = graph_ancestors(doc_graph, doc_id, strict=True)
    desc = graph_descendants(doc_graph, doc_id, strict=True)
    if not anc or not desc:
        return True  # vacuously separating (e.g. link-free collections)
    if anc & desc:
        return False  # document-level cycle through doc_id
    return not multi_source_reaches(
        doc_graph, anc, desc, forbidden={doc_id}
    )


# ---------------------------------------------------------------------------
# deletions (Section 6.2)
# ---------------------------------------------------------------------------


def _delete_document_separating(
    collection: Collection, cover: Cover, doc_id: DocId
) -> None:
    """Theorem 2: filter labels, no recomputation."""
    doc_graph = collection.document_graph()
    anc_docs = graph_ancestors(doc_graph, doc_id, strict=True)
    desc_docs = graph_descendants(doc_graph, doc_id, strict=True)
    v_di: Set[ElementId] = set(collection.elements_of(doc_id))
    v_a: Set[ElementId] = set()
    for d in anc_docs:
        v_a |= collection.elements_of(d)
    v_d: Set[ElementId] = set()
    for d in desc_docs:
        v_d |= collection.elements_of(d)

    # for all a in VA: Lout(a) \= (Vdi ∪ VD) — walk the backward index
    for center in v_di | v_d:
        for node in list(cover.nodes_with_lout_center(center)):
            if node in v_a:
                cover.discard_lout(node, center)
    # for all d in VD: Lin(d) \= (Vdi ∪ VA)
    for center in v_di | v_a:
        for node in list(cover.nodes_with_lin_center(center)):
            if node in v_d:
                cover.discard_lin(node, center)
    cover.remove_nodes(v_di)
    collection.remove_document(doc_id)


def _cover_ancestors_of_set(cover: Cover, nodes: Set[ElementId]) -> Set[ElementId]:
    result: Set[ElementId] = set()
    for v in nodes:
        result |= cover.ancestors(v)
    return result


def _cover_descendants_of_set(cover: Cover, nodes: Set[ElementId]) -> Set[ElementId]:
    result: Set[ElementId] = set()
    for v in nodes:
        result |= cover.descendants(v)
    return result


def _splice_fresh_cover(
    cover: Cover,
    fresh: Cover,
    affected_out: Set[ElementId],
    affected_in: Set[ElementId],
) -> None:
    """Theorem 3's label surgery.

    ``L' := L ∪ L̂`` except: for every surviving ancestor ``a`` the out
    label is **replaced** by the fresh one; for every surviving
    descendant ``d`` the in label drops ancestor-side centers and gains
    the fresh ones.
    """
    distance = _is_distance(cover)
    for a in affected_out:
        if a not in cover.nodes:
            continue
        if distance:
            cover.set_lout(a, dict(fresh.lout_of(a)))
        else:
            cover.set_lout(a, set(fresh.lout_of(a)))
    for d in affected_in:
        if d not in cover.nodes:
            continue
        if distance:
            kept = {
                c: dist
                for c, dist in cover.lin_of(d).items()
                if c not in affected_out
            }
            for c, dist in fresh.lin_of(d).items():
                if c not in kept or dist < kept[c]:
                    kept[c] = dist
            cover.set_lin(d, kept)
        else:
            kept = {c for c in cover.lin_of(d) if c not in affected_out}
            kept |= set(fresh.lin_of(d))
            cover.set_lin(d, kept)
    # remaining fresh labels (nodes in the recomputed region that are
    # neither ancestors nor descendants) are unioned in — sound because
    # every fresh entry witnesses a real path in the new graph.
    for node in fresh.nodes:
        if node in affected_out and node in affected_in:
            continue
        if node not in affected_out:
            if distance:
                for c, dist in fresh.lout_of(node).items():
                    cover.add_lout(node, c, dist)
            else:
                for c in fresh.lout_of(node):
                    cover.add_lout(node, c)
        if node not in affected_in:
            if distance:
                for c, dist in fresh.lin_of(node).items():
                    cover.add_lin(node, c, dist)
            else:
                for c in fresh.lin_of(node):
                    cover.add_lin(node, c)


def _rebuild_region(
    collection: Collection, cover: Cover, seeds: Set[ElementId]
) -> Tuple[Cover, int]:
    """Re-cover the part of the new graph reachable from ``seeds``."""
    graph = collection.element_graph()
    region: Set[ElementId] = set()
    for s in seeds:
        if s in graph:
            region |= graph_descendants(graph, s)
    sub = graph.subgraph(region)
    if _is_distance(cover):
        fresh: Cover = build_distance_cover(sub, cover_factory=type(cover))
    else:
        fresh = build_cover(sub, cover_factory=type(cover))
    return fresh, len(region)


def delete_document(
    collection: Collection,
    cover: Cover,
    doc_id: DocId,
    *,
    force_general: bool = False,
    on_change: Optional[ChangeHook] = None,
) -> MaintenanceReport:
    """Delete a document and update the cover incrementally (Section 6.2).

    Uses the Theorem-2 fast path when the document separates the
    document-level graph, the Theorem-3 general algorithm otherwise
    (or always, with ``force_general=True``, which the ablation
    benchmark uses to quantify the fast path's benefit).
    """
    start = time.perf_counter()
    before = cover.size
    separating = not force_general and document_separates(collection, doc_id)
    if separating:
        _delete_document_separating(collection, cover, doc_id)
        return _notify(
            on_change,
            MaintenanceReport(
                operation="delete_document",
                separating=True,
                entries_delta=cover.size - before,
                seconds=time.perf_counter() - start,
            ),
        )
    # ---- Theorem 3: partial recomputation -----------------------------
    v_di: Set[ElementId] = set(collection.elements_of(doc_id))
    a_di = _cover_ancestors_of_set(cover, v_di)
    d_di = _cover_descendants_of_set(cover, v_di)
    collection.remove_document(doc_id)
    cover.remove_nodes(v_di)
    seeds = a_di - v_di
    fresh, region_size = _rebuild_region(collection, cover, seeds)
    _splice_fresh_cover(cover, fresh, a_di - v_di, d_di - v_di)
    return _notify(
        on_change,
        MaintenanceReport(
            operation="delete_document",
            separating=False,
            entries_delta=cover.size - before,
            recovered_region_size=region_size,
            seconds=time.perf_counter() - start,
        ),
    )


def delete_edge(
    collection: Collection,
    cover: Cover,
    u: ElementId,
    v: ElementId,
    *,
    on_change: Optional[ChangeHook] = None,
) -> MaintenanceReport:
    """Delete the edge/link ``u -> v`` ("a similar algorithm can be
    applied for deleting a single edge", Section 6.2).

    Fast path for reachability covers: when ``v`` stays reachable from
    ``u`` after the removal, no connection is lost and every label entry
    remains a valid witness, so the cover is untouched. Distance covers
    always take the general path because surviving connections may have
    grown longer.
    """
    start = time.perf_counter()
    before = cover.size
    sdoc = collection.doc(u)
    is_intra = sdoc == collection.doc(v)
    exists = (
        (u, v) in collection.documents[sdoc].intra_links
        if is_intra
        else (u, v) in collection.inter_links
    )
    if not exists:
        raise KeyError(
            f"({u}, {v}) is not a link; only links (not tree edges) can be deleted"
        )
    collection.remove_link(u, v)
    graph = collection.element_graph()
    if not _is_distance(cover) and is_reachable(graph, u, v):
        return _notify(
            on_change,
            MaintenanceReport(
                operation="delete_edge",
                separating=True,  # "separating" here: removal was absorbed
                entries_delta=0,
                seconds=time.perf_counter() - start,
            ),
        )
    a_e = cover.ancestors(u)  # includes u
    d_e = cover.descendants(v)  # includes v
    fresh, region_size = _rebuild_region(collection, cover, a_e)
    _splice_fresh_cover(cover, fresh, a_e, d_e)
    return _notify(
        on_change,
        MaintenanceReport(
            operation="delete_edge",
            separating=False,
            entries_delta=cover.size - before,
            recovered_region_size=region_size,
            seconds=time.perf_counter() - start,
        ),
    )


def modify_document(
    collection: Collection,
    cover: Cover,
    doc_id: DocId,
    rebuild: Callable[[Collection], None],
    *,
    on_change: Optional[ChangeHook] = None,
) -> MaintenanceReport:
    """Modify a document (Section 6.3): drop it and reinsert the new
    version.

    The hook fires once for the whole modification, not for the inner
    delete/insert pair — a modification is one logical change.

    Args:
        collection: the collection.
        cover: the cover kept in sync.
        doc_id: the document to replace.
        rebuild: callback that recreates the document (and its links)
            in the collection under the same id.
    """
    start = time.perf_counter()
    before = cover.size
    delete_document(collection, cover, doc_id)
    rebuild(collection)
    report = insert_document(collection, cover, doc_id)
    return _notify(
        on_change,
        MaintenanceReport(
            operation="modify_document",
            entries_delta=cover.size - before,
            recovered_region_size=report.recovered_region_size,
            seconds=time.perf_counter() - start,
        ),
    )
