"""2-hop cover data structures (Sections 3.1, 3.4 and 5.1 of the paper).

A 2-hop cover assigns each node ``v`` a label ``L(v) = (Lin(v), Lout(v))``
such that ``u ->* v`` iff ``(Lout(u) ∪ {u}) ∩ (Lin(v) ∪ {v}) ≠ ∅``. Like
the paper's database layout, the node itself is *never stored* in its own
label ("to minimize the number of entries, we do not store the node
itself"); the implicit self-hop is applied by every query.

Two flavours are provided:

* :class:`TwoHopCover` — plain reachability labels (sets of centers).
* :class:`DistanceTwoHopCover` — labels carry the distance to the center
  (Section 5); ``distance(u, v) = min(dout(u, w) + din(w, v))`` over
  common centers ``w``, mirroring the paper's
  ``SELECT MIN(LOUT.DIST + LIN.DIST)`` SQL query.

Both maintain *backward* (inverted) indexes — ``center -> nodes carrying
it`` — the in-memory analogue of the backward database indexes of
Section 3.4, which make ancestor/descendant enumeration and the
maintenance algorithms efficient.

These set-backed covers are one of two interchangeable label backends;
:mod:`repro.core.array_cover` provides the dense-id, sorted-array
backend. Every layer above (builder, join, maintenance, query engine,
storage) programs against :class:`CoverProtocol`, which both families
satisfy, so ``HopiIndex(backend="sets"|"arrays")`` is a pure
representation switch.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    runtime_checkable,
)

Node = Hashable


@runtime_checkable
class CoverProtocol(Protocol):
    """The label-backend contract shared by set- and array-backed covers.

    Reachability covers take ``add_lin(node, center)`` /
    ``set_lin(node, centers)`` and return center *sets* from
    ``lin_of``; distance covers take ``add_lin(node, center, dist)`` /
    ``set_lin(node, entries)`` and return ``{center: dist}`` mappings —
    callers branch on :attr:`is_distance_aware`, never on concrete
    classes.
    """

    is_distance_aware: bool

    # universe
    nodes: Iterable[Node]

    def add_node(self, v: Node) -> None:
        """Register ``v`` in the node universe (idempotent)."""
        ...

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Register every node of ``nodes`` in the universe."""
        ...

    def remove_nodes(self, removed: Set[Node]) -> None:
        """Drop nodes from the universe, their labels, and every label
        entry using them as a center."""
        ...

    # label access / mutation (signatures vary by distance-awareness;
    # see class docstrings)
    def lin_of(self, node: Node):
        """``Lin(node)``: a center set (reachability) or a
        ``{center: dist}`` mapping (distance covers)."""
        ...

    def lout_of(self, node: Node):
        """``Lout(node)``: a center set (reachability) or a
        ``{center: dist}`` mapping (distance covers)."""
        ...

    def discard_lin(self, node: Node, center: Node) -> None:
        """Remove ``center`` from ``Lin(node)`` if present."""
        ...

    def discard_lout(self, node: Node, center: Node) -> None:
        """Remove ``center`` from ``Lout(node)`` if present."""
        ...

    def nodes_with_lin_center(self, center: Node) -> Set[Node]:
        """Backward-index lookup: nodes whose ``Lin`` holds ``center``."""
        ...

    def nodes_with_lout_center(self, center: Node) -> Set[Node]:
        """Backward-index lookup: nodes whose ``Lout`` holds ``center``."""
        ...

    def union(self, other) -> None:
        """Component-wise union with any same-flavour cover (backends
        can mix; entries stream through ``other.entries()``)."""
        ...

    def absorb_disjoint(self, other) -> None:
        """:meth:`union`, optimised for node-disjoint same-backend
        covers (partition covers); identical result, row-level copies
        instead of per-entry inserts where the backend supports it."""
        ...

    def copy(self):
        """A structurally independent deep copy of the cover."""
        ...

    def cow_copy(self):
        """A copy-on-write fork sharing unchanged label rows with
        ``self``. Both sides stay safe to mutate afterwards: the first
        in-place change to a shared row (on either side) privatises
        that row first, so forks cost O(nodes) pointer copies instead
        of O(cover size) row copies. Equivalent to :meth:`copy` for
        every observable purpose."""
        ...

    # queries
    def connected(self, u: Node, v: Node) -> bool:
        """Reachability test ``u ->* v`` via one label intersection."""
        ...

    def connected_many(self, u: Node, candidates: Sequence[Node]) -> List[bool]:
        """Batched ``[connected(u, c) for c in candidates]``."""
        ...

    def descendants(self, u: Node) -> Set[Node]:
        """All ``d`` with ``u ->* d``, including ``u`` itself."""
        ...

    def ancestors(self, v: Node) -> Set[Node]:
        """All ``a`` with ``a ->* v``, including ``v`` itself."""
        ...

    # statistics & persistence
    @property
    def size(self) -> int:
        """``|L| = Σ |Lin(v)| + |Lout(v)|`` — the paper's cover size."""
        ...

    def stored_integers(self, *, with_backward_index: bool = True) -> int:
        """Integers a relational store would hold for this cover."""
        ...

    def entries(self) -> Iterator[Tuple]:
        """Every label entry as ``(kind, node, center[, dist])`` tuples."""
        ...

    def verify_against(self, closure, nodes: Optional[Iterable[Node]] = None) -> None:
        """Assert the cover answers exactly like a closure oracle."""
        ...


class TwoHopCover:
    """A reachability 2-hop cover with forward and backward label indexes.

    The cover knows its node universe: ``connected(u, u)`` is true only
    for registered nodes, and nodes with empty labels still participate
    in queries through the implicit self-hop.
    """

    is_distance_aware = False

    def __init__(self, nodes: Iterable[Node] = ()) -> None:
        self.nodes: Set[Node] = set(nodes)
        self.lin: Dict[Node, Set[Node]] = {}
        self.lout: Dict[Node, Set[Node]] = {}
        # backward indexes: center -> set of nodes whose Lin/Lout holds it
        self._inv_lin: Dict[Node, Set[Node]] = {}
        self._inv_lout: Dict[Node, Set[Node]] = {}
        # COW bookkeeping: None outside forks (single-branch fast path);
        # after cow_copy(), a dict mapping table name -> keys whose rows
        # this instance privately owns (everything else may be shared
        # with the sibling and must be copied before in-place mutation)
        self._cow: Optional[Dict[str, Set[Node]]] = None

    # ------------------------------------------------------------------
    # copy-on-write plumbing
    # ------------------------------------------------------------------
    def _owned_row(self, kind: str, table: Dict[Node, Set[Node]],
                   key: Node) -> Set[Node]:
        """``table[key]`` as a privately owned, mutable set.

        Creates the row when absent; under COW a row still shared with
        the fork sibling is copied (and recorded as owned) first.
        """
        row = table.get(key)
        cow = self._cow
        if row is None:
            row = set()
            table[key] = row
            if cow is not None:
                cow[kind].add(key)
        elif cow is not None and key not in cow[kind]:
            row = set(row)
            table[key] = row
            cow[kind].add(key)
        return row

    def cow_copy(self) -> "TwoHopCover":
        """Fork this cover, sharing unchanged label rows (see
        :meth:`CoverProtocol.cow_copy`). Outer tables are copied at
        pointer level; inner center-sets stay shared until either side
        mutates them."""
        clone = TwoHopCover.__new__(TwoHopCover)
        clone.nodes = set(self.nodes)
        clone.lin = dict(self.lin)
        clone.lout = dict(self.lout)
        clone._inv_lin = dict(self._inv_lin)
        clone._inv_lout = dict(self._inv_lout)
        # every row is now shared between the two siblings — both sides
        # restart ownership tracking from scratch
        self._cow = {"lin": set(), "lout": set(),
                     "inv_lin": set(), "inv_lout": set()}
        clone._cow = {"lin": set(), "lout": set(),
                      "inv_lin": set(), "inv_lout": set()}
        return clone

    # ------------------------------------------------------------------
    # label mutation
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> None:
        """Register ``v`` in the node universe (idempotent)."""
        self.nodes.add(v)

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Register every node of ``nodes`` in the universe."""
        self.nodes.update(nodes)

    def add_lin(self, node: Node, center: Node) -> bool:
        """Add ``center`` to ``Lin(node)`` (self-entries are dropped).

        Returns True when the label actually changed.
        """
        if node == center:
            return False
        self.nodes.add(node)
        entries = self.lin.get(node)
        if entries is not None and center in entries:
            return False
        self._owned_row("lin", self.lin, node).add(center)
        self._owned_row("inv_lin", self._inv_lin, center).add(node)
        return True

    def add_lout(self, node: Node, center: Node) -> bool:
        """Add ``center`` to ``Lout(node)`` (self-entries are dropped).

        Returns True when the label actually changed.
        """
        if node == center:
            return False
        self.nodes.add(node)
        entries = self.lout.get(node)
        if entries is not None and center in entries:
            return False
        self._owned_row("lout", self.lout, node).add(center)
        self._owned_row("inv_lout", self._inv_lout, center).add(node)
        return True

    def discard_lin(self, node: Node, center: Node) -> None:
        """Remove ``center`` from ``Lin(node)`` if present."""
        entries = self.lin.get(node)
        if entries and center in entries:
            self._owned_row("lin", self.lin, node).discard(center)
            self._owned_row("inv_lin", self._inv_lin, center).discard(node)

    def discard_lout(self, node: Node, center: Node) -> None:
        """Remove ``center`` from ``Lout(node)`` if present."""
        entries = self.lout.get(node)
        if entries and center in entries:
            self._owned_row("lout", self.lout, node).discard(center)
            self._owned_row("inv_lout", self._inv_lout, center).discard(node)

    def set_lin(self, node: Node, centers: Iterable[Node]) -> None:
        """Replace ``Lin(node)`` wholesale (used by Theorems 2 and 3)."""
        for c in self.lin.get(node, ()):
            self._owned_row("inv_lin", self._inv_lin, c).discard(node)
        new = {c for c in centers if c != node}
        self.lin[node] = new
        if self._cow is not None:
            self._cow["lin"].add(node)
        for c in new:
            self._owned_row("inv_lin", self._inv_lin, c).add(node)

    def set_lout(self, node: Node, centers: Iterable[Node]) -> None:
        """Replace ``Lout(node)`` wholesale (used by Theorems 2 and 3)."""
        for c in self.lout.get(node, ()):
            self._owned_row("inv_lout", self._inv_lout, c).discard(node)
        new = {c for c in centers if c != node}
        self.lout[node] = new
        if self._cow is not None:
            self._cow["lout"].add(node)
        for c in new:
            self._owned_row("inv_lout", self._inv_lout, c).add(node)

    def remove_nodes(self, removed: Set[Node]) -> None:
        """Drop nodes from the universe, their labels, and every label
        entry that uses them as a center (document deletion support)."""
        self.nodes -= removed
        for v in removed:
            self.set_lin(v, ())
            self.set_lout(v, ())
            self.lin.pop(v, None)
            self.lout.pop(v, None)
        for v in removed:
            for node in list(self._inv_lin.get(v, ())):
                self.discard_lin(node, v)
            for node in list(self._inv_lout.get(v, ())):
                self.discard_lout(node, v)
            self._inv_lin.pop(v, None)
            self._inv_lout.pop(v, None)

    def union(self, other) -> None:
        """Component-wise union with any reachability cover
        (Section 4.1's joins); protocol-level, so backends can mix."""
        self.add_nodes(other.nodes)
        for kind, node, center in other.entries():
            if kind == "in":
                self.add_lin(node, center)
            else:
                self.add_lout(node, center)

    def absorb_disjoint(self, other) -> None:
        """:meth:`union`, optimised for node-disjoint covers.

        Partition covers are node-disjoint by construction and their
        label centers are their own nodes, so whole label rows and
        backward-index rows can be copied instead of streaming one
        entry at a time — the dominant cost of the cover join. Falls
        back to :meth:`union` for mixed backends or overlapping node
        universes (the result is identical either way).
        """
        if type(other) is not TwoHopCover or not self.nodes.isdisjoint(
            other.nodes
        ):
            self.union(other)
            return
        self.nodes |= other.nodes
        for node, centers in other.lin.items():
            if centers:
                self.lin[node] = set(centers)
        for node, centers in other.lout.items():
            if centers:
                self.lout[node] = set(centers)
        for center, carriers in other._inv_lin.items():
            if carriers:
                self._owned_row("inv_lin", self._inv_lin, center).update(carriers)
        for center, carriers in other._inv_lout.items():
            if carriers:
                self._owned_row("inv_lout", self._inv_lout, center).update(carriers)

    def copy(self) -> "TwoHopCover":
        """A structurally independent deep copy of the cover."""
        clone = TwoHopCover(self.nodes)
        clone.lin = {v: set(c) for v, c in self.lin.items()}
        clone.lout = {v: set(c) for v, c in self.lout.items()}
        clone._inv_lin = {v: set(c) for v, c in self._inv_lin.items()}
        clone._inv_lout = {v: set(c) for v, c in self._inv_lout.items()}
        return clone

    # ------------------------------------------------------------------
    # queries (Section 3.4 semantics)
    # ------------------------------------------------------------------
    def lin_of(self, node: Node) -> Set[Node]:
        """``Lin(node)`` (empty set for unlabeled nodes)."""
        return self.lin.get(node, set())

    def lout_of(self, node: Node) -> Set[Node]:
        """``Lout(node)`` (empty set for unlabeled nodes)."""
        return self.lout.get(node, set())

    def nodes_with_lin_center(self, center: Node) -> Set[Node]:
        """Backward-index lookup: nodes whose ``Lin`` holds ``center``."""
        return self._inv_lin.get(center, set())

    def nodes_with_lout_center(self, center: Node) -> Set[Node]:
        """Backward-index lookup: nodes whose ``Lout`` holds ``center``."""
        return self._inv_lout.get(center, set())

    def connected(self, u: Node, v: Node) -> bool:
        """``u ->* v``? Implements ``(Lout(u) ∪ {u}) ∩ (Lin(v) ∪ {v})``.

        The four disjuncts correspond to the paper's main SQL query plus
        the "simple additional queries" that compensate for self-entries
        not being stored.
        """
        if u not in self.nodes or v not in self.nodes:
            return False
        if u == v:
            return True
        lout = self.lout.get(u)
        if lout and v in lout:
            return True
        lin = self.lin.get(v)
        if lin and u in lin:
            return True
        if lout and lin:
            small, large = (lout, lin) if len(lout) < len(lin) else (lin, lout)
            return any(c in large for c in small)
        return False

    def connected_many(self, u: Node, candidates: Sequence[Node]) -> List[bool]:
        """Batched ``[connected(u, c) for c in candidates]``.

        The set backend has no better strategy than one intersection per
        candidate; the array backend overrides this with a single
        descendant-set materialisation over dense ids.
        """
        return [self.connected(u, c) for c in candidates]

    def descendants(self, u: Node) -> Set[Node]:
        """All ``d`` with ``u ->* d`` (including ``u``), via the backward index."""
        if u not in self.nodes:
            return set()
        result: Set[Node] = {u}
        result |= self._inv_lin.get(u, set())
        lout = self.lout.get(u)
        if lout:
            result |= lout
            for c in lout:
                result |= self._inv_lin.get(c, set())
        return result

    def ancestors(self, v: Node) -> Set[Node]:
        """All ``a`` with ``a ->* v`` (including ``v``)."""
        if v not in self.nodes:
            return set()
        result: Set[Node] = {v}
        result |= self._inv_lout.get(v, set())
        lin = self.lin.get(v)
        if lin:
            result |= lin
            for c in lin:
                result |= self._inv_lout.get(c, set())
        return result

    # ------------------------------------------------------------------
    # statistics & verification
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """``|L| = Σ |Lin(v)| + |Lout(v)|`` — the paper's cover size."""
        return sum(len(c) for c in self.lin.values()) + sum(
            len(c) for c in self.lout.values()
        )

    def stored_integers(self, *, with_backward_index: bool = True) -> int:
        """Database ints per Section 3.4: 2 per entry, doubled by the
        backward index."""
        per = 4 if with_backward_index else 2
        return per * self.size

    def entries(self) -> Iterator[Tuple[str, Node, Node]]:
        """All label entries as ``(kind, node, center)`` with kind in
        {"in", "out"} — the row set of the LIN/LOUT tables."""
        for node, centers in self.lin.items():
            for c in centers:
                yield ("in", node, c)
        for node, centers in self.lout.items():
            for c in centers:
                yield ("out", node, c)

    def verify_against(self, closure, nodes: Optional[Iterable[Node]] = None) -> None:
        """Assert the cover represents exactly the closure's connections.

        Checks both directions of Theorem 1: every connection is covered,
        and no non-connection is reflected. Raises ``AssertionError``
        with a counterexample otherwise. ``closure`` needs a
        ``contains(u, v)`` method (e.g.
        :class:`repro.graph.closure.TransitiveClosure`).
        """
        universe = list(nodes) if nodes is not None else list(self.nodes)
        for u in universe:
            for v in universe:
                expected = closure.contains(u, v)
                actual = self.connected(u, v)
                if expected != actual:
                    raise AssertionError(
                        f"cover mismatch for ({u!r}, {v!r}): "
                        f"closure says {expected}, cover says {actual}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TwoHopCover(nodes={len(self.nodes)}, size={self.size})"


class DistanceTwoHopCover:
    """A distance-aware 2-hop cover (Section 5).

    Labels map centers to the shortest distance towards/from them:
    ``Lout(u)[w] = dist(u, w)`` and ``Lin(v)[w] = dist(w, v)``. The
    distance between two nodes is the minimum of ``dout + din`` over
    common centers — "the minimum operator is necessary because paths
    over center nodes may have different lengths" (Section 5.1). Entries
    keep the minimum on duplicate insertion.
    """

    is_distance_aware = True

    def __init__(self, nodes: Iterable[Node] = ()) -> None:
        self.nodes: Set[Node] = set(nodes)
        self.lin: Dict[Node, Dict[Node, int]] = {}
        self.lout: Dict[Node, Dict[Node, int]] = {}
        self._inv_lin: Dict[Node, Set[Node]] = {}
        self._inv_lout: Dict[Node, Set[Node]] = {}
        # COW bookkeeping (see TwoHopCover.__init__)
        self._cow: Optional[Dict[str, Set[Node]]] = None

    # ------------------------------------------------------------------
    # copy-on-write plumbing
    # ------------------------------------------------------------------
    def _owned_row(self, kind: str, table: Dict[Node, Set[Node]],
                   key: Node) -> Set[Node]:
        """``table[key]`` (a backward-index set) privately owned."""
        row = table.get(key)
        cow = self._cow
        if row is None:
            row = set()
            table[key] = row
            if cow is not None:
                cow[kind].add(key)
        elif cow is not None and key not in cow[kind]:
            row = set(row)
            table[key] = row
            cow[kind].add(key)
        return row

    def _owned_entries(self, kind: str, table: Dict[Node, Dict[Node, int]],
                       key: Node) -> Dict[Node, int]:
        """``table[key]`` (a ``{center: dist}`` label row) privately owned."""
        row = table.get(key)
        cow = self._cow
        if row is None:
            row = {}
            table[key] = row
            if cow is not None:
                cow[kind].add(key)
        elif cow is not None and key not in cow[kind]:
            row = dict(row)
            table[key] = row
            cow[kind].add(key)
        return row

    def cow_copy(self) -> "DistanceTwoHopCover":
        """Fork this cover, sharing unchanged label rows (see
        :meth:`CoverProtocol.cow_copy`)."""
        clone = DistanceTwoHopCover.__new__(DistanceTwoHopCover)
        clone.nodes = set(self.nodes)
        clone.lin = dict(self.lin)
        clone.lout = dict(self.lout)
        clone._inv_lin = dict(self._inv_lin)
        clone._inv_lout = dict(self._inv_lout)
        self._cow = {"lin": set(), "lout": set(),
                     "inv_lin": set(), "inv_lout": set()}
        clone._cow = {"lin": set(), "lout": set(),
                      "inv_lin": set(), "inv_lout": set()}
        return clone

    # ------------------------------------------------------------------
    # label mutation
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> None:
        """Register ``v`` in the node universe (idempotent)."""
        self.nodes.add(v)

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Register every node of ``nodes`` in the universe."""
        self.nodes.update(nodes)

    def add_lin(self, node: Node, center: Node, dist: int) -> bool:
        """Add/improve ``Lin(node)[center] = dist``; True when changed."""
        if node == center:
            return False
        self.nodes.add(node)
        old = self.lin.get(node, {}).get(center)
        if old is None or dist < old:
            self._owned_entries("lin", self.lin, node)[center] = dist
            self._owned_row("inv_lin", self._inv_lin, center).add(node)
            return True
        return False

    def add_lout(self, node: Node, center: Node, dist: int) -> bool:
        """Add/improve ``Lout(node)[center] = dist``; True when changed."""
        if node == center:
            return False
        self.nodes.add(node)
        old = self.lout.get(node, {}).get(center)
        if old is None or dist < old:
            self._owned_entries("lout", self.lout, node)[center] = dist
            self._owned_row("inv_lout", self._inv_lout, center).add(node)
            return True
        return False

    def set_lin(self, node: Node, entries: Dict[Node, int]) -> None:
        """Replace ``Lin(node)`` wholesale (used by Theorems 2 and 3)."""
        for c in self.lin.get(node, ()):
            self._owned_row("inv_lin", self._inv_lin, c).discard(node)
        new = {c: d for c, d in entries.items() if c != node}
        self.lin[node] = new
        if self._cow is not None:
            self._cow["lin"].add(node)
        for c in new:
            self._owned_row("inv_lin", self._inv_lin, c).add(node)

    def set_lout(self, node: Node, entries: Dict[Node, int]) -> None:
        """Replace ``Lout(node)`` wholesale (used by Theorems 2 and 3)."""
        for c in self.lout.get(node, ()):
            self._owned_row("inv_lout", self._inv_lout, c).discard(node)
        new = {c: d for c, d in entries.items() if c != node}
        self.lout[node] = new
        if self._cow is not None:
            self._cow["lout"].add(node)
        for c in new:
            self._owned_row("inv_lout", self._inv_lout, c).add(node)

    def remove_nodes(self, removed: Set[Node]) -> None:
        """Drop nodes from the universe, their labels, and every label entry using them as a center."""
        self.nodes -= removed
        for v in removed:
            self.set_lin(v, {})
            self.set_lout(v, {})
            self.lin.pop(v, None)
            self.lout.pop(v, None)
        for v in removed:
            for node in list(self._inv_lin.get(v, ())):
                entries = self.lin.get(node)
                if entries and v in entries:
                    self._owned_entries("lin", self.lin, node).pop(v, None)
            for node in list(self._inv_lout.get(v, ())):
                entries = self.lout.get(node)
                if entries and v in entries:
                    self._owned_entries("lout", self.lout, node).pop(v, None)
            self._inv_lin.pop(v, None)
            self._inv_lout.pop(v, None)

    def union(self, other) -> None:
        """Component-wise min-union with any distance cover."""
        self.add_nodes(other.nodes)
        for kind, node, center, dist in other.entries():
            if kind == "in":
                self.add_lin(node, center, dist)
            else:
                self.add_lout(node, center, dist)

    def absorb_disjoint(self, other) -> None:
        """:meth:`union`, optimised for node-disjoint covers (see
        :meth:`TwoHopCover.absorb_disjoint`)."""
        if type(other) is not DistanceTwoHopCover or not self.nodes.isdisjoint(
            other.nodes
        ):
            self.union(other)
            return
        self.nodes |= other.nodes
        for node, centers in other.lin.items():
            if centers:
                self.lin[node] = dict(centers)
        for node, centers in other.lout.items():
            if centers:
                self.lout[node] = dict(centers)
        for center, carriers in other._inv_lin.items():
            if carriers:
                self._owned_row("inv_lin", self._inv_lin, center).update(carriers)
        for center, carriers in other._inv_lout.items():
            if carriers:
                self._owned_row("inv_lout", self._inv_lout, center).update(carriers)

    def copy(self) -> "DistanceTwoHopCover":
        """A structurally independent deep copy of the cover."""
        clone = DistanceTwoHopCover(self.nodes)
        clone.lin = {v: dict(c) for v, c in self.lin.items()}
        clone.lout = {v: dict(c) for v, c in self.lout.items()}
        clone._inv_lin = {v: set(c) for v, c in self._inv_lin.items()}
        clone._inv_lout = {v: set(c) for v, c in self._inv_lout.items()}
        return clone

    def discard_lin(self, node: Node, center: Node) -> None:
        """Remove ``center`` from ``Lin(node)`` if present."""
        entries = self.lin.get(node)
        if entries and center in entries:
            del self._owned_entries("lin", self.lin, node)[center]
            self._owned_row("inv_lin", self._inv_lin, center).discard(node)

    def discard_lout(self, node: Node, center: Node) -> None:
        """Remove ``center`` from ``Lout(node)`` if present."""
        entries = self.lout.get(node)
        if entries and center in entries:
            del self._owned_entries("lout", self.lout, node)[center]
            self._owned_row("inv_lout", self._inv_lout, center).discard(node)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lin_of(self, node: Node) -> Dict[Node, int]:
        """``Lin(node)``: centers (reachability) or ``{center: dist}``."""
        return self.lin.get(node, {})

    def lout_of(self, node: Node) -> Dict[Node, int]:
        """``Lout(node)``: centers (reachability) or ``{center: dist}``."""
        return self.lout.get(node, {})

    def nodes_with_lin_center(self, center: Node) -> Set[Node]:
        """Backward-index lookup: nodes whose ``Lin`` holds ``center``."""
        return self._inv_lin.get(center, set())

    def nodes_with_lout_center(self, center: Node) -> Set[Node]:
        """Backward-index lookup: nodes whose ``Lout`` holds ``center``."""
        return self._inv_lout.get(center, set())

    def distance(self, u: Node, v: Node) -> Optional[int]:
        """Shortest distance ``u -> v`` or ``None`` when not connected.

        Implements ``MIN(LOUT.DIST + LIN.DIST)`` over common centers,
        extended by the implicit self-entries at distance 0.
        """
        if u not in self.nodes or v not in self.nodes:
            return None
        if u == v:
            return 0
        best: Optional[int] = None
        lout = self.lout.get(u, {})
        lin = self.lin.get(v, {})
        d = lout.get(v)  # center = v itself (its self din is 0)
        if d is not None:
            best = d
        d = lin.get(u)  # center = u itself (its self dout is 0)
        if d is not None and (best is None or d < best):
            best = d
        if lout and lin:
            # dout + din is symmetric, so iterate the smaller side
            small, large = (lout, lin) if len(lout) < len(lin) else (lin, lout)
            for c, d1 in small.items():
                d2 = large.get(c)
                if d2 is not None:
                    total = d1 + d2
                    if best is None or total < best:
                        best = total
        return best

    def connected(self, u: Node, v: Node) -> bool:
        """``u ->* v``? True iff a (shortest) witness distance exists."""
        return self.distance(u, v) is not None

    def connected_many(self, u: Node, candidates: Sequence[Node]) -> List[bool]:
        """Batched connection tests (see :meth:`TwoHopCover.connected_many`)."""
        return [self.connected(u, c) for c in candidates]

    def descendants(self, u: Node) -> Set[Node]:
        """All ``d`` with ``u ->* d`` (including ``u``)."""
        if u not in self.nodes:
            return set()
        result: Set[Node] = {u}
        result |= self._inv_lin.get(u, set())
        lout = self.lout.get(u)
        if lout:
            result.update(lout)
            for c in lout:
                result |= self._inv_lin.get(c, set())
        return result

    def ancestors(self, v: Node) -> Set[Node]:
        """All ``a`` with ``a ->* v`` (including ``v``)."""
        if v not in self.nodes:
            return set()
        result: Set[Node] = {v}
        result |= self._inv_lout.get(v, set())
        lin = self.lin.get(v)
        if lin:
            result.update(lin)
            for c in lin:
                result |= self._inv_lout.get(c, set())
        return result

    def descendants_within(self, u: Node, max_dist: int) -> Dict[Node, int]:
        """Descendants of ``u`` at distance ≤ ``max_dist`` with distances.

        The limited-length path lookup motivating Section 5 ("queries for
        limited-length paths between nodes with certain tags").
        """
        result: Dict[Node, int] = {}
        for d in self.descendants(u):
            dist = self.distance(u, d)
            if dist is not None and dist <= max_dist:
                result[d] = dist
        return result

    # ------------------------------------------------------------------
    # statistics & verification
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """``|L| = Σ |Lin(v)| + |Lout(v)|`` — the paper's cover size."""
        return sum(len(c) for c in self.lin.values()) + sum(
            len(c) for c in self.lout.values()
        )

    def stored_integers(self, *, with_backward_index: bool = True) -> int:
        """3 ints per entry (id, center, dist), doubled by the backward index."""
        per = 6 if with_backward_index else 3
        return per * self.size

    def entries(self) -> Iterator[Tuple[str, Node, Node, int]]:
        """All label entries as ``(kind, node, center, dist)`` with kind
        in {"in", "out"} — the row set of the LIN/LOUT tables."""
        for node, centers in self.lin.items():
            for c, d in centers.items():
                yield ("in", node, c, d)
        for node, centers in self.lout.items():
            for c, d in centers.items():
                yield ("out", node, c, d)

    def to_reachability(self) -> TwoHopCover:
        """Forget distances."""
        cover = TwoHopCover(self.nodes)
        for node, entries in self.lin.items():
            for c in entries:
                cover.add_lin(node, c)
        for node, entries in self.lout.items():
            for c in entries:
                cover.add_lout(node, c)
        return cover

    def verify_against(self, dclosure, nodes: Optional[Iterable[Node]] = None) -> None:
        """Assert distances match a :class:`DistanceClosure` exactly."""
        universe = list(nodes) if nodes is not None else list(self.nodes)
        for u in universe:
            for v in universe:
                expected = dclosure.distance(u, v)
                actual = self.distance(u, v)
                if expected != actual:
                    raise AssertionError(
                        f"distance mismatch for ({u!r}, {v!r}): "
                        f"closure says {expected}, cover says {actual}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"DistanceTwoHopCover(nodes={len(self.nodes)}, size={self.size})"
