"""Dense node-ID interning.

Every array-backed structure in the index operates on dense ``int32``
ids instead of arbitrary hashable node labels. The :class:`NodeInterner`
provides the stable bidirectional mapping: a label is assigned the next
free internal id on first sight and keeps it for the lifetime of the
interner — removal of a node from a cover's universe does *not* recycle
its id, so label entries, backward indexes and persisted snapshots can
never be confused by id reuse.

At the collection level element ids are already dense integers, but the
interner keeps the core generic (the cover algorithms accept any
hashable node type) and — crucially — guarantees *contiguity*, which
element ids lose after deletions. Contiguous ids are what make
list-indexed label tables and CSR snapshots possible.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional

Label = Hashable

#: Inclusive bound of the snapshot-portable id range (int32).
MAX_INTERNED = 2**31 - 1


class NodeInterner:
    """A stable bidirectional ``label <-> dense int`` mapping.

    Ids are assigned sequentially from 0 and never recycled. Lookups in
    both directions are O(1).
    """

    __slots__ = ("_id_of", "_labels")

    def __init__(self, labels: Iterable[Label] = ()) -> None:
        self._id_of: Dict[Label, int] = {}
        self._labels: List[Label] = []
        for label in labels:
            self.intern(label)

    @classmethod
    def from_labels(cls, labels: Iterable[Label]) -> "NodeInterner":
        """Bulk-build an interner from distinct labels in id order.

        The snapshot-decode fast path: one dict comprehension instead
        of one :meth:`intern` call per label. ``labels`` must be
        duplicate-free (snapshot label tables are by construction).
        """
        interner = cls()
        interner._labels = list(labels)
        if len(interner._labels) - 1 > MAX_INTERNED:  # pragma: no cover
            raise OverflowError("interner exceeded the int32 id range")
        interner._id_of = {lab: i for i, lab in enumerate(interner._labels)}
        if len(interner._id_of) != len(interner._labels):
            raise ValueError("labels must be distinct")
        return interner

    def intern(self, label: Label) -> int:
        """Return the id of ``label``, assigning the next free id if new."""
        iid = self._id_of.get(label)
        if iid is None:
            iid = len(self._labels)
            if iid > MAX_INTERNED:  # pragma: no cover - 2^31 nodes
                raise OverflowError("interner exceeded the int32 id range")
            self._id_of[label] = iid
            self._labels.append(label)
        return iid

    def get(self, label: Label) -> Optional[int]:
        """The id of ``label``, or ``None`` when it was never interned."""
        return self._id_of.get(label)

    def label(self, iid: int) -> Label:
        """The label behind an internal id (raises IndexError if unknown)."""
        return self._labels[iid]

    def labels(self) -> List[Label]:
        """All labels in id order (index == internal id)."""
        return list(self._labels)

    def same_mapping(self, other: "NodeInterner") -> bool:
        """Do both interners assign identical ids to identical labels?

        One C-level list comparison — the parallel join's assembly uses
        it to recognise shard covers built in the shared global id
        space, for which absorbing needs no id translation at all.
        """
        return self._labels == other._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Label) -> bool:
        return label in self._id_of

    def __iter__(self) -> Iterator[Label]:
        return iter(self._labels)

    def copy(self) -> "NodeInterner":
        """An independent interner with the same label <-> id mapping."""
        clone = NodeInterner()
        clone._id_of = dict(self._id_of)
        clone._labels = list(self._labels)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"NodeInterner({len(self._labels)} labels)"
