"""The ``/update`` wire-format operation vocabulary.

Every writer that maintains a shadow :class:`~repro.core.hopi.HopiIndex`
speaks the same op dialect: the service's group-commit publisher, the
shard router's generation builder, and the durable update WAL's
replay-on-restart (:mod:`repro.storage.wal`) all delegate to
:func:`apply_update_op`. Keeping it in the core layer (rather than the
service, where it grew up) lets the storage layer replay logged ops
without importing the serving tier.

Ops are plain JSON-able dicts with an ``"op"`` discriminator — the
contract that makes them durable: a logged op replays to the exact same
index state because every handler here is deterministic given the
index it is applied to.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Union

from repro.core.hopi import HopiIndex
from repro.xmlmodel.model import ElementId


class UpdateError(ValueError):
    """A malformed or inapplicable ``/update`` operation (maps to 400)."""


def apply_update_op(shadow: HopiIndex, op: Dict[str, Any]) -> Dict[str, Any]:
    """Apply one ``/update`` wire-format operation to ``shadow``.

    Raises :class:`UpdateError` (or the plain ``KeyError``/``ValueError``
    /... family for malformed shapes, which callers wrap)."""
    if not isinstance(op, dict) or "op" not in op:
        raise UpdateError(f"operation must be a dict with an 'op' key: {op!r}")
    kind = op["op"]
    if kind == "insert_element":
        eid = shadow.insert_element(int(op["parent"]), str(op["tag"]))
        return {"op": kind, "element": eid}
    if kind in ("insert_edge", "insert_link"):
        report = shadow.insert_edge(int(op["source"]), int(op["target"]))
        return {"op": kind, **asdict(report)}
    if kind in ("delete_edge", "delete_link"):
        report = shadow.delete_edge(int(op["source"]), int(op["target"]))
        return {"op": kind, **asdict(report)}
    if kind == "delete_document":
        doc_id = str(op["doc_id"])
        if doc_id not in shadow.collection.documents:
            raise UpdateError(f"no document {doc_id!r}")
        report = shadow.delete_document(doc_id)
        return {"op": kind, **asdict(report)}
    if kind == "insert_document":
        return _apply_insert_document(shadow, op)
    if kind == "rebuild":
        kwargs = {k: v for k, v in op.items() if k != "op"}
        shadow.rebuild(**kwargs)
        return {"op": kind, "cover_size": shadow.cover.size}
    raise UpdateError(f"unknown operation {kind!r}")


def _apply_insert_document(
    shadow: HopiIndex, op: Dict[str, Any]
) -> Dict[str, Any]:
    """Create a document in the shadow collection, then integrate it
    with Section 6.1's new-partition rule."""
    doc_id = str(op["doc_id"])
    if doc_id in shadow.collection.documents:
        raise UpdateError(f"document {doc_id!r} already exists")
    root = shadow.collection.new_document(
        doc_id, str(op.get("root_tag", "root"))
    )
    refs: Dict[str, ElementId] = {"root": root.eid}

    def resolve(endpoint: Union[str, int]) -> ElementId:
        if isinstance(endpoint, str):
            if endpoint not in refs:
                raise UpdateError(f"unknown element ref {endpoint!r}")
            return refs[endpoint]
        return int(endpoint)

    for child in op.get("children", ()):
        parent = resolve(child.get("parent", "root"))
        if (
            parent not in shadow.collection.elements
            or shadow.collection.elements[parent].doc != doc_id
        ):
            # a child attached to another document would be added to
            # the collection but never integrated into the cover by
            # insert_document below — reject instead of corrupting
            raise UpdateError(
                f"child parent {parent!r} is not an element of the new "
                f"document {doc_id!r}; connect to other documents via "
                "'links'"
            )
        e = shadow.collection.add_child(parent, str(child["tag"]))
        if "ref" in child:
            refs[str(child["ref"])] = e.eid
    # the new document's elements exist only in the collection so
    # far; insert_document builds its local cover and unions it in
    for source, target in op.get("links", ()):
        shadow.collection.add_link(resolve(source), resolve(target))
    report = shadow.insert_document(doc_id)
    return {"op": "insert_document", "elements": refs, **asdict(report)}
