"""RPC build workers — the paper's "different machines" scenario.

Section 4 observes that partition covers "can even be [built] on
different machines". The process pool of :mod:`repro.core.pipeline`
realises that on one host; this module realises it across hosts with
the smallest possible moving parts:

* a **worker daemon** (``repro build-worker --listen HOST:PORT``) — a
  ``socketserver.ThreadingTCPServer`` that executes the same two task
  functions the in-process executors run
  (:func:`~repro.core.pipeline._partition_cover_worker` for phase-2
  partition covers, :func:`~repro.core.join._join_shard_worker` for
  parallel-join shards) and streams results back;
* an **executor client** (:class:`RpcExecutor`) — plugged into the
  pipeline's executor seam (``repro build --executor rpc --workers
  host:port,...``), it deals tasks to the configured workers from a
  shared queue so fast workers take more work, and fails over: a
  worker that drops its connection is retired and its in-flight task
  is re-dealt to the survivors (only when *no* worker remains does the
  build fail).

Wire protocol (all little-endian), one frame per message::

    frame  := opcode(1 byte) + length(uint64) + payload
    opcode := C (cover task) | J (join-shard task) | P (ping)
              S (shard serving op) | R (result) | E (error)

``S`` frames carry the serving tier's scattered requests (install a
shard view / query / count / connected / distance / stats / healthz —
see :class:`repro.service.shard.ShardRegistry`), so the same worker
daemon that builds partition covers offline also hosts query shards
online. Malformed input (truncated or oversized frames, junk opcodes,
unpicklable payloads) is answered with a structured ``E`` frame — the
connection may close, but the worker keeps serving.

Task and result payloads are pickled plain-data objects whose bulk is
CSR snapshot blobs (:func:`repro.storage.snapshot.snapshot_to_bytes`)
— the same length-prefixed wire format the process executor ships over
its pipe, so a worker on another machine is indistinguishable from a
local fork. An ``E`` payload carries ``(exception type name, message)``
and is re-raised in the parent as :class:`RpcWorkerError`.

Pickle implies the usual trust boundary: workers execute tasks from
whoever connects, so bind listeners to loopback or a private build
network only — exactly like the paper's build cluster.
"""

from __future__ import annotations

import pickle
import queue
import socket
import socketserver
import struct
import threading
import time
from typing import Any, BinaryIO, List, Optional, Sequence, Tuple

_HEADER = struct.Struct("<cQ")

OP_COVER = b"C"
OP_JOIN = b"J"
OP_PING = b"P"
OP_SHARD = b"S"
OP_RESULT = b"R"
OP_ERROR = b"E"

#: sanity bound on one frame (1 GiB) — a corrupt length prefix should
#: fail loudly instead of attempting a huge allocation
MAX_FRAME = 1 << 30


class RpcWorkerError(RuntimeError):
    """A task failed *inside* a worker (its exception, re-raised here)."""


def send_frame(wfile: BinaryIO, opcode: bytes, payload: bytes) -> None:
    """Write one length-prefixed frame and flush it."""
    wfile.write(_HEADER.pack(opcode, len(payload)))
    wfile.write(payload)
    wfile.flush()


def recv_frame(rfile: BinaryIO) -> Tuple[bytes, bytes]:
    """Read one frame; raises ``EOFError`` on a cleanly closed peer."""
    header = rfile.read(_HEADER.size)
    if not header:
        raise EOFError("connection closed")
    if len(header) != _HEADER.size:
        raise ConnectionError("truncated frame header")
    opcode, length = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ConnectionError(f"oversized frame ({length} bytes)")
    payload = rfile.read(length) if length else b""
    if len(payload) != length:
        raise ConnectionError("truncated frame payload")
    return opcode, payload


def parse_address(spec: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (IPv4/hostname spellings)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"worker address must be host:port, got {spec!r}")
    return host, int(port)


# ---------------------------------------------------------------------------
# worker daemon
# ---------------------------------------------------------------------------


class _WorkerHandler(socketserver.StreamRequestHandler):
    """One client connection: execute task frames until the peer hangs up."""

    def handle(self) -> None:  # noqa: D102 (socketserver contract)
        while True:
            try:
                opcode, payload = recv_frame(self.rfile)
            except EOFError:  # clean peer hang-up
                return
            except ConnectionError as exc:
                # a malformed frame (truncated header/payload, oversized
                # length prefix): answer with a structured error so the
                # peer learns *why*, then drop the now-unsynchronisable
                # connection — the worker itself keeps serving
                self._send_error("ProtocolError", str(exc))
                return
            try:
                result = self._execute(opcode, payload)
            except Exception as exc:  # ship the failure, keep serving
                self._send_error(type(exc).__name__, str(exc))
            else:
                send_frame(self.wfile, OP_RESULT, pickle.dumps(result))

    def _send_error(self, kind: str, message: str) -> None:
        try:
            send_frame(self.wfile, OP_ERROR, pickle.dumps((kind, message)))
        except (OSError, ValueError):  # peer already gone / file closed
            pass

    def _execute(self, opcode: bytes, payload: bytes) -> Any:
        from repro.core.join import _join_shard_worker
        from repro.core.pipeline import _partition_cover_worker

        if opcode == OP_PING:
            return "pong"
        if opcode == OP_COVER:
            return _partition_cover_worker(pickle.loads(payload))
        if opcode == OP_JOIN:
            return _join_shard_worker(pickle.loads(payload))
        if opcode == OP_SHARD:
            return self.server.shard_registry().execute(pickle.loads(payload))
        raise ValueError(f"unknown opcode {opcode!r}")


class BuildWorkerServer(socketserver.ThreadingTCPServer):
    """The ``repro build-worker`` daemon (one thread per connection)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int]) -> None:
        super().__init__(address, _WorkerHandler)
        self._shard_registry: Optional[Any] = None
        self._registry_lock = threading.Lock()

    def shard_registry(self):
        """The worker's shard registry, created on first ``S`` frame
        (lazy so the build-only path never imports the serving tier)."""
        with self._registry_lock:
            if self._shard_registry is None:
                from repro.service.shard import ShardRegistry

                self._shard_registry = ShardRegistry()
            return self._shard_registry


def serve_worker(host: str, port: int) -> BuildWorkerServer:
    """Bind a build worker (port 0 → ephemeral; see ``server_address``)."""
    return BuildWorkerServer((host, port))


def start_worker_thread(host: str = "127.0.0.1", port: int = 0):
    """Start a loopback worker in a daemon thread.

    Returns ``(server, "host:port")`` — the in-process flavour used by
    tests, the rpc-loopback benchmark leg and the CI smoke job.
    Shut it down with ``server.shutdown(); server.server_close()``.
    """
    server = serve_worker(host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    bound_host, bound_port = server.server_address[:2]
    return server, f"{bound_host}:{bound_port}"


# ---------------------------------------------------------------------------
# executor client
# ---------------------------------------------------------------------------


class _WorkerConnection:
    """One persistent connection to a build worker.

    Connecting retries with bounded exponential backoff: a refused
    connection is the normal signature of a worker that is *still
    binding its listener* (rolling restarts, CI jobs that launch the
    daemon and the client together), so failing the first refusal
    retired perfectly healthy workers before failover even mattered.
    ``attempts`` caps the retries; a worker that stays unreachable
    through the whole backoff schedule raises the last ``OSError``.
    """

    #: seconds to wait for one TCP connect attempt before giving up on
    #: it — bounded so a black-holed address cannot stall the build for
    #: the kernel's full TCP retry window
    CONNECT_TIMEOUT = 10.0
    #: default connect attempts (with exponential backoff in between)
    CONNECT_ATTEMPTS = 3
    #: first backoff sleep in seconds (doubles per retry)
    CONNECT_BACKOFF = 0.1

    def __init__(
        self,
        address: str,
        *,
        attempts: Optional[int] = None,
        backoff: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.address = address
        host, port = parse_address(address)
        attempts = self.CONNECT_ATTEMPTS if attempts is None else max(1, attempts)
        delay = self.CONNECT_BACKOFF if backoff is None else backoff
        for attempt in range(attempts):
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=self.CONNECT_TIMEOUT
                )
                break
            except OSError:
                if attempt + 1 == attempts:
                    raise
                time.sleep(delay)
                delay *= 2
        # ``timeout`` bounds every subsequent send/recv (the serving
        # tier's fan-out deadline); ``None`` keeps the build behaviour —
        # tasks may legitimately run long
        self._sock.settimeout(timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def call(self, opcode: bytes, task: Any) -> Any:
        """Ship one task, block for its result; raises
        :class:`RpcWorkerError` for in-worker failures and
        ``ConnectionError``/``OSError`` for transport failures."""
        send_frame(self._wfile, opcode, pickle.dumps(task))
        reply, payload = recv_frame(self._rfile)
        if reply == OP_ERROR:
            kind, message = pickle.loads(payload)
            raise RpcWorkerError(
                f"worker {self.address} failed: {kind}: {message}"
            )
        if reply != OP_RESULT:
            raise ConnectionError(f"unexpected reply opcode {reply!r}")
        return pickle.loads(payload)

    def close(self) -> None:
        for closer in (self._rfile.close, self._wfile.close, self._sock.close):
            try:
                closer()
            except OSError:  # pragma: no cover - best-effort teardown
                pass


class RpcExecutor:
    """Fan build tasks out over remote worker daemons.

    Tasks are dealt from a shared queue — one puller thread per worker,
    so a fast worker simply takes the next task sooner (the natural
    LPT-ish schedule). Transport failures (refused/bounded-timeout
    connects, mid-task disconnects, corrupt replies) retire the worker
    and requeue the task for the survivors; the build only fails when
    every worker is gone (or the task itself raised, which is reported
    verbatim). A worker that *accepts* a task and then neither answers
    nor hangs up is indistinguishable from one running a long task and
    is waited on — per-task deadlines are a future lever.
    """

    name = "rpc"

    def __init__(self, addresses: Sequence[str]) -> None:
        addresses = [a.strip() for a in addresses if a.strip()]
        if not addresses:
            raise ValueError("rpc executor needs at least one host:port worker")
        for a in addresses:
            parse_address(a)  # validate early, fail before building
        self.addresses = list(addresses)

    @property
    def workers(self) -> int:
        """Worker count (mirrors the process executor's attribute)."""
        return len(self.addresses)

    # -- task distribution ----------------------------------------------
    def _map(self, opcode: bytes, tasks: Sequence[Any]) -> List[Any]:
        """Run ``tasks`` across the workers; results in task order."""
        if not tasks:
            return []
        todo: "queue.Queue[Tuple[int, Any]]" = queue.Queue()
        for item in enumerate(tasks):
            todo.put(item)
        results: List[Any] = [None] * len(tasks)
        done = 0
        lock = threading.Lock()
        finished = threading.Event()
        failure: List[BaseException] = []
        alive = len(self.addresses)

        def pull(address: str) -> None:
            nonlocal done, alive
            try:
                conn = _WorkerConnection(address)
            except OSError as exc:
                with lock:
                    alive -= 1
                    if alive == 0 and not failure:
                        failure.append(
                            ConnectionError(
                                f"no rpc workers reachable (last: "
                                f"{address}: {exc})"
                            )
                        )
                        finished.set()
                return
            try:
                while not finished.is_set():
                    try:
                        # block briefly instead of exiting on an empty
                        # queue: a dying peer may yet re-deal its task
                        index, task = todo.get(timeout=0.05)
                    except queue.Empty:
                        continue
                    try:
                        result = conn.call(opcode, task)
                    except RpcWorkerError as exc:
                        with lock:
                            if not failure:
                                failure.append(exc)
                            finished.set()
                        return
                    except (
                        ConnectionError,
                        OSError,
                        EOFError,  # peer closed cleanly mid-task
                        pickle.PickleError,  # corrupt reply payload
                    ) as exc:
                        todo.put((index, task))  # re-deal to survivors
                        with lock:
                            alive -= 1
                            if alive == 0 and not failure:
                                failure.append(
                                    ConnectionError(
                                        f"all rpc workers lost (last: "
                                        f"{address}: {exc})"
                                    )
                                )
                                finished.set()
                        return
                    with lock:
                        results[index] = result
                        done += 1
                        if done == len(tasks):
                            finished.set()
            finally:
                conn.close()

        threads = [
            threading.Thread(target=pull, args=(a,), daemon=True)
            for a in self.addresses
        ]
        for t in threads:
            t.start()
        finished.wait()
        for t in threads:
            # a puller still blocked connecting to a black-holed address
            # is abandoned (daemon; connect is bounded anyway) — results
            # are complete once `finished` is set
            t.join(
                timeout=_WorkerConnection.CONNECT_ATTEMPTS
                * (_WorkerConnection.CONNECT_TIMEOUT + 1.0)
                + 5.0
            )
        if failure:
            raise failure[0]
        return results

    # -- the executor seam (see repro.core.pipeline) ---------------------
    def run(self, tasks, *, cover_factory, to_backend) -> List[Any]:
        """Phase 2: build partition covers on the workers (ordered)."""
        from repro.core.pipeline import decode_partition_results

        return decode_partition_results(
            self._map(OP_COVER, list(tasks)), to_backend
        )

    def map_join(self, tasks) -> List[Tuple[int, Tuple, float]]:
        """Phase 3: run join-shard tasks on the workers."""
        return self._map(OP_JOIN, list(tasks))

    def ping(self) -> List[str]:
        """Round-trip every worker once; returns the reachable addresses."""
        reachable = []
        for address in self.addresses:
            try:
                conn = _WorkerConnection(address)
            except OSError:
                continue
            try:
                if conn.call(OP_PING, None) == "pong":
                    reachable.append(address)
            finally:
                conn.close()
        return reachable
