"""Skeleton graphs (Definitions 1 and 2 of the paper).

Two closely related "small" graphs summarise how connectivity crosses
document / partition borders:

* the **skeleton graph** ``S(X)`` (Definition 2, Figure 5): nodes are
  sources and targets of inter-document links; edges are the links plus,
  for every link target ``t``, an edge to every link source ``s`` of the
  same document that ``t`` reaches *within* that document. Annotated
  with per-document tree ancestor/descendant counts, a bounded
  breadth-first traversal estimates each link's global number of
  ancestors ``A`` and descendants ``D``, giving the Section 4.3
  connection-aware edge weights ``A*D`` and ``A+D`` for the partitioner.

* the **partition-level skeleton graph** (PSG) ``S(P)`` (Definition 1,
  Figure 3): same construction one level up — nodes are endpoints of
  *cross-partition* links ``LP``; edges are ``LP`` plus edges between
  link targets and link sources connected within the same partition.
  The PSG is the input of the structurally recursive cover join
  (Section 4.1, :mod:`repro.core.join`).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.partitioning import Partitioning
from repro.graph.digraph import DiGraph
from repro.graph.traversal import ancestors, bfs_distances, descendants
from repro.xmlmodel.model import Collection, DocId, ElementId


def build_skeleton_graph(collection: Collection) -> DiGraph:
    """The skeleton graph ``S(X)`` of a collection (Definition 2).

    Within-document reachability ``t ->* s`` is evaluated on the
    document's element-level graph ``G_E(d)`` (tree plus intra-document
    links); the Definition's ``T_E(doc(v))`` wording covers the common
    case of link-free trees, but following intra-links is what actually
    preserves connectivity, and coincides with it on tree documents.
    """
    sources: Set[ElementId] = {u for (u, _) in collection.inter_links}
    targets: Set[ElementId] = {v for (_, v) in collection.inter_links}
    graph = DiGraph()
    for v in sources | targets:
        graph.add_node(v)
    for u, v in collection.inter_links:
        graph.add_edge(u, v)
    # per-document: connect each link target to the link sources it reaches
    by_doc_sources: Dict[DocId, List[ElementId]] = {}
    for s in sources:
        by_doc_sources.setdefault(collection.doc(s), []).append(s)
    for t in targets:
        doc_id = collection.doc(t)
        doc_sources = by_doc_sources.get(doc_id)
        if not doc_sources:
            continue
        reachable = descendants(
            collection.documents[doc_id].element_graph(), t
        )
        for s in doc_sources:
            if s in reachable and s != t:
                graph.add_edge(t, s)
    return graph


def annotate_tree_counts(
    collection: Collection, nodes: Iterable[ElementId]
) -> Dict[ElementId, Tuple[int, int]]:
    """``(anc, desc)`` tree counts (both including self) for skeleton
    nodes, as in Figure 5's node annotations."""
    needed_by_doc: Dict[DocId, List[ElementId]] = {}
    for v in nodes:
        needed_by_doc.setdefault(collection.doc(v), []).append(v)
    result: Dict[ElementId, Tuple[int, int]] = {}
    for doc_id, members in needed_by_doc.items():
        counts = collection.documents[doc_id].tree_counts()
        for v in members:
            result[v] = counts[v]
    return result


def estimate_global_counts(
    skeleton: DiGraph,
    tree_counts: Dict[ElementId, Tuple[int, int]],
    link_sources: Set[ElementId],
    *,
    max_depth: int = 6,
) -> Tuple[Dict[ElementId, int], Dict[ElementId, int]]:
    """Approximate global ancestor/descendant counts ``A(x)`` / ``D(x)``.

    Implements Section 4.3's bounded breadth-first estimation: starting
    from every skeleton node ``x``, traverse up to ``max_depth`` edges;
    whenever a cross-document link ``(u, v)`` is traversed, ``D(x)`` is
    increased by ``desc(v)``; whenever an edge into a link source ``s``
    (a within-document target-to-source edge) is traversed, ``A(s)`` is
    increased by ``anc(x)``. "As S(X) may contain long paths, the
    computation is limited to paths of a certain length, hence the
    resulting numbers are only approximates."

    Returns:
        ``(A, D)`` dictionaries over the skeleton nodes.
    """
    a_count: Dict[ElementId, int] = {}
    d_count: Dict[ElementId, int] = {}
    for x in skeleton:
        anc_x, desc_x = tree_counts[x]
        a_count.setdefault(x, 0)
        d_count.setdefault(x, 0)
        a_count[x] += anc_x
        d_count[x] += desc_x
    for x in skeleton:
        anc_x, _ = tree_counts[x]
        level = bfs_distances(skeleton, x, max_depth=max_depth)
        for node, dist in level.items():
            if dist == 0:
                continue
            # classify the edge by its head: heads that are link sources
            # were reached over within-document (target -> source) edges;
            # all other heads were reached over cross-document links.
            if node in link_sources:
                a_count[node] += anc_x
            else:
                d_count[x] += tree_counts[node][1]
    return a_count, d_count


def connection_edge_weight(
    collection: Collection,
    *,
    mode: str = "AxD",
    max_depth: int = 6,
) -> Callable[[DocId, DocId], float]:
    """Section 4.3's connection-aware document edge weights.

    For every inter-document link ``(u, v)``, the number of ancestors
    ``A(u)`` of the source and descendants ``D(v)`` of the target are
    estimated on the skeleton graph; the weight of a document-graph edge
    is the sum over its links of ``A*D`` (number of connections over the
    link) or ``A+D`` (number of nodes connected over the link).

    Args:
        collection: the collection.
        mode: ``"AxD"`` or ``"A+D"``.
        max_depth: bounded-BFS depth for the estimation.

    Returns:
        An edge-weight function ``(doc_a, doc_b) -> float`` suitable for
        the partitioners.
    """
    if mode not in ("AxD", "A+D"):
        raise ValueError(f"unknown edge weight mode {mode!r}")
    skeleton = build_skeleton_graph(collection)
    tree_counts = annotate_tree_counts(collection, skeleton.nodes())
    link_sources = {u for (u, _) in collection.inter_links}
    a_count, d_count = estimate_global_counts(
        skeleton, tree_counts, link_sources, max_depth=max_depth
    )
    weights: Dict[Tuple[DocId, DocId], float] = {}
    for u, v in collection.inter_links:
        a, d = a_count[u], d_count[v]
        w = float(a * d) if mode == "AxD" else float(a + d)
        key = (collection.doc(u), collection.doc(v))
        weights[key] = weights.get(key, 0.0) + w

    def weight(x: DocId, y: DocId) -> float:
        return weights.get((x, y), 0.0) + weights.get((y, x), 0.0)

    return weight


# ---------------------------------------------------------------------------
# partition-level skeleton graph (Definition 1)
# ---------------------------------------------------------------------------

ReachabilityFn = Callable[[int, ElementId, ElementId], bool]


def build_psg(
    collection: Collection,
    partitioning: Partitioning,
    partition_descendants: Callable[[int, ElementId], Set[ElementId]],
) -> DiGraph:
    """The partition-level skeleton graph ``S(P)`` (Definition 1).

    Args:
        collection: the collection.
        partitioning: a partitioning with cross-links ``LP``.
        partition_descendants: callable giving, for ``(partition index,
            element)``, the set of elements reachable from the element
            *within* that partition — the joiners pass the partition
            covers' ``descendants`` here, so the PSG construction needs
            no extra traversals.

    Returns:
        A digraph whose nodes are the endpoints of cross-partition links
        and whose edges are those links plus within-partition
        target-to-source connections.
    """
    cross = partitioning.cross_links
    sources: Set[ElementId] = {u for (u, _) in cross}
    targets: Set[ElementId] = {v for (_, v) in cross}
    psg = DiGraph()
    for v in sources | targets:
        psg.add_node(v)
    for u, v in cross:
        psg.add_edge(u, v)
    by_part_sources: Dict[int, List[ElementId]] = {}
    for s in sources:
        pid = partitioning.part_of[collection.doc(s)]
        by_part_sources.setdefault(pid, []).append(s)
    for t in targets:
        pid = partitioning.part_of[collection.doc(t)]
        part_sources = by_part_sources.get(pid)
        if not part_sources:
            continue
        reachable = partition_descendants(pid, t)
        for s in part_sources:
            if s != t and s in reachable:
                psg.add_edge(t, s)
    return psg


def psg_source_target_closure(
    psg: DiGraph,
    targets: Set[ElementId],
    *,
    sources: Optional[Iterable[ElementId]] = None,
) -> Dict[ElementId, Set[ElementId]]:
    """``H̄`` of Section 4.1: for every node, the link *targets* it
    reaches in the PSG.

    This is the paper's "adapted transitive closure algorithm" — only
    source-to-target reachability is needed, so plain per-node BFS
    collecting target hits suffices. ``H̄in(t) = {t}`` is implicit under
    the never-store-self convention and needs no representation.

    Args:
        psg: the partition-level skeleton graph.
        targets: the cross-partition link targets.
        sources: when given, compute ``H̄out`` only for these nodes —
            the joins distribute ``H̄out(s)`` for link *sources* only,
            so restricting the per-node BFS sweep to them skips every
            pure-target node.

    Returns:
        Mapping node -> set of reachable link targets (excluding the
        node itself; a target that is also a source still lists *other*
        targets it reaches).
    """
    wanted = list(psg if sources is None else sources)
    result: Dict[ElementId, Set[ElementId]] = {s: set() for s in wanted}
    if len(targets) < len(wanted):
        # sweep from the (fewer) targets over the reversed PSG instead
        # of one BFS per source — identical result, |targets| sweeps
        for t in targets:
            if t not in psg:
                continue
            for a in ancestors(psg, t, strict=True):
                reach = result.get(a)
                if reach is not None:
                    reach.add(t)
        return result
    for s in wanted:
        reached = descendants(psg, s, strict=True)
        result[s] = {t for t in reached if t in targets}
    return result


def psg_source_target_closure_partitioned(
    psg: DiGraph,
    targets: Set[ElementId],
    *,
    node_limit: int,
) -> Dict[ElementId, Set[ElementId]]:
    """Recursive variant of :func:`psg_source_target_closure` for PSGs
    that are "too large" (Section 4.1).

    The PSG is clustered into chunks of at most ``node_limit`` nodes by
    undirected growth that prefers to keep cross-links (source -> target
    edges) inside a cluster, so cluster boundaries fall on
    target -> source edges as the paper requires. Per cluster, local
    source-to-target reachability is computed in isolation; the cluster
    covers are then connected by propagating, for every cross-cluster
    edge ``(t, s)``, ``H̄out(s)`` into ``H̄out(a)`` for each ancestor
    ``a`` of ``t`` — iterated to a fixpoint because the cluster graph
    may be cyclic. Boundary edges that are *not* target -> source
    (possible when a source links into several clusters; the paper
    resolves this by "moving nodes between partitions") are handled by
    the same propagation rule with the target itself added.

    The result is exact; it equals :func:`psg_source_target_closure`.
    """
    if len(psg) <= node_limit:
        return psg_source_target_closure(psg, targets)

    # --- cluster the PSG -------------------------------------------------
    cluster_of: Dict[ElementId, int] = {}
    clusters: List[Set[ElementId]] = []
    for start in sorted(psg.nodes(), key=repr):
        if start in cluster_of:
            continue
        cid = len(clusters)
        members: Set[ElementId] = set()
        # grow preferring forward cross-link edges (keep s with its t)
        frontier = [start]
        while frontier and len(members) < node_limit:
            v = frontier.pop()
            if v in cluster_of or v in members:
                continue
            members.add(v)
            # successors first (s -> t edges), then predecessors
            for w in sorted(psg.successors(v), key=repr):
                if w not in cluster_of and w not in members:
                    frontier.append(w)
            for w in sorted(psg.predecessors(v), key=repr):
                if w not in cluster_of and w not in members:
                    frontier.append(w)
        for v in members:
            cluster_of[v] = cid
        clusters.append(members)

    # --- local covers ----------------------------------------------------
    result: Dict[ElementId, Set[ElementId]] = {}
    for members in clusters:
        local = psg.subgraph(members)
        for s in members:
            reached = descendants(local, s, strict=True)
            result[s] = {t for t in reached if t in targets}

    # --- connect cluster covers to a fixpoint ------------------------------
    from repro.graph.traversal import ancestors as _ancestors

    boundary: List[Tuple[ElementId, ElementId]] = [
        (u, v) for (u, v) in psg.edges() if cluster_of[u] != cluster_of[v]
    ]
    # in-cluster ancestor sets, computed once per boundary-edge tail
    local_graphs = [psg.subgraph(members) for members in clusters]
    local_ancestors: Dict[ElementId, Set[ElementId]] = {}
    for u, _ in boundary:
        if u not in local_ancestors:
            local_ancestors[u] = _ancestors(
                local_graphs[cluster_of[u]], u, strict=False
            )
    changed = True
    while changed:
        changed = False
        for u, v in boundary:
            # everything v reaches (plus v if it is a target) flows to u
            # and to u's in-cluster ancestors.
            gained = set(result[v])
            if v in targets:
                gained.add(v)
            for a in local_ancestors[u]:
                extra = gained - {a}
                if not extra <= result[a]:
                    result[a] |= extra
                    changed = True
    return result
