"""Building a 2-hop cover (Sections 3.2 and 4.2 of the paper).

The exact minimum 2-hop cover is NP-hard; Cohen et al.'s greedy
approximation repeatedly picks the center node whose center graph has the
densest subgraph, labels the subgraph's node sets with that center, and
removes the covered connections. The paper's two accelerations are
implemented:

* a **lazy priority queue** over densest-subgraph densities — densities
  only decrease as connections get covered, so a node is popped, its
  density recomputed, and it is pushed back if stale ("we have to
  recompute the densest subgraphs for only few instead of all nodes");
* initial priorities come from the closed form for complete bipartite
  center graphs instead of an explicit densest-subgraph run ("initial
  center graphs are always their own densest subgraph").

Section 4.2's **center-node preselection** is also here: link targets
(of cross-partition links) can be forced as center nodes before the
greedy loop starts, which reduces redundant entries once partition
covers are joined.

:func:`build_cover` is the public entry point for arbitrary digraphs: it
condenses strongly connected components, covers the condensation DAG,
and expands the component labels back to the original nodes.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.center_graph import densest_subgraph, initial_density_upper_bound
from repro.core.cover import TwoHopCover
from repro.graph.closure import TransitiveClosure, transitive_closure
from repro.graph.condensation import Condensation
from repro.graph.digraph import DiGraph

Node = Hashable

#: A cover backend constructor: ``factory(nodes) -> CoverProtocol``.
#: ``TwoHopCover`` (sets) and ``ArrayTwoHopCover`` (dense arrays) both
#: qualify; the builders never touch anything beyond the protocol.
CoverFactory = Callable[[Iterable[Node]], "TwoHopCover"]


class _UncoveredSet:
    """The mutable set ``T'`` of not-yet-covered connections.

    Kept as forward and reverse adjacency so center graphs can be built
    by intersecting ancestor rows with descendant columns.
    """

    def __init__(self, closure: TransitiveClosure) -> None:
        self.fwd: Dict[Node, Set[Node]] = {
            u: set(vs) for u, vs in closure.reach.items() if vs
        }
        self.rev: Dict[Node, Set[Node]] = {}
        for u, vs in self.fwd.items():
            for v in vs:
                self.rev.setdefault(v, set()).add(u)
        self.count = sum(len(vs) for vs in self.fwd.values())

    def remove(self, u: Node, v: Node) -> None:
        targets = self.fwd.get(u)
        if targets and v in targets:
            targets.discard(v)
            self.rev[v].discard(u)
            self.count -= 1

    def __bool__(self) -> bool:
        return self.count > 0


def _center_graph_adj(
    uncovered: _UncoveredSet,
    cin: Set[Node],
    cout: Set[Node],
) -> Dict[Node, Set[Node]]:
    """Edges of the center graph: uncovered connections within Cin x Cout."""
    adj: Dict[Node, Set[Node]] = {}
    for u in cin:
        row = uncovered.fwd.get(u)
        if not row:
            continue
        hits = row & cout if len(row) >= len(cout) else {v for v in row if v in cout}
        if hits:
            adj[u] = hits
    return adj


def build_cover_for_closure(
    closure: TransitiveClosure,
    *,
    preselected_centers: Iterable[Node] = (),
    cover_factory: CoverFactory = TwoHopCover,
) -> TwoHopCover:
    """Compute a 2-hop cover for a materialised DAG closure.

    Args:
        closure: the (strict) transitive closure of a DAG. Passing a
            closure with intra-component (cyclic) connections is invalid
            — use :func:`build_cover` for general graphs.
        preselected_centers: nodes to use as center nodes *first*
            (Section 4.2; HOPI passes cross-partition link targets).
            Each covers every uncovered connection running through it.
        cover_factory: backend constructor for the result cover.

    Returns:
        A reachability cover over the closure's nodes.
    """
    cover = cover_factory(closure.reach.keys())
    uncovered = _UncoveredSet(closure)

    # ---- Section 4.2: preselected centers (link targets) first --------
    for w in preselected_centers:
        if w not in closure.reach or not uncovered:
            continue
        cin = closure.ancestors_of(w) | {w}
        cout = closure.descendants_of(w) | {w}
        adj = _center_graph_adj(uncovered, cin, cout)
        if not adj:
            continue
        in_side: Set[Node] = set(adj)
        out_side: Set[Node] = set()
        for u, vs in adj.items():
            out_side.update(vs)
            for v in vs:
                uncovered.remove(u, v)
        for u in in_side:
            cover.add_lout(u, w)
        for v in out_side:
            cover.add_lin(v, w)

    # ---- main greedy loop with the lazy priority queue -----------------
    # heap of (-density, tiebreak, node); stale entries are re-validated
    # on pop because densities only ever decrease.
    heap: List[Tuple[float, int, Node]] = []
    for i, w in enumerate(closure.reach):
        a = len(closure.ancestors_of(w)) + 1
        d = len(closure.descendants_of(w)) + 1
        priority = initial_density_upper_bound(a, d)
        if priority > 0:
            heap.append((-priority, i, w))
    heapq.heapify(heap)
    tiebreak = len(heap)

    while uncovered:
        if not heap:  # pragma: no cover - guaranteed non-empty (see below)
            raise RuntimeError("priority queue exhausted with uncovered connections")
        neg_priority, _, w = heapq.heappop(heap)
        cached = -neg_priority
        cin = closure.ancestors_of(w) | {w}
        cout = closure.descendants_of(w) | {w}
        adj = _center_graph_adj(uncovered, cin, cout)
        density, in_side, out_side = densest_subgraph(adj)
        if density <= 0.0:
            continue  # nothing through w is uncovered any more
        # Lazy re-validation: if stale and a better candidate may exist,
        # push back with the fresh density. (Every connection (u, v) in
        # T' keeps density(u) > 0, so the queue cannot run dry.)
        if heap and density < cached and -heap[0][0] > density:
            tiebreak += 1
            heapq.heappush(heap, (-density, tiebreak, w))
            continue
        for u in in_side:
            cover.add_lout(u, w)
        for v in out_side:
            cover.add_lin(v, w)
        for u in in_side:
            row = uncovered.fwd.get(u)
            if not row:
                continue
            for v in out_side & row if len(out_side) < len(row) else row & out_side:
                uncovered.remove(u, v)
        tiebreak += 1
        heapq.heappush(heap, (-density, tiebreak, w))
    return cover


def expand_component_cover(
    comp_cover: TwoHopCover,
    condensation: Condensation,
    *,
    cover_factory: CoverFactory = TwoHopCover,
) -> TwoHopCover:
    """Translate a cover over SCC ids into a cover over original nodes.

    Every member of a component inherits the component's labels with
    centers mapped to the component representatives; members of
    non-trivial components additionally get their own representative as
    a center in both labels, which encodes the intra-component
    connections (all members of an SCC reach each other).
    """
    cover = cover_factory(condensation.component_of.keys())
    rep = [members[0] for members in condensation.members]
    for cid, members in enumerate(condensation.members):
        lin = {rep[c] for c in comp_cover.lin_of(cid)}
        lout = {rep[c] for c in comp_cover.lout_of(cid)}
        nontrivial = len(members) > 1
        for v in members:
            for c in lin:
                cover.add_lin(v, c)
            for c in lout:
                cover.add_lout(v, c)
            if nontrivial:
                cover.add_lin(v, rep[cid])
                cover.add_lout(v, rep[cid])
    return cover


def build_cover(
    graph: DiGraph,
    *,
    closure: Optional[TransitiveClosure] = None,
    preselected_centers: Iterable[Node] = (),
    cover_factory: CoverFactory = TwoHopCover,
) -> TwoHopCover:
    """Compute a 2-hop cover of an arbitrary directed graph.

    The graph is SCC-condensed, the condensation DAG's closure is
    covered with :func:`build_cover_for_closure`, and component labels
    are expanded back to the original nodes. For graphs that are already
    DAGs this adds only the id translation.

    Args:
        graph: any digraph (cycles allowed).
        closure: optional precomputed closure *of the original graph*
            (used to skip recomputation when the caller already has it —
            only its node-level reach sets are consulted for DAG inputs).
        preselected_centers: original-graph nodes to force as centers
            first (Section 4.2); mapped onto components internally.
        cover_factory: backend constructor for the result cover (the
            intermediate component-level cover always uses sets — it
            lives only for the duration of the build).
    """
    cond = Condensation(graph)
    if cond.is_dag_input and closure is not None:
        # Fast path: ids coincide with components 1:1.
        comp_closure = closure
        cover = build_cover_for_closure(
            comp_closure,
            preselected_centers=preselected_centers,
            cover_factory=cover_factory,
        )
        return cover
    dag_closure = transitive_closure(cond.dag)
    comp_centers = []
    seen: Set[int] = set()
    for w in preselected_centers:
        cid = cond.component_of.get(w)
        if cid is not None and cid not in seen:
            seen.add(cid)
            comp_centers.append(cid)
    comp_cover = build_cover_for_closure(
        dag_closure, preselected_centers=comp_centers
    )
    if cond.is_dag_input:
        # translate component ids straight back to the original nodes
        cover = cover_factory(cond.component_of.keys())
        rep = [members[0] for members in cond.members]
        for cid, members in enumerate(cond.members):
            v = members[0]
            for c in comp_cover.lin_of(cid):
                cover.add_lin(v, rep[c])
            for c in comp_cover.lout_of(cid):
                cover.add_lout(v, rep[c])
        return cover
    return expand_component_cover(comp_cover, cond, cover_factory=cover_factory)


def build_partition_cover(
    nodes: Sequence[Node],
    edges: Sequence[Tuple[Node, Node]],
    *,
    preselected_centers: Iterable[Node] = (),
    distance: bool = False,
    cover_factory: Optional[CoverFactory] = None,
) -> TwoHopCover:
    """Build the 2-hop cover of one partition from its raw graph data.

    The unit of work of the divide-and-conquer build: the partition's
    element graph arrives as plain node and edge lists (compact and
    picklable, so :mod:`repro.core.pipeline` can ship the same task to
    a ``multiprocessing`` worker or run it inline), the graph is
    reassembled, and the usual builder runs on it.

    Args:
        nodes: every element of the partition (isolated ones included).
        edges: the element-level edges with both endpoints inside.
        preselected_centers: cross-partition link targets to force as
            centers first (Section 4.2).
        distance: build a distance-aware cover (Section 5).
        cover_factory: backend constructor; defaults to the set backend
            of the requested flavour. The greedy construction consults
            only the closure, so the resulting *entries* are identical
            for every factory.

    Returns:
        The partition's cover in the requested representation.
    """
    graph = DiGraph()
    for v in nodes:
        graph.add_node(v)
    graph.add_edges(edges)
    preselected = sorted(preselected_centers)
    if distance:
        from repro.core.distance import build_distance_cover
        from repro.core.cover import DistanceTwoHopCover

        return build_distance_cover(
            graph,
            preselected_centers=preselected,
            cover_factory=cover_factory or DistanceTwoHopCover,
        )
    return build_cover(
        graph,
        preselected_centers=preselected,
        cover_factory=cover_factory or TwoHopCover,
    )
