"""The ``vector`` label backend: sealed CSR slabs + batch kernels.

:class:`VectorTwoHopCover` / :class:`VectorDistanceCover` subclass the
array backend, so construction, Section-6 maintenance, snapshots and
the parallel join all work unchanged — what changes is the probe hot
path. On the first probe after any mutation the cover **seals**: the
four label tables are packed into contiguous CSR slabs (one flat
``array('i')`` data blob plus an ``array('q')`` indptr per table) and
probes are answered through :mod:`repro.core.kernels`:

* ``connected_many`` materialises the descendant id set once and tests
  the whole candidate batch via sorted-array membership (numpy
  ``searchsorted`` when available, C-level set membership otherwise) —
  no per-candidate interner lookup;
* ``intersect_many`` amortises further: the candidate list is
  translated to internal ids **once per batch** and reused across every
  source in the block (the query executor's block-probe shape);
* ``connected`` intersects the sealed ``Lout(u)`` / ``Lin(v)`` row
  slices with a density-chosen kernel.

Mutations (labels, nodes, unions) invalidate the slabs — sealing is
O(cover size), so write-heavy phases (builds, maintenance) run on the
inherited array paths and only query-serving epochs pay the pack once.
Candidate-list translations are cached by object identity; entries pin
a strong reference to the list, so a recycled ``id()`` can never alias
a dead list (the engine's candidate memos are immutable by contract).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import kernels
from repro.core.array_cover import (
    ID_TYPECODE,
    ArrayDistanceCover,
    ArrayTwoHopCover,
    Node,
    sorted_contains,
)

try:  # feature-detected, mirrors repro.core.kernels
    import numpy as _np
except ImportError:  # pragma: no cover - numpy present in the dev image
    _np = None

#: How many distinct candidate-list translations to keep per seal.
_CAND_CACHE_LIMIT = 16

#: How many per-source descendant materialisations to keep per seal.
_DESC_CACHE_LIMIT = 1024


class _Slabs:
    """One sealed generation: CSR slabs over the four label tables.

    Attributes:
        indptr: table name → ``array('q')`` row offsets.
        data: table name → flat ``array('i')`` row data.
        views: table name → ``memoryview`` of ``data`` (cheap slicing).
        np_data: table name → int32 numpy view, or None without numpy.
        active: sorted ``array('i')`` of active node ids.
        active_np: numpy view of ``active`` (None without numpy).
    """

    __slots__ = ("indptr", "data", "views", "np_data", "active", "active_np",
                 "desc_cache")

    def __init__(self, cover: "_VectorSealMixin") -> None:
        self.indptr: Dict[str, array] = {}
        self.data: Dict[str, array] = {}
        self.views: Dict[str, memoryview] = {}
        self.np_data: Optional[Dict[str, "object"]] = (
            {} if _np is not None else None
        )
        # source id → materialised descendant array; sound to cache
        # because the slabs are immutable until the next mutation
        # drops the whole _Slabs object
        self.desc_cache: Dict[int, object] = {}
        for name in ("lin", "lout", "inv_lin", "inv_lout"):
            indptr, data = cover._pack_table(getattr(cover, f"_{name}"))
            self.indptr[name] = indptr
            self.data[name] = data
            self.views[name] = memoryview(data)
            if self.np_data is not None:
                self.np_data[name] = _np.frombuffer(data, dtype=_np.intc)
        self.active = array(ID_TYPECODE, sorted(cover._nodes))
        self.active_np = (
            _np.frombuffer(self.active, dtype=_np.intc)
            if _np is not None and len(self.active)
            else (_np.empty(0, dtype=_np.intc) if _np is not None else None)
        )

    def row(self, name: str, iid: int) -> memoryview:
        """The sealed row of ``name`` for internal id ``iid``."""
        indptr = self.indptr[name]
        if iid + 1 >= len(indptr):
            return self.views[name][0:0]
        return self.views[name][indptr[iid]:indptr[iid + 1]]

    def np_row(self, name: str, iid: int):
        """The numpy row slice (requires numpy; zero-copy)."""
        indptr = self.indptr[name]
        if iid + 1 >= len(indptr):
            return self.np_data[name][0:0]
        return self.np_data[name][indptr[iid]:indptr[iid + 1]]


def _in_sorted_np(values, universe):
    """Vectorised membership of ``values`` in a sorted numpy array.

    Negative sentinels (unknown labels) always map to False.
    """
    n = universe.size
    if n == 0:
        return _np.zeros(values.size, dtype=bool)
    idx = _np.searchsorted(universe, values)
    idx[idx == n] = 0
    return universe[idx] == values


class _VectorSealMixin:
    """Seal/invalidate machinery + kernel-backed batch probes.

    Mixed in *before* an array cover class, so every mutator below
    drops the sealed slabs first and then defers to the array
    implementation (signatures differ between the reachability and
    distance flavours — the wrappers are shape-agnostic).
    """

    def __init__(self, nodes=()) -> None:
        self._slabs: Optional[_Slabs] = None
        # id(candidates) → (candidates, translated ids, active flags);
        # the strong reference in slot 0 keeps id() unambiguous
        self._cand_cache: Dict[int, Tuple[object, object, object]] = {}
        super().__init__(nodes)

    # -- seal lifecycle -------------------------------------------------
    def _invalidate(self) -> None:
        if self._slabs is not None:
            self._slabs = None
            self._cand_cache.clear()

    def _seal(self) -> _Slabs:
        """Pack the label tables into CSR slabs (idempotent until the
        next mutation)."""
        slabs = self._slabs
        if slabs is None:
            slabs = self._slabs = _Slabs(self)
        return slabs

    @property
    def sealed(self) -> bool:
        """Whether the current generation's slabs are built."""
        return self._slabs is not None

    # -- mutators: drop the slabs, defer to the array implementation ----
    def add_node(self, *args, **kwargs):
        self._invalidate()
        return super().add_node(*args, **kwargs)

    def add_nodes(self, *args, **kwargs):
        self._invalidate()
        return super().add_nodes(*args, **kwargs)

    def add_lin(self, *args, **kwargs):
        self._invalidate()
        return super().add_lin(*args, **kwargs)

    def add_lout(self, *args, **kwargs):
        self._invalidate()
        return super().add_lout(*args, **kwargs)

    def discard_lin(self, *args, **kwargs):
        self._invalidate()
        return super().discard_lin(*args, **kwargs)

    def discard_lout(self, *args, **kwargs):
        self._invalidate()
        return super().discard_lout(*args, **kwargs)

    def set_lin(self, *args, **kwargs):
        self._invalidate()
        return super().set_lin(*args, **kwargs)

    def set_lout(self, *args, **kwargs):
        self._invalidate()
        return super().set_lout(*args, **kwargs)

    def remove_nodes(self, *args, **kwargs):
        self._invalidate()
        return super().remove_nodes(*args, **kwargs)

    def union(self, *args, **kwargs):
        self._invalidate()
        return super().union(*args, **kwargs)

    def absorb_disjoint(self, *args, **kwargs):
        self._invalidate()
        return super().absorb_disjoint(*args, **kwargs)

    def preintern_sorted(self, *args, **kwargs):
        self._invalidate()
        return super().preintern_sorted(*args, **kwargs)

    # -- candidate translation (amortised across a batch) ---------------
    def _candidate_entry(self, candidates: Sequence[Node]):
        """``(candidates, ids, active_flags)`` for a candidate list.

        ``ids`` is the internal-id translation (-1 for labels the
        interner has never seen); ``active_flags`` pre-answers the
        ``id ∈ active universe`` half of the membership test. Cached by
        object identity per sealed generation — the engine reuses one
        memoized candidate list per step key, so repeated probes (and
        every source of an ``intersect_many`` batch) translate once.
        """
        key = id(candidates)
        entry = self._cand_cache.get(key)
        if entry is not None and entry[0] is candidates:
            return entry
        get = self.interner.get
        ids = [get(c) for c in candidates]
        slabs = self._seal()
        if _np is not None:
            arr = _np.fromiter(
                (x if x is not None else -1 for x in ids),
                dtype=_np.int64,
                count=len(ids),
            )
            active_flags = _in_sorted_np(arr, slabs.active_np)
            entry = (candidates, arr, active_flags)
        else:
            id_list = [x if x is not None else -1 for x in ids]
            entry = (candidates, id_list, None)
        if len(self._cand_cache) >= _CAND_CACHE_LIMIT:
            self._cand_cache.clear()
        self._cand_cache[key] = entry
        return entry

    # -- sealed descendant materialisation ------------------------------
    def _desc_sorted_np(self, slabs: _Slabs, ui: int):
        """Sorted numpy array of ``ui``'s descendant ids (incl. self).

        May contain duplicates — the only consumers do sorted-array
        membership (``searchsorted``), which is duplicate-oblivious, so
        one in-place sort replaces ``np.unique``'s sort-plus-dedupe.
        Cached per seal: the slabs are immutable until the next
        mutation drops them, so a hot source pays the concatenation
        once per epoch.
        """
        cache = slabs.desc_cache
        cached = cache.get(ui)
        if cached is not None:
            return cached
        inv_indptr = slabs.indptr["inv_lin"]
        inv_data = slabs.np_data["inv_lin"]
        inv_n = len(inv_indptr)
        parts = [_np.array([ui], dtype=_np.intc)]
        if ui + 1 < inv_n:
            inv_row = inv_data[inv_indptr[ui]:inv_indptr[ui + 1]]
            if inv_row.size:
                parts.append(inv_row)
        lout_row = slabs.np_row("lout", ui)
        if lout_row.size:
            parts.append(lout_row)
            for c in lout_row.tolist():
                if c + 1 < inv_n:
                    row = inv_data[inv_indptr[c]:inv_indptr[c + 1]]
                    if row.size:
                        parts.append(row)
        if len(parts) == 1:
            desc = parts[0]
        else:
            desc = _np.concatenate(parts)
            desc.sort()
        if len(cache) >= _DESC_CACHE_LIMIT:
            cache.clear()
        cache[ui] = desc
        return desc

    def _desc_set(self, slabs: _Slabs, ui: int) -> set:
        """Descendant ids of ``ui`` as a set, from the sealed slabs
        (portable path), restricted to the active universe."""
        result = {ui}
        inv_row = slabs.row("inv_lin", ui)
        if len(inv_row):
            result.update(inv_row)
        lout_row = slabs.row("lout", ui)
        if len(lout_row):
            result.update(lout_row)
            for c in lout_row:
                row = slabs.row("inv_lin", c)
                if len(row):
                    result.update(row)
        result.intersection_update(self._nodes)
        return result

    # -- probes ----------------------------------------------------------
    def connected_many(self, u: Node, candidates: Sequence[Node]) -> List[bool]:
        """Batched ``[connected(u, c) for c in candidates]`` over the
        sealed slabs (identical answers to the array backend, pinned by
        the equivalence matrix)."""
        ui = self.interner.get(u)
        if ui is None or ui not in self._nodes:
            return [False] * len(candidates)
        slabs = self._seal()
        entry = self._candidate_entry(candidates)
        if _np is not None:
            desc = self._desc_sorted_np(slabs, ui)
            flags = _in_sorted_np(entry[1], desc)
            _np.logical_and(flags, entry[2], out=flags)
            return flags.tolist()
        desc = self._desc_set(slabs, ui)
        return [i in desc for i in entry[1]]

    def intersect_many(
        self, sources: Sequence[Node], candidates: Sequence[Node]
    ) -> List[List[int]]:
        """For each source, the sorted **indices** into ``candidates``
        it reaches — the batch probe behind the query executor's block
        joins. Equivalent to ``[[i for i, ok in
        enumerate(connected_many(s, candidates)) if ok] for s in
        sources]`` with the candidate translation amortised across the
        whole batch."""
        slabs = self._seal()
        entry = self._candidate_entry(candidates)
        out: List[List[int]] = []
        get = self.interner.get
        nodes = self._nodes
        if _np is not None:
            cand_ids, active_flags = entry[1], entry[2]
            for u in sources:
                ui = get(u)
                if ui is None or ui not in nodes:
                    out.append([])
                    continue
                desc = self._desc_sorted_np(slabs, ui)
                flags = _in_sorted_np(cand_ids, desc)
                _np.logical_and(flags, active_flags, out=flags)
                out.append(_np.flatnonzero(flags).tolist())
            return out
        ids = entry[1]
        for u in sources:
            ui = get(u)
            if ui is None or ui not in nodes:
                out.append([])
                continue
            desc = self._desc_set(slabs, ui)
            out.append([j for j, i in enumerate(ids) if i in desc])
        return out


class VectorTwoHopCover(_VectorSealMixin, ArrayTwoHopCover):
    """Reachability cover answered through sealed-slab kernels."""

    def connected(self, u: Node, v: Node) -> bool:
        """``u ->* v``? Kernel intersection over sealed row slices when
        sealed; the inherited galloping path otherwise (so write-heavy
        phases never force a reseal per probe)."""
        if self._slabs is None:
            return super().connected(u, v)
        get = self.interner.get
        ui, vi = get(u), get(v)
        if ui is None or vi is None:
            return False
        nodes = self._nodes
        if ui not in nodes or vi not in nodes:
            return False
        if ui == vi:
            return True
        slabs = self._slabs
        lout = slabs.row("lout", ui)
        if len(lout) and sorted_contains(lout, vi):
            return True
        lin = slabs.row("lin", vi)
        if len(lin) and sorted_contains(lin, ui):
            return True
        if len(lout) and len(lin):
            return kernels.intersects_any(lout, lin, span=len(self.interner))
        return False


class VectorDistanceCover(_VectorSealMixin, ArrayDistanceCover):
    """Distance cover with sealed-slab batch reachability probes.

    ``distance()`` / ``connected()`` keep the array backend's min-plus
    galloping merge (distances live in parallel rows the id slabs do
    not carry); the batch APIs — the query engine's hot path — go
    through the sealed kernels.
    """
