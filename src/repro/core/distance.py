"""Distance-aware 2-hop cover construction (Section 5 of the paper).

The construction mirrors the reachability builder with two changes:

* a center ``w`` may only cover the connection ``(u, v)`` if it lies **on
  a shortest path** from ``u`` to ``v``, i.e.
  ``d(u, w) + d(w, v) = d(u, v)`` — otherwise its label entries would
  report a wrong distance;
* because of that constraint, initial center graphs are **no longer
  complete bipartite**, so the cheap closed-form initial priority is a
  gross over-estimate. The paper replaces it with ``sqrt(E)/2`` where
  ``E`` is the number of center-graph edges, estimated by **sampling at
  most 13,600 candidate edges** and taking the upper bound of a 98%
  confidence interval on the edge fraction ("the initially estimated
  maximal density never exceeded the real maximal density" in their
  experiments; the same property is asserted by our test suite).

Distance covers operate on the original graph (no SCC condensation):
Cohen's distance formulation is valid on arbitrary digraphs, and XML
element graphs are nearly acyclic anyway.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.center_graph import densest_subgraph
from repro.core.cover import DistanceTwoHopCover
from repro.graph.closure import DistanceClosure, distance_closure
from repro.graph.digraph import DiGraph

Node = Hashable

#: Sample budget for the initial-density estimation (Section 5.2: "a
#: sampling algorithm that checks at most 13,600 randomly chosen
#: candidate edges").
DENSITY_SAMPLE_BUDGET = 13_600

#: z-value of the 98% two-sided confidence interval; with 13,600 samples
#: the interval length is at most 2 * z * sqrt(.25/n) ≈ 0.02, matching
#: the paper's "at most length 0.02".
_Z_98 = 2.3263478740408408


def estimate_center_graph_edges(
    w: Node,
    dclosure: DistanceClosure,
    ancestors: Dict[Node, int],
    descendants: Dict[Node, int],
    rng: random.Random,
    *,
    sample_budget: int = DENSITY_SAMPLE_BUDGET,
) -> float:
    """Estimate the number of edges of ``w``'s initial center graph.

    A candidate pair ``(u, v)`` (``u`` ancestor, ``v`` descendant of
    ``w``) is an edge iff ``d(u, w) + d(w, v) == d(u, v)``. With ``a*d``
    candidates, testing all is infeasible; up to ``sample_budget`` pairs
    are sampled uniformly with replacement, the edge fraction ``e'`` is
    measured and the upper bound of its 98% confidence interval is
    scaled back to ``a * d``.

    Returns:
        The estimated edge count ``E`` (a float; callers only take
        ``sqrt(E)/2``).
    """
    # w itself belongs to both sides of its center graph (Cin/Cout are
    # reflexive), so pairs (w, v) and (u, w) are candidate edges too —
    # and are always shortest-path-consistent.
    anc = list(ancestors)
    desc = list(descendants)
    a, d = len(anc), len(desc)
    total = a * d
    if total <= 1:  # only the skipped diagonal pair (w, w)
        return 0.0
    if total <= sample_budget:
        # small center graphs are counted exactly
        edges = 0
        for u in anc:
            du_w = ancestors[u]
            row = dclosure.dist.get(u, {})
            for v in desc:
                if v == u:
                    continue
                duv = row.get(v)
                if duv is not None and du_w + descendants[v] == duv:
                    edges += 1
        return float(edges)
    hits = 0
    for _ in range(sample_budget):
        u = anc[rng.randrange(a)]
        v = desc[rng.randrange(d)]
        if u == v:
            continue
        duv = dclosure.dist.get(u, {}).get(v)
        if duv is not None and ancestors[u] + descendants[v] == duv:
            hits += 1
    fraction = hits / sample_budget
    half_width = _Z_98 * math.sqrt(max(fraction * (1.0 - fraction), 1e-12) / sample_budget)
    upper = min(1.0, fraction + half_width)
    return upper * total


def initial_distance_priority(estimated_edges: float) -> float:
    """The paper's density upper bound ``sqrt(E)/2``.

    "The maximal density is achieved when the number of nodes on both
    sides is balanced and the graph is as complete as possible":
    ``E / (2 * sqrt(E)) = sqrt(E)/2``.
    """
    return math.sqrt(estimated_edges) / 2.0 if estimated_edges > 0 else 0.0


class _UncoveredDistanceSet:
    """Uncovered distance connections ``T'`` with forward/reverse views."""

    def __init__(self, dclosure: DistanceClosure) -> None:
        self.fwd: Dict[Node, Dict[Node, int]] = {
            u: dict(vs) for u, vs in dclosure.dist.items() if vs
        }
        self.rev: Dict[Node, Set[Node]] = {}
        for u, vs in self.fwd.items():
            for v in vs:
                self.rev.setdefault(v, set()).add(u)
        self.count = sum(len(vs) for vs in self.fwd.values())

    def remove(self, u: Node, v: Node) -> None:
        row = self.fwd.get(u)
        if row and v in row:
            del row[v]
            self.rev[v].discard(u)
            self.count -= 1

    def __bool__(self) -> bool:
        return self.count > 0


def _distance_center_graph(
    uncovered: _UncoveredDistanceSet,
    dclosure: DistanceClosure,
    w: Node,
    din: Dict[Node, int],
    dout: Dict[Node, int],
) -> Dict[Node, Set[Node]]:
    """Edges (u, v) of CG_w: uncovered and w on a shortest u-v path."""
    adj: Dict[Node, Set[Node]] = {}
    for u, du_w in din.items():
        row = uncovered.fwd.get(u)
        if not row:
            continue
        hits = set()
        if len(row) <= len(dout):
            for v, duv in row.items():
                dw_v = dout.get(v)
                if dw_v is not None and du_w + dw_v == duv:
                    hits.add(v)
        else:
            for v, dw_v in dout.items():
                duv = row.get(v)
                if duv is not None and du_w + dw_v == duv:
                    hits.add(v)
        if hits:
            adj[u] = hits
    return adj


def build_distance_cover(
    graph: DiGraph,
    *,
    dclosure: Optional[DistanceClosure] = None,
    preselected_centers: Iterable[Node] = (),
    seed: int = 20_05,
    sample_budget: int = DENSITY_SAMPLE_BUDGET,
    cover_factory: Callable[[Iterable[Node]], DistanceTwoHopCover] = DistanceTwoHopCover,
) -> DistanceTwoHopCover:
    """Build a distance-aware 2-hop cover of an arbitrary digraph.

    Args:
        graph: input graph.
        dclosure: optional precomputed :class:`DistanceClosure`.
        preselected_centers: centers to use first (Section 4.2 carries
            over; they may only cover shortest-path-consistent pairs).
        seed: RNG seed for edge sampling (deterministic by default).
        sample_budget: see :func:`estimate_center_graph_edges`.
        cover_factory: distance-cover backend constructor
            (``DistanceTwoHopCover`` or ``ArrayDistanceCover``).

    Returns:
        A distance cover whose ``distance`` matches BFS shortest
        distances exactly.
    """
    if dclosure is None:
        dclosure = distance_closure(graph)
    rng = random.Random(seed)
    cover = cover_factory(dclosure.dist.keys())
    uncovered = _UncoveredDistanceSet(dclosure)

    def label_and_remove(w, din, dout, in_side, out_side, adj):
        for u in in_side:
            cover.add_lout(u, w, din[u])
        for v in out_side:
            cover.add_lin(v, w, dout[v])
        for u in in_side:
            for v in adj.get(u, ()):
                if v in out_side:
                    uncovered.remove(u, v)

    # ---- preselected centers (Section 4.2) -----------------------------
    for w in preselected_centers:
        if w not in dclosure.dist or not uncovered:
            continue
        din = dict(dclosure.ancestors_of(w))
        din[w] = 0
        dout = dict(dclosure.descendants_of(w))
        dout[w] = 0
        adj = _distance_center_graph(uncovered, dclosure, w, din, dout)
        if not adj:
            continue
        in_side = set(adj)
        out_side = {v for vs in adj.values() for v in vs}
        label_and_remove(w, din, dout, in_side, out_side, adj)

    # ---- greedy loop with sampled initial priorities --------------------
    heap: List[Tuple[float, int, Node]] = []
    anc_cache: Dict[Node, Dict[Node, int]] = {}
    out_cache: Dict[Node, Dict[Node, int]] = {}
    for i, w in enumerate(dclosure.dist):
        din = dict(dclosure.ancestors_of(w))
        din[w] = 0
        dout = dict(dclosure.descendants_of(w))
        dout[w] = 0
        anc_cache[w] = din
        out_cache[w] = dout
        estimate = estimate_center_graph_edges(
            w, dclosure, din, dout, rng, sample_budget=sample_budget
        )
        priority = initial_distance_priority(estimate)
        # Guard: sqrt(E)/2 is the balanced-case optimum; an adversarially
        # unbalanced graph can exceed it only when E < 4, where the exact
        # density is at most E/2. Use the max of both bounds.
        priority = max(priority, min(estimate, 2.0))
        if priority > 0:
            heap.append((-priority, i, w))
    heapq.heapify(heap)
    tiebreak = len(heap)

    while uncovered:
        if not heap:  # pragma: no cover - defensive
            raise RuntimeError("priority queue exhausted with uncovered connections")
        neg_priority, _, w = heapq.heappop(heap)
        cached = -neg_priority
        din = anc_cache[w]
        dout = out_cache[w]
        adj = _distance_center_graph(uncovered, dclosure, w, din, dout)
        density, in_side, out_side = densest_subgraph(adj)
        if density <= 0.0:
            continue
        if heap and density < cached and -heap[0][0] > density:
            tiebreak += 1
            heapq.heappush(heap, (-density, tiebreak, w))
            continue
        label_and_remove(w, din, dout, in_side, out_side, adj)
        tiebreak += 1
        heapq.heappush(heap, (-density, tiebreak, w))
    return cover
