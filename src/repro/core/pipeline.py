"""The divide-and-conquer build pipeline (Sections 4 and 5).

The paper's central scalability argument is that 2-hop cover
construction parallelises along partition boundaries: partition the
document collection, build every partition's cover *independently*
("this can even be done on different machines"), then connect the
partial covers along the cross-partition links. :class:`BuildPipeline`
is that flow as an explicit three-phase orchestrator:

1. **partition** — the document-level graph is split by one of the
   partitioners in :mod:`repro.core.partitioning` (always in the
   parent; it is cheap relative to covering);
2. **partition covers** — each partition's element graph is shipped to
   a pluggable executor as a compact :class:`PartitionTask` (node list
   + edge list + preselected centers). The ``serial`` executor runs
   the builds inline; ``process`` fans them out over
   ``multiprocessing`` workers; ``threads`` over a
   ``ThreadPoolExecutor`` (cheap to spawn, and the stepping stone to
   per-interpreter GILs); ``rpc`` over remote worker daemons
   (:mod:`repro.core.rpc` — the paper: "this can even be done on
   different machines"). Every parallel executor's workers return the
   cover as a CSR snapshot blob
   (:func:`repro.storage.snapshot.snapshot_to_bytes` — the same
   encoding used for on-disk snapshots doubles as the wire format);
3. **join** — the parent merges the partition covers with the
   strategy's join (:mod:`repro.core.join`). For the recursive
   strategy the distribution step is itself sharded by partition over
   the same executor (``join_shards``, default = worker count): after
   the tiny PSG closure, each shard bakes its label deltas into its
   own partition covers and returns them as snapshot blobs; the parent
   assembles the merged cover from block copies, deterministically.

Because the greedy cover construction consults only the partition
closure — never the backend representation or the executor — the final
cover's label entries are **bit-identical** across executors, worker
counts and join shard counts, on both the ``sets`` and ``arrays``
backends; the randomized suite in ``tests/test_pipeline.py`` pins that
property.

Most callers reach this module through the facade::

    index = HopiIndex.build(collection, workers=4)      # process pool
    index = HopiIndex.build(collection)                 # serial, as before
    index = HopiIndex.build(                            # remote workers
        collection, executor="rpc",
        rpc_workers=["10.0.0.5:9123", "10.0.0.6:9123"],
    )

or the CLI: ``repro build docs/ -o index.db --workers 4`` /
``--executor rpc --workers host:port,...``.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cover_builder import build_partition_cover
from repro.core.join import (
    ParallelJoinStats,
    _join_shard_worker,
    join_covers_incremental,
    join_covers_incremental_distance,
    join_covers_recursive,
    join_covers_recursive_parallel,
)
from repro.core.partitioning import (
    Partitioning,
    partition_by_closure_size,
    partition_by_node_weight,
    single_document_partitioning,
)
from repro.core.skeleton import connection_edge_weight
from repro.xmlmodel.model import Collection, ElementId

# NOTE: repro.storage.snapshot (the wire format) is imported lazily in
# the worker / decode paths — storage already imports repro.core, and a
# module-level import here would make package initialisation order
# sensitive to which side is imported first.

_STRATEGIES = ("unpartitioned", "incremental", "recursive")
_PARTITIONERS = ("node_weight", "closure", "single")
_EDGE_WEIGHTS = ("links", "AxD", "A+D")

#: CLI-friendly partitioner spellings accepted everywhere a partitioner
#: name is (``repro build --partitioner node-weight|closure-size``).
PARTITIONER_ALIASES = {
    "node-weight": "node_weight",
    "closure-size": "closure",
}

#: executor names accepted by :class:`BuildPipeline` and the facade
EXECUTORS = ("serial", "process", "threads", "rpc")


def normalize_partitioner(name: str) -> str:
    """Resolve a partitioner name or CLI alias to its canonical form.

    Raises:
        ValueError: for names that are neither canonical nor aliased.
    """
    canonical = PARTITIONER_ALIASES.get(name, name)
    if canonical not in _PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {name!r}; one of {_PARTITIONERS}"
        )
    return canonical


# ---------------------------------------------------------------------------
# the unit of work and its wire format
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionTask:
    """One partition's cover build, as plain picklable data.

    Holds exactly what :func:`repro.core.cover_builder.
    build_partition_cover` needs — the element-graph node and edge
    lists plus the preselected centers — so the same task object can be
    executed inline or shipped to a worker process.
    """

    pid: int
    nodes: Tuple[ElementId, ...]
    edges: Tuple[Tuple[ElementId, ElementId], ...]
    preselected: Tuple[ElementId, ...]
    distance: bool


@dataclass
class PartitionResult:
    """A built partition cover plus its in-worker accounting.

    ``wire`` keeps the CSR blob a parallel executor's worker returned
    (``None`` for inline builds): the parallel join re-uses it for its
    shard tasks instead of re-encoding the cover.
    """

    pid: int
    cover: object
    seconds: float
    wire_bytes: int = 0
    wire: Optional[bytes] = None


def _partition_cover_worker(task: PartitionTask) -> Tuple[int, bytes, float]:
    """Process-pool entry point: build one partition cover, return it
    as a CSR snapshot blob.

    Runs in a worker process. The cover is built with the set backend
    (entries are factory-independent), converted to arrays via the
    batched ``from_cover`` path and serialised with
    :func:`snapshot_to_bytes` — one contiguous buffer crosses the
    process boundary instead of a deep cover object graph.
    """
    from repro.core.array_cover import ArrayDistanceCover, ArrayTwoHopCover
    from repro.storage.snapshot import snapshot_to_bytes

    t0 = time.perf_counter()
    cover = build_partition_cover(
        task.nodes,
        task.edges,
        preselected_centers=task.preselected,
        distance=task.distance,
    )
    arrays = (
        ArrayDistanceCover if task.distance else ArrayTwoHopCover
    ).from_cover(cover)
    return task.pid, snapshot_to_bytes(arrays), time.perf_counter() - t0


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------


class SerialExecutor:
    """Run every partition build inline, in the calling process.

    The default — and the baseline the process executor is benchmarked
    against. Covers are built directly in the target backend, with no
    wire round-trip.
    """

    name = "serial"

    def run(self, tasks, *, cover_factory, to_backend) -> List[PartitionResult]:
        """Execute ``tasks`` in order; see :meth:`ProcessExecutor.run`."""
        results = []
        for task in tasks:
            t0 = time.perf_counter()
            cover = build_partition_cover(
                task.nodes,
                task.edges,
                preselected_centers=task.preselected,
                distance=task.distance,
                cover_factory=cover_factory,
            )
            results.append(
                PartitionResult(task.pid, cover, time.perf_counter() - t0)
            )
        return results

    def map_join(self, tasks) -> List[Tuple[int, Tuple, float]]:
        """Run join-shard tasks inline, in shard order.

        Sharding with the serial executor is still meaningful: it is
        the equivalence baseline of the parallel joins, and its clean
        (untimesliced) per-shard timings feed the single-CPU LPT model
        of the build benchmark.
        """
        return [_join_shard_worker(task) for task in tasks]


def decode_partition_results(wires, to_backend: str) -> List[PartitionResult]:
    """Decode ``(pid, blob, seconds)`` wire triples into ordered
    :class:`PartitionResult`\\ s in the target backend.

    The shared parent half of every blob-returning executor (process,
    threads, rpc) — one place to evolve if the wire shape changes. The
    blob is kept on the result for the parallel join to re-use.
    """
    from repro.core.hopi import convert_cover
    from repro.storage.snapshot import snapshot_from_bytes

    results = []
    for pid, payload, seconds in wires:
        cover = convert_cover(snapshot_from_bytes(payload), to_backend)
        results.append(
            PartitionResult(pid, cover, seconds, len(payload), payload)
        )
    results.sort(key=lambda r: r.pid)
    return results


class _PoolExecutor:
    """Shared body of the ``concurrent.futures``-pool executors: ship
    tasks to :attr:`pool_factory` workers, decode the blob results."""

    #: ``ProcessPoolExecutor`` or ``ThreadPoolExecutor``
    pool_factory = None

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def _map(self, fn, tasks) -> list:
        max_workers = min(self.workers, len(tasks))
        with self.pool_factory(max_workers=max_workers) as pool:
            return list(pool.map(fn, tasks))

    def run(self, tasks, *, cover_factory, to_backend) -> List[PartitionResult]:
        """Execute ``tasks`` concurrently, preserving partition order.

        Args:
            tasks: the :class:`PartitionTask` list, one per partition.
            cover_factory: backend constructor for the decoded covers.
            to_backend: backend name matching ``cover_factory`` (used
                to re-represent the decoded array cover).
        """
        tasks = list(tasks)
        if not tasks:
            return []
        return decode_partition_results(
            self._map(_partition_cover_worker, tasks), to_backend
        )

    def map_join(self, tasks) -> List[Tuple[int, Tuple, float]]:
        """Run join-shard tasks over the pool."""
        tasks = list(tasks)
        if not tasks:
            return []
        return self._map(_join_shard_worker, tasks)


class ProcessExecutor(_PoolExecutor):
    """Fan partition builds out over a ``multiprocessing`` pool.

    Workers return CSR snapshot blobs; the parent decodes them and
    re-represents each cover in the target backend. Partition covers
    are independent (the paper: the builds "can be done concurrently"),
    so no coordination beyond the final collection of results is
    needed.
    """

    name = "process"
    pool_factory = ProcessPoolExecutor


class ThreadsExecutor(_PoolExecutor):
    """Fan partition builds out over a ``ThreadPoolExecutor``.

    Under today's GIL the pure-Python cover construction timeslices
    rather than parallelises, but threads cost microseconds to spawn
    (no interpreter fork, no pickled task channel), share the page
    cache, and are the seam where per-interpreter-GIL workers will slot
    in. The snapshot-encode/decode half of the work releases the GIL
    in ``array``/``bytes`` block copies, so encode-heavy builds already
    overlap. Workers run the exact blob path of the process executor,
    so results are bit-identical to every other executor.
    """

    name = "threads"
    pool_factory = ThreadPoolExecutor


def make_executor(
    executor: Optional[str],
    workers: Optional[int],
    *,
    rpc_workers: Optional[Sequence[str]] = None,
):
    """Resolve an executor name + worker count to an executor instance.

    ``None`` picks the natural default: ``rpc`` when worker addresses
    were given, ``process`` when more than one worker was requested,
    ``serial`` otherwise.
    """
    workers = 1 if workers is None else workers
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if executor is None:
        if rpc_workers:
            executor = "rpc"
        else:
            executor = "process" if workers > 1 else "serial"
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; one of {EXECUTORS}")
    if executor == "rpc":
        from repro.core.rpc import RpcExecutor

        if not rpc_workers:
            raise ValueError(
                "executor 'rpc' needs worker addresses "
                "(rpc_workers=[...] / --workers host:port,...)"
            )
        return RpcExecutor(rpc_workers)
    if executor == "process":
        return ProcessExecutor(workers)
    if executor == "threads":
        return ThreadsExecutor(workers)
    return SerialExecutor()


# ---------------------------------------------------------------------------
# the orchestrator
# ---------------------------------------------------------------------------


class BuildPipeline:
    """Partition → per-partition cover → cross-link join, end to end.

    The one place the full offline build flow lives;
    :meth:`repro.core.hopi.HopiIndex.build` is a thin wrapper around
    it. All knobs of the facade are accepted here with the same
    semantics, plus the executor selection:

    Args:
        collection: the XML collection to index.
        strategy: ``"unpartitioned"``, ``"incremental"`` or
            ``"recursive"`` (see :mod:`repro.core.hopi`).
        partitioner: ``"node_weight"``/``"node-weight"``,
            ``"closure"``/``"closure-size"`` or ``"single"``.
        partition_limit: max elements (node-weight) or closure
            connections (closure) per partition; defaults derived from
            the collection when omitted.
        edge_weight: ``"links"``, ``"AxD"`` or ``"A+D"``.
        distance: build a distance-aware cover (Section 5).
        preselect_centers: force cross-partition link targets as
            centers first (Section 4.2).
        psg_node_limit: threshold for the recursive PSG closure.
        seed: partitioner seed.
        backend: label backend for the result (``sets`` / ``arrays``).
        workers: worker count for the pool executors; ``None``/1 means
            serial.
        executor: ``"serial"``, ``"process"``, ``"threads"`` or
            ``"rpc"``; default derived from ``workers`` /
            ``rpc_workers``.
        rpc_workers: ``host:port`` addresses of ``repro build-worker``
            daemons (required for — and implying — the rpc executor).
        join_shards: shard count for the recursive join's parallel
            distribution step; default = the executor's worker count,
            ``1`` forces the serial join. Covers are identical for
            every value.
    """

    def __init__(
        self,
        collection: Collection,
        *,
        strategy: str = "recursive",
        partitioner: str = "closure",
        partition_limit: Optional[int] = None,
        edge_weight: str = "links",
        distance: bool = False,
        preselect_centers: bool = True,
        psg_node_limit: Optional[int] = None,
        seed: int = 0,
        backend: str = "sets",
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        rpc_workers: Optional[Sequence[str]] = None,
        join_shards: Optional[int] = None,
    ) -> None:
        from repro.core.hopi import BACKENDS

        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; one of {_STRATEGIES}")
        partitioner = normalize_partitioner(partitioner)
        if edge_weight not in _EDGE_WEIGHTS:
            raise ValueError(
                f"unknown edge weight {edge_weight!r}; one of {_EDGE_WEIGHTS}"
            )
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; one of {tuple(BACKENDS)}")
        if join_shards is not None and join_shards < 1:
            raise ValueError("join_shards must be >= 1")
        self.collection = collection
        self.strategy = strategy
        self.partitioner = partitioner
        self.partition_limit = partition_limit
        self.edge_weight = edge_weight
        self.distance = distance
        self.preselect_centers = preselect_centers
        self.psg_node_limit = psg_node_limit
        self.seed = seed
        self.backend = backend
        self.executor = make_executor(executor, workers, rpc_workers=rpc_workers)
        self.workers = getattr(self.executor, "workers", 1)
        self.join_shards = (
            join_shards if join_shards is not None else self.workers
        )
        self._plain_factory, self._distance_factory = BACKENDS[backend]

    # -- phase 1 --------------------------------------------------------
    def partition(self) -> Partitioning:
        """Split the document-level graph (always in the parent)."""
        collection = self.collection
        weight_fn = None
        if self.edge_weight in ("AxD", "A+D") and collection.inter_links:
            weight_fn = connection_edge_weight(collection, mode=self.edge_weight)
        if self.partitioner == "single":
            return single_document_partitioning(collection)
        if self.partitioner == "node_weight":
            limit = self.partition_limit or max(collection.num_elements // 8, 1)
            return partition_by_node_weight(
                collection, limit, edge_weight=weight_fn, seed=self.seed
            )
        limit = self.partition_limit or max(collection.num_elements * 20, 1000)
        return partition_by_closure_size(
            collection, limit, edge_weight=weight_fn, seed=self.seed
        )

    # -- phase 2 --------------------------------------------------------
    def partition_tasks(self, partitioning: Partitioning) -> List[PartitionTask]:
        """Extract each partition's element graph into a compact task."""
        collection = self.collection
        cross_targets: Dict[int, List[ElementId]] = {}
        if self.preselect_centers:
            for _, v in partitioning.cross_links:
                pid = partitioning.part_of[collection.doc(v)]
                cross_targets.setdefault(pid, []).append(v)
        tasks = []
        for pid, docs in enumerate(partitioning.partitions):
            graph = collection.subcollection(docs).element_graph()
            tasks.append(
                PartitionTask(
                    pid=pid,
                    nodes=tuple(graph.nodes()),
                    edges=tuple(graph.edges()),
                    preselected=tuple(sorted(cross_targets.get(pid, []))),
                    distance=self.distance,
                )
            )
        return tasks

    def build_partition_covers(
        self, tasks: Sequence[PartitionTask]
    ) -> List[PartitionResult]:
        """Run phase 2 through the configured executor."""
        factory = self._distance_factory if self.distance else self._plain_factory
        return self.executor.run(
            tasks, cover_factory=factory, to_backend=self.backend
        )

    # -- phase 3 --------------------------------------------------------
    def join(self, partitioning: Partitioning, partition_covers: Sequence) -> object:
        """Merge the partition covers along the cross-partition links."""
        cover, _ = self._join_with_stats(partitioning, partition_covers)
        return cover

    def _join_with_stats(
        self,
        partitioning: Partitioning,
        partition_covers: Sequence,
        partition_blobs: Optional[Dict[int, bytes]] = None,
    ) -> Tuple[object, Optional[ParallelJoinStats]]:
        """Phase 3 plus its per-phase accounting.

        The incremental and distance joins are inherently sequential
        (every link insertion reads the cover the previous one wrote),
        so only the recursive strategy's distribution step shards; for
        it, ``join_shards == 1`` is the plain serial join.
        """
        if self.distance:
            # Section 5 notes the build algorithms carry over; the
            # recursive join's H̄ has no distance analogue in the paper,
            # so distance builds use the incremental join to a fixpoint.
            return (
                join_covers_incremental_distance(
                    partition_covers,
                    partitioning.cross_links,
                    cover_factory=self._distance_factory,
                ),
                None,
            )
        if self.strategy == "incremental":
            return (
                join_covers_incremental(
                    partition_covers,
                    partitioning.cross_links,
                    cover_factory=self._plain_factory,
                ),
                None,
            )
        if self.join_shards > 1:
            return join_covers_recursive_parallel(
                self.collection,
                partitioning,
                partition_covers,
                executor=self.executor,
                join_shards=self.join_shards,
                psg_node_limit=self.psg_node_limit,
                cover_factory=self._plain_factory,
                partition_blobs=partition_blobs,
            )
        return (
            join_covers_recursive(
                self.collection,
                partitioning,
                partition_covers,
                psg_node_limit=self.psg_node_limit,
                cover_factory=self._plain_factory,
            ),
            None,
        )

    # -- the whole flow -------------------------------------------------
    def run(self):
        """Execute all phases; returns ``(cover, BuildStats)``."""
        from repro.core.hopi import BuildStats
        from repro.core.cover_builder import build_cover
        from repro.core.distance import build_distance_cover

        start = time.perf_counter()
        if self.strategy == "unpartitioned":
            graph = self.collection.element_graph()
            if self.distance:
                cover = build_distance_cover(
                    graph, cover_factory=self._distance_factory
                )
            else:
                cover = build_cover(graph, cover_factory=self._plain_factory)
            stats = BuildStats(
                strategy=self.strategy,
                partitioner=None,
                partition_limit=None,
                edge_weight=self.edge_weight,
                distance=self.distance,
                num_partitions=1,
                num_cross_links=0,
                cover_size=cover.size,
                num_nodes=len(cover.nodes),
                seconds_total=time.perf_counter() - start,
                backend=self.backend,
                workers=1,
                executor="serial",
            )
            return cover, stats

        t0 = time.perf_counter()
        partitioning = self.partition()
        tasks = self.partition_tasks(partitioning)
        seconds_partitioning = time.perf_counter() - t0

        t0 = time.perf_counter()
        results = self.build_partition_covers(tasks)
        seconds_partition_covers = time.perf_counter() - t0

        t0 = time.perf_counter()
        cover, join_stats = self._join_with_stats(
            partitioning,
            [r.cover for r in results],
            {r.pid: r.wire for r in results if r.wire is not None},
        )
        seconds_join = time.perf_counter() - t0

        stats = BuildStats(
            strategy=self.strategy,
            partitioner=self.partitioner,
            partition_limit=self.partition_limit,
            edge_weight=self.edge_weight,
            distance=self.distance,
            num_partitions=partitioning.num_partitions,
            num_cross_links=len(partitioning.cross_links),
            cover_size=cover.size,
            num_nodes=len(cover.nodes),
            seconds_total=time.perf_counter() - start,
            backend=self.backend,
            workers=self.workers,
            executor=self.executor.name,
            seconds_partitioning=seconds_partitioning,
            seconds_partition_covers=seconds_partition_covers,
            seconds_join=seconds_join,
            partition_cover_seconds=[r.seconds for r in results],
        )
        if join_stats is not None:
            stats.join_shards = join_stats.shards
            stats.seconds_join_union = join_stats.seconds_union
            stats.seconds_join_psg = join_stats.seconds_psg
            stats.seconds_join_distribute = join_stats.seconds_distribute
            stats.join_shard_seconds = list(join_stats.shard_seconds)
        return cover, stats
