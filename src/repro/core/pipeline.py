"""The divide-and-conquer build pipeline (Sections 4 and 5).

The paper's central scalability argument is that 2-hop cover
construction parallelises along partition boundaries: partition the
document collection, build every partition's cover *independently*
("this can even be done on different machines"), then connect the
partial covers along the cross-partition links. :class:`BuildPipeline`
is that flow as an explicit three-phase orchestrator:

1. **partition** — the document-level graph is split by one of the
   partitioners in :mod:`repro.core.partitioning` (always in the
   parent; it is cheap relative to covering);
2. **partition covers** — each partition's element graph is shipped to
   a pluggable :class:`PartitionExecutor` as a compact
   :class:`PartitionTask` (node list + edge list + preselected
   centers). The ``serial`` executor runs the builds inline; the
   ``process`` executor fans them out over ``multiprocessing`` workers
   that return their cover as a CSR snapshot blob
   (:func:`repro.storage.snapshot.snapshot_to_bytes` — the same
   encoding used for on-disk snapshots doubles as the wire format);
3. **join** — the parent deterministically merges the partition covers
   with the strategy's join (:mod:`repro.core.join`).

Because the greedy cover construction consults only the partition
closure — never the backend representation or the executor — the final
cover's label entries are **bit-identical** across executors and
worker counts, on both the ``sets`` and ``arrays`` backends; the
randomized suite in ``tests/test_pipeline.py`` pins that property.

Most callers reach this module through the facade::

    index = HopiIndex.build(collection, workers=4)      # process pool
    index = HopiIndex.build(collection)                 # serial, as before

or the CLI: ``repro build docs/ -o index.db --workers 4``.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cover_builder import build_partition_cover
from repro.core.join import (
    join_covers_incremental,
    join_covers_incremental_distance,
    join_covers_recursive,
)
from repro.core.partitioning import (
    Partitioning,
    partition_by_closure_size,
    partition_by_node_weight,
    single_document_partitioning,
)
from repro.core.skeleton import connection_edge_weight
from repro.xmlmodel.model import Collection, ElementId

# NOTE: repro.storage.snapshot (the wire format) is imported lazily in
# the worker / decode paths — storage already imports repro.core, and a
# module-level import here would make package initialisation order
# sensitive to which side is imported first.

_STRATEGIES = ("unpartitioned", "incremental", "recursive")
_PARTITIONERS = ("node_weight", "closure", "single")
_EDGE_WEIGHTS = ("links", "AxD", "A+D")

#: CLI-friendly partitioner spellings accepted everywhere a partitioner
#: name is (``repro build --partitioner node-weight|closure-size``).
PARTITIONER_ALIASES = {
    "node-weight": "node_weight",
    "closure-size": "closure",
}

#: executor names accepted by :class:`BuildPipeline` and the facade
EXECUTORS = ("serial", "process")


def normalize_partitioner(name: str) -> str:
    """Resolve a partitioner name or CLI alias to its canonical form.

    Raises:
        ValueError: for names that are neither canonical nor aliased.
    """
    canonical = PARTITIONER_ALIASES.get(name, name)
    if canonical not in _PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {name!r}; one of {_PARTITIONERS}"
        )
    return canonical


# ---------------------------------------------------------------------------
# the unit of work and its wire format
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionTask:
    """One partition's cover build, as plain picklable data.

    Holds exactly what :func:`repro.core.cover_builder.
    build_partition_cover` needs — the element-graph node and edge
    lists plus the preselected centers — so the same task object can be
    executed inline or shipped to a worker process.
    """

    pid: int
    nodes: Tuple[ElementId, ...]
    edges: Tuple[Tuple[ElementId, ElementId], ...]
    preselected: Tuple[ElementId, ...]
    distance: bool


@dataclass
class PartitionResult:
    """A built partition cover plus its in-worker accounting."""

    pid: int
    cover: object
    seconds: float
    wire_bytes: int = 0


def _partition_cover_worker(task: PartitionTask) -> Tuple[int, bytes, float]:
    """Process-pool entry point: build one partition cover, return it
    as a CSR snapshot blob.

    Runs in a worker process. The cover is built with the set backend
    (entries are factory-independent), converted to arrays via the
    batched ``from_cover`` path and serialised with
    :func:`snapshot_to_bytes` — one contiguous buffer crosses the
    process boundary instead of a deep cover object graph.
    """
    from repro.core.array_cover import ArrayDistanceCover, ArrayTwoHopCover
    from repro.storage.snapshot import snapshot_to_bytes

    t0 = time.perf_counter()
    cover = build_partition_cover(
        task.nodes,
        task.edges,
        preselected_centers=task.preselected,
        distance=task.distance,
    )
    arrays = (
        ArrayDistanceCover if task.distance else ArrayTwoHopCover
    ).from_cover(cover)
    return task.pid, snapshot_to_bytes(arrays), time.perf_counter() - t0


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------


class SerialExecutor:
    """Run every partition build inline, in the calling process.

    The default — and the baseline the process executor is benchmarked
    against. Covers are built directly in the target backend, with no
    wire round-trip.
    """

    name = "serial"

    def run(self, tasks, *, cover_factory, to_backend) -> List[PartitionResult]:
        """Execute ``tasks`` in order; see :meth:`ProcessExecutor.run`."""
        results = []
        for task in tasks:
            t0 = time.perf_counter()
            cover = build_partition_cover(
                task.nodes,
                task.edges,
                preselected_centers=task.preselected,
                distance=task.distance,
                cover_factory=cover_factory,
            )
            results.append(
                PartitionResult(task.pid, cover, time.perf_counter() - t0)
            )
        return results


class ProcessExecutor:
    """Fan partition builds out over a ``multiprocessing`` pool.

    Workers return CSR snapshot blobs; the parent decodes them and
    re-represents each cover in the target backend. Partition covers
    are independent (the paper: the builds "can be done concurrently"),
    so no coordination beyond the final collection of results is
    needed.
    """

    name = "process"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def run(self, tasks, *, cover_factory, to_backend) -> List[PartitionResult]:
        """Execute ``tasks`` concurrently, preserving partition order.

        Args:
            tasks: the :class:`PartitionTask` list, one per partition.
            cover_factory: backend constructor for the decoded covers.
            to_backend: backend name matching ``cover_factory`` (used
                to re-represent the decoded array cover).
        """
        if not tasks:
            return []
        from repro.core.hopi import convert_cover
        from repro.storage.snapshot import snapshot_from_bytes

        max_workers = min(self.workers, len(tasks))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            wires = list(pool.map(_partition_cover_worker, tasks))
        results = []
        for pid, payload, seconds in wires:
            cover = convert_cover(snapshot_from_bytes(payload), to_backend)
            results.append(PartitionResult(pid, cover, seconds, len(payload)))
        results.sort(key=lambda r: r.pid)
        return results


def make_executor(executor: Optional[str], workers: Optional[int]):
    """Resolve an executor name + worker count to an executor instance.

    ``None`` picks the natural default: ``process`` when more than one
    worker was requested, ``serial`` otherwise.
    """
    workers = 1 if workers is None else workers
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if executor is None:
        executor = "process" if workers > 1 else "serial"
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; one of {EXECUTORS}")
    if executor == "process":
        return ProcessExecutor(workers)
    return SerialExecutor()


# ---------------------------------------------------------------------------
# the orchestrator
# ---------------------------------------------------------------------------


class BuildPipeline:
    """Partition → per-partition cover → cross-link join, end to end.

    The one place the full offline build flow lives;
    :meth:`repro.core.hopi.HopiIndex.build` is a thin wrapper around
    it. All knobs of the facade are accepted here with the same
    semantics, plus the executor selection:

    Args:
        collection: the XML collection to index.
        strategy: ``"unpartitioned"``, ``"incremental"`` or
            ``"recursive"`` (see :mod:`repro.core.hopi`).
        partitioner: ``"node_weight"``/``"node-weight"``,
            ``"closure"``/``"closure-size"`` or ``"single"``.
        partition_limit: max elements (node-weight) or closure
            connections (closure) per partition; defaults derived from
            the collection when omitted.
        edge_weight: ``"links"``, ``"AxD"`` or ``"A+D"``.
        distance: build a distance-aware cover (Section 5).
        preselect_centers: force cross-partition link targets as
            centers first (Section 4.2).
        psg_node_limit: threshold for the recursive PSG closure.
        seed: partitioner seed.
        backend: label backend for the result (``sets`` / ``arrays``).
        workers: process-pool size; ``None``/1 means serial.
        executor: ``"serial"`` or ``"process"``; default derived from
            ``workers``.
    """

    def __init__(
        self,
        collection: Collection,
        *,
        strategy: str = "recursive",
        partitioner: str = "closure",
        partition_limit: Optional[int] = None,
        edge_weight: str = "links",
        distance: bool = False,
        preselect_centers: bool = True,
        psg_node_limit: Optional[int] = None,
        seed: int = 0,
        backend: str = "sets",
        workers: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> None:
        from repro.core.hopi import BACKENDS

        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; one of {_STRATEGIES}")
        partitioner = normalize_partitioner(partitioner)
        if edge_weight not in _EDGE_WEIGHTS:
            raise ValueError(
                f"unknown edge weight {edge_weight!r}; one of {_EDGE_WEIGHTS}"
            )
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; one of {tuple(BACKENDS)}")
        self.collection = collection
        self.strategy = strategy
        self.partitioner = partitioner
        self.partition_limit = partition_limit
        self.edge_weight = edge_weight
        self.distance = distance
        self.preselect_centers = preselect_centers
        self.psg_node_limit = psg_node_limit
        self.seed = seed
        self.backend = backend
        self.workers = 1 if workers is None else workers
        self.executor = make_executor(executor, workers)
        self._plain_factory, self._distance_factory = BACKENDS[backend]

    # -- phase 1 --------------------------------------------------------
    def partition(self) -> Partitioning:
        """Split the document-level graph (always in the parent)."""
        collection = self.collection
        weight_fn = None
        if self.edge_weight in ("AxD", "A+D") and collection.inter_links:
            weight_fn = connection_edge_weight(collection, mode=self.edge_weight)
        if self.partitioner == "single":
            return single_document_partitioning(collection)
        if self.partitioner == "node_weight":
            limit = self.partition_limit or max(collection.num_elements // 8, 1)
            return partition_by_node_weight(
                collection, limit, edge_weight=weight_fn, seed=self.seed
            )
        limit = self.partition_limit or max(collection.num_elements * 20, 1000)
        return partition_by_closure_size(
            collection, limit, edge_weight=weight_fn, seed=self.seed
        )

    # -- phase 2 --------------------------------------------------------
    def partition_tasks(self, partitioning: Partitioning) -> List[PartitionTask]:
        """Extract each partition's element graph into a compact task."""
        collection = self.collection
        cross_targets: Dict[int, List[ElementId]] = {}
        if self.preselect_centers:
            for _, v in partitioning.cross_links:
                pid = partitioning.part_of[collection.doc(v)]
                cross_targets.setdefault(pid, []).append(v)
        tasks = []
        for pid, docs in enumerate(partitioning.partitions):
            graph = collection.subcollection(docs).element_graph()
            tasks.append(
                PartitionTask(
                    pid=pid,
                    nodes=tuple(graph.nodes()),
                    edges=tuple(graph.edges()),
                    preselected=tuple(sorted(cross_targets.get(pid, []))),
                    distance=self.distance,
                )
            )
        return tasks

    def build_partition_covers(
        self, tasks: Sequence[PartitionTask]
    ) -> List[PartitionResult]:
        """Run phase 2 through the configured executor."""
        factory = self._distance_factory if self.distance else self._plain_factory
        return self.executor.run(
            tasks, cover_factory=factory, to_backend=self.backend
        )

    # -- phase 3 --------------------------------------------------------
    def join(self, partitioning: Partitioning, partition_covers: Sequence) -> object:
        """Merge the partition covers along the cross-partition links."""
        if self.distance:
            # Section 5 notes the build algorithms carry over; the
            # recursive join's H̄ has no distance analogue in the paper,
            # so distance builds use the incremental join to a fixpoint.
            return join_covers_incremental_distance(
                partition_covers,
                partitioning.cross_links,
                cover_factory=self._distance_factory,
            )
        if self.strategy == "incremental":
            return join_covers_incremental(
                partition_covers,
                partitioning.cross_links,
                cover_factory=self._plain_factory,
            )
        return join_covers_recursive(
            self.collection,
            partitioning,
            partition_covers,
            psg_node_limit=self.psg_node_limit,
            cover_factory=self._plain_factory,
        )

    # -- the whole flow -------------------------------------------------
    def run(self):
        """Execute all phases; returns ``(cover, BuildStats)``."""
        from repro.core.hopi import BuildStats
        from repro.core.cover_builder import build_cover
        from repro.core.distance import build_distance_cover

        start = time.perf_counter()
        if self.strategy == "unpartitioned":
            graph = self.collection.element_graph()
            if self.distance:
                cover = build_distance_cover(
                    graph, cover_factory=self._distance_factory
                )
            else:
                cover = build_cover(graph, cover_factory=self._plain_factory)
            stats = BuildStats(
                strategy=self.strategy,
                partitioner=None,
                partition_limit=None,
                edge_weight=self.edge_weight,
                distance=self.distance,
                num_partitions=1,
                num_cross_links=0,
                cover_size=cover.size,
                num_nodes=len(cover.nodes),
                seconds_total=time.perf_counter() - start,
                backend=self.backend,
                workers=1,
                executor="serial",
            )
            return cover, stats

        t0 = time.perf_counter()
        partitioning = self.partition()
        tasks = self.partition_tasks(partitioning)
        seconds_partitioning = time.perf_counter() - t0

        t0 = time.perf_counter()
        results = self.build_partition_covers(tasks)
        seconds_partition_covers = time.perf_counter() - t0

        t0 = time.perf_counter()
        cover = self.join(partitioning, [r.cover for r in results])
        seconds_join = time.perf_counter() - t0

        stats = BuildStats(
            strategy=self.strategy,
            partitioner=self.partitioner,
            partition_limit=self.partition_limit,
            edge_weight=self.edge_weight,
            distance=self.distance,
            num_partitions=partitioning.num_partitions,
            num_cross_links=len(partitioning.cross_links),
            cover_size=cover.size,
            num_nodes=len(cover.nodes),
            seconds_total=time.perf_counter() - start,
            backend=self.backend,
            workers=self.workers,
            executor=self.executor.name,
            seconds_partitioning=seconds_partitioning,
            seconds_partition_covers=seconds_partition_covers,
            seconds_join=seconds_join,
            partition_cover_seconds=[r.seconds for r in results],
        )
        return cover, stats
