"""Partitioning the document-level graph (Sections 3.3 and 4.3).

HOPI never materialises the closure of the whole collection; it
partitions the *document-level* graph so that every partition's
element-level transitive closure fits in memory, covers each partition
independently, and joins the covers (:mod:`repro.core.join`).

Two partitioners are implemented:

* :func:`partition_by_node_weight` — the **original** (EDBT 2004)
  algorithm: documents are greedily grown into partitions around random
  seeds, "conservatively limiting the sum of node weights within a single
  partition and minimizing the weight of cross-partition edges". The
  node weight of a document is its element count; the default edge
  weight is the number of links between the two documents. Table 2's
  ``P5 .. P50`` rows use this partitioner with different node limits.

* :func:`partition_by_closure_size` — the **new** (Section 4.3)
  algorithm: while growing a partition it keeps recomputing the actual
  transitive-closure size of the partition's element graph and only
  "continues with the next partition when the transitive closure is as
  large as the available memory". This yields partitions of balanced
  closure size (the paper's argument for near-linear parallel speedup)
  and far fewer, larger partitions than conservative node counting.
  Table 2's ``N10 .. N100`` rows use this partitioner.

Both accept a custom edge-weight function so the Section 4.3 ``A*D`` /
``A+D`` connection-based weights (computed on the skeleton graph, see
:mod:`repro.core.skeleton`) can be plugged in.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.graph.closure import ClosureBudgetExceeded, transitive_closure_size
from repro.graph.digraph import DiGraph
from repro.xmlmodel.model import Collection, DocId, Link

EdgeWeight = Callable[[DocId, DocId], float]


@dataclass
class Partitioning:
    """A partitioning ``P(X) = ({P1..Pm}, LP)`` of a collection.

    Attributes:
        partitions: disjoint document-id groups covering the collection.
        cross_links: ``LP`` — the element-level inter-document links whose
            endpoints lie in different partitions.
        part_of: the partition map ``part: D -> {P1..Pm}`` as indexes
            into ``partitions``.
    """

    partitions: List[List[DocId]]
    cross_links: List[Link] = field(default_factory=list)
    part_of: Dict[DocId, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.part_of:
            self.part_of = {
                d: i for i, docs in enumerate(self.partitions) for d in docs
            }

    @property
    def num_partitions(self) -> int:
        """``m`` — how many partitions the collection was split into."""
        return len(self.partitions)

    def partition_of_element(self, collection: Collection, eid: int) -> int:
        """The index of the partition holding element ``eid``'s document."""
        return self.part_of[collection.doc(eid)]


def compute_cross_links(
    collection: Collection, part_of: Dict[DocId, int]
) -> List[Link]:
    """The links of ``L`` whose documents lie in different partitions."""
    return [
        (u, v)
        for (u, v) in sorted(collection.inter_links)
        if part_of[collection.doc(u)] != part_of[collection.doc(v)]
    ]


def link_count_edge_weight(collection: Collection) -> EdgeWeight:
    """The original edge weight: number of links between two documents."""
    counts = collection.document_link_counts()

    def weight(a: DocId, b: DocId) -> float:
        return float(counts.get((a, b), 0) + counts.get((b, a), 0))

    return weight


def _grow_partition(
    doc_graph: DiGraph,
    seed_doc: DocId,
    unassigned: Set[DocId],
    edge_weight: EdgeWeight,
    can_add: Callable[[DocId], bool],
) -> List[DocId]:
    """Greedy graph-growing: repeatedly absorb the unassigned neighbour
    with the heaviest connecting weight while ``can_add`` allows it."""
    partition = [seed_doc]
    members: Set[DocId] = {seed_doc}
    unassigned.discard(seed_doc)
    # frontier: candidate -> accumulated connecting weight
    frontier: Dict[DocId, float] = {}

    def extend_frontier(doc: DocId) -> None:
        for nb in set(doc_graph.successors(doc)) | set(doc_graph.predecessors(doc)):
            if nb in members or nb not in unassigned:
                continue
            frontier[nb] = frontier.get(nb, 0.0) + edge_weight(doc, nb)

    extend_frontier(seed_doc)
    while frontier:
        # heaviest edge first; deterministic tiebreak on the doc id
        candidate = max(frontier, key=lambda d: (frontier[d], str(d)))
        del frontier[candidate]
        if candidate not in unassigned:
            continue
        if not can_add(candidate):
            continue
        partition.append(candidate)
        members.add(candidate)
        unassigned.discard(candidate)
        extend_frontier(candidate)
    return partition


def partition_by_node_weight(
    collection: Collection,
    max_nodes: int,
    *,
    edge_weight: Optional[EdgeWeight] = None,
    seed: int = 0,
) -> Partitioning:
    """The original randomized partitioner (Section 3.3).

    Args:
        collection: the collection to partition.
        max_nodes: conservative limit on the sum of document node weights
            (element counts) per partition; the paper's ``Px`` runs use
            ``x * 10^4``.
        edge_weight: cross-document edge weight to greedily maximise
            inside partitions (default: link counts).
        seed: seed for the randomized choice of partition seeds.
    """
    if max_nodes <= 0:
        raise ValueError("max_nodes must be positive")
    edge_weight = edge_weight or link_count_edge_weight(collection)
    rng = random.Random(seed)
    doc_graph = collection.document_graph()
    weights = collection.document_weights()
    unassigned: Set[DocId] = set(collection.documents)
    order = sorted(unassigned)
    rng.shuffle(order)

    partitions: List[List[DocId]] = []
    for doc in order:
        if doc not in unassigned:
            continue
        # running node-weight budget of the partition being grown
        cell = [weights[doc]]

        def can_add(candidate: DocId) -> bool:
            if cell[0] + weights[candidate] > max_nodes:
                return False
            cell[0] += weights[candidate]
            return True

        partitions.append(
            _grow_partition(doc_graph, doc, unassigned, edge_weight, can_add)
        )
    part_of = {d: i for i, docs in enumerate(partitions) for d in docs}
    return Partitioning(partitions, compute_cross_links(collection, part_of), part_of)


def partition_by_closure_size(
    collection: Collection,
    max_closure_connections: int,
    *,
    edge_weight: Optional[EdgeWeight] = None,
    seed: int = 0,
) -> Partitioning:
    """The new closure-size-aware partitioner (Section 4.3).

    While incrementally growing a partition, the transitive closure of
    the partition's element-level graph is recomputed (with early abort
    once it provably exceeds the budget) and the partition is closed as
    soon as the budget is reached. "This allows much more connections to
    be covered by the partition covers and reduces the number of
    cross-partition links."

    Documents are atomic: when a *single* document's element-level
    closure already exceeds the budget, the partitioner cannot split it
    further, so it falls back gracefully — the document becomes a
    singleton partition, and a single :class:`UserWarning` summarising
    every such document is emitted so the over-budget partitions are
    visible to the caller (each audit is budget-capped, and only
    singleton partitions pay it).

    Args:
        collection: the collection to partition.
        max_closure_connections: the memory budget expressed as a number
            of closure connections; the paper's ``Nx`` runs use
            ``x * 10^5``.
        edge_weight: cross-document edge weight (default: link counts;
            pass the skeleton-graph ``A*D`` weight for the paper's best
            variant).
        seed: seed for the randomized choice of partition seeds.
    """
    if max_closure_connections <= 0:
        raise ValueError("max_closure_connections must be positive")
    edge_weight = edge_weight or link_count_edge_weight(collection)
    rng = random.Random(seed)
    doc_graph = collection.document_graph()
    unassigned: Set[DocId] = set(collection.documents)
    order = sorted(unassigned)
    rng.shuffle(order)

    partitions: List[List[DocId]] = []
    oversized: List[DocId] = []
    for doc in order:
        if doc not in unassigned:
            continue
        current: List[DocId] = [doc]

        def can_add(candidate: DocId) -> bool:
            sub = collection.subcollection(current + [candidate])
            graph = sub.element_graph()
            try:
                transitive_closure_size(
                    graph, max_connections=max_closure_connections
                )
            except ClosureBudgetExceeded:
                return False
            current.append(candidate)
            return True

        grown = _grow_partition(
            doc_graph,
            doc,
            unassigned,
            edge_weight,
            can_add,
        )
        # _grow_partition tracked membership; `current` tracked closure
        partitions.append(grown)
        # Only a partition that stayed a singleton can be over budget
        # on its own (growth proves multi-document partitions fit), so
        # the audit for the fallback warning runs only on singletons —
        # and O(1) bounds dodge the closure pass when they decide: a
        # document with E elements has between E-1 (each non-root is
        # reached by its parent) and E*(E-1) (complete) connections.
        if len(grown) == 1:
            elements = collection.documents[doc].num_elements
            if elements - 1 > max_closure_connections:
                oversized.append(doc)
            elif elements * (elements - 1) > max_closure_connections:
                try:
                    transitive_closure_size(
                        collection.subcollection(grown).element_graph(),
                        max_connections=max_closure_connections,
                    )
                except ClosureBudgetExceeded:
                    oversized.append(doc)
    if oversized:
        warnings.warn(
            f"{len(oversized)} document(s) have a transitive closure "
            f"larger than the partition budget of "
            f"{max_closure_connections} connections "
            f"(e.g. {oversized[0]!r}); they were kept as over-budget "
            "singleton partitions — raise max_closure_connections (or "
            "partition_limit) to restore balanced partitions",
            UserWarning,
            stacklevel=2,
        )
    part_of = {d: i for i, docs in enumerate(partitions) for d in docs}
    return Partitioning(partitions, compute_cross_links(collection, part_of), part_of)


def single_document_partitioning(collection: Collection) -> Partitioning:
    """Every document its own partition — Table 2's "naive" ``single`` row."""
    partitions = [[d] for d in sorted(collection.documents)]
    part_of = {d: i for i, (d,) in enumerate(partitions)}
    return Partitioning(partitions, compute_cross_links(collection, part_of), part_of)


def partition_closure_sizes(
    collection: Collection, partitioning: Partitioning
) -> List[int]:
    """Closure size per partition — measures the balance the new
    partitioner is claimed to achieve (parallel speedup argument)."""
    sizes = []
    for docs in partitioning.partitions:
        graph = collection.subcollection(docs).element_graph()
        sizes.append(transitive_closure_size(graph))
    return sizes
