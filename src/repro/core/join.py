"""Joining partition covers (Sections 3.3 and 4.1).

After the divide step produced a 2-hop cover per partition, the covers
must be connected into one cover for the whole element-level graph.

* :func:`join_covers_incremental` — the **original** EDBT 2004
  algorithm (Section 3.3, Figure 2): starting from the component-wise
  union of the partition covers, every cross-partition link ``u -> v``
  is integrated one at a time, choosing ``v`` as center for all new
  connections: ``v`` is added to ``Lout`` of ``u`` and all current
  ancestors of ``u``, and to ``Lin`` of all current descendants of
  ``v``. This is simple but slow — the paper measured that "most of the
  time was spent joining the covers" — because ancestor/descendant sets
  are recomputed against the *growing* cover for every link.

* :func:`join_covers_recursive` — the **new structurally recursive**
  algorithm (Section 4.1, Theorem 1 / Corollary 1): build the
  partition-level skeleton graph (PSG), compute on it the cover ``H̄``
  (for every link source ``s``, the set of link targets reachable in the
  PSG; ``H̄in(t) = {t}`` is implicit), and distribute it with the
  supplementary cover ``Ĥ``: every partition-ancestor ``a`` of a link
  source ``s`` receives ``H̄out(s)`` into ``Lout(a)``, and every
  partition-descendant ``d`` of a link target ``t`` receives ``t`` into
  ``Lin(d)``. The final cover is the union of the partition covers,
  ``H̄`` and ``Ĥ``. When the PSG itself is too large its closure is
  computed with the recursive clustering variant.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence, Set

from repro.core.cover import DistanceTwoHopCover, TwoHopCover
from repro.core.partitioning import Partitioning
from repro.core.skeleton import (
    build_psg,
    psg_source_target_closure,
    psg_source_target_closure_partitioned,
)
from repro.xmlmodel.model import Collection, ElementId, Link


def insert_link(cover: TwoHopCover, u: ElementId, v: ElementId) -> int:
    """Integrate one link ``u -> v`` into a cover (Section 3.3, Figure 2).

    ``v`` serves as the center node for all newly created connections:
    it is added to ``Lout`` of ``u`` and of all ancestors of ``u`` in
    the *current* cover, and to ``Lin`` of all descendants of ``v``.
    (The paper also adds ``v`` to its own labels; under the implicit-
    self convention those entries are never stored.)

    Returns:
        The number of label entries added.
    """
    cover.add_node(u)
    cover.add_node(v)
    added = 0
    for a in cover.ancestors(u):
        if cover.add_lout(a, v):
            added += 1
    for d in cover.descendants(v):
        if cover.add_lin(d, v):
            added += 1
    return added


def join_covers_incremental(
    partition_covers: Sequence[TwoHopCover],
    cross_links: Iterable[Link],
    *,
    cover_factory: Callable[..., TwoHopCover] = TwoHopCover,
) -> TwoHopCover:
    """The original incremental join (Section 3.3).

    Args:
        partition_covers: one cover per partition (disjoint node sets).
        cross_links: the cross-partition links ``LP``.
        cover_factory: backend constructor for the merged cover.

    Returns:
        A 2-hop cover for the whole element-level graph.
    """
    merged = cover_factory()
    for cover in partition_covers:
        merged.union(cover)
    for u, v in cross_links:
        insert_link(merged, u, v)
    return merged


def join_covers_recursive(
    collection: Collection,
    partitioning: Partitioning,
    partition_covers: Sequence[TwoHopCover],
    *,
    psg_node_limit: Optional[int] = None,
    cover_factory: Callable[..., TwoHopCover] = TwoHopCover,
) -> TwoHopCover:
    """The new structurally recursive join (Section 4.1, Corollary 1).

    Args:
        collection: the collection (for the doc mapping).
        partitioning: the partitioning whose covers are joined.
        partition_covers: one cover per partition, aligned with
            ``partitioning.partitions``.
        psg_node_limit: when set and the PSG exceeds this many nodes,
            its source-to-target closure is computed with the recursive
            clustering variant (the paper: "if the PSG is too large, we
            partition it"); otherwise directly.
        cover_factory: backend constructor for the merged cover.

    Returns:
        The union of the partition covers, ``H̄`` and ``Ĥ`` — a 2-hop
        cover for ``G_E(X)`` by Corollary 1.
    """
    cross = partitioning.cross_links
    merged = cover_factory()
    for cover in partition_covers:
        merged.union(cover)
    if not cross:
        return merged

    sources: Set[ElementId] = {u for (u, _) in cross}
    targets: Set[ElementId] = {v for (_, v) in cross}

    def partition_descendants(pid: int, element: ElementId) -> Set[ElementId]:
        return partition_covers[pid].descendants(element)

    psg = build_psg(collection, partitioning, partition_descendants)
    if psg_node_limit is not None and len(psg) > psg_node_limit:
        hbar_out = psg_source_target_closure_partitioned(
            psg, targets, node_limit=psg_node_limit
        )
    else:
        hbar_out = psg_source_target_closure(psg, targets)

    # Ĥ: distribute H̄ to partition-level ancestors of sources and
    # partition-level descendants of targets. Ancestor/descendant sets
    # are taken from the *partition covers* (snapshot semantics).
    for s in sources:
        reach = hbar_out.get(s)
        if not reach:
            continue
        pid = partitioning.part_of[collection.doc(s)]
        for a in partition_covers[pid].ancestors(s):
            for t in reach:
                merged.add_lout(a, t)
    for t in targets:
        pid = partitioning.part_of[collection.doc(t)]
        for d in partition_covers[pid].descendants(t):
            merged.add_lin(d, t)
    return merged


# ---------------------------------------------------------------------------
# distance-aware joins (Section 5 notes the build process carries over)
# ---------------------------------------------------------------------------


def insert_link_distance(
    cover: DistanceTwoHopCover, u: ElementId, v: ElementId
) -> int:
    """Distance-aware variant of :func:`insert_link`.

    The new edge contributes paths ``a ->* u -> v ->* d``; ``v`` becomes
    a center with ``dout = dist(a, u) + 1`` on the ancestor side and
    ``din = dist(v, d)`` on the descendant side. Existing entries keep
    their distances; ``min`` at query time picks the shortest witness.

    Returns:
        The number of label entries added or improved.
    """
    cover.add_node(u)
    cover.add_node(v)
    changed = 0
    dist_to_u: Dict[ElementId, int] = {}
    for a in cover.ancestors(u):
        d = cover.distance(a, u)
        if d is not None:
            dist_to_u[a] = d
    dist_from_v: Dict[ElementId, int] = {}
    for d_node in cover.descendants(v):
        d = cover.distance(v, d_node)
        if d is not None:
            dist_from_v[d_node] = d
    for a, da in dist_to_u.items():
        if cover.add_lout(a, v, da + 1):
            changed += 1
    for d_node, dd in dist_from_v.items():
        if cover.add_lin(d_node, v, dd):
            changed += 1
    return changed


def join_covers_incremental_distance(
    partition_covers: Sequence[DistanceTwoHopCover],
    cross_links: Iterable[Link],
    *,
    cover_factory: Callable[..., DistanceTwoHopCover] = DistanceTwoHopCover,
) -> DistanceTwoHopCover:
    """Distance-aware incremental join.

    Correct when every cross-partition link is integrated exactly once
    and links are processed repeatedly until distances stabilise —
    integrating a link can shorten paths that earlier links' label
    entries already recorded, so the loop below iterates to a fixpoint
    (usually 1-2 rounds on citation-style graphs).
    """
    merged = cover_factory()
    for cover in partition_covers:
        merged.union(cover)
    links = list(cross_links)
    changed = True
    while changed:
        changed = False
        for u, v in links:
            if insert_link_distance(merged, u, v) > 0:
                changed = True
    return merged
