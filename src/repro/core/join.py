"""Joining partition covers (Sections 3.3 and 4.1).

After the divide step produced a 2-hop cover per partition, the covers
must be connected into one cover for the whole element-level graph.

* :func:`join_covers_incremental` — the **original** EDBT 2004
  algorithm (Section 3.3, Figure 2): starting from the component-wise
  union of the partition covers, every cross-partition link ``u -> v``
  is integrated one at a time, choosing ``v`` as center for all new
  connections: ``v`` is added to ``Lout`` of ``u`` and all current
  ancestors of ``u``, and to ``Lin`` of all current descendants of
  ``v``. This is simple but slow — the paper measured that "most of the
  time was spent joining the covers" — because ancestor/descendant sets
  are recomputed against the *growing* cover for every link.

* :func:`join_covers_recursive` — the **new structurally recursive**
  algorithm (Section 4.1, Theorem 1 / Corollary 1): build the
  partition-level skeleton graph (PSG), compute on it the cover ``H̄``
  (for every link source ``s``, the set of link targets reachable in the
  PSG; ``H̄in(t) = {t}`` is implicit), and distribute it with the
  supplementary cover ``Ĥ``: every partition-ancestor ``a`` of a link
  source ``s`` receives ``H̄out(s)`` into ``Lout(a)``, and every
  partition-descendant ``d`` of a link target ``t`` receives ``t`` into
  ``Lin(d)``. The final cover is the union of the partition covers,
  ``H̄`` and ``Ĥ``. When the PSG itself is too large its closure is
  computed with the recursive clustering variant.

* :func:`join_covers_recursive_parallel` — the same join with the
  distribution step **sharded by partition**: the ``Ĥ`` rule touches
  only one partition cover per link endpoint (ancestors of a source /
  descendants of a target come from *that* endpoint's partition cover,
  snapshot semantics), so after the tiny PSG closure is computed
  serially, disjoint groups of partitions become independent
  :class:`JoinShardTask`\\ s. Each shard worker produces its label
  deltas as a CSR snapshot blob (the PR-3 wire format) and the parent
  merges them — commutatively, so the result is identical for every
  shard count and executor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.cover import DistanceTwoHopCover, TwoHopCover
from repro.core.partitioning import Partitioning
from repro.core.skeleton import (
    build_psg,
    psg_source_target_closure,
    psg_source_target_closure_partitioned,
)
from repro.xmlmodel.model import Collection, ElementId, Link


def insert_link(cover: TwoHopCover, u: ElementId, v: ElementId) -> int:
    """Integrate one link ``u -> v`` into a cover (Section 3.3, Figure 2).

    ``v`` serves as the center node for all newly created connections:
    it is added to ``Lout`` of ``u`` and of all ancestors of ``u`` in
    the *current* cover, and to ``Lin`` of all descendants of ``v``.
    (The paper also adds ``v`` to its own labels; under the implicit-
    self convention those entries are never stored.)

    Endpoints whose labels are empty — nodes that were just added, or
    that no earlier link ever touched — have ``ancestors(u) == {u}``
    and ``descendants(v) == {v}`` by definition, so the (increasingly
    expensive) probes against the growing cover are skipped for them.

    Returns:
        The number of label entries added.
    """
    cover.add_node(u)
    cover.add_node(v)
    added = 0
    if cover.lin_of(u) or cover.nodes_with_lout_center(u):
        up = cover.ancestors(u)
    else:
        up = (u,)
    for a in up:
        if cover.add_lout(a, v):
            added += 1
    if cover.lout_of(v) or cover.nodes_with_lin_center(v):
        down = cover.descendants(v)
    else:
        down = (v,)  # only the implicit self, which is never stored
    for d in down:
        if cover.add_lin(d, v):
            added += 1
    return added


def join_covers_incremental(
    partition_covers: Sequence[TwoHopCover],
    cross_links: Iterable[Link],
    *,
    cover_factory: Callable[..., TwoHopCover] = TwoHopCover,
) -> TwoHopCover:
    """The original incremental join (Section 3.3).

    Args:
        partition_covers: one cover per partition (disjoint node sets).
        cross_links: the cross-partition links ``LP``.
        cover_factory: backend constructor for the merged cover.

    Returns:
        A 2-hop cover for the whole element-level graph.
    """
    merged = cover_factory()
    for cover in partition_covers:
        merged.absorb_disjoint(cover)
    for u, v in cross_links:
        insert_link(merged, u, v)
    return merged


def join_covers_recursive(
    collection: Collection,
    partitioning: Partitioning,
    partition_covers: Sequence[TwoHopCover],
    *,
    psg_node_limit: Optional[int] = None,
    cover_factory: Callable[..., TwoHopCover] = TwoHopCover,
) -> TwoHopCover:
    """The new structurally recursive join (Section 4.1, Corollary 1).

    Args:
        collection: the collection (for the doc mapping).
        partitioning: the partitioning whose covers are joined.
        partition_covers: one cover per partition, aligned with
            ``partitioning.partitions``.
        psg_node_limit: when set and the PSG exceeds this many nodes,
            its source-to-target closure is computed with the recursive
            clustering variant (the paper: "if the PSG is too large, we
            partition it"); otherwise directly.
        cover_factory: backend constructor for the merged cover.

    Returns:
        The union of the partition covers, ``H̄`` and ``Ĥ`` — a 2-hop
        cover for ``G_E(X)`` by Corollary 1.
    """
    cross = partitioning.cross_links
    merged = cover_factory()
    for cover in partition_covers:
        merged.absorb_disjoint(cover)
    if not cross:
        return merged

    sources: Set[ElementId] = {u for (u, _) in cross}
    targets: Set[ElementId] = {v for (_, v) in cross}
    hbar_out = _psg_closure(
        collection,
        partitioning,
        partition_covers,
        sources,
        targets,
        psg_node_limit=psg_node_limit,
    )

    # Ĥ: distribute H̄ to partition-level ancestors of sources and
    # partition-level descendants of targets. Ancestor/descendant sets
    # are taken from the *partition covers* (snapshot semantics).
    for s in sources:
        reach = hbar_out.get(s)
        if not reach:
            continue
        pid = partitioning.part_of[collection.doc(s)]
        for a in partition_covers[pid].ancestors(s):
            for t in reach:
                merged.add_lout(a, t)
    for t in targets:
        pid = partitioning.part_of[collection.doc(t)]
        for d in partition_covers[pid].descendants(t):
            merged.add_lin(d, t)
    return merged


def _psg_closure(
    collection: Collection,
    partitioning: Partitioning,
    partition_covers: Sequence[TwoHopCover],
    sources: Set[ElementId],
    targets: Set[ElementId],
    *,
    psg_node_limit: Optional[int] = None,
) -> Dict[ElementId, Set[ElementId]]:
    """Build the PSG and compute ``H̄out`` for the link sources.

    The shared serial prologue of both recursive joins — the paper
    calls the PSG "small", and it is: its node count is bounded by the
    cross-link endpoints, not the collection.
    """

    def partition_descendants(pid: int, element: ElementId) -> Set[ElementId]:
        return partition_covers[pid].descendants(element)

    psg = build_psg(collection, partitioning, partition_descendants)
    if psg_node_limit is not None and len(psg) > psg_node_limit:
        return psg_source_target_closure_partitioned(
            psg, targets, node_limit=psg_node_limit
        )
    return psg_source_target_closure(psg, targets, sources=sources)


# ---------------------------------------------------------------------------
# the parallel distribution step (sharded Ĥ)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinShardTask:
    """The ``Ĥ`` distribution work of one group of partitions, as plain
    picklable data (the join analogue of ``PartitionTask``).

    Attributes:
        shard_id: dense shard index (also the deterministic merge key).
        covers: ``(pid, CSR snapshot blob)`` for every partition cover
            this shard reads ancestors/descendants from.
        sources: ``(s, pid, H̄out(s))`` triples for link sources whose
            partition belongs to this shard.
        targets: ``(t, pid)`` pairs for link targets whose partition
            belongs to this shard.
    """

    shard_id: int
    covers: Tuple[Tuple[int, bytes], ...]
    sources: Tuple[Tuple[ElementId, int, Tuple[ElementId, ...]], ...]
    targets: Tuple[Tuple[ElementId, int], ...]


@dataclass
class ParallelJoinStats:
    """Per-phase accounting of one parallel join."""

    shards: int = 1
    seconds_union: float = 0.0
    seconds_psg: float = 0.0
    seconds_distribute: float = 0.0
    shard_seconds: List[float] = field(default_factory=list)


def _join_shard_worker(task: JoinShardTask) -> Tuple[int, bytes, float]:
    """Executor entry point: apply one shard's ``Ĥ`` label deltas.

    Runs in a worker (thread, process or RPC daemon). Ancestor and
    descendant sets are read from the shard's pristine partition covers
    first (the serial join's snapshot semantics — distribution never
    observes its own insertions), accumulated as C-speed set unions.
    The shard's partition covers and the deltas are then merged into
    **one** shard cover whose interner is label-sorted, returned as a
    CSR snapshot blob: label-sorted interners are subsets of the
    parent's sorted global id space, so every id remap along the way —
    partition blob → shard cover → merged cover — is monotone, and no
    row is ever re-sorted outside the worker.
    """
    from repro.core.array_cover import ArrayTwoHopCover
    from repro.storage.snapshot import snapshot_from_bytes, snapshot_to_bytes

    t0 = time.perf_counter()
    covers = {pid: snapshot_from_bytes(blob) for pid, blob in task.covers}
    lout_adds: Dict[ElementId, Set[ElementId]] = {}
    lin_adds: Dict[ElementId, Set[ElementId]] = {}
    for s, pid, reach in task.sources:
        reach_set = set(reach)
        for a in covers[pid].ancestors(s):
            acc = lout_adds.get(a)
            if acc is None:
                lout_adds[a] = set(reach_set)
            else:
                acc |= reach_set
    for t, pid in task.targets:
        for d in covers[pid].descendants(t):
            lin_adds.setdefault(d, set()).add(t)

    labels: Set[ElementId] = set()
    for cover in covers.values():
        labels.update(cover.interner)
    for adds in (lout_adds, lin_adds):
        for centers in adds.values():
            labels.update(centers)
    shard = ArrayTwoHopCover()
    shard.preintern_sorted(labels)
    for pid in sorted(covers):
        shard.absorb_disjoint(covers[pid])
    for adds, add in ((lout_adds, shard.add_lout), (lin_adds, shard.add_lin)):
        for node, centers in adds.items():
            for c in centers:
                add(node, c)
    return task.shard_id, snapshot_to_bytes(shard), time.perf_counter() - t0


def make_join_shard_tasks(
    collection: Collection,
    partitioning: Partitioning,
    partition_covers: Sequence[TwoHopCover],
    hbar_out: Dict[ElementId, Set[ElementId]],
    sources: Set[ElementId],
    targets: Set[ElementId],
    join_shards: int,
    *,
    partition_blobs: Optional[Dict[int, bytes]] = None,
) -> List[JoinShardTask]:
    """Group the distribution work by partition into shard tasks.

    Partitions with any distribution work are packed onto
    ``join_shards`` shards with a deterministic LPT heuristic — pids
    sorted by estimated distribution work (Σ ``|H̄out|`` over their
    sources plus a per-target descendant-fanout proxy), heaviest
    first, each onto the least-loaded shard — so shard walls stay
    balanced even when one partition carries most of the cross links.
    Each shard task carries the snapshot blobs of exactly the
    partition covers it touches — re-using ``partition_blobs`` (the
    phase-2 wire payloads a parallel executor already produced) when
    available. Empty shards are dropped.
    """
    from repro.core.array_cover import ArrayTwoHopCover
    from repro.storage.snapshot import snapshot_to_bytes

    by_pid_sources: Dict[int, List[Tuple[ElementId, int, Tuple[ElementId, ...]]]] = {}
    by_pid_targets: Dict[int, List[Tuple[ElementId, int]]] = {}
    for s in sorted(sources):
        reach = hbar_out.get(s)
        if not reach:
            continue
        pid = partitioning.part_of[collection.doc(s)]
        by_pid_sources.setdefault(pid, []).append((s, pid, tuple(sorted(reach))))
    for t in sorted(targets):
        pid = partitioning.part_of[collection.doc(t)]
        by_pid_targets.setdefault(pid, []).append((t, pid))

    def estimated_work(pid: int) -> int:
        fanout = max(
            len(partition_covers[pid].nodes)
            // max(len(partitioning.partitions[pid]), 1),
            1,
        )
        return sum(
            len(reach) for (_, _, reach) in by_pid_sources.get(pid, ())
        ) + fanout * len(by_pid_targets.get(pid, ()))

    active_pids = sorted(by_pid_sources.keys() | by_pid_targets.keys())
    shard_pids: List[List[int]] = [[] for _ in range(max(join_shards, 1))]
    loads = [0] * len(shard_pids)
    for pid in sorted(active_pids, key=lambda p: (-estimated_work(p), p)):
        lightest = loads.index(min(loads))
        shard_pids[lightest].append(pid)
        loads[lightest] += estimated_work(pid)
    for pids in shard_pids:
        pids.sort()

    blob_cache: Dict[int, bytes] = dict(partition_blobs or {})

    def blob_of(pid: int) -> bytes:
        if pid not in blob_cache:
            cover = partition_covers[pid]
            if not isinstance(cover, ArrayTwoHopCover):
                cover = ArrayTwoHopCover.from_cover(cover)
            blob_cache[pid] = snapshot_to_bytes(cover)
        return blob_cache[pid]

    tasks: List[JoinShardTask] = []
    for pids in shard_pids:
        if not pids:
            continue
        tasks.append(
            JoinShardTask(
                shard_id=len(tasks),
                covers=tuple((pid, blob_of(pid)) for pid in pids),
                sources=tuple(
                    item for pid in pids for item in by_pid_sources.get(pid, ())
                ),
                targets=tuple(
                    item for pid in pids for item in by_pid_targets.get(pid, ())
                ),
            )
        )
    return tasks


def pack_universe(covers: Sequence[TwoHopCover]) -> bytes:
    """The sorted global label table of ``covers``, packed as int64.

    The shared id space of the parallel join: the parent preinterns it,
    every shard builds its result in it, and the assembly needs no id
    translation. Empty when any cover holds non-integer labels (those
    never reach the snapshot wire format anyway).
    """
    from array import array as _array

    labels: Set[ElementId] = set()
    for cover in covers:
        interner = getattr(cover, "interner", None)
        labels.update(interner if interner is not None else cover.nodes)
    if not all(isinstance(lab, int) for lab in labels):
        return b""
    return _array("q", sorted(labels)).tobytes()


def join_covers_recursive_parallel(
    collection: Collection,
    partitioning: Partitioning,
    partition_covers: Sequence[TwoHopCover],
    *,
    executor,
    join_shards: int,
    psg_node_limit: Optional[int] = None,
    cover_factory: Callable[..., TwoHopCover] = TwoHopCover,
    partition_blobs: Optional[Dict[int, bytes]] = None,
) -> Tuple[TwoHopCover, ParallelJoinStats]:
    """:func:`join_covers_recursive` with a sharded distribution step.

    The serial prologue (PSG closure) stays in the parent — the paper
    notes the PSG is small; the quadratic ancestor × reach distribution
    is fanned out over ``executor`` as :class:`JoinShardTask`\\ s, whose
    workers bake their deltas into their own partition covers. The
    parent then assembles the merged cover from the updated (or
    untouched) partition covers with block-copy absorbs — no per-entry
    replay. Shards only ever add the same label entries the serial
    join adds, so the merged cover is bit-identical for every shard
    count and executor.

    Returns:
        ``(cover, ParallelJoinStats)``.
    """
    from repro.storage.snapshot import snapshot_from_bytes

    stats = ParallelJoinStats(shards=max(join_shards, 1))
    cross = partitioning.cross_links
    merged = cover_factory()
    preintern = getattr(merged, "preintern_sorted", None)
    shard_covers: List[TwoHopCover] = []
    sharded_pids: Set[int] = set()
    universe = b""
    if cross:
        sources: Set[ElementId] = {u for (u, _) in cross}
        targets: Set[ElementId] = {v for (_, v) in cross}
        t0 = time.perf_counter()
        hbar_out = _psg_closure(
            collection,
            partitioning,
            partition_covers,
            sources,
            targets,
            psg_node_limit=psg_node_limit,
        )
        stats.seconds_psg = time.perf_counter() - t0

        t0 = time.perf_counter()
        if preintern is not None:  # only the array assembly uses it
            universe = pack_universe(partition_covers)
        tasks = make_join_shard_tasks(
            collection, partitioning, partition_covers,
            hbar_out, sources, targets, join_shards,
            partition_blobs=partition_blobs,
        )
        for task in tasks:
            sharded_pids.update(pid for pid, _ in task.covers)
        results = sorted(executor.map_join(tasks), key=lambda r: r[0])
        for _, blob, seconds in results:
            stats.shard_seconds.append(seconds)
            shard_covers.append(snapshot_from_bytes(blob))
        stats.seconds_distribute = time.perf_counter() - t0

    t0 = time.perf_counter()
    if shard_covers and universe and preintern is not None:
        # share the workers' global id space: shard covers then absorb
        # with *no* id translation, untouched partitions via monotone
        # remaps — pure block copies either way
        from array import array as _array

        labels = _array("q")
        labels.frombytes(universe)
        preintern(labels)
    for cover in shard_covers:
        merged.absorb_disjoint(cover)
    for pid, cover in enumerate(partition_covers):
        if pid not in sharded_pids:
            merged.absorb_disjoint(cover)
    stats.seconds_union = time.perf_counter() - t0
    return merged, stats


# ---------------------------------------------------------------------------
# distance-aware joins (Section 5 notes the build process carries over)
# ---------------------------------------------------------------------------


def insert_link_distance(
    cover: DistanceTwoHopCover, u: ElementId, v: ElementId
) -> int:
    """Distance-aware variant of :func:`insert_link`.

    The new edge contributes paths ``a ->* u -> v ->* d``; ``v`` becomes
    a center with ``dout = dist(a, u) + 1`` on the ancestor side and
    ``din = dist(v, d)`` on the descendant side. Existing entries keep
    their distances; ``min`` at query time picks the shortest witness.

    Returns:
        The number of label entries added or improved.
    """
    cover.add_node(u)
    cover.add_node(v)
    changed = 0
    dist_to_u: Dict[ElementId, int] = {}
    for a in cover.ancestors(u):
        d = cover.distance(a, u)
        if d is not None:
            dist_to_u[a] = d
    dist_from_v: Dict[ElementId, int] = {}
    for d_node in cover.descendants(v):
        d = cover.distance(v, d_node)
        if d is not None:
            dist_from_v[d_node] = d
    for a, da in dist_to_u.items():
        if cover.add_lout(a, v, da + 1):
            changed += 1
    for d_node, dd in dist_from_v.items():
        if cover.add_lin(d_node, v, dd):
            changed += 1
    return changed


def join_covers_incremental_distance(
    partition_covers: Sequence[DistanceTwoHopCover],
    cross_links: Iterable[Link],
    *,
    cover_factory: Callable[..., DistanceTwoHopCover] = DistanceTwoHopCover,
) -> DistanceTwoHopCover:
    """Distance-aware incremental join.

    Correct when every cross-partition link is integrated exactly once
    and links are processed repeatedly until distances stabilise —
    integrating a link can shorten paths that earlier links' label
    entries already recorded, so the loop below iterates to a fixpoint
    (usually 1-2 rounds on citation-style graphs).
    """
    merged = cover_factory()
    for cover in partition_covers:
        merged.absorb_disjoint(cover)
    links = list(cross_links)
    changed = True
    while changed:
        changed = False
        for u, v in links:
            if insert_link_distance(merged, u, v) > 0:
                changed = True
    return merged
