"""The HOPI index facade.

:class:`HopiIndex` ties the whole pipeline together: partition the
document-level graph, cover every partition, join the covers, and answer
reachability / distance / ancestor / descendant queries, with
incremental maintenance keeping the index in sync with collection
updates.

Build strategies (``HopiIndex.build``):

========================  =====================================================
``strategy``              meaning
========================  =====================================================
``"unpartitioned"``       one global cover (Section 7.2's 45h/80GB baseline —
                          best compression, worst build cost)
``"incremental"``         divide-and-conquer with the *original* link-at-a-time
                          cover join (Section 3.3; Table 2's "baseline" row)
``"recursive"``           divide-and-conquer with the *new* structurally
                          recursive PSG join (Section 4.1; the paper's
                          contribution, Table 2's P/N rows)
========================  =====================================================

Partitioners (``partitioner``): ``"node_weight"`` (original, Section 3.3
— Table 2's ``Px`` rows with ``partition_limit`` = max elements),
``"closure"`` (new, Section 4.3 — ``Nx`` rows with ``partition_limit`` =
max closure connections), ``"single"`` (one document per partition —
Table 2's "single" row).

Edge weights (``edge_weight``): ``"links"`` (original link counts),
``"AxD"`` / ``"A+D"`` (Section 4.3's connection-based weights estimated
on the skeleton graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Set, Union

from repro.core import maintenance as maint
from repro.core.array_cover import ArrayDistanceCover, ArrayTwoHopCover
from repro.core.cover import DistanceTwoHopCover, TwoHopCover
from repro.core.stats import IndexSizeReport
from repro.core.vector_cover import VectorDistanceCover, VectorTwoHopCover
from repro.graph.closure import distance_closure, transitive_closure
from repro.xmlmodel.model import Collection, DocId, ElementId

Cover = Union[TwoHopCover, DistanceTwoHopCover, ArrayTwoHopCover, ArrayDistanceCover]

#: label backends: name -> (reachability factory, distance factory)
BACKENDS = {
    "sets": (TwoHopCover, DistanceTwoHopCover),
    "arrays": (ArrayTwoHopCover, ArrayDistanceCover),
    "vector": (VectorTwoHopCover, VectorDistanceCover),
}


def backend_of(cover: Cover) -> str:
    """The backend name a cover instance belongs to."""
    # the vector covers subclass the array covers — test them first
    if isinstance(cover, (VectorTwoHopCover, VectorDistanceCover)):
        return "vector"
    return "arrays" if isinstance(cover, (ArrayTwoHopCover, ArrayDistanceCover)) else "sets"


def convert_cover(cover: Cover, backend: str) -> Cover:
    """Re-represent a cover under another label backend (same semantics)."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; one of {tuple(BACKENDS)}")
    if backend_of(cover) == backend:
        return cover
    plain_factory, distance_factory = BACKENDS[backend]
    factory = distance_factory if cover.is_distance_aware else plain_factory
    converter = getattr(factory, "from_cover", None)
    if converter is not None:  # batch path (array backends)
        return converter(cover)
    fresh = factory(cover.nodes)
    if cover.is_distance_aware:
        for kind, node, center, dist in cover.entries():
            (fresh.add_lin if kind == "in" else fresh.add_lout)(node, center, dist)
    else:
        for kind, node, center in cover.entries():
            (fresh.add_lin if kind == "in" else fresh.add_lout)(node, center)
    return fresh


@dataclass
class BuildStats:
    """Timing and size accounting of one index build (Table 2 columns)."""

    strategy: str
    partitioner: Optional[str]
    partition_limit: Optional[int]
    edge_weight: str
    distance: bool
    num_partitions: int
    num_cross_links: int
    cover_size: int
    num_nodes: int
    seconds_total: float
    backend: str = "sets"
    workers: int = 1
    executor: str = "serial"
    seconds_partitioning: float = 0.0
    seconds_partition_covers: float = 0.0
    seconds_join: float = 0.0
    partition_cover_seconds: List[float] = field(default_factory=list)
    partition_closure_connections: List[int] = field(default_factory=list)
    #: parallel-join accounting (join_shards == 1 means the serial join
    #: ran and the per-phase join fields stay zero)
    join_shards: int = 1
    seconds_join_union: float = 0.0
    seconds_join_psg: float = 0.0
    seconds_join_distribute: float = 0.0
    join_shard_seconds: List[float] = field(default_factory=list)

    @property
    def parallel_makespan(self) -> float:
        """Simulated perfectly-parallel partition-cover phase: the paper
        notes all partition covers "can be done concurrently", so the
        phase's wall-clock lower bound is the slowest partition."""
        longest = max(self.partition_cover_seconds, default=0.0)
        return self.seconds_partitioning + longest + self.seconds_join


class HopiIndex:
    """A built HOPI index over an XML collection."""

    def __init__(
        self,
        collection: Collection,
        cover: Cover,
        *,
        stats: Optional[BuildStats] = None,
    ) -> None:
        self.collection = collection
        self.cover = cover
        self.stats = stats
        #: monotone change counter: bumped once per completed maintenance
        #: operation (and per rebuild). The service layer keys caches by
        #: it and uses it as the published version of a hot-swapped index.
        self.epoch = 0
        self._change_hooks: List[Callable[["HopiIndex", Optional[maint.MaintenanceReport]], None]] = []

    # ------------------------------------------------------------------
    # change tracking
    # ------------------------------------------------------------------
    def add_change_hook(
        self, hook: Callable[["HopiIndex", Optional[maint.MaintenanceReport]], None]
    ) -> None:
        """Register ``hook(index, report)`` to fire after every
        maintenance operation and rebuild (``report`` is ``None`` for
        rebuilds). Hooks run on the mutating thread, after the cover and
        collection are consistent again and the epoch has been bumped."""
        self._change_hooks.append(hook)

    def remove_change_hook(self, hook) -> None:
        """Unregister a hook added with :meth:`add_change_hook`."""
        self._change_hooks.remove(hook)

    def _bump_epoch_hook(self, report: Optional[maint.MaintenanceReport]) -> None:
        self.epoch += 1
        for hook in self._change_hooks:
            hook(self, report)

    def copy(self) -> "HopiIndex":
        """A structurally independent copy (shadow) of the index.

        Collection and cover are deep-copied; maintenance on the copy
        never touches the original — the basis of the service layer's
        epoch-based hot-swap (writers mutate a shadow, readers keep the
        published index). The copy starts with the same epoch and no
        change hooks.
        """
        dup = HopiIndex(self.collection.copy(), self.cover.copy(), stats=self.stats)
        dup.epoch = self.epoch
        dup._probe_costs = getattr(self, "_probe_costs", None)
        return dup

    def cow_copy(self) -> "HopiIndex":
        """A copy-on-write shadow of the index.

        Observationally identical to :meth:`copy` but O(nodes) instead
        of O(index): the collection is forked lazily (documents are
        deep-copied only when a maintenance op touches them) and the
        cover shares unchanged label rows with the published epoch
        (:meth:`~repro.core.cover.CoverProtocol.cow_copy`). Both sides
        stay safe to mutate — the first write to shared state on either
        side privatises it first. Like :meth:`copy`, the shadow starts
        with the same epoch and no change hooks.
        """
        dup = HopiIndex(
            self.collection.fork(), self.cover.cow_copy(), stats=self.stats
        )
        dup.epoch = self.epoch
        dup._probe_costs = getattr(self, "_probe_costs", None)
        return dup

    @property
    def backend(self) -> str:
        """The label backend the cover lives in (``sets`` or ``arrays``)."""
        return backend_of(self.cover)

    def with_backend(self, backend: str) -> "HopiIndex":
        """Return an index whose cover uses ``backend`` (self if already)."""
        converted = convert_cover(self.cover, backend)
        if converted is self.cover:
            return self
        stats = replace(self.stats, backend=backend) if self.stats else None
        twin = HopiIndex(self.collection, converted, stats=stats)
        twin.epoch = self.epoch
        return twin

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        collection: Collection,
        *,
        strategy: str = "recursive",
        partitioner: str = "closure",
        partition_limit: Optional[int] = None,
        edge_weight: str = "links",
        distance: bool = False,
        preselect_centers: bool = True,
        psg_node_limit: Optional[int] = None,
        seed: int = 0,
        backend: str = "sets",
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        rpc_workers: Optional[List[str]] = None,
        join_shards: Optional[int] = None,
        calibrate_costs: bool = False,
    ) -> "HopiIndex":
        """Build a HOPI index.

        A thin wrapper over :class:`repro.core.pipeline.BuildPipeline`,
        which owns the partition → per-partition cover → join flow.

        Args:
            collection: the XML collection to index.
            strategy: ``"unpartitioned"``, ``"incremental"`` or
                ``"recursive"`` (see module docstring).
            partitioner: ``"node_weight"``, ``"closure"`` or ``"single"``
                (CLI aliases ``node-weight`` / ``closure-size`` accepted).
            partition_limit: max elements per partition
                (``node_weight``) or max closure connections
                (``closure``); sensible defaults are derived from the
                collection when omitted.
            edge_weight: ``"links"``, ``"AxD"`` or ``"A+D"``.
            distance: build a distance-aware cover (Section 5).
            preselect_centers: apply Section 4.2's center preselection
                (cross-partition link targets become centers first).
            psg_node_limit: threshold above which the PSG closure is
                computed with the recursive clustering variant.
            seed: partitioner seed.
            backend: label backend — ``"sets"`` (dict-of-sets over raw
                node ids) or ``"arrays"`` (interned dense ids + sorted
                arrays); identical answers, different representation.
            workers: size of the worker pool covering partitions
                concurrently (the paper's Section-4 parallel build);
                ``None``/1 builds serially. Covers are bit-identical
                for every worker count.
            executor: ``"serial"``, ``"process"``, ``"threads"`` or
                ``"rpc"``; defaults to ``"process"`` when
                ``workers > 1`` (``"rpc"`` when ``rpc_workers`` given).
            rpc_workers: ``host:port`` addresses of ``repro
                build-worker`` daemons for the rpc executor.
            join_shards: shard count for the recursive join's parallel
                distribution step (default: the worker count; 1 =
                serial join). Covers are bit-identical for every value.
            calibrate_costs: micro-benchmark forward vs backward probe
                costs on the freshly built index and pin the measured
                planner cost model (see
                :func:`repro.query.cost.calibrate_probe_costs`);
                False keeps the backend's static default table, so
                plans stay deterministic across runs.
        """
        from repro.core.pipeline import BuildPipeline

        pipeline = BuildPipeline(
            collection,
            strategy=strategy,
            partitioner=partitioner,
            partition_limit=partition_limit,
            edge_weight=edge_weight,
            distance=distance,
            preselect_centers=preselect_centers,
            psg_node_limit=psg_node_limit,
            seed=seed,
            backend=backend,
            workers=workers,
            executor=executor,
            rpc_workers=rpc_workers,
            join_shards=join_shards,
        )
        cover, stats = pipeline.run()
        index = cls(collection, cover, stats=stats)
        if calibrate_costs:
            index.calibrate_probe_costs()
        return index

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def is_distance_aware(self) -> bool:
        """Whether the cover stores distances (Section 5 flavour)."""
        return self.cover.is_distance_aware

    def connected(self, u: ElementId, v: ElementId) -> bool:
        """Reachability test ``u ->* v`` along ancestor/descendant/link axes."""
        return self.cover.connected(u, v)

    def connected_many(self, u: ElementId, candidates) -> List[bool]:
        """Batched ``[connected(u, c) for c in candidates]``.

        The descendant-step hot path of the query engine: the array
        backend answers the whole batch from one descendant-set
        materialisation over dense ids.
        """
        return self.cover.connected_many(u, candidates)

    def intersect_many(self, sources, candidates) -> List[List[int]]:
        """For each source, the sorted indices into ``candidates`` it
        reaches — the block-probe API of the query executor.

        The vector backend answers the whole block from one candidate
        translation; other backends fall back to one
        :meth:`connected_many` per source (identical answers).
        """
        batch = getattr(self.cover, "intersect_many", None)
        if batch is not None:
            return batch(sources, candidates)
        out: List[List[int]] = []
        for u in sources:
            flags = self.cover.connected_many(u, candidates)
            out.append([i for i, ok in enumerate(flags) if ok])
        return out

    @property
    def probe_costs(self):
        """The per-direction probe cost model planners should use.

        Defaults to the backend's static table
        (:data:`repro.query.cost.DEFAULT_COST_MODELS`); an explicit
        :meth:`calibrate_probe_costs` replaces it with measured
        constants. Not persisted — a loaded index starts from the
        defaults again.
        """
        model = getattr(self, "_probe_costs", None)
        if model is not None:
            return model
        from repro.query.cost import default_cost_model

        return default_cost_model(self.backend)

    def calibrate_probe_costs(self, **kwargs):
        """Micro-benchmark forward vs backward probes on this index and
        pin the measured :class:`~repro.query.cost.ProbeCostModel`
        (see :func:`repro.query.cost.calibrate_probe_costs`)."""
        from repro.query.cost import calibrate_probe_costs

        self._probe_costs = calibrate_probe_costs(self, **kwargs)
        return self._probe_costs

    def distance(self, u: ElementId, v: ElementId) -> Optional[int]:
        """Shortest link distance, or None when unreachable.

        Requires a distance-aware index (Section 5).
        """
        if not self.is_distance_aware:
            raise TypeError(
                "distance() requires an index built with distance=True"
            )
        return self.cover.distance(u, v)

    def descendants(self, u: ElementId) -> Set[ElementId]:
        """All elements reachable from ``u`` (including ``u``)."""
        return self.cover.descendants(u)

    def ancestors(self, v: ElementId) -> Set[ElementId]:
        """All elements that reach ``v`` (including ``v``)."""
        return self.cover.ancestors(v)

    def size_report(self, *, with_closure: bool = False) -> IndexSizeReport:
        """Size accounting; optionally materialises the closure for the
        compression column (expensive — Table 2 style runs only)."""
        closure_connections = None
        if with_closure:
            closure_connections = transitive_closure(
                self.collection.element_graph()
            ).num_connections
        return IndexSizeReport(
            num_nodes=len(self.cover.nodes),
            cover_size=self.cover.size,
            closure_connections=closure_connections,
        )

    # ------------------------------------------------------------------
    # maintenance passthroughs (Section 6)
    # ------------------------------------------------------------------
    def insert_element(self, parent: ElementId, tag: str) -> ElementId:
        """Insert a child element under ``parent`` (Section 6.1)."""
        return maint.insert_element(
            self.collection, self.cover, parent, tag, on_change=self._bump_epoch_hook
        )

    def insert_edge(self, u: ElementId, v: ElementId) -> maint.MaintenanceReport:
        """Insert the edge/link ``u -> v`` and repair the cover."""
        return maint.insert_edge(
            self.collection, self.cover, u, v, on_change=self._bump_epoch_hook
        )

    def insert_document(self, doc_id: DocId) -> maint.MaintenanceReport:
        """Integrate a document added to the collection (Section 6.1)."""
        return maint.insert_document(
            self.collection, self.cover, doc_id, on_change=self._bump_epoch_hook
        )

    def delete_document(
        self, doc_id: DocId, *, force_general: bool = False
    ) -> maint.MaintenanceReport:
        """Delete a document via the Theorem-2/3 paths (Section 6.2)."""
        return maint.delete_document(
            self.collection,
            self.cover,
            doc_id,
            force_general=force_general,
            on_change=self._bump_epoch_hook,
        )

    def delete_edge(self, u: ElementId, v: ElementId) -> maint.MaintenanceReport:
        """Delete the edge/link ``u -> v`` and repair the cover."""
        return maint.delete_edge(
            self.collection, self.cover, u, v, on_change=self._bump_epoch_hook
        )

    def document_separates(self, doc_id: DocId) -> bool:
        """Theorem-2 test: does the document's deletion stay local?"""
        return maint.document_separates(self.collection, doc_id)

    def rebuild(self, **build_kwargs) -> "HopiIndex":
        """Rebuild the cover from scratch, in place.

        Section 6: "over time, the space efficiency of the 2-hop cover
        that HOPI maintains may degrade. Then occasional rebuilds of the
        index may be considered, using the efficient algorithm presented
        in Section 4." Build options default to the Section-4 algorithm;
        pass the same kwargs as :meth:`build` to override.

        Returns:
            self, with a fresh cover and fresh build stats.
        """
        build_kwargs.setdefault("distance", self.is_distance_aware)
        build_kwargs.setdefault("backend", self.backend)
        fresh = HopiIndex.build(self.collection, **build_kwargs)
        self.cover = fresh.cover
        self.stats = fresh.stats
        self._bump_epoch_hook(None)
        return self

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Check the cover against a freshly computed closure oracle.

        Raises AssertionError with a counterexample on any mismatch.
        Quadratic — meant for tests and post-maintenance audits, not for
        production paths.
        """
        graph = self.collection.element_graph()
        if self.is_distance_aware:
            self.cover.verify_against(distance_closure(graph))
        else:
            self.cover.verify_against(transitive_closure(graph))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "distance" if self.is_distance_aware else "reachability"
        return (
            f"HopiIndex({kind}, nodes={len(self.cover.nodes)}, "
            f"size={self.cover.size})"
        )
