"""The paper's primary contribution: HOPI, a 2-hop-cover connection index.

Modules:

* :mod:`repro.core.cover` — 2-hop cover data structures (reachability and
  distance-aware) with forward and backward label indexes (Sections 3.1,
  3.4, 5.1).
* :mod:`repro.core.center_graph` — center graphs and the linear-time
  densest-subgraph 2-approximation (Section 3.2).
* :mod:`repro.core.cover_builder` — Cohen-style approximation algorithm
  with the paper's priority-queue optimisation and center-node
  preselection (Sections 3.2, 4.2).
* :mod:`repro.core.partitioning` — document-level graph partitioners
  (Sections 3.3, 4.3).
* :mod:`repro.core.skeleton` — skeleton graph and partition-level
  skeleton graph with anc/desc weight estimation (Sections 4.1, 4.3).
* :mod:`repro.core.join` — the original incremental and the new
  structurally recursive partition-cover joins (Sections 3.3, 4.1).
* :mod:`repro.core.pipeline` — the divide-and-conquer build
  orchestrator with pluggable serial / multiprocessing executors
  (Section 4's parallel construction).
* :mod:`repro.core.distance` — distance-aware cover construction
  (Section 5).
* :mod:`repro.core.maintenance` — incremental insertions and deletions
  (Section 6).
* :mod:`repro.core.hopi` — the :class:`~repro.core.hopi.HopiIndex`
  facade tying everything together.
"""

from repro.core.cover import DistanceTwoHopCover, TwoHopCover
from repro.core.cover_builder import build_cover, build_cover_for_closure
from repro.core.distance import build_distance_cover
from repro.core.hopi import BuildStats, HopiIndex
from repro.core.partitioning import Partitioning, partition_by_closure_size, partition_by_node_weight
from repro.core.join import join_covers_incremental, join_covers_recursive
from repro.core.pipeline import BuildPipeline

__all__ = [
    "BuildPipeline",
    "DistanceTwoHopCover",
    "TwoHopCover",
    "build_cover",
    "build_cover_for_closure",
    "build_distance_cover",
    "BuildStats",
    "HopiIndex",
    "Partitioning",
    "partition_by_closure_size",
    "partition_by_node_weight",
    "join_covers_incremental",
    "join_covers_recursive",
]
