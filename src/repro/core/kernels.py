"""Batch intersection / membership kernels over contiguous label rows.

The vector backend (:mod:`repro.core.vector_cover`) seals its label
tables into contiguous CSR slabs and answers probes through the kernels
here instead of the per-element python loops of the array backend. All
kernels operate on **sorted, duplicate-free** integer sequences — an
``array('i')``, a ``memoryview`` slice of a CSR data slab, or a plain
list — and every strategy returns the same answer (pinned by the
differential suite in ``tests/test_kernels.py``):

==========  ================================================================
strategy    when it wins
==========  ================================================================
``merge``   comparable row lengths — one linear pass over both rows
``gallop``  skewed lengths — iterate the small row, binary-search the big
            one with a monotonically advancing lower bound
``bitset``  dense rows over a small id span — one side becomes a python
            big-int bitmask, membership is a shift-and-test
``numpy``   large rows with numpy importable — ``intersect1d`` /
            ``searchsorted`` do the work in C
==========  ================================================================

:func:`choose_strategy` picks by row sizes and id-span density; the
numpy path is **feature-detected, never required** — every call site
must behave identically when :data:`HAVE_NUMPY` is False.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

try:  # optional fast path — the pure-python kernels are the contract
    import numpy as _np
except ImportError:  # pragma: no cover - numpy present in the dev image
    _np = None

#: Whether the numpy fast path is available in this interpreter.
HAVE_NUMPY = _np is not None

#: Pure-python strategies, always available.
PORTABLE_STRATEGIES: Tuple[str, ...] = ("merge", "gallop", "bitset")


def available_strategies() -> Tuple[str, ...]:
    """Every strategy usable in this interpreter (numpy included only
    when it imports)."""
    if HAVE_NUMPY:
        return PORTABLE_STRATEGIES + ("numpy",)
    return PORTABLE_STRATEGIES


def choose_strategy(n_a: int, n_b: int, *, span: Optional[int] = None) -> str:
    """Pick an intersection strategy from row sizes and density.

    Args:
        n_a: length of one sorted row.
        n_b: length of the other sorted row.
        span: width of the id universe the rows draw from (e.g. the
            interner size); enables the ``bitset`` pick when the rows
            are dense in it. ``None`` disables the density test.

    Returns:
        One of :func:`available_strategies` — deterministic for given
        inputs, so plans and tests are reproducible.
    """
    small, big = (n_a, n_b) if n_a <= n_b else (n_b, n_a)
    if small == 0:
        return "merge"
    if HAVE_NUMPY and big >= 512 and small >= 64:
        return "numpy"
    if small * 16 < big:
        return "gallop"
    if span is not None and span > 0 and (n_a + n_b) * 8 >= span:
        return "bitset"
    return "merge"


# ---------------------------------------------------------------------------
# intersection kernels — all return a sorted list of common values
# ---------------------------------------------------------------------------


def intersect_merge(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Linear two-pointer merge of two sorted rows."""
    out: List[int] = []
    i, j, na, nb = 0, 0, len(a), len(b)
    while i < na and j < nb:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def intersect_gallop(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Iterate the smaller row, binary-search the larger one with a
    monotonically advancing lower bound (sub-linear on skewed sizes)."""
    if len(a) > len(b):
        a, b = b, a
    out: List[int] = []
    if not a or not b or a[0] > b[-1] or b[0] > a[-1]:
        return out
    lo, nb = 0, len(b)
    for x in a:
        lo = bisect_left(b, x, lo)
        if lo == nb:
            break
        if b[lo] == x:
            out.append(x)
            lo += 1
    return out


def make_bitmask(row: Sequence[int]) -> int:
    """A python big-int bitmask with bit ``x`` set for every ``x`` in
    ``row`` (ids are non-negative, so the mask is exact)."""
    if not row:
        return 0
    buf = bytearray((row[-1] >> 3) + 1)
    for x in row:
        buf[x >> 3] |= 1 << (x & 7)
    return int.from_bytes(bytes(buf), "little")


def intersect_bitset(
    a: Sequence[int], b: Sequence[int], *, mask: Optional[int] = None
) -> List[int]:
    """Intersect by testing ``a``'s values against a bitmask of ``b``.

    ``mask`` lets callers reuse a precomputed :func:`make_bitmask`
    (the vector backend caches one per sealed dense row).
    """
    if mask is None:
        mask = make_bitmask(b)
    return [x for x in a if (mask >> x) & 1]


def intersect_numpy(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """``numpy.intersect1d`` over the rows (requires :data:`HAVE_NUMPY`)."""
    if _np is None:  # pragma: no cover - guarded by callers
        raise RuntimeError("numpy is not available; use a portable strategy")
    return _np.intersect1d(
        _np.asarray(a, dtype=_np.int64),
        _np.asarray(b, dtype=_np.int64),
        assume_unique=True,
    ).tolist()


_KERNELS = {
    "merge": intersect_merge,
    "gallop": intersect_gallop,
    "bitset": intersect_bitset,
    "numpy": intersect_numpy,
}


def intersect(
    a: Sequence[int],
    b: Sequence[int],
    *,
    strategy: Optional[str] = None,
    span: Optional[int] = None,
) -> List[int]:
    """Sorted common values of two sorted rows.

    ``strategy`` forces a kernel (the differential suite exercises each
    one); ``None`` defers to :func:`choose_strategy`.
    """
    if strategy is None:
        strategy = choose_strategy(len(a), len(b), span=span)
    try:
        kernel = _KERNELS[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; one of {available_strategies()}"
        ) from None
    return kernel(a, b)


def intersects_any(
    a: Sequence[int], b: Sequence[int], *, span: Optional[int] = None
) -> bool:
    """Do two sorted rows share an element? Early-exits on first hit."""
    if len(a) > len(b):
        a, b = b, a
    if not a or not b or a[0] > b[-1] or b[0] > a[-1]:
        return False
    strategy = choose_strategy(len(a), len(b), span=span)
    if strategy == "numpy":
        return bool(
            _np.intersect1d(
                _np.asarray(a, dtype=_np.int64),
                _np.asarray(b, dtype=_np.int64),
                assume_unique=True,
            ).size
        )
    lo, nb = 0, len(b)
    for x in a:
        lo = bisect_left(b, x, lo)
        if lo == nb:
            return False
        if b[lo] == x:
            return True
    return False


# ---------------------------------------------------------------------------
# batch membership — the connected_many / intersect_many primitive
# ---------------------------------------------------------------------------


def membership_flags(
    values: Sequence[int], sorted_universe: Sequence[int]
) -> List[bool]:
    """``[v in sorted_universe for v in values]`` without a hash table.

    ``values`` need not be sorted (candidate lists arrive in tag-index
    order); ``sorted_universe`` must be sorted and duplicate-free.
    Negative sentinel values (unknown labels) always test False.
    """
    n = len(sorted_universe)
    if n == 0:
        return [False] * len(values)
    if HAVE_NUMPY and len(values) >= 64:
        vals = _np.asarray(values, dtype=_np.int64)
        uni = _np.asarray(sorted_universe, dtype=_np.int64)
        idx = _np.searchsorted(uni, vals)
        idx[idx == n] = 0
        flags = uni[idx] == vals
        return flags.tolist()
    out = []
    for v in values:
        i = bisect_left(sorted_universe, v)
        out.append(i < n and sorted_universe[i] == v)
    return out
