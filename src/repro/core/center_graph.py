"""Center graphs and the densest-subgraph 2-approximation (Section 3.2).

For a candidate center node ``w``, the *center graph* ``CG_w`` is an
undirected bipartite graph with one "in"-side node per ancestor
``u ∈ Cin(w)`` and one "out"-side node per descendant ``v ∈ Cout(w)``,
and an edge ``(u_out, v_in)`` for every **not yet covered** connection
``(u, v) ∈ T'`` that runs through ``w``. Choosing the densest subgraph
of ``CG_w`` yields the sets ``C'in``/``C'out`` that maximise Cohen's
benefit ratio ``r(w) = |S ∩ T'| / (|C'in| + |C'out|)`` (up to the
standard factor-2 approximation).

The densest subgraph is computed by the classical linear-time peeling
algorithm: iteratively remove a minimum-degree node; the density of the
best intermediate graph 2-approximates the optimum.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

Node = object  # nodes are opaque hashables here


class CenterGraph:
    """A bipartite center graph as adjacency from in-side to out-side."""

    __slots__ = ("center", "adj")

    def __init__(self, center: Node, adj: Dict[Node, Set[Node]]) -> None:
        self.center = center
        # drop isolated in-side nodes ("all isolated nodes are removed")
        self.adj = {u: set(vs) for u, vs in adj.items() if vs}

    @property
    def num_edges(self) -> int:
        """Uncovered connections running through the center."""
        return sum(len(vs) for vs in self.adj.values())

    @property
    def num_nodes(self) -> int:
        """Bipartite node count: |in side| + |out side|."""
        out_side: Set[Node] = set()
        for vs in self.adj.values():
            out_side.update(vs)
        return len(self.adj) + len(out_side)

    @property
    def density(self) -> float:
        """Average degree ``|E| / |V|`` of the whole center graph."""
        n = self.num_nodes
        return (self.num_edges / n) if n else 0.0


def densest_subgraph(
    adj: Dict[Node, Set[Node]],
) -> Tuple[float, Set[Node], Set[Node]]:
    """Densest-subgraph 2-approximation on a bipartite graph.

    Args:
        adj: mapping in-side node -> set of out-side nodes (edge list of
            the center graph). In- and out-side namespaces may overlap
            (the same original node can be both an ancestor and a
            descendant endpoint of uncovered connections); they are
            disambiguated internally.

    Returns:
        ``(density, in_side, out_side)`` of the best peel prefix. For an
        empty graph returns ``(0.0, set(), set())``.
    """
    # Internal node keys: (0, u) for in-side, (1, v) for out-side.
    degree: Dict[Tuple[int, Node], int] = {}
    neighbours: Dict[Tuple[int, Node], List[Tuple[int, Node]]] = {}
    num_edges = 0
    for u, vs in adj.items():
        if not vs:
            continue
        ku = (0, u)
        neighbours.setdefault(ku, [])
        for v in vs:
            kv = (1, v)
            neighbours[ku].append(kv)
            neighbours.setdefault(kv, []).append(ku)
            num_edges += 1
    if num_edges == 0:
        return 0.0, set(), set()
    for k, ns in neighbours.items():
        degree[k] = len(ns)

    num_nodes = len(neighbours)
    # bucket queue over degrees for O(V + E) peeling
    buckets: Dict[int, List[Tuple[int, Node]]] = {}
    for k, d in degree.items():
        buckets.setdefault(d, []).append(k)
    removed: Set[Tuple[int, Node]] = set()
    removal_order: List[Tuple[int, Node]] = []

    best_density = num_edges / num_nodes
    best_removed_upto = 0  # how many removals precede the best graph

    cur_edges, cur_nodes = num_edges, num_nodes
    cur_min = 0
    while cur_nodes > 0:
        # find current minimum non-empty bucket (min degree only decreases
        # by at most ... it can decrease; scan up from 0)
        while True:
            bucket = buckets.get(cur_min)
            while bucket:
                k = bucket.pop()
                if k in removed or degree[k] != cur_min:
                    continue
                break
            else:
                cur_min += 1
                continue
            break
        # remove k
        removed.add(k)
        removal_order.append(k)
        cur_nodes -= 1
        for nb in neighbours[k]:
            if nb in removed:
                continue
            cur_edges -= 1
            degree[nb] -= 1
            buckets.setdefault(degree[nb], []).append(nb)
            if degree[nb] < cur_min:
                cur_min = degree[nb]
        if cur_nodes > 0:
            density = cur_edges / cur_nodes
            if density > best_density:
                best_density = density
                best_removed_upto = len(removal_order)

    surviving = set(neighbours) - set(removal_order[:best_removed_upto])
    in_side = {k[1] for k in surviving if k[0] == 0}
    out_side = {k[1] for k in surviving if k[0] == 1}
    return best_density, in_side, out_side


def initial_density_upper_bound(n_ancestors: int, n_descendants: int) -> float:
    """Priority-queue seed for a fresh center node (Section 3.2).

    "The initial center graphs are always their own densest subgraph":
    before anything is covered, the center graph of ``w`` is the complete
    bipartite graph ``Cin(w) × Cout(w)`` (minus the reflexive diagonal),
    whose densest subgraph density is at most ``a*d / (a+d)``. Densities
    only decrease as connections get covered, so this is a valid upper
    bound for the lazy priority queue.
    """
    a, d = n_ancestors, n_descendants
    if a == 0 or d == 0:
        return 0.0
    return (a * d) / (a + d)
