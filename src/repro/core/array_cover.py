"""Array-backed 2-hop covers over dense interned node ids.

The set-backed covers in :mod:`repro.core.cover` store every label as a
``Dict[Node, Set[Node]]`` over arbitrary hashables — correct, but each
entry costs a boxed object plus hash-table overhead, and batched queries
cannot exploit any structure. The classes here keep the exact same
label *semantics* behind the representation used by production 2-hop
systems:

* every node label is interned to a dense ``int32`` id
  (:class:`repro.core.interner.NodeInterner`);
* ``Lin``/``Lout`` are **sorted** ``array('i')`` center-id arrays
  (distance covers carry an aligned ``array('i')`` of distances);
* ``connected()``/``distance()`` intersect the two sorted arrays with a
  **galloping merge** (iterate the smaller side, binary-search the
  larger with a moving lower bound);
* the **backward indexes** (``center -> nodes carrying it``) are
  maintained incrementally as sorted id arrays, mirroring Section 3.4's
  backward database indexes;
* :meth:`connected_many` answers one-source/many-candidates batches —
  the descendant-step hot path of the query engine — by materialising
  the source's descendant id set once and testing candidates with O(1)
  lookups, which only the dense-id representation makes cheap;
* :meth:`to_csr`/:meth:`from_csr` convert labels to/from a CSR layout
  (``indptr`` + flat data arrays) so snapshots round-trip through
  ``array.tobytes`` without per-row Python overhead.

Both classes implement :class:`repro.core.cover.CoverProtocol` and are
drop-in replacements for the set-backed covers everywhere in the build,
join, maintenance, query and storage layers.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.interner import NodeInterner

Node = Hashable

#: typecodes: int32 label/center data, int64 CSR offsets
ID_TYPECODE = "i"
OFFSET_TYPECODE = "q"


# ---------------------------------------------------------------------------
# sorted-array primitives
# ---------------------------------------------------------------------------


def sorted_insert(arr: array, x: int) -> bool:
    """Insert ``x`` into a sorted array unless present; True if inserted."""
    i = bisect_left(arr, x)
    if i < len(arr) and arr[i] == x:
        return False
    arr.insert(i, x)
    return True


def sorted_remove(arr: array, x: int) -> bool:
    """Remove ``x`` from a sorted array if present; True if removed."""
    i = bisect_left(arr, x)
    if i < len(arr) and arr[i] == x:
        del arr[i]
        return True
    return False


def sorted_contains(arr: Sequence[int], x: int) -> bool:
    """Binary-search membership test on a sorted array."""
    i = bisect_left(arr, x)
    return i < len(arr) and arr[i] == x


def galloping_intersects(a: Sequence[int], b: Sequence[int]) -> bool:
    """Do two sorted arrays share an element?

    Iterates the smaller array and binary-searches the larger with a
    monotonically advancing lower bound — O(|small| * log |large|) worst
    case, sub-linear in practice on skewed sizes.
    """
    if len(a) > len(b):
        a, b = b, a
    if not a or a[0] > b[-1] or b[0] > a[-1]:
        return False
    lo, nb = 0, len(b)
    for x in a:
        lo = bisect_left(b, x, lo)
        if lo == nb:
            return False
        if b[lo] == x:
            return True
    return False


def galloping_min_plus(
    c1: Sequence[int],
    d1: Sequence[int],
    c2: Sequence[int],
    d2: Sequence[int],
) -> Optional[int]:
    """``min(d1[i] + d2[j])`` over common centers of two sorted label
    arrays (the paper's ``MIN(LOUT.DIST + LIN.DIST)``), or None."""
    if len(c1) > len(c2):
        c1, d1, c2, d2 = c2, d2, c1, d1
    if not c1 or c1[0] > c2[-1] or c2[0] > c1[-1]:
        return None
    best: Optional[int] = None
    lo, n2 = 0, len(c2)
    for i, x in enumerate(c1):
        lo = bisect_left(c2, x, lo)
        if lo == n2:
            break
        if c2[lo] == x:
            total = d1[i] + d2[lo]
            if best is None or total < best:
                best = total
            lo += 1
    return best


class _NodeSetView:
    """Read-only set-like view of a cover's active node universe,
    externalised through the interner."""

    __slots__ = ("_cover",)

    def __init__(self, cover) -> None:
        self._cover = cover

    def __contains__(self, label: Node) -> bool:
        iid = self._cover.interner.get(label)
        return iid is not None and iid in self._cover._nodes

    def __len__(self) -> int:
        return len(self._cover._nodes)

    def __iter__(self) -> Iterator[Node]:
        label = self._cover.interner.label
        return (label(i) for i in self._cover._nodes)

    def __eq__(self, other) -> bool:
        try:
            return set(self) == set(other)
        except TypeError:  # pragma: no cover - defensive
            return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"_NodeSetView({set(self)!r})"


class _ArrayCoverBase:
    """State and machinery shared by both array-backed covers.

    Label tables are lists indexed by internal id (``None`` = empty) so
    the dense ids double as direct offsets — no hashing on hot paths.
    """

    #: per-node tables mirrored by :meth:`cow_copy` (subclasses extend)
    _TABLE_NAMES: Tuple[str, ...] = ("_lin", "_lout", "_inv_lin", "_inv_lout")

    def __init__(self, nodes: Iterable[Node] = ()) -> None:
        self.interner = NodeInterner()
        self._nodes: Set[int] = set()
        self._lin: List[Optional[array]] = []
        self._lout: List[Optional[array]] = []
        self._inv_lin: List[Optional[array]] = []
        self._inv_lout: List[Optional[array]] = []
        # COW bookkeeping: None outside forks; after cow_copy(), a dict
        # mapping id(table) -> iids whose rows this instance privately
        # owns (all other rows may be shared with the fork sibling)
        self._cow: Optional[Dict[int, Set[int]]] = None
        self.add_nodes(nodes)

    # -- copy-on-write plumbing -----------------------------------------
    def _owned(self, table: List[Optional[array]], iid: int) -> Optional[array]:
        """``table[iid]`` as a privately owned, mutable row.

        Under COW a row still shared with the fork sibling is copied
        (and recorded as owned) before being returned; ``None`` rows
        pass through untouched (callers assign fresh arrays, which are
        private by construction).
        """
        row = table[iid]
        cow = self._cow
        if cow is None or row is None:
            return row
        owned = cow[id(table)]
        if iid not in owned:
            row = row[:]
            table[iid] = row
            owned.add(iid)
        return row

    def cow_copy(self):
        """Fork this cover, sharing unchanged label rows (see
        :meth:`repro.core.cover.CoverProtocol.cow_copy`). Outer tables
        and the interner are copied at pointer level; the sorted
        ``array('i')`` rows stay shared until either side mutates them.
        Subclasses (the vector backend) fork as their own type, with
        the fork starting unsealed."""
        clone = type(self)()
        clone.interner = self.interner.copy()
        clone._nodes = set(self._nodes)
        for name in self._TABLE_NAMES:
            setattr(clone, name, list(getattr(self, name)))
        self._cow = {id(t): set() for t in self._tables()}
        clone._cow = {id(t): set() for t in clone._tables()}
        return clone

    def __getstate__(self) -> Dict[str, object]:
        # pickling deep-copies every row, so the unpickled instance owns
        # all of them; the id()-keyed ownership map would be stale
        state = self.__dict__.copy()
        state["_cow"] = None
        return state

    # -- id plumbing ----------------------------------------------------
    def _tables(self) -> Tuple[List[Optional[array]], ...]:
        """Every per-node table that must grow with the interner."""
        return (self._lin, self._lout, self._inv_lin, self._inv_lout)

    def _intern(self, label: Node) -> int:
        iid = self.interner.intern(label)
        if iid >= len(self._lin):
            grow = iid + 1 - len(self._lin)
            for table in self._tables():
                table.extend([None] * grow)
        return iid

    def _row(self, table: List[Optional[array]], iid: int) -> Optional[array]:
        return table[iid] if iid < len(table) else None

    # -- universe -------------------------------------------------------
    @property
    def nodes(self) -> _NodeSetView:
        return _NodeSetView(self)

    def add_node(self, v: Node) -> None:
        self._nodes.add(self._intern(v))

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        for v in nodes:
            self._nodes.add(self._intern(v))

    # -- backward indexes -----------------------------------------------
    def _inv_add(self, inv: List[Optional[array]], center: int, node: int) -> None:
        row = inv[center]
        if row is None:
            inv[center] = array(ID_TYPECODE, (node,))
        elif not sorted_contains(row, node):
            sorted_insert(self._owned(inv, center), node)

    def _inv_discard(self, inv: List[Optional[array]], center: int, node: int) -> None:
        row = inv[center]
        if row is not None and sorted_contains(row, node):
            sorted_remove(self._owned(inv, center), node)

    # -- disjoint merge --------------------------------------------------
    def preintern_sorted(self, labels: Iterable[Node]) -> None:
        """Intern ``labels`` in sorted order ahead of a series of
        :meth:`absorb_disjoint` calls.

        With the whole label universe interned in sorted order up
        front, the remap of every subsequently absorbed cover whose own
        interner is label-sorted (snapshot blobs from the parallel
        join's workers are) is *monotone* — rows keep their sortedness
        under translation and the absorb degrades to pure block copies.
        """
        ordered = sorted(labels)
        if len(self.interner) == 0:
            self.interner = NodeInterner.from_labels(ordered)
        else:  # pragma: no cover - incremental preintern
            intern = self.interner.intern
            for label in ordered:
                intern(label)
        grow = len(self.interner) - len(self._lin)
        if grow > 0:
            for table in self._tables():
                table.extend([None] * grow)

    def absorb_disjoint(self, other) -> None:
        """:meth:`union`, optimised for node-disjoint covers.

        Two fast paths, falling back to :meth:`union` (identical
        result) when neither applies:

        * **pure offset** — none of ``other``'s labels are interned
          here yet (original partition covers joined into a fresh
          merged cover): every internal id shifts by one constant, so
          label rows and backward-index rows move as block copies with
          sortedness preserved;
        * **remap** (reachability covers only) — some labels overlap
          as *centers* but the node universes are disjoint (the
          parallel join's shard covers, whose Ĥ deltas reference
          foreign link targets): ids are translated through a remap
          table, rows re-sorted in C, and backward-index rows for
          shared centers merged.
        """
        if type(other) is not type(self):
            self.union(other)
            return
        fresh = not any(
            self.interner.get(lab) is not None for lab in other.interner
        )
        if fresh:
            offset = len(self.interner)
            for lab in other.interner:
                self._intern(lab)
            self._nodes.update(i + offset for i in other._nodes)
            for dst, src in (
                (self._lin, other._lin),
                (self._lout, other._lout),
                (self._inv_lin, other._inv_lin),
                (self._inv_lout, other._inv_lout),
            ):
                for i, row in enumerate(src):
                    if row:
                        dst[offset + i] = array(
                            ID_TYPECODE, (c + offset for c in row)
                        )
            self._absorb_extra(other, offset)
            return
        self._absorb_remap(other)

    def _absorb_extra(self, other, offset: int) -> None:
        """Hook for subclass tables carrying non-id payloads (distances
        move verbatim — only id columns are offset-remapped)."""

    def _absorb_remap(self, other) -> None:
        """Overridden by the reachability cover; aligned-payload
        flavours (distances) take the generic per-entry union."""
        self.union(other)

    def _externalize(self, ids: Iterable[int]) -> Set[Node]:
        label = self.interner.label
        return {label(i) for i in ids}

    def nodes_with_lin_center(self, center: Node) -> Set[Node]:
        """Backward-index lookup: nodes whose ``Lin`` holds ``center``."""
        ci = self.interner.get(center)
        row = self._row(self._inv_lin, ci) if ci is not None else None
        return self._externalize(row) if row else set()

    def nodes_with_lout_center(self, center: Node) -> Set[Node]:
        """Backward-index lookup: nodes whose ``Lout`` holds ``center``."""
        ci = self.interner.get(center)
        row = self._row(self._inv_lout, ci) if ci is not None else None
        return self._externalize(row) if row else set()

    # -- batched / enumeration queries ----------------------------------
    def _descendant_ids(self, ui: int) -> Set[int]:
        """Internal ids of all descendants of ``ui`` (including it)."""
        result: Set[int] = {ui}
        row = self._row(self._inv_lin, ui)
        if row:
            result.update(row)
        lout = self._row(self._lout, ui)
        if lout:
            result.update(lout)
            inv = self._inv_lin
            for c in lout:
                row = inv[c]
                if row:
                    result.update(row)
        return result

    def _ancestor_ids(self, vi: int) -> Set[int]:
        result: Set[int] = {vi}
        row = self._row(self._inv_lout, vi)
        if row:
            result.update(row)
        lin = self._row(self._lin, vi)
        if lin:
            result.update(lin)
            inv = self._inv_lout
            for c in lin:
                row = inv[c]
                if row:
                    result.update(row)
        return result

    def descendants(self, u: Node) -> Set[Node]:
        """All ``d`` with ``u ->* d`` (including ``u``), via the backward
        index."""
        ui = self.interner.get(u)
        if ui is None or ui not in self._nodes:
            return set()
        return self._externalize(self._descendant_ids(ui))

    def ancestors(self, v: Node) -> Set[Node]:
        """All ``a`` with ``a ->* v`` (including ``v``)."""
        vi = self.interner.get(v)
        if vi is None or vi not in self._nodes:
            return set()
        return self._externalize(self._ancestor_ids(vi))

    def connected_many(self, u: Node, candidates: Sequence[Node]) -> List[bool]:
        """Batched ``[connected(u, c) for c in candidates]``.

        One descendant-set materialisation over internal ids, then O(1)
        membership per candidate — the dense-id hot path behind the
        query engine's descendant steps.
        """
        ui = self.interner.get(u)
        if ui is None or ui not in self._nodes:
            return [False] * len(candidates)
        desc = self._descendant_ids(ui)
        # labels may reference centers outside the active universe (the
        # set backend's descendants() keeps them too), but connected()
        # rejects them — drop them so the batch matches it exactly
        desc.intersection_update(self._nodes)
        get = self.interner.get
        return [get(c) in desc for c in candidates]

    # -- statistics ------------------------------------------------------
    @property
    def size(self) -> int:
        """``|L| = Σ |Lin(v)| + |Lout(v)|`` — the paper's cover size."""
        return sum(len(a) for a in self._lin if a) + sum(
            len(a) for a in self._lout if a
        )

    # -- CSR conversion --------------------------------------------------
    def _pack_table(self, table: List[Optional[array]]) -> Tuple[array, array]:
        """Flatten a label table into ``(indptr, data)`` CSR arrays."""
        n = len(self.interner)
        indptr = array(OFFSET_TYPECODE, (0,))
        data = array(ID_TYPECODE)
        for iid in range(n):
            row = table[iid] if iid < len(table) else None
            if row:
                data.extend(row)
            indptr.append(len(data))
        return indptr, data

    @staticmethod
    def _unpack_table(indptr: array, data: array) -> List[Optional[array]]:
        table: List[Optional[array]] = []
        for iid in range(len(indptr) - 1):
            lo, hi = indptr[iid], indptr[iid + 1]
            table.append(data[lo:hi] if hi > lo else None)
        return table


class ArrayTwoHopCover(_ArrayCoverBase):
    """Array-backed reachability cover (same semantics as
    :class:`repro.core.cover.TwoHopCover`)."""

    is_distance_aware = False

    # ------------------------------------------------------------------
    # label mutation
    # ------------------------------------------------------------------
    def add_lin(self, node: Node, center: Node) -> bool:
        """Add ``center`` to ``Lin(node)`` (self-entries are dropped).

        Returns True when the label actually changed.
        """
        if node == center:
            return False
        ni = self._intern(node)
        ci = self._intern(center)
        self._nodes.add(ni)
        row = self._lin[ni]
        if row is None:
            self._lin[ni] = array(ID_TYPECODE, (ci,))
        elif sorted_contains(row, ci):
            return False
        else:
            sorted_insert(self._owned(self._lin, ni), ci)
        self._inv_add(self._inv_lin, ci, ni)
        return True

    def add_lout(self, node: Node, center: Node) -> bool:
        """Add ``center`` to ``Lout(node)`` (self-entries are dropped).

        Returns True when the label actually changed.
        """
        if node == center:
            return False
        ni = self._intern(node)
        ci = self._intern(center)
        self._nodes.add(ni)
        row = self._lout[ni]
        if row is None:
            self._lout[ni] = array(ID_TYPECODE, (ci,))
        elif sorted_contains(row, ci):
            return False
        else:
            sorted_insert(self._owned(self._lout, ni), ci)
        self._inv_add(self._inv_lout, ci, ni)
        return True

    def discard_lin(self, node: Node, center: Node) -> None:
        """Remove ``center`` from ``Lin(node)`` if present."""
        ni, ci = self.interner.get(node), self.interner.get(center)
        if ni is None or ci is None:
            return
        row = self._row(self._lin, ni)
        if row is not None and sorted_contains(row, ci):
            sorted_remove(self._owned(self._lin, ni), ci)
            self._inv_discard(self._inv_lin, ci, ni)

    def discard_lout(self, node: Node, center: Node) -> None:
        """Remove ``center`` from ``Lout(node)`` if present."""
        ni, ci = self.interner.get(node), self.interner.get(center)
        if ni is None or ci is None:
            return
        row = self._row(self._lout, ni)
        if row is not None and sorted_contains(row, ci):
            sorted_remove(self._owned(self._lout, ni), ci)
            self._inv_discard(self._inv_lout, ci, ni)

    def _set_label(
        self,
        table: List[Optional[array]],
        inv: List[Optional[array]],
        node: Node,
        centers: Iterable[Node],
    ) -> None:
        ni = self._intern(node)
        old = table[ni]
        if old:
            for ci in old:
                self._inv_discard(inv, ci, ni)
        new_ids = sorted({self._intern(c) for c in centers if c != node})
        table[ni] = array(ID_TYPECODE, new_ids) if new_ids else None
        for ci in new_ids:
            self._inv_add(inv, ci, ni)

    def set_lin(self, node: Node, centers: Iterable[Node]) -> None:
        """Replace ``Lin(node)`` wholesale (used by Theorems 2 and 3)."""
        self._set_label(self._lin, self._inv_lin, node, centers)

    def set_lout(self, node: Node, centers: Iterable[Node]) -> None:
        """Replace ``Lout(node)`` wholesale (used by Theorems 2 and 3)."""
        self._set_label(self._lout, self._inv_lout, node, centers)

    def remove_nodes(self, removed: Set[Node]) -> None:
        """Drop nodes from the universe, their labels, and every label
        entry that uses them as a center (document deletion support)."""
        removed_ids = []
        for v in removed:
            iid = self.interner.get(v)
            if iid is not None:
                removed_ids.append(iid)
                self._nodes.discard(iid)
        label = self.interner.label
        for iid in removed_ids:
            # _set_label nulls the table slot itself on an empty label
            self.set_lin(label(iid), ())
            self.set_lout(label(iid), ())
        for iid in removed_ids:
            inv_row = self._row(self._inv_lin, iid)
            if inv_row:
                for ni in list(inv_row):
                    row = self._lin[ni]
                    if row is not None and sorted_contains(row, iid):
                        sorted_remove(self._owned(self._lin, ni), iid)
            inv_row = self._row(self._inv_lout, iid)
            if inv_row:
                for ni in list(inv_row):
                    row = self._lout[ni]
                    if row is not None and sorted_contains(row, iid):
                        sorted_remove(self._owned(self._lout, ni), iid)
            self._inv_lin[iid] = None
            self._inv_lout[iid] = None

    def union(self, other) -> None:
        """Component-wise union with any reachability cover."""
        self.add_nodes(other.nodes)
        for kind, node, center in other.entries():
            if kind == "in":
                self.add_lin(node, center)
            else:
                self.add_lout(node, center)

    def copy(self) -> "ArrayTwoHopCover":
        """A structurally independent deep copy of the cover (subclasses
        — the vector backend — clone as their own type)."""
        clone = type(self)()
        clone.interner = self.interner.copy()
        clone._nodes = set(self._nodes)
        clone._lin = [a[:] if a else None for a in self._lin]
        clone._lout = [a[:] if a else None for a in self._lout]
        clone._inv_lin = [a[:] if a else None for a in self._inv_lin]
        clone._inv_lout = [a[:] if a else None for a in self._inv_lout]
        return clone

    # ------------------------------------------------------------------
    # queries (Section 3.4 semantics)
    # ------------------------------------------------------------------
    def lin_of(self, node: Node) -> Set[Node]:
        """``Lin(node)``: centers (reachability) or ``{center: dist}``."""
        ni = self.interner.get(node)
        row = self._row(self._lin, ni) if ni is not None else None
        return self._externalize(row) if row else set()

    def lout_of(self, node: Node) -> Set[Node]:
        """``Lout(node)``: centers (reachability) or ``{center: dist}``."""
        ni = self.interner.get(node)
        row = self._row(self._lout, ni) if ni is not None else None
        return self._externalize(row) if row else set()

    def connected(self, u: Node, v: Node) -> bool:
        """``u ->* v``? Galloping-merge intersection of ``Lout(u)`` and
        ``Lin(v)`` plus the implicit self-hop disjuncts."""
        get = self.interner.get
        ui, vi = get(u), get(v)
        if ui is None or vi is None:
            return False
        nodes = self._nodes
        if ui not in nodes or vi not in nodes:
            return False
        if ui == vi:
            return True
        lout = self._row(self._lout, ui)
        if lout and sorted_contains(lout, vi):
            return True
        lin = self._row(self._lin, vi)
        if lin and sorted_contains(lin, ui):
            return True
        if lout and lin:
            return galloping_intersects(lout, lin)
        return False

    # ------------------------------------------------------------------
    # statistics & persistence
    # ------------------------------------------------------------------
    def stored_integers(self, *, with_backward_index: bool = True) -> int:
        """Database ints per Section 3.4: 2 per entry, doubled by the
        backward index."""
        per = 4 if with_backward_index else 2
        return per * self.size

    def entries(self) -> Iterator[Tuple[str, Node, Node]]:
        """All label entries as ``(kind, node, center)``."""
        label = self.interner.label
        for ni, row in enumerate(self._lin):
            if row:
                node = label(ni)
                for ci in row:
                    yield ("in", node, label(ci))
        for ni, row in enumerate(self._lout):
            if row:
                node = label(ni)
                for ci in row:
                    yield ("out", node, label(ci))

    def _absorb_remap(self, other: "ArrayTwoHopCover") -> None:
        """Absorb a node-disjoint cover whose labels partially overlap
        ours (as centers), translating ids through a remap table.

        Node universes must be disjoint (checked; falls back to
        :meth:`union`), so forward rows never collide — they are
        remapped wholesale. Fresh labels are assigned ids in ``other``'s
        id order, so the remap is *monotone on them*: a row touching no
        pre-existing ("foreign") label stays sorted after translation
        and needs no re-sort; only rows naming foreign centers — the
        parallel join's Ĥ targets — pay a per-row C sort. Backward-index
        rows *can* collide on shared centers and are merged (their
        carriers are disjoint node sets).
        """
        if self.interner.same_mapping(other.interner):
            self._absorb_identity(other)
            return
        intern = self.interner.intern
        before = len(self.interner)
        remap = [intern(lab) for lab in other.interner]
        grow = len(self.interner) - len(self._lin)
        if grow > 0:
            for table in self._tables():
                table.extend([None] * grow)
        mapped_nodes = {remap[i] for i in other._nodes}
        if not mapped_nodes.isdisjoint(self._nodes):
            self.union(other)
            return
        self._nodes.update(mapped_nodes)
        # a monotone remap preserves row sortedness outright (the
        # :meth:`preintern_sorted` + label-sorted-blob fast path)
        monotone = all(a < b for a, b in zip(remap, remap[1:]))
        if monotone:
            needs_sort = lambda row: False  # noqa: E731
        else:
            # only rows naming a pre-existing ("foreign") label can
            # lose sortedness: fresh labels are assigned in id order
            foreign = {i for i, m in enumerate(remap) if m < before}
            needs_sort = lambda row: not foreign.isdisjoint(row)  # noqa: E731
        for dst, src in ((self._lin, other._lin), (self._lout, other._lout)):
            for i, row in enumerate(src):
                if not row:
                    continue
                if needs_sort(row):
                    dst[remap[i]] = array(
                        ID_TYPECODE, sorted(remap[c] for c in row)
                    )
                else:
                    dst[remap[i]] = array(
                        ID_TYPECODE, [remap[c] for c in row]
                    )
        for dst, src in (
            (self._inv_lin, other._inv_lin),
            (self._inv_lout, other._inv_lout),
        ):
            for i, row in enumerate(src):
                if not row:
                    continue
                ci = remap[i]
                existing = dst[ci]
                if existing:
                    dst[ci] = array(
                        ID_TYPECODE,
                        sorted(set(existing).union(remap[c] for c in row)),
                    )
                elif needs_sort(row):
                    dst[ci] = array(
                        ID_TYPECODE, sorted(remap[c] for c in row)
                    )
                else:
                    dst[ci] = array(ID_TYPECODE, [remap[c] for c in row])

    def _absorb_identity(self, other: "ArrayTwoHopCover") -> None:
        """Absorb a node-disjoint cover sharing this cover's exact
        interner (the parallel join's global-id-space shard covers):
        label rows move as plain slice copies, and only backward-index
        rows colliding on shared centers pay a merge."""
        if not other._nodes.isdisjoint(self._nodes):
            self.union(other)
            return
        self._nodes |= other._nodes
        for dst, src in (
            (self._lin, other._lin),
            (self._lout, other._lout),
            (self._inv_lin, other._inv_lin),
            (self._inv_lout, other._inv_lout),
        ):
            for i, row in enumerate(src):
                if not row:
                    continue
                existing = dst[i]
                if existing:
                    dst[i] = array(
                        ID_TYPECODE, sorted(set(existing).union(row))
                    )
                else:
                    dst[i] = row[:]

    def with_sorted_interner(self) -> "ArrayTwoHopCover":
        """A copy re-indexed so internal ids follow sorted label order.

        The parallel join's workers canonicalise their updated covers
        with this before encoding them: a label-sorted blob absorbs
        into a :meth:`~_ArrayCoverBase.preintern_sorted`-prepared
        merged cover through a monotone remap — all the per-row
        re-sorting happens *here*, in the (parallelised) workers,
        instead of in the single-threaded parent.
        """
        labels = self.interner.labels()
        order = sorted(range(len(labels)), key=labels.__getitem__)
        perm = [0] * len(labels)
        for new, old in enumerate(order):
            perm[old] = new
        fresh = ArrayTwoHopCover()
        fresh.interner = NodeInterner.from_labels([labels[o] for o in order])
        fresh._nodes = {perm[i] for i in self._nodes}
        n = len(labels)
        for name in ("_lin", "_lout", "_inv_lin", "_inv_lout"):
            src = getattr(self, name)
            dst: List[Optional[array]] = [None] * n
            for old, row in enumerate(src):
                if row:
                    dst[perm[old]] = array(
                        ID_TYPECODE, sorted(perm[c] for c in row)
                    )
            setattr(fresh, name, dst)
        return fresh

    @classmethod
    def from_cover(cls, cover) -> "ArrayTwoHopCover":
        """Convert any reachability cover (protocol-level) to arrays."""
        # intern in sorted node order when possible: label-sorted
        # interners make snapshot blobs deterministic and give the
        # parallel join's global-id remaps their monotonicity
        try:
            ordered = sorted(cover.nodes)
        except TypeError:  # mixed/unorderable node types
            ordered = cover.nodes
        new = cls(ordered)
        lin_rows: Dict[int, List[int]] = {}
        lout_rows: Dict[int, List[int]] = {}
        intern = new._intern
        for kind, node, center in cover.entries():
            rows = lin_rows if kind == "in" else lout_rows
            rows.setdefault(intern(node), []).append(intern(center))
        inv_lin_rows: Dict[int, List[int]] = {}
        inv_lout_rows: Dict[int, List[int]] = {}
        for rows, table, inv_rows in (
            (lin_rows, new._lin, inv_lin_rows),
            (lout_rows, new._lout, inv_lout_rows),
        ):
            for ni, centers in rows.items():
                uniq = sorted(set(centers))
                table[ni] = array(ID_TYPECODE, uniq)
                for ci in uniq:
                    inv_rows.setdefault(ci, []).append(ni)
        for inv_rows, inv in (
            (inv_lin_rows, new._inv_lin),
            (inv_lout_rows, new._inv_lout),
        ):
            for ci, ns in inv_rows.items():
                inv[ci] = array(ID_TYPECODE, sorted(ns))
        return new

    def to_csr(self) -> Dict[str, object]:
        """CSR snapshot payload (see :mod:`repro.storage.snapshot`)."""
        lin_indptr, lin_data = self._pack_table(self._lin)
        lout_indptr, lout_data = self._pack_table(self._lout)
        inv_lin_indptr, inv_lin_data = self._pack_table(self._inv_lin)
        inv_lout_indptr, inv_lout_data = self._pack_table(self._inv_lout)
        return {
            "distance": False,
            "labels": self.interner.labels(),
            "active": array(ID_TYPECODE, sorted(self._nodes)),
            "lin": (lin_indptr, lin_data),
            "lout": (lout_indptr, lout_data),
            "inv_lin": (inv_lin_indptr, inv_lin_data),
            "inv_lout": (inv_lout_indptr, inv_lout_data),
        }

    @classmethod
    def from_csr(cls, payload: Mapping[str, object]) -> "ArrayTwoHopCover":
        """Rebuild a cover from a :meth:`to_csr` payload (block copies)."""
        new = cls()
        new.interner = NodeInterner.from_labels(payload["labels"])
        new._nodes = set(payload["active"])
        new._lin = cls._unpack_table(*payload["lin"])
        new._lout = cls._unpack_table(*payload["lout"])
        new._inv_lin = cls._unpack_table(*payload["inv_lin"])
        new._inv_lout = cls._unpack_table(*payload["inv_lout"])
        return new

    def verify_against(self, closure, nodes: Optional[Iterable[Node]] = None) -> None:
        """Assert the cover represents exactly the closure's connections."""
        universe = list(nodes) if nodes is not None else list(self.nodes)
        for u in universe:
            for v in universe:
                expected = closure.contains(u, v)
                actual = self.connected(u, v)
                if expected != actual:
                    raise AssertionError(
                        f"cover mismatch for ({u!r}, {v!r}): "
                        f"closure says {expected}, cover says {actual}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ArrayTwoHopCover(nodes={len(self._nodes)}, size={self.size})"


class ArrayDistanceCover(_ArrayCoverBase):
    """Array-backed distance-aware cover (same semantics as
    :class:`repro.core.cover.DistanceTwoHopCover`).

    Each label is a pair of aligned arrays: sorted center ids plus their
    distances, so the min-plus intersection runs as one galloping merge.
    """

    is_distance_aware = True

    _TABLE_NAMES = _ArrayCoverBase._TABLE_NAMES + ("_lin_dist", "_lout_dist")

    def __init__(self, nodes: Iterable[Node] = ()) -> None:
        self._lin_dist: List[Optional[array]] = []
        self._lout_dist: List[Optional[array]] = []
        super().__init__(nodes)

    def _tables(self) -> Tuple[List[Optional[array]], ...]:
        return super()._tables() + (self._lin_dist, self._lout_dist)

    def _absorb_extra(self, other, offset: int) -> None:
        for dst, src in (
            (self._lin_dist, other._lin_dist),
            (self._lout_dist, other._lout_dist),
        ):
            for i, row in enumerate(src):
                if row:
                    dst[offset + i] = row[:]

    # ------------------------------------------------------------------
    # label mutation
    # ------------------------------------------------------------------
    def _add(
        self,
        table: List[Optional[array]],
        dists: List[Optional[array]],
        inv: List[Optional[array]],
        node: Node,
        center: Node,
        dist: int,
    ) -> bool:
        if node == center:
            return False
        ni = self._intern(node)
        ci = self._intern(center)
        self._nodes.add(ni)
        centers = table[ni]
        if centers is None:
            table[ni] = array(ID_TYPECODE, (ci,))
            dists[ni] = array(ID_TYPECODE, (dist,))
            self._inv_add(inv, ci, ni)
            return True
        i = bisect_left(centers, ci)
        if i < len(centers) and centers[i] == ci:
            if dist < dists[ni][i]:
                self._owned(dists, ni)[i] = dist
                return True
            return False
        self._owned(table, ni).insert(i, ci)
        self._owned(dists, ni).insert(i, dist)
        self._inv_add(inv, ci, ni)
        return True

    def add_lin(self, node: Node, center: Node, dist: int) -> bool:
        """Add/improve ``Lin(node)[center] = dist``; True when changed."""
        return self._add(
            self._lin, self._lin_dist, self._inv_lin, node, center, dist
        )

    def add_lout(self, node: Node, center: Node, dist: int) -> bool:
        """Add/improve ``Lout(node)[center] = dist``; True when changed."""
        return self._add(
            self._lout, self._lout_dist, self._inv_lout, node, center, dist
        )

    def _discard(
        self,
        table: List[Optional[array]],
        dists: List[Optional[array]],
        inv: List[Optional[array]],
        node: Node,
        center: Node,
    ) -> None:
        ni, ci = self.interner.get(node), self.interner.get(center)
        if ni is None or ci is None:
            return
        centers = self._row(table, ni)
        if centers is None:
            return
        i = bisect_left(centers, ci)
        if i < len(centers) and centers[i] == ci:
            del self._owned(table, ni)[i]
            del self._owned(dists, ni)[i]
            self._inv_discard(inv, ci, ni)

    def discard_lin(self, node: Node, center: Node) -> None:
        """Remove ``center`` from ``Lin(node)`` if present."""
        self._discard(self._lin, self._lin_dist, self._inv_lin, node, center)

    def discard_lout(self, node: Node, center: Node) -> None:
        """Remove ``center`` from ``Lout(node)`` if present."""
        self._discard(self._lout, self._lout_dist, self._inv_lout, node, center)

    def _set_label(
        self,
        table: List[Optional[array]],
        dists: List[Optional[array]],
        inv: List[Optional[array]],
        node: Node,
        entries: Mapping[Node, int],
    ) -> None:
        ni = self._intern(node)
        old = table[ni]
        if old:
            for ci in old:
                self._inv_discard(inv, ci, ni)
        pairs = sorted(
            (self._intern(c), d) for c, d in entries.items() if c != node
        )
        if pairs:
            table[ni] = array(ID_TYPECODE, (p[0] for p in pairs))
            dists[ni] = array(ID_TYPECODE, (p[1] for p in pairs))
            for ci, _ in pairs:
                self._inv_add(inv, ci, ni)
        else:
            table[ni] = None
            dists[ni] = None

    def set_lin(self, node: Node, entries: Mapping[Node, int]) -> None:
        """Replace ``Lin(node)`` wholesale (used by Theorems 2 and 3)."""
        self._set_label(self._lin, self._lin_dist, self._inv_lin, node, entries)

    def set_lout(self, node: Node, entries: Mapping[Node, int]) -> None:
        """Replace ``Lout(node)`` wholesale (used by Theorems 2 and 3)."""
        self._set_label(self._lout, self._lout_dist, self._inv_lout, node, entries)

    def remove_nodes(self, removed: Set[Node]) -> None:
        """Drop nodes from the universe, their labels, and every label entry using them as a center."""
        removed_ids = []
        for v in removed:
            iid = self.interner.get(v)
            if iid is not None:
                removed_ids.append(iid)
                self._nodes.discard(iid)
        label = self.interner.label
        for iid in removed_ids:
            self.set_lin(label(iid), {})
            self.set_lout(label(iid), {})
        for iid in removed_ids:
            inv_row = self._row(self._inv_lin, iid)
            if inv_row:
                for ni in list(inv_row):
                    self._discard(
                        self._lin, self._lin_dist, self._inv_lin,
                        label(ni), label(iid),
                    )
            inv_row = self._row(self._inv_lout, iid)
            if inv_row:
                for ni in list(inv_row):
                    self._discard(
                        self._lout, self._lout_dist, self._inv_lout,
                        label(ni), label(iid),
                    )
            self._inv_lin[iid] = None
            self._inv_lout[iid] = None

    def union(self, other) -> None:
        """Component-wise union with any distance cover (min distances win)."""
        self.add_nodes(other.nodes)
        for kind, node, center, dist in other.entries():
            if kind == "in":
                self.add_lin(node, center, dist)
            else:
                self.add_lout(node, center, dist)

    def copy(self) -> "ArrayDistanceCover":
        """A structurally independent deep copy of the cover (subclasses
        — the vector backend — clone as their own type)."""
        clone = type(self)()
        clone.interner = self.interner.copy()
        clone._nodes = set(self._nodes)
        for src, dst in (
            (self._lin, "_lin"),
            (self._lout, "_lout"),
            (self._inv_lin, "_inv_lin"),
            (self._inv_lout, "_inv_lout"),
            (self._lin_dist, "_lin_dist"),
            (self._lout_dist, "_lout_dist"),
        ):
            setattr(clone, dst, [a[:] if a else None for a in src])
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lin_of(self, node: Node) -> Dict[Node, int]:
        """``Lin(node)``: centers (reachability) or ``{center: dist}``."""
        ni = self.interner.get(node)
        centers = self._row(self._lin, ni) if ni is not None else None
        if not centers:
            return {}
        label = self.interner.label
        dists = self._lin_dist[ni]
        return {label(c): d for c, d in zip(centers, dists)}

    def lout_of(self, node: Node) -> Dict[Node, int]:
        """``Lout(node)``: centers (reachability) or ``{center: dist}``."""
        ni = self.interner.get(node)
        centers = self._row(self._lout, ni) if ni is not None else None
        if not centers:
            return {}
        label = self.interner.label
        dists = self._lout_dist[ni]
        return {label(c): d for c, d in zip(centers, dists)}

    def distance(self, u: Node, v: Node) -> Optional[int]:
        """``MIN(LOUT.DIST + LIN.DIST)`` over common centers via one
        galloping merge, extended by the implicit self-entries."""
        get = self.interner.get
        ui, vi = get(u), get(v)
        if ui is None or vi is None:
            return None
        nodes = self._nodes
        if ui not in nodes or vi not in nodes:
            return None
        if ui == vi:
            return 0
        best: Optional[int] = None
        lout = self._row(self._lout, ui)
        lin = self._row(self._lin, vi)
        if lout:
            i = bisect_left(lout, vi)
            if i < len(lout) and lout[i] == vi:  # center = v (din 0)
                best = self._lout_dist[ui][i]
        if lin:
            i = bisect_left(lin, ui)
            if i < len(lin) and lin[i] == ui:  # center = u (dout 0)
                d = self._lin_dist[vi][i]
                if best is None or d < best:
                    best = d
        if lout and lin:
            d = galloping_min_plus(
                lout, self._lout_dist[ui], lin, self._lin_dist[vi]
            )
            if d is not None and (best is None or d < best):
                best = d
        return best

    def connected(self, u: Node, v: Node) -> bool:
        """``u ->* v``? True iff a (shortest) witness distance exists."""
        return self.distance(u, v) is not None

    def descendants_within(self, u: Node, max_dist: int) -> Dict[Node, int]:
        """Descendants of ``u`` at distance ≤ ``max_dist`` with distances."""
        result: Dict[Node, int] = {}
        for d in self.descendants(u):
            dist = self.distance(u, d)
            if dist is not None and dist <= max_dist:
                result[d] = dist
        return result

    # ------------------------------------------------------------------
    # statistics & persistence
    # ------------------------------------------------------------------
    def stored_integers(self, *, with_backward_index: bool = True) -> int:
        """3 ints per entry (id, center, dist), doubled by the backward
        index."""
        per = 6 if with_backward_index else 3
        return per * self.size

    def entries(self) -> Iterator[Tuple[str, Node, Node, int]]:
        """All label entries as ``(kind, node, center, dist)``."""
        label = self.interner.label
        for ni, row in enumerate(self._lin):
            if row:
                node = label(ni)
                dists = self._lin_dist[ni]
                for ci, d in zip(row, dists):
                    yield ("in", node, label(ci), d)
        for ni, row in enumerate(self._lout):
            if row:
                node = label(ni)
                dists = self._lout_dist[ni]
                for ci, d in zip(row, dists):
                    yield ("out", node, label(ci), d)

    def to_reachability(self) -> ArrayTwoHopCover:
        """Forget distances."""
        cover = ArrayTwoHopCover(self.nodes)
        for kind, node, center, _ in self.entries():
            if kind == "in":
                cover.add_lin(node, center)
            else:
                cover.add_lout(node, center)
        return cover

    @classmethod
    def from_cover(cls, cover) -> "ArrayDistanceCover":
        """Convert any distance cover (protocol-level) to arrays.

        Bulk path: group entries per node, sort once, assign whole
        rows — O(k log k) per label instead of O(k^2) repeated
        sorted inserts.
        """
        # intern in sorted node order when possible: label-sorted
        # interners make snapshot blobs deterministic and give the
        # parallel join's global-id remaps their monotonicity
        try:
            ordered = sorted(cover.nodes)
        except TypeError:  # mixed/unorderable node types
            ordered = cover.nodes
        new = cls(ordered)
        lin_rows: Dict[int, List[Tuple[int, int]]] = {}
        lout_rows: Dict[int, List[Tuple[int, int]]] = {}
        intern = new._intern
        for kind, node, center, dist in cover.entries():
            rows = lin_rows if kind == "in" else lout_rows
            rows.setdefault(intern(node), []).append((intern(center), dist))
        for rows, table, dists, inv in (
            (lin_rows, new._lin, new._lin_dist, new._inv_lin),
            (lout_rows, new._lout, new._lout_dist, new._inv_lout),
        ):
            inv_rows: Dict[int, List[int]] = {}
            for ni, pairs in rows.items():
                pairs.sort()
                table[ni] = array(ID_TYPECODE, (p[0] for p in pairs))
                dists[ni] = array(ID_TYPECODE, (p[1] for p in pairs))
                for ci, _ in pairs:
                    inv_rows.setdefault(ci, []).append(ni)
            for ci, ns in inv_rows.items():
                inv[ci] = array(ID_TYPECODE, sorted(ns))
        return new

    def to_csr(self) -> Dict[str, object]:
        """CSR snapshot payload (see :mod:`repro.storage.snapshot`)."""
        lin_indptr, lin_data = self._pack_table(self._lin)
        lout_indptr, lout_data = self._pack_table(self._lout)
        inv_lin_indptr, inv_lin_data = self._pack_table(self._inv_lin)
        inv_lout_indptr, inv_lout_data = self._pack_table(self._inv_lout)
        _, lin_dist_data = self._pack_table(self._lin_dist)
        _, lout_dist_data = self._pack_table(self._lout_dist)
        return {
            "distance": True,
            "labels": self.interner.labels(),
            "active": array(ID_TYPECODE, sorted(self._nodes)),
            "lin": (lin_indptr, lin_data),
            "lout": (lout_indptr, lout_data),
            "inv_lin": (inv_lin_indptr, inv_lin_data),
            "inv_lout": (inv_lout_indptr, inv_lout_data),
            "lin_dist": lin_dist_data,
            "lout_dist": lout_dist_data,
        }

    @classmethod
    def from_csr(cls, payload: Mapping[str, object]) -> "ArrayDistanceCover":
        """Rebuild a cover from a :meth:`to_csr` payload (block copies)."""
        new = cls()
        new.interner = NodeInterner.from_labels(payload["labels"])
        new._nodes = set(payload["active"])
        new._lin = cls._unpack_table(*payload["lin"])
        new._lout = cls._unpack_table(*payload["lout"])
        new._inv_lin = cls._unpack_table(*payload["inv_lin"])
        new._inv_lout = cls._unpack_table(*payload["inv_lout"])
        lin_indptr = payload["lin"][0]
        lout_indptr = payload["lout"][0]
        new._lin_dist = cls._unpack_table(lin_indptr, payload["lin_dist"])
        new._lout_dist = cls._unpack_table(lout_indptr, payload["lout_dist"])
        return new

    def verify_against(self, dclosure, nodes: Optional[Iterable[Node]] = None) -> None:
        """Assert distances match a :class:`DistanceClosure` exactly."""
        universe = list(nodes) if nodes is not None else list(self.nodes)
        for u in universe:
            for v in universe:
                expected = dclosure.distance(u, v)
                actual = self.distance(u, v)
                if expected != actual:
                    raise AssertionError(
                        f"distance mismatch for ({u!r}, {v!r}): "
                        f"closure says {expected}, cover says {actual}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ArrayDistanceCover(nodes={len(self._nodes)}, size={self.size})"
