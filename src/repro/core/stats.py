"""Index statistics in the paper's accounting (Sections 3.4 and 7.2).

Table 2 reports, per build strategy, the build *time*, the cover *size*
(number of label entries), and the *compression* factor relative to the
materialised transitive closure. Both closure and cover are stored as
two-integer rows plus a backward index that doubles the space, so the
factor reduces to ``connections / entries`` — e.g. the paper's baseline:
344,992,370 connections / 15,976,677 entries ≈ 21.6, and the
unpartitioned cover's 1,289,930 entries give ≈ 267.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


def compression_ratio(closure_connections: int, cover_size: int) -> float:
    """Closure-to-cover compression factor (Table 2's last column)."""
    if cover_size == 0:
        return float("inf") if closure_connections else 1.0
    return closure_connections / cover_size


def entries_per_node(cover_size: int, num_nodes: int) -> float:
    """Average label entries per element.

    Section 7.2 reports "less than three index entries per node" for the
    INEX build as its efficiency yardstick when the closure itself is
    too large to materialise.
    """
    return cover_size / num_nodes if num_nodes else 0.0


@dataclass
class IndexSizeReport:
    """Size accounting of one built index."""

    num_nodes: int
    cover_size: int
    closure_connections: Optional[int] = None

    @property
    def stored_integers(self) -> int:
        """2 ints per entry + backward index (Section 3.4)."""
        return 4 * self.cover_size

    @property
    def closure_stored_integers(self) -> Optional[int]:
        """Ints a materialised closure would need (2 per connection,
        doubled by the backward index); None without a closure run."""
        if self.closure_connections is None:
            return None
        return 4 * self.closure_connections

    @property
    def compression(self) -> Optional[float]:
        """Closure ints / cover ints — Table 2's compression column."""
        if self.closure_connections is None:
            return None
        return compression_ratio(self.closure_connections, self.cover_size)

    @property
    def entries_per_node(self) -> float:
        """Average label entries per node (the paper's INEX metric)."""
        return entries_per_node(self.cover_size, self.num_nodes)
