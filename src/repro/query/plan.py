"""Logical query plans — the middle layer of the query stack.

The query stack is three explicit layers::

    AST (pathexpr)  →  logical plan (this module)  →  physical plan
                                                       (planner) →
                                                       operators (exec)

A :class:`LogicalPlan` is a linear chain of relational nodes derived
1:1 from the AST — *what* to compute, with no ordering decisions:

* :class:`Scan` — bind a step's candidates from the tag index;
* :class:`ChildJoin` / :class:`DescendantJoin` — connect a position to
  its predecessor along the tree (parent pointer) or the HOPI cover
  (reachability probe);
* :class:`Filter` — a ``[predicate]`` existence test on one position;
* :class:`Rank` — score (tag similarity × distance discounts) and sort;
* :class:`Limit` — the expression's ``offset``/``limit`` window.

The :mod:`repro.query.planner` turns this into a
:class:`~repro.query.planner.PhysicalPlan` by choosing a join *order*
and *direction* per join (forward via ``descendants``, backward via the
cover's ``ancestors`` side); :mod:`repro.query.exec` then streams
bindings through generator operators.

:func:`plan_key` is the canonical cache key shared by the service
layer's plan and result caches: two spellings of the same query (extra
whitespace, ``offset``/``limit`` order) map to one key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.query.pathexpr import PathExpression, Predicate, parse_path


@dataclass(frozen=True)
class Scan:
    """Bind ``position`` from the tag index (no join).

    Attributes:
        position: the step index this node binds.
        tag: the element test (``"*"`` matches every tag).
        similar: True for ``~tag`` similarity tests.
        anchored: True when this is position 0 of an absolute path
            (leading ``/``) — only document roots qualify.
    """

    position: int
    tag: str
    similar: bool
    anchored: bool


@dataclass(frozen=True)
class ChildJoin:
    """Connect ``position`` to ``position - 1`` via parent pointers."""

    position: int


@dataclass(frozen=True)
class DescendantJoin:
    """Connect ``position`` to ``position - 1`` via HOPI reachability.

    The join is a symmetric connection test (Section 3.1's 2-hop
    probes), which is what lets the planner evaluate it in either
    direction: forward from the bound predecessor (``descendants``
    side) or backward from the bound successor (``ancestors`` side).
    """

    position: int


@dataclass(frozen=True)
class Filter:
    """Keep only elements at ``position`` satisfying ``predicate``."""

    position: int
    predicate: Predicate


@dataclass(frozen=True)
class Rank:
    """Score bindings and sort by ``(-score, bindings)``."""


@dataclass(frozen=True)
class Limit:
    """Window the ranked results: skip ``offset``, keep ``limit``."""

    limit: Optional[int]
    offset: int


LogicalNode = Union[Scan, ChildJoin, DescendantJoin, Filter, Rank, Limit]


@dataclass(frozen=True)
class LogicalPlan:
    """The ordered logical node chain of one path expression.

    The physical layers *consume* this, they don't re-derive it: the
    planner orders the join nodes, the operators evaluate each
    position's :class:`Filter` nodes inline (:meth:`filters_at`), and
    the engine applies the :class:`Limit` node (:attr:`window`) after
    :class:`Rank`.
    """

    expr: PathExpression
    nodes: Tuple[LogicalNode, ...]

    @property
    def key(self) -> str:
        """The canonical plan key (see :func:`plan_key`)."""
        return str(self.expr)

    def filters_at(self, position: int) -> Tuple[Predicate, ...]:
        """The :class:`Filter` predicates guarding one step position."""
        return tuple(
            n.predicate
            for n in self.nodes
            if isinstance(n, Filter) and n.position == position
        )

    @property
    def window(self) -> Optional[Limit]:
        """The trailing :class:`Limit` node, or ``None``."""
        last = self.nodes[-1]
        return last if isinstance(last, Limit) else None


def plan_key(path: "str | PathExpression") -> str:
    """The canonical cache key of a query.

    Parsing normalises whitespace and clause order, so every spelling
    of the same query shares one key — the service layer keys both its
    plan cache and its ``(key, epoch)`` result cache by this.
    """
    expr = parse_path(path) if isinstance(path, str) else path
    return str(expr)


def build_logical_plan(path: "str | PathExpression") -> LogicalPlan:
    """Lower a parsed path expression to its logical node chain.

    Each step contributes a :class:`Scan` (position 0) or a join node,
    followed by one :class:`Filter` per ``[predicate]`` on that step;
    the chain always ends with :class:`Rank` and, when the expression
    carries a window, :class:`Limit`.
    """
    expr = parse_path(path) if isinstance(path, str) else path
    nodes: list = []
    for i, step in enumerate(expr.steps):
        if i == 0:
            nodes.append(
                Scan(0, step.tag, step.similar, anchored=step.axis == "child")
            )
        elif step.axis == "child":
            nodes.append(ChildJoin(i))
        else:
            nodes.append(DescendantJoin(i))
        for predicate in step.predicates:
            nodes.append(Filter(i, predicate))
    nodes.append(Rank())
    if expr.limit is not None or expr.offset:
        nodes.append(Limit(expr.limit, expr.offset))
    return LogicalPlan(expr, tuple(nodes))
