"""Evaluating path expressions with the HOPI index.

The engine is a thin facade over the three-layer query stack::

    AST (pathexpr) → logical plan (plan) → physical plan (planner)
                                         → streaming operators (exec)

:meth:`QueryEngine.evaluate` parses, plans and runs the operator
pipeline, then ranks: scores combine tag similarities multiplicatively
and, when the index is distance-aware, each descendant hop is
discounted by ``1 / (1 + distance)`` — "a path where an author element
is found far away from a book element should be ranked lower"
(Section 5.1). Scores are recomputed per result in canonical
left-to-right association, so every join order the planner picks is
**bit-identical** to the legacy left-to-right evaluator (pinned by the
differential suite in ``tests/test_query_pipeline.py``).

What the planner buys: a ``//*//rare_tag`` query no longer materialises
one binding per element of the unselective head — the pipeline seeds at
the rare tail and probes *backward* over the cover's ``ancestors``
side. ``count`` aggregates ``element → multiplicity`` frontiers (never
materialising tuples), ``exists`` stops at the first match, and
``stream`` yields unranked results lazily, honouring the expression's
``limit`` without draining the pipeline.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.hopi import HopiIndex
from repro.query.exec import ExecContext, run_bindings, run_count
from repro.query.ontology import TagOntology, default_ontology
from repro.query.pathexpr import PathExpression, Step
from repro.query.plan import LogicalPlan, build_logical_plan
from repro.query.planner import PhysicalPlan, PreparedQuery, plan_query
from repro.xmlmodel.model import ElementId

#: Anything the engine's entry points accept as a query: raw text, a
#: parsed expression, a lowered logical plan, or a prepared query
#: (whose cached lowering is reused — the service layer's hot path).
Query = "str | PathExpression | LogicalPlan | PreparedQuery"

#: Identity of a step's candidate list: ``(tag, similar)``. Two steps
#: with the same key select the same candidates (wildcards use ``"*"``),
#: which is what makes candidate memoization and cross-query probe
#: caching sound.
StepKey = Tuple[str, bool]

#: A descendant-step probe: ``probe(source, step_key, candidates)``
#: returns the indices into ``candidates`` reachable from ``source``.
#: The default computes via ``index.connected_many``; the service layer
#: substitutes a per-epoch, cross-thread coalescing cache. A probe
#: *object* may additionally expose two optional hooks the executor
#: feature-detects: ``probe.many(sources, step_key, candidates)``
#: returning ``{source: [indices]}`` for a whole frontier block (backed
#: by ``index.intersect_many``), and ``probe.backward(target, step_key,
#: compute)`` caching backward (``ancestors``-side) materialisations —
#: plain callables keep the legacy one-source-per-call behaviour.
Probe = Callable[[ElementId, StepKey, Sequence[ElementId]], List[int]]


@dataclass(frozen=True)
class QueryResult:
    """One ranked match of a path expression.

    Attributes:
        bindings: one element per step, in step order.
        score: combined tag-similarity and distance score in ``(0, 1]``.
    """

    bindings: Tuple[ElementId, ...]
    score: float

    @property
    def target(self) -> ElementId:
        """The element bound to the last step (the query answer)."""
        return self.bindings[-1]


class QueryEngine:
    """Path-expression evaluation over a :class:`HopiIndex`.

    Evaluation is **re-entrant**: :meth:`evaluate` and :meth:`count`
    mutate no instance state beyond benign memo fills, so one engine
    can serve many threads at once — the service layer keeps a single
    engine per published index epoch and lets every reader share its
    tag index and candidate memos. Both methods also take an explicit
    ``index`` so pooled engines (e.g. one per label backend over the
    same collection) can share one engine's derived state.

    Args:
        index: the index to evaluate against by default.
        ontology: tag ontology for ``~tag`` steps.
        similarity_threshold: minimum ontology similarity for a tag to
            join a ``~tag`` candidate list.
        max_results: ranked-result truncation per query (applied after
            the expression's own ``offset``/``limit`` window).
        planner: default join-ordering mode — ``"selective"``
            (cardinality-driven, may flip descendant joins backward)
            or ``"naive"`` (legacy left-to-right). Either mode returns
            bit-identical results.
    """

    def __init__(
        self,
        index: HopiIndex,
        *,
        ontology: Optional[TagOntology] = None,
        similarity_threshold: float = 0.3,
        max_results: int = 1000,
        planner: str = "selective",
    ) -> None:
        self.index = index
        self.collection = index.collection
        self.ontology = ontology or default_ontology()
        self.similarity_threshold = similarity_threshold
        self.max_results = max_results
        self.planner = planner
        self._tag_index: Dict[str, List[ElementId]] = self.collection.tags()
        # per-(tag, similar) memos; concurrent fills of the same key
        # compute the same value, so the races are benign under the GIL
        self._candidate_memo: Dict[StepKey, List[Tuple[ElementId, float]]] = {}
        self._candidate_map_memo: Dict[StepKey, Dict[ElementId, float]] = {}
        self._candidate_elems_memo: Dict[StepKey, List[ElementId]] = {}
        self._parent_map_memo: Dict[StepKey, Dict[ElementId, List[ElementId]]] = {}
        self._anchored_count_memo: Dict[StepKey, int] = {}

    def refresh(self) -> None:
        """Rebuild the tag index (and drop every derived memo) after
        collection maintenance."""
        self._tag_index = self.collection.tags()
        self._candidate_memo = {}
        self._candidate_map_memo = {}
        self._candidate_elems_memo = {}
        self._parent_map_memo = {}
        self._anchored_count_memo = {}

    # ------------------------------------------------------------------
    # derived candidate state (shared by planner and operators)
    # ------------------------------------------------------------------
    def _candidates(self, step: Step) -> List[Tuple[ElementId, float]]:
        """Elements matching a step's element test with their tag score.

        Memoized per ``(tag, similar)``: a path like ``//a//b//a`` (or a
        workload of many queries sharing element tests) computes each
        candidate list once per :meth:`refresh` generation. Callers must
        not mutate the returned list. ``[predicate]`` filters are *not*
        applied here — they are per-element and evaluated lazily by the
        operators, so the memo stays shareable across queries.
        """
        key: StepKey = (step.tag, step.similar)
        memo = self._candidate_memo.get(key)
        if memo is not None:
            return memo
        if step.tag == "*":
            matches = [
                (e, 1.0) for ids in self._tag_index.values() for e in ids
            ]
        elif not step.similar:
            matches = [(e, 1.0) for e in self._tag_index.get(step.tag, [])]
        else:
            matches = []
            for tag, score in self.ontology.similar_tags(
                step.tag, self._tag_index.keys(), threshold=self.similarity_threshold
            ):
                matches.extend((e, score) for e in self._tag_index[tag])
        self._candidate_memo[key] = matches
        return matches

    def _candidate_elems(self, step: Step) -> List[ElementId]:
        """Just the elements of :meth:`_candidates` (probe batch shape)."""
        key: StepKey = (step.tag, step.similar)
        memo = self._candidate_elems_memo.get(key)
        if memo is None:
            memo = [e for e, _ in self._candidates(step)]
            self._candidate_elems_memo[key] = memo
        return memo

    def _candidate_map(self, step: Step) -> Dict[ElementId, float]:
        """``element → tag score`` for a step (membership tests and
        scoring; each element appears in at most one similar tag list,
        so the mapping is unambiguous)."""
        key: StepKey = (step.tag, step.similar)
        memo = self._candidate_map_memo.get(key)
        if memo is None:
            memo = dict(self._candidates(step))
            self._candidate_map_memo[key] = memo
        return memo

    def _parent_map(self, step: Step) -> Dict[ElementId, List[ElementId]]:
        """``parent → candidate children`` for a child step/predicate."""
        key: StepKey = (step.tag, step.similar)
        memo = self._parent_map_memo.get(key)
        if memo is None:
            memo = {}
            for e, _score in self._candidates(step):
                parent = self.collection.elements[e].parent
                if parent is not None:
                    memo.setdefault(parent, []).append(e)
            self._parent_map_memo[key] = memo
        return memo

    def _anchored_count(self, step: Step) -> int:
        """How many of a step's candidates are document roots (the
        planner's cardinality estimate for an anchored position 0)."""
        key: StepKey = (step.tag, step.similar)
        memo = self._anchored_count_memo.get(key)
        if memo is None:
            elements = self.collection.elements
            memo = sum(
                1 for e, _ in self._candidates(step)
                if elements[e].parent is None
            )
            self._anchored_count_memo[key] = memo
        return memo

    # ------------------------------------------------------------------
    # probes and scoring
    # ------------------------------------------------------------------
    def _hop_score(self, index: HopiIndex, u: ElementId, v: ElementId) -> float:
        """Distance discount of a descendant hop (1.0 without distances)."""
        if not index.is_distance_aware:
            return 1.0
        dist = index.distance(u, v)
        if dist is None:  # pragma: no cover - guarded by connected()
            return 0.0
        return 1.0 / (1.0 + dist)

    def _reachable(
        self,
        index: HopiIndex,
        probe: Optional[Probe],
        source: ElementId,
        step_key: StepKey,
        cand_elems: Sequence[ElementId],
    ) -> List[int]:
        """Indices of ``cand_elems`` reachable from ``source``."""
        if probe is not None:
            return probe(source, step_key, cand_elems)
        flags = index.connected_many(source, cand_elems)
        return [i for i, ok in enumerate(flags) if ok]

    def _score_binding(
        self, index: HopiIndex, expr: PathExpression, bindings: Tuple[ElementId, ...]
    ) -> float:
        """The canonical score of one full binding.

        Computed in left-to-right association — ``((t0·t1)·h1)·t2…`` —
        exactly as the legacy evaluator accumulated it, so a result's
        score is bit-identical no matter which join order produced the
        binding. Predicates contribute no score.
        """
        steps = expr.steps
        score = self._candidate_map(steps[0])[bindings[0]]
        for i in range(1, len(steps)):
            step = steps[i]
            score = score * self._candidate_map(step)[bindings[i]]
            if step.axis == "descendant":
                score = score * self._hop_score(index, bindings[i - 1], bindings[i])
        return score

    # ------------------------------------------------------------------
    # planning API
    # ------------------------------------------------------------------
    def _lower(self, path: Query) -> LogicalPlan:
        """Normalise any accepted query form to its logical plan,
        reusing cached lowerings where they exist."""
        if isinstance(path, PreparedQuery):
            return path.logical
        if isinstance(path, LogicalPlan):
            return path
        return build_logical_plan(path)

    def prepare(self, path: "str | PathExpression") -> PreparedQuery:
        """Parse and lower once; re-plan cheaply per epoch via
        :meth:`PreparedQuery.bind`."""
        return PreparedQuery(path)

    @property
    def cost_model(self):
        """The index's per-direction probe cost model (what
        :func:`~repro.query.planner.plan_query` weighs direction and
        seed decisions with). Sourced from ``index.probe_costs`` —
        static per-backend constants unless the index was calibrated."""
        return getattr(self.index, "probe_costs", None)

    def plan(
        self,
        path: Query,
        *,
        order: Optional[str] = None,
        directional: bool = False,
    ) -> PhysicalPlan:
        """The physical plan :meth:`evaluate` would run for ``path``
        (``directional=True`` shows the endpoint-seeded plan
        :meth:`count` would run instead)."""
        return plan_query(
            self._lower(path), self, order=order or self.planner,
            directional=directional,
        )

    def explain(
        self,
        path: Query,
        *,
        order: Optional[str] = None,
        mode: str = "evaluate",
    ) -> str:
        """Human-readable plan rendering (``repro query --explain``).

        ``mode`` selects which execution profile the ``exec:`` line
        describes (``"evaluate"``, ``"stream"``, ``"count"``,
        ``"exists"``); ``count`` renders the directional plan that the
        counting path actually runs.
        """
        return self.plan(
            path, order=order, directional=(mode == "count"),
        ).explain(mode)

    # ------------------------------------------------------------------
    # evaluation API
    # ------------------------------------------------------------------
    def _pipeline(
        self,
        path: Query,
        index: Optional[HopiIndex],
        probe: Optional[Probe],
        order: Optional[str],
        *,
        directional: bool = False,
    ) -> Tuple[LogicalPlan, PhysicalPlan, ExecContext, HopiIndex]:
        """The shared entry-point preamble: lower, plan, build the
        execution context. Every public evaluation method goes through
        this, so planning defaults can never silently diverge."""
        index = index or self.index
        logical = self._lower(path)
        plan = plan_query(
            logical, self, order=order or self.planner,
            directional=directional,
        )
        return logical, plan, ExecContext(self, index, probe), index

    def evaluate(
        self,
        path: Query,
        *,
        index: Optional[HopiIndex] = None,
        probe: Optional[Probe] = None,
        order: Optional[str] = None,
    ) -> List[QueryResult]:
        """Evaluate a path expression, returning ranked results.

        Args:
            path: a path string (parsed on the fly), a pre-parsed
                :class:`PathExpression`, or a :class:`PreparedQuery` /
                :class:`~repro.query.plan.LogicalPlan` (cached lowering
                reused).
            index: evaluate against this index instead of the engine's
                own (must cover the same collection — e.g. another label
                backend, or the published epoch of a service).
            probe: substitute descendant-step probe (see :data:`Probe`);
                lets a serving tier cache/coalesce probes across
                concurrent queries.
            order: override the engine's planner mode for this call.

        Returns:
            Results sorted by descending score (ties broken by element
            ids for determinism), windowed by the expression's
            ``offset``/``limit``, truncated to ``max_results``.
        """
        logical, plan, ctx, index = self._pipeline(path, index, probe, order)
        expr = logical.expr
        window = logical.window
        if window is not None and window.limit is not None:
            # bounded-heap top-k: scores stream straight out of the
            # pipeline into a heap of offset+limit entries, so a
            # large match set with a small window never materialises
            # the full ranked list. Identical to sort-then-slice:
            # bindings are unique, so the (-score, bindings) tuple
            # order is total.
            k = window.offset + window.limit
            top = heapq.nsmallest(
                k,
                (
                    (-self._score_binding(index, expr, b), b)
                    for b in run_bindings(plan, ctx)
                ),
            )
            results = [QueryResult(b, -neg) for neg, b in top]
            return results[window.offset:][: self.max_results]
        results = [
            QueryResult(b, self._score_binding(index, expr, b))
            for b in run_bindings(plan, ctx)
        ]
        results.sort(key=lambda r: (-r.score, r.bindings))
        if window is not None:
            results = results[window.offset:]
        return results[: self.max_results]

    def stream(
        self,
        path: Query,
        *,
        index: Optional[HopiIndex] = None,
        probe: Optional[Probe] = None,
        order: Optional[str] = None,
    ) -> Iterator[QueryResult]:
        """Yield matches lazily, **unranked** (pipeline order).

        The expression's ``limit`` caps the stream — the pipeline stops
        as soon as it is filled, the early-termination path for "give
        me any N matches". ``offset`` is **ignored** here: windows are
        defined over the *ranked* list (see :mod:`repro.query.pathexpr`)
        and the pipeline order is planner-dependent, so skipping the
        first N streamed matches would discard an arbitrary subset that
        corresponds to no meaningful page — use :meth:`evaluate` for
        ranked pagination.
        """
        logical, plan, ctx, index = self._pipeline(path, index, probe, order)
        expr = logical.expr
        bindings = run_bindings(plan, ctx)
        window = logical.window
        stop = None if window is None else window.limit
        for b in itertools.islice(bindings, stop):
            yield QueryResult(b, self._score_binding(index, expr, b))

    def exists(
        self,
        path: Query,
        *,
        index: Optional[HopiIndex] = None,
        probe: Optional[Probe] = None,
        order: Optional[str] = None,
    ) -> bool:
        """True iff the expression has at least one match.

        Consumes exactly one binding from the pipeline (the window is
        ignored — existence is a property of the match set).
        """
        _, plan, ctx, _ = self._pipeline(path, index, probe, order)
        return next(iter(run_bindings(plan, ctx)), None) is not None

    def count(
        self,
        path: Query,
        *,
        index: Optional[HopiIndex] = None,
        probe: Optional[Probe] = None,
        order: Optional[str] = None,
    ) -> int:
        """The total number of matches, without ranking.

        Unlike ``len(evaluate(path))`` this skips scoring, sorting and
        the ``max_results`` truncation, and never materialises binding
        tuples: the number of full bindings ending at an element depends
        only on that element, so partial results aggregate to
        ``element -> count`` — one integer per distinct frontier
        element. The planner restricts counting plans to a pure
        direction (forward or backward, whichever end is more
        selective); the expression's ``offset``/``limit`` window is
        ignored — the count is a property of the match set.
        """
        _, plan, ctx, _ = self._pipeline(
            path, index, probe, order, directional=True
        )
        return run_count(plan, ctx)
