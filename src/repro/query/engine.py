"""Evaluating path expressions with the HOPI index.

The evaluator binds each step of a path expression to elements,
left-to-right:

* the element test selects candidates from the collection's tag index
  (``~tag`` expands to ontologically similar tags, each carrying its
  similarity score; ``*`` matches every tag);
* a ``child`` step keeps candidates whose parent is bound to the
  previous step;
* a ``descendant`` step keeps candidates **reachable from** the previous
  binding — one batched HOPI ``connected_many`` probe per distinct
  source instead of a graph traversal, which is exactly the paper's
  reason for the index (and the reason wildcards and links are no
  harder than plain paths). On the array backend the whole candidate
  batch is answered from a single descendant-set materialisation over
  dense node ids.

Scores combine tag similarities multiplicatively; when the index is
distance-aware, each descendant hop is additionally discounted by
``1 / (1 + distance)`` — "a path where an author element is found far
away from a book element should be ranked lower" (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.hopi import HopiIndex
from repro.query.ontology import TagOntology, default_ontology
from repro.query.pathexpr import PathExpression, Step, parse_path
from repro.xmlmodel.model import ElementId

#: Identity of a step's candidate list: ``(tag, similar)``. Two steps
#: with the same key select the same candidates (wildcards use ``"*"``),
#: which is what makes candidate memoization and cross-query probe
#: caching sound.
StepKey = Tuple[str, bool]

#: A descendant-step probe: ``probe(source, step_key, candidates)``
#: returns the indices into ``candidates`` reachable from ``source``.
#: The default computes via ``index.connected_many``; the service layer
#: substitutes a per-epoch, cross-thread coalescing cache.
Probe = Callable[[ElementId, StepKey, Sequence[ElementId]], List[int]]


@dataclass(frozen=True)
class QueryResult:
    """One ranked match of a path expression.

    Attributes:
        bindings: one element per step, in step order.
        score: combined tag-similarity and distance score in ``(0, 1]``.
    """

    bindings: Tuple[ElementId, ...]
    score: float

    @property
    def target(self) -> ElementId:
        """The element bound to the last step (the query answer)."""
        return self.bindings[-1]


class QueryEngine:
    """Path-expression evaluation over a :class:`HopiIndex`.

    Evaluation is **re-entrant**: :meth:`evaluate` and :meth:`count`
    mutate no instance state beyond a benign candidate-memo fill, so one
    engine can serve many threads at once — the service layer keeps a
    single engine per published index epoch and lets every reader share
    its tag index and candidate memo. Both methods also take an explicit
    ``index`` so pooled engines (e.g. one per label backend over the
    same collection) can share one engine's derived state.
    """

    def __init__(
        self,
        index: HopiIndex,
        *,
        ontology: Optional[TagOntology] = None,
        similarity_threshold: float = 0.3,
        max_results: int = 1000,
    ) -> None:
        self.index = index
        self.collection = index.collection
        self.ontology = ontology or default_ontology()
        self.similarity_threshold = similarity_threshold
        self.max_results = max_results
        self._tag_index: Dict[str, List[ElementId]] = self.collection.tags()
        # per-(tag, similar) candidate memo; concurrent fills of the same
        # key compute the same value, so the race is benign under the GIL
        self._candidate_memo: Dict[StepKey, List[Tuple[ElementId, float]]] = {}

    def refresh(self) -> None:
        """Rebuild the tag index (and drop the candidate memo) after
        collection maintenance."""
        self._tag_index = self.collection.tags()
        self._candidate_memo = {}

    # ------------------------------------------------------------------
    def _candidates(self, step: Step) -> List[Tuple[ElementId, float]]:
        """Elements matching a step's element test with their tag score.

        Memoized per ``(tag, similar)``: a path like ``//a//b//a`` (or a
        workload of many queries sharing element tests) computes each
        candidate list once per :meth:`refresh` generation. Callers must
        not mutate the returned list.
        """
        key: StepKey = (step.tag, step.similar)
        memo = self._candidate_memo.get(key)
        if memo is not None:
            return memo
        if step.tag == "*":
            matches = [
                (e, 1.0) for ids in self._tag_index.values() for e in ids
            ]
        elif not step.similar:
            matches = [(e, 1.0) for e in self._tag_index.get(step.tag, [])]
        else:
            matches = []
            for tag, score in self.ontology.similar_tags(
                step.tag, self._tag_index.keys(), threshold=self.similarity_threshold
            ):
                matches.extend((e, score) for e in self._tag_index[tag])
        self._candidate_memo[key] = matches
        return matches

    def _hop_score(self, index: HopiIndex, u: ElementId, v: ElementId) -> float:
        """Distance discount of a descendant hop (1.0 without distances)."""
        if not index.is_distance_aware:
            return 1.0
        dist = index.distance(u, v)
        if dist is None:  # pragma: no cover - guarded by connected()
            return 0.0
        return 1.0 / (1.0 + dist)

    def _reachable(
        self,
        index: HopiIndex,
        probe: Optional[Probe],
        source: ElementId,
        step_key: StepKey,
        cand_elems: Sequence[ElementId],
    ) -> List[int]:
        """Indices of ``cand_elems`` reachable from ``source``."""
        if probe is not None:
            return probe(source, step_key, cand_elems)
        flags = index.connected_many(source, cand_elems)
        return [i for i, ok in enumerate(flags) if ok]

    def evaluate(
        self,
        path: "str | PathExpression",
        *,
        index: Optional[HopiIndex] = None,
        probe: Optional[Probe] = None,
    ) -> List[QueryResult]:
        """Evaluate a path expression, returning ranked results.

        Args:
            path: a path string (parsed on the fly) or a pre-parsed
                :class:`PathExpression`.
            index: evaluate against this index instead of the engine's
                own (must cover the same collection — e.g. another label
                backend, or the published epoch of a service).
            probe: substitute descendant-step probe (see :data:`Probe`);
                lets a serving tier cache/coalesce probes across
                concurrent queries.

        Returns:
            Results sorted by descending score (ties broken by element
            ids for determinism), truncated to ``max_results``.
        """
        index = index or self.index
        expr = parse_path(path) if isinstance(path, str) else path
        first, *rest = expr.steps

        partial: List[Tuple[Tuple[ElementId, ...], float]] = []
        for e, score in self._candidates(first):
            if first.axis == "child":
                # an absolute /step starts at document roots
                if self.collection.elements[e].parent is not None:
                    continue
            partial.append(((e,), score))

        for step in rest:
            candidates = self._candidates(step)
            grown: List[Tuple[Tuple[ElementId, ...], float]] = []
            if step.axis == "child":
                by_parent: Dict[ElementId, List[Tuple[ElementId, float]]] = {}
                for e, score in candidates:
                    parent = self.collection.elements[e].parent
                    if parent is not None:
                        by_parent.setdefault(parent, []).append((e, score))
                for bindings, score in partial:
                    for e, tag_score in by_parent.get(bindings[-1], ()):
                        grown.append((bindings + (e,), score * tag_score))
            else:
                # one batched reachability probe per distinct source
                # element; bindings sharing a source reuse the answer.
                # Only the reachable candidate *indices* are cached, so
                # memory stays bounded by true positives, not by
                # |sources| x |candidates|.
                step_key: StepKey = (step.tag, step.similar)
                cand_elems = [e for e, _ in candidates]
                reach_cache: Dict[ElementId, List[int]] = {}
                for bindings, score in partial:
                    prev = bindings[-1]
                    reach = reach_cache.get(prev)
                    if reach is None:
                        reach = self._reachable(
                            index, probe, prev, step_key, cand_elems
                        )
                        reach_cache[prev] = reach
                    for i in reach:
                        e, tag_score = candidates[i]
                        if e == prev:
                            continue
                        hop = self._hop_score(index, prev, e)
                        grown.append(
                            (bindings + (e,), score * tag_score * hop)
                        )
            partial = grown
            if not partial:
                break

        results = [QueryResult(b, s) for b, s in partial]
        results.sort(key=lambda r: (-r.score, r.bindings))
        return results[: self.max_results]

    def count(
        self,
        path: "str | PathExpression",
        *,
        index: Optional[HopiIndex] = None,
        probe: Optional[Probe] = None,
    ) -> int:
        """The total number of matches, without ranking.

        Unlike ``len(evaluate(path))`` this skips scoring, sorting and
        the ``max_results`` truncation, and never materialises binding
        tuples: the number of full bindings ending at an element depends
        only on that element, so partial results aggregate to
        ``element -> count`` — one integer per distinct tail instead of
        one tuple per match.
        """
        index = index or self.index
        expr = parse_path(path) if isinstance(path, str) else path
        first, *rest = expr.steps

        tails: Dict[ElementId, int] = {}
        for e, _ in self._candidates(first):
            if first.axis == "child":
                if self.collection.elements[e].parent is not None:
                    continue
            tails[e] = tails.get(e, 0) + 1

        for step in rest:
            candidates = self._candidates(step)
            grown: Dict[ElementId, int] = {}
            if step.axis == "child":
                for e, _ in candidates:
                    parent = self.collection.elements[e].parent
                    if parent in tails:
                        grown[e] = grown.get(e, 0) + tails[parent]
            else:
                step_key = (step.tag, step.similar)
                cand_elems = [e for e, _ in candidates]
                for prev, multiplicity in tails.items():
                    for i in self._reachable(
                        index, probe, prev, step_key, cand_elems
                    ):
                        e = cand_elems[i]
                        if e == prev:
                            continue
                        grown[e] = grown.get(e, 0) + multiplicity
            tails = grown
            if not tails:
                break
        return sum(tails.values())
