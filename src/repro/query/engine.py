"""Evaluating path expressions with the HOPI index.

The evaluator binds each step of a path expression to elements,
left-to-right:

* the element test selects candidates from the collection's tag index
  (``~tag`` expands to ontologically similar tags, each carrying its
  similarity score; ``*`` matches every tag);
* a ``child`` step keeps candidates whose parent is bound to the
  previous step;
* a ``descendant`` step keeps candidates **reachable from** the previous
  binding — one batched HOPI ``connected_many`` probe per distinct
  source instead of a graph traversal, which is exactly the paper's
  reason for the index (and the reason wildcards and links are no
  harder than plain paths). On the array backend the whole candidate
  batch is answered from a single descendant-set materialisation over
  dense node ids.

Scores combine tag similarities multiplicatively; when the index is
distance-aware, each descendant hop is additionally discounted by
``1 / (1 + distance)`` — "a path where an author element is found far
away from a book element should be ranked lower" (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.hopi import HopiIndex
from repro.query.ontology import TagOntology, default_ontology
from repro.query.pathexpr import PathExpression, Step, parse_path
from repro.xmlmodel.model import ElementId


@dataclass(frozen=True)
class QueryResult:
    """One ranked match of a path expression.

    Attributes:
        bindings: one element per step, in step order.
        score: combined tag-similarity and distance score in ``(0, 1]``.
    """

    bindings: Tuple[ElementId, ...]
    score: float

    @property
    def target(self) -> ElementId:
        """The element bound to the last step (the query answer)."""
        return self.bindings[-1]


class QueryEngine:
    """Path-expression evaluation over a :class:`HopiIndex`."""

    def __init__(
        self,
        index: HopiIndex,
        *,
        ontology: Optional[TagOntology] = None,
        similarity_threshold: float = 0.3,
        max_results: int = 1000,
    ) -> None:
        self.index = index
        self.collection = index.collection
        self.ontology = ontology or default_ontology()
        self.similarity_threshold = similarity_threshold
        self.max_results = max_results
        self._tag_index: Dict[str, List[ElementId]] = self.collection.tags()

    def refresh(self) -> None:
        """Rebuild the tag index after collection maintenance."""
        self._tag_index = self.collection.tags()

    # ------------------------------------------------------------------
    def _candidates(self, step: Step) -> List[Tuple[ElementId, float]]:
        """Elements matching a step's element test with their tag score."""
        if step.tag == "*":
            return [
                (e, 1.0) for ids in self._tag_index.values() for e in ids
            ]
        if not step.similar:
            return [(e, 1.0) for e in self._tag_index.get(step.tag, [])]
        matches: List[Tuple[ElementId, float]] = []
        for tag, score in self.ontology.similar_tags(
            step.tag, self._tag_index.keys(), threshold=self.similarity_threshold
        ):
            matches.extend((e, score) for e in self._tag_index[tag])
        return matches

    def _hop_score(self, u: ElementId, v: ElementId) -> float:
        """Distance discount of a descendant hop (1.0 without distances)."""
        if not self.index.is_distance_aware:
            return 1.0
        dist = self.index.distance(u, v)
        if dist is None:  # pragma: no cover - guarded by connected()
            return 0.0
        return 1.0 / (1.0 + dist)

    def evaluate(self, path: "str | PathExpression") -> List[QueryResult]:
        """Evaluate a path expression, returning ranked results.

        Args:
            path: a path string (parsed on the fly) or a pre-parsed
                :class:`PathExpression`.

        Returns:
            Results sorted by descending score (ties broken by element
            ids for determinism), truncated to ``max_results``.
        """
        expr = parse_path(path) if isinstance(path, str) else path
        first, *rest = expr.steps

        partial: List[Tuple[Tuple[ElementId, ...], float]] = []
        for e, score in self._candidates(first):
            if first.axis == "child":
                # an absolute /step starts at document roots
                if self.collection.elements[e].parent is not None:
                    continue
            partial.append(((e,), score))

        for step in rest:
            candidates = self._candidates(step)
            grown: List[Tuple[Tuple[ElementId, ...], float]] = []
            if step.axis == "child":
                by_parent: Dict[ElementId, List[Tuple[ElementId, float]]] = {}
                for e, score in candidates:
                    parent = self.collection.elements[e].parent
                    if parent is not None:
                        by_parent.setdefault(parent, []).append((e, score))
                for bindings, score in partial:
                    for e, tag_score in by_parent.get(bindings[-1], ()):
                        grown.append((bindings + (e,), score * tag_score))
            else:
                # one batched reachability probe per distinct source
                # element; bindings sharing a source reuse the answer.
                # Only the reachable candidate *indices* are cached, so
                # memory stays bounded by true positives, not by
                # |sources| x |candidates|.
                cand_elems = [e for e, _ in candidates]
                reach_cache: Dict[ElementId, List[int]] = {}
                for bindings, score in partial:
                    prev = bindings[-1]
                    reach = reach_cache.get(prev)
                    if reach is None:
                        flags = self.index.connected_many(prev, cand_elems)
                        reach = [i for i, ok in enumerate(flags) if ok]
                        reach_cache[prev] = reach
                    for i in reach:
                        e, tag_score = candidates[i]
                        if e == prev:
                            continue
                        hop = self._hop_score(prev, e)
                        grown.append(
                            (bindings + (e,), score * tag_score * hop)
                        )
            partial = grown
            if not partial:
                break

        results = [QueryResult(b, s) for b, s in partial]
        results.sort(key=lambda r: (-r.score, r.bindings))
        return results[: self.max_results]

    def count(self, path: "str | PathExpression") -> int:
        """Number of matches (no ranking shortcut; evaluates fully)."""
        return len(self.evaluate(path))
