"""Selectivity-driven physical planning for path queries.

The legacy evaluator hard-coded one left-to-right order, so a query
with a highly selective *tail* step (``//*//rare_tag``) materialised
every intermediate binding of the unselective head before the tail
pruned them. HOPI's connection tests are symmetric probes (the 2-hop
cover answers ``u →* v`` from either endpoint: ``descendants(u)`` or
``ancestors(v)``), which makes step reordering sound — so the planner
estimates each step's candidate cardinality from the engine's tag
index and evaluates outward from the most selective step, flipping
descendant joins to **backward probes over the cover's ``ancestors``
side** when the selective step sits to their right.

Join orders are restricted to *contiguous* prefixes growing around the
start step (a zig-zag order): every join still connects a bound
position to an adjacent unbound one, so no cross-product is ever
formed and any start yields the same result set (pinned by the
planner-soundness property tests).

:class:`PreparedQuery` is the parse-once handle: the AST and canonical
plan key are computed once, while the physical plan is re-derived per
engine binding (cardinalities move with every epoch's tag index — the
service layer binds one prepared query per published epoch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.query.cost import NEUTRAL_COST_MODEL, ProbeCostModel
from repro.query.pathexpr import PathExpression, Predicate, parse_path
from repro.query.plan import Limit, LogicalPlan, build_logical_plan

#: Planner modes: ``"selective"`` starts at the lowest-cardinality step
#: and grows greedily; ``"naive"`` reproduces the legacy left-to-right
#: order (kept for differential tests and the BENCH_query planner
#: comparison).
PLANNER_MODES = ("selective", "naive")


@dataclass(frozen=True)
class PhysicalOp:
    """One pipeline stage of a physical plan.

    Attributes:
        op: ``"scan"``, ``"child"`` or ``"descendant"``.
        position: the step index this stage binds.
        direction: ``"seed"`` for the scan; ``"forward"`` when the
            predecessor is already bound (probe ``descendants`` /
            follow parent pointers down); ``"backward"`` when the
            successor is bound (probe the ``ancestors`` side / follow
            the parent pointer up).
    """

    op: str
    position: int
    direction: str


@dataclass(frozen=True)
class PhysicalPlan:
    """An executable join order over a :class:`LogicalPlan`.

    Attributes:
        logical: the logical plan this orders.
        ops: pipeline stages, one per step, scan first.
        estimates: per-position candidate-cardinality estimates the
            order was chosen from.
        mode: the planner mode that produced the order.
        cost_model: the per-direction probe cost model the order was
            weighed with (None = direction-blind legacy behaviour).
    """

    logical: LogicalPlan
    ops: Tuple[PhysicalOp, ...]
    estimates: Tuple[int, ...]
    mode: str
    cost_model: Optional[ProbeCostModel] = None

    @property
    def expr(self) -> PathExpression:
        """The planned expression."""
        return self.logical.expr

    @property
    def key(self) -> str:
        """The canonical plan key (shared with the logical plan)."""
        return self.logical.key

    def filters_at(self, position: int) -> Tuple[Predicate, ...]:
        """The logical :class:`~repro.query.plan.Filter` predicates
        guarding ``position`` (what the operators evaluate inline)."""
        return self.logical.filters_at(position)

    @property
    def window(self) -> Optional[Limit]:
        """The logical :class:`~repro.query.plan.Limit` node, if any."""
        return self.logical.window

    def execution_profile(self, mode: str = "evaluate") -> Dict[str, object]:
        """How an evaluation ``mode`` runs this plan — which operator
        work is short-circuited or skipped entirely.

        ``mode`` is one of ``"evaluate"``, ``"stream"``, ``"count"``,
        ``"exists"``. The profile makes the short-circuit paths
        explicit: a limited ``evaluate`` streams scores into a bounded
        heap instead of materialising and sorting the full result list;
        ``count`` aggregates frontiers and never scores, ranks or
        materialises tuples; ``exists`` stops the pipeline at the first
        full binding.
        """
        expr = self.expr
        if mode == "evaluate":
            if expr.limit is not None:
                k = (expr.offset or 0) + expr.limit
                return {
                    "mode": mode,
                    "strategy": f"heap-topk(k={k})",
                    "skipped": ["full-list materialisation", "full sort"],
                    "note": (
                        f"scores stream into a bounded heap of {k} "
                        "(offset + limit); only the top window is ever "
                        "materialised as result objects"
                    ),
                }
            return {
                "mode": mode,
                "strategy": "materialise-sort",
                "skipped": [],
                "note": "full result list materialised, sorted, windowed",
            }
        if mode == "stream":
            return {
                "mode": mode,
                "strategy": "lazy-stream",
                "skipped": ["ranking"],
                "note": (
                    "unranked pipeline order; the expression limit stops "
                    "the pipeline as soon as it is filled"
                ),
            }
        if mode == "count":
            return {
                "mode": mode,
                "strategy": "frontier-aggregation",
                "skipped": ["scoring", "ranking", "tuple materialisation"],
                "note": (
                    "directional plan aggregates element → multiplicity "
                    "per frontier; no binding tuples are ever built"
                ),
            }
        if mode == "exists":
            return {
                "mode": mode,
                "strategy": "first-match",
                "skipped": ["scoring", "ranking",
                            "every binding after the first"],
                "note": "pipeline stops at the first full binding",
            }
        raise ValueError(
            f"unknown execution mode {mode!r}; one of "
            "('evaluate', 'stream', 'count', 'exists')"
        )

    def describe(self, mode: str = "evaluate") -> Dict[str, object]:
        """A JSON-safe description (the ``/v1/explain`` payload)."""
        expr = self.expr
        payload: Dict[str, object] = {
            "path": str(expr),
            "mode": self.mode,
            "steps": [
                {
                    "position": i,
                    "step": str(step),
                    "axis": step.axis,
                    "predicates": len(step.predicates),
                    "estimate": self.estimates[i],
                }
                for i, step in enumerate(expr.steps)
            ],
            "order": [
                {"op": op.op, "position": op.position,
                 "direction": op.direction}
                for op in self.ops
            ],
            "limit": expr.limit,
            "offset": expr.offset,
            "execution": self.execution_profile(mode),
        }
        if self.cost_model is not None:
            cm = self.cost_model
            payload["cost_model"] = {
                "backend": cm.backend,
                "forward": cm.forward,
                "backward": cm.backward,
                "source": cm.source,
            }
        return payload

    def explain(self, mode: str = "evaluate") -> str:
        """A human-readable rendering (``repro query --explain``)."""
        expr = self.expr
        lines = [f"query: {expr}", f"mode:  {self.mode}", "order:"]
        arrows = {"seed": "·", "forward": "→", "backward": "←"}
        for rank, op in enumerate(self.ops, 1):
            step = expr.steps[op.position]
            detail = {
                "scan": "tag-index scan",
                "child": f"child join ({'parent pointers' if op.direction == 'backward' else 'children of bound parent'})",
                "descendant": (
                    "descendant join (backward probe: ancestors side)"
                    if op.direction == "backward"
                    else "descendant join (forward probe: descendants side)"
                ),
            }[op.op]
            predicates = (
                f", {len(step.predicates)} predicate(s)"
                if step.predicates
                else ""
            )
            lines.append(
                f"  {rank}. {arrows[op.direction]} step {op.position} "
                f"{step}  — {detail}, ~{self.estimates[op.position]} "
                f"candidates{predicates}"
            )
        if self.cost_model is not None and not self.cost_model.neutral:
            cm = self.cost_model
            lines.append(
                f"costs: forward x{cm.forward:g}, backward x{cm.backward:g} "
                f"({cm.source} model, backend {cm.backend})"
            )
        window = []
        if expr.offset:
            window.append(f"offset {expr.offset}")
        if expr.limit is not None:
            window.append(f"limit {expr.limit}")
        lines.append(
            "rank:  score desc, bindings asc"
            + (f"; window: {' '.join(window)}" if window else "")
        )
        profile = self.execution_profile(mode)
        skipped = profile["skipped"]
        lines.append(
            f"exec:  {profile['mode']} via {profile['strategy']}"
            + (f"; skipped: {', '.join(skipped)}" if skipped else "")
        )
        return "\n".join(lines)


def estimate_cardinalities(expr: PathExpression, engine) -> Tuple[int, ...]:
    """Per-step candidate cardinalities from the engine's tag index.

    Position 0 of an absolute path counts only document roots (the
    anchor filter is applied before any join fans out).
    """
    estimates: List[int] = []
    for i, step in enumerate(expr.steps):
        if i == 0 and step.axis == "child":
            estimates.append(engine._anchored_count(step))
        else:
            estimates.append(len(engine._candidates(step)))
    return tuple(estimates)


def order_steps(
    expr: PathExpression,
    estimates: Tuple[int, ...],
    *,
    start: int,
    cost_model: Optional[ProbeCostModel] = None,
) -> Tuple[PhysicalOp, ...]:
    """The greedy zig-zag order seeded at ``start``.

    Grows the bound range one adjacent position at a time, always
    taking the side with the smaller *weighted* candidate estimate:
    each side's estimate is multiplied by the cost model's per-probe
    unit for the direction that side would be joined in (ties extend
    forward, matching the legacy bias). With a neutral (or absent)
    model every weight is 1.0 and the order reduces exactly to the
    legacy count-only comparison.
    """
    n = len(expr.steps)
    if not 0 <= start < n:
        raise ValueError(f"start must be a step position in [0, {n}), got {start}")
    cm = cost_model or NEUTRAL_COST_MODEL
    ops = [PhysicalOp("scan", start, "seed")]
    lo = hi = start
    while lo > 0 or hi < n - 1:
        left = (
            estimates[lo - 1] * cm.unit(expr.steps[lo].axis, "backward")
            if lo > 0 else None
        )
        right = (
            estimates[hi + 1] * cm.unit(expr.steps[hi + 1].axis, "forward")
            if hi < n - 1 else None
        )
        if right is not None and (left is None or right <= left):
            hi += 1
            axis = expr.steps[hi].axis
            ops.append(PhysicalOp(
                "child" if axis == "child" else "descendant", hi, "forward"
            ))
        else:
            # the edge between lo-1 and lo belongs to steps[lo]
            axis = expr.steps[lo].axis
            lo -= 1
            ops.append(PhysicalOp(
                "child" if axis == "child" else "descendant", lo, "backward"
            ))
    return tuple(ops)


def plan_cost(
    expr: PathExpression,
    estimates: Tuple[int, ...],
    cost_model: ProbeCostModel,
    *,
    start: int,
) -> float:
    """The modeled total probe cost of the greedy order seeded at
    ``start``.

    Simulates the same growth :func:`order_steps` performs and charges
    each join stage for its *frontier*: extending forward from ``hi``
    to ``hi + 1`` issues one probe per candidate currently bound at
    ``hi`` (so ``estimates[hi] × unit(axis, "forward")``), and
    extending backward from ``lo`` to ``lo - 1`` charges
    ``estimates[lo] × unit(axis, "backward")``. The seed itself
    contributes its scan cardinality. With a neutral model the
    directional endpoint comparison preserves the legacy rule (a
    two-step total is twice its endpoint estimate, so the cheaper
    endpoint still wins) — the planner uses the legacy rules directly
    in that case and only consults this function for skewed models.
    """
    n = len(expr.steps)
    cm = cost_model
    total = float(estimates[start])
    lo = hi = start
    while lo > 0 or hi < n - 1:
        left = (
            estimates[lo - 1] * cm.unit(expr.steps[lo].axis, "backward")
            if lo > 0 else None
        )
        right = (
            estimates[hi + 1] * cm.unit(expr.steps[hi + 1].axis, "forward")
            if hi < n - 1 else None
        )
        if right is not None and (left is None or right <= left):
            total += estimates[hi] * cm.unit(
                expr.steps[hi + 1].axis, "forward"
            )
            hi += 1
        else:
            total += estimates[lo] * cm.unit(
                expr.steps[lo].axis, "backward"
            )
            lo -= 1
    return total


def plan_query(
    path: "str | PathExpression | LogicalPlan",
    engine,
    *,
    order: str = "selective",
    start: Optional[int] = None,
    directional: bool = False,
    cost_model: Optional[ProbeCostModel] = None,
) -> PhysicalPlan:
    """Choose a physical join order for ``path`` against ``engine``.

    Args:
        path: the query — a string, a parsed expression, or an
            already-lowered :class:`LogicalPlan` (what
            :class:`PreparedQuery` passes, so the hot path never
            re-lowers).
        engine: the :class:`~repro.query.engine.QueryEngine` whose tag
            index supplies cardinality estimates (and whose candidate
            memos the operators will read).
        order: ``"selective"`` (default) or ``"naive"``
            (legacy left-to-right; see :data:`PLANNER_MODES`).
        start: force the seed position (testing hook; implies the
            greedy zig-zag growth around it).
        directional: restrict the seed to an endpoint (position 0 or
            the last step), so execution runs purely forward or purely
            backward — required by the aggregated counting path, whose
            per-element multiplicity map only exists at a chain's open
            end.
        cost_model: override the per-direction probe cost model;
            defaults to the engine's (``engine.cost_model``, itself
            sourced from the index backend). Direction and seed
            decisions weight candidate estimates by it; a neutral
            model reproduces the legacy count-only decisions exactly.

    Returns:
        The chosen :class:`PhysicalPlan`.
    """
    logical = path if isinstance(path, LogicalPlan) else build_logical_plan(path)
    expr = logical.expr
    estimates = estimate_cardinalities(expr, engine)
    n = len(expr.steps)
    cm = cost_model or getattr(engine, "cost_model", None) or NEUTRAL_COST_MODEL
    mode = order
    if start is not None:
        mode = f"forced[{start}]"
        seed = start
    elif order == "naive":
        seed = 0
    elif order == "selective":
        if directional:
            if cm.neutral:
                seed = 0 if estimates[0] <= estimates[n - 1] else n - 1
            else:
                fwd = plan_cost(expr, estimates, cm, start=0)
                bwd = plan_cost(expr, estimates, cm, start=n - 1)
                seed = 0 if fwd <= bwd else n - 1
        elif cm.neutral:
            seed = min(range(n), key=lambda i: (estimates[i], i))
        else:
            seed = min(
                range(n),
                key=lambda i: (plan_cost(expr, estimates, cm, start=i), i),
            )
    else:
        raise ValueError(
            f"unknown planner mode {order!r}; one of {PLANNER_MODES}"
        )
    if directional and seed not in (0, n - 1):
        raise ValueError(
            f"directional plans must seed at an endpoint, got {seed}"
        )
    return PhysicalPlan(
        logical,
        order_steps(expr, estimates, start=seed, cost_model=cm),
        estimates,
        mode,
        cost_model=None if cm is NEUTRAL_COST_MODEL else cm,
    )


class PreparedQuery:
    """A query parsed and lowered once, plannable per engine/epoch.

    The AST and the canonical plan key are immutable; the *physical*
    plan depends on an engine's tag-index cardinalities, so it is
    derived per :meth:`bind` — the service layer prepares once per
    distinct query text and binds per published epoch.

    Attributes:
        expr: the parsed expression.
        logical: the lowered logical plan.
        key: the canonical plan key (cache key for plans and results).
    """

    def __init__(self, path: "str | PathExpression") -> None:
        self.expr = parse_path(path) if isinstance(path, str) else path
        self.logical: LogicalPlan = build_logical_plan(self.expr)
        self.key: str = self.logical.key

    def bind(
        self, engine, *, order: Optional[str] = None,
        directional: bool = False,
    ) -> PhysicalPlan:
        """Plan against one engine's current cardinalities (the cached
        logical plan is reused — no re-parse, no re-lowering)."""
        return plan_query(
            self.logical, engine,
            order=order or getattr(engine, "planner", "selective"),
            directional=directional,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PreparedQuery({self.key!r})"
