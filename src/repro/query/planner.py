"""Selectivity-driven physical planning for path queries.

The legacy evaluator hard-coded one left-to-right order, so a query
with a highly selective *tail* step (``//*//rare_tag``) materialised
every intermediate binding of the unselective head before the tail
pruned them. HOPI's connection tests are symmetric probes (the 2-hop
cover answers ``u →* v`` from either endpoint: ``descendants(u)`` or
``ancestors(v)``), which makes step reordering sound — so the planner
estimates each step's candidate cardinality from the engine's tag
index and evaluates outward from the most selective step, flipping
descendant joins to **backward probes over the cover's ``ancestors``
side** when the selective step sits to their right.

Join orders are restricted to *contiguous* prefixes growing around the
start step (a zig-zag order): every join still connects a bound
position to an adjacent unbound one, so no cross-product is ever
formed and any start yields the same result set (pinned by the
planner-soundness property tests).

:class:`PreparedQuery` is the parse-once handle: the AST and canonical
plan key are computed once, while the physical plan is re-derived per
engine binding (cardinalities move with every epoch's tag index — the
service layer binds one prepared query per published epoch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.query.pathexpr import PathExpression, Predicate, parse_path
from repro.query.plan import Limit, LogicalPlan, build_logical_plan

#: Planner modes: ``"selective"`` starts at the lowest-cardinality step
#: and grows greedily; ``"naive"`` reproduces the legacy left-to-right
#: order (kept for differential tests and the BENCH_query planner
#: comparison).
PLANNER_MODES = ("selective", "naive")


@dataclass(frozen=True)
class PhysicalOp:
    """One pipeline stage of a physical plan.

    Attributes:
        op: ``"scan"``, ``"child"`` or ``"descendant"``.
        position: the step index this stage binds.
        direction: ``"seed"`` for the scan; ``"forward"`` when the
            predecessor is already bound (probe ``descendants`` /
            follow parent pointers down); ``"backward"`` when the
            successor is bound (probe the ``ancestors`` side / follow
            the parent pointer up).
    """

    op: str
    position: int
    direction: str


@dataclass(frozen=True)
class PhysicalPlan:
    """An executable join order over a :class:`LogicalPlan`.

    Attributes:
        logical: the logical plan this orders.
        ops: pipeline stages, one per step, scan first.
        estimates: per-position candidate-cardinality estimates the
            order was chosen from.
        mode: the planner mode that produced the order.
    """

    logical: LogicalPlan
    ops: Tuple[PhysicalOp, ...]
    estimates: Tuple[int, ...]
    mode: str

    @property
    def expr(self) -> PathExpression:
        """The planned expression."""
        return self.logical.expr

    @property
    def key(self) -> str:
        """The canonical plan key (shared with the logical plan)."""
        return self.logical.key

    def filters_at(self, position: int) -> Tuple[Predicate, ...]:
        """The logical :class:`~repro.query.plan.Filter` predicates
        guarding ``position`` (what the operators evaluate inline)."""
        return self.logical.filters_at(position)

    @property
    def window(self) -> Optional[Limit]:
        """The logical :class:`~repro.query.plan.Limit` node, if any."""
        return self.logical.window

    def describe(self) -> Dict[str, object]:
        """A JSON-safe description (the ``/v1/explain`` payload)."""
        expr = self.expr
        return {
            "path": str(expr),
            "mode": self.mode,
            "steps": [
                {
                    "position": i,
                    "step": str(step),
                    "axis": step.axis,
                    "predicates": len(step.predicates),
                    "estimate": self.estimates[i],
                }
                for i, step in enumerate(expr.steps)
            ],
            "order": [
                {"op": op.op, "position": op.position,
                 "direction": op.direction}
                for op in self.ops
            ],
            "limit": expr.limit,
            "offset": expr.offset,
        }

    def explain(self) -> str:
        """A human-readable rendering (``repro query --explain``)."""
        expr = self.expr
        lines = [f"query: {expr}", f"mode:  {self.mode}", "order:"]
        arrows = {"seed": "·", "forward": "→", "backward": "←"}
        for rank, op in enumerate(self.ops, 1):
            step = expr.steps[op.position]
            detail = {
                "scan": "tag-index scan",
                "child": f"child join ({'parent pointers' if op.direction == 'backward' else 'children of bound parent'})",
                "descendant": (
                    "descendant join (backward probe: ancestors side)"
                    if op.direction == "backward"
                    else "descendant join (forward probe: descendants side)"
                ),
            }[op.op]
            predicates = (
                f", {len(step.predicates)} predicate(s)"
                if step.predicates
                else ""
            )
            lines.append(
                f"  {rank}. {arrows[op.direction]} step {op.position} "
                f"{step}  — {detail}, ~{self.estimates[op.position]} "
                f"candidates{predicates}"
            )
        window = []
        if expr.offset:
            window.append(f"offset {expr.offset}")
        if expr.limit is not None:
            window.append(f"limit {expr.limit}")
        lines.append(
            "rank:  score desc, bindings asc"
            + (f"; window: {' '.join(window)}" if window else "")
        )
        return "\n".join(lines)


def estimate_cardinalities(expr: PathExpression, engine) -> Tuple[int, ...]:
    """Per-step candidate cardinalities from the engine's tag index.

    Position 0 of an absolute path counts only document roots (the
    anchor filter is applied before any join fans out).
    """
    estimates: List[int] = []
    for i, step in enumerate(expr.steps):
        if i == 0 and step.axis == "child":
            estimates.append(engine._anchored_count(step))
        else:
            estimates.append(len(engine._candidates(step)))
    return tuple(estimates)


def order_steps(
    expr: PathExpression,
    estimates: Tuple[int, ...],
    *,
    start: int,
) -> Tuple[PhysicalOp, ...]:
    """The greedy zig-zag order seeded at ``start``.

    Grows the bound range one adjacent position at a time, always
    taking the side with the smaller candidate estimate (ties extend
    forward, matching the legacy bias).
    """
    n = len(expr.steps)
    if not 0 <= start < n:
        raise ValueError(f"start must be a step position in [0, {n}), got {start}")
    ops = [PhysicalOp("scan", start, "seed")]
    lo = hi = start
    while lo > 0 or hi < n - 1:
        left = estimates[lo - 1] if lo > 0 else None
        right = estimates[hi + 1] if hi < n - 1 else None
        if right is not None and (left is None or right <= left):
            hi += 1
            axis = expr.steps[hi].axis
            ops.append(PhysicalOp(
                "child" if axis == "child" else "descendant", hi, "forward"
            ))
        else:
            # the edge between lo-1 and lo belongs to steps[lo]
            axis = expr.steps[lo].axis
            lo -= 1
            ops.append(PhysicalOp(
                "child" if axis == "child" else "descendant", lo, "backward"
            ))
    return tuple(ops)


def plan_query(
    path: "str | PathExpression | LogicalPlan",
    engine,
    *,
    order: str = "selective",
    start: Optional[int] = None,
    directional: bool = False,
) -> PhysicalPlan:
    """Choose a physical join order for ``path`` against ``engine``.

    Args:
        path: the query — a string, a parsed expression, or an
            already-lowered :class:`LogicalPlan` (what
            :class:`PreparedQuery` passes, so the hot path never
            re-lowers).
        engine: the :class:`~repro.query.engine.QueryEngine` whose tag
            index supplies cardinality estimates (and whose candidate
            memos the operators will read).
        order: ``"selective"`` (default) or ``"naive"``
            (legacy left-to-right; see :data:`PLANNER_MODES`).
        start: force the seed position (testing hook; implies the
            greedy zig-zag growth around it).
        directional: restrict the seed to an endpoint (position 0 or
            the last step), so execution runs purely forward or purely
            backward — required by the aggregated counting path, whose
            per-element multiplicity map only exists at a chain's open
            end.

    Returns:
        The chosen :class:`PhysicalPlan`.
    """
    logical = path if isinstance(path, LogicalPlan) else build_logical_plan(path)
    expr = logical.expr
    estimates = estimate_cardinalities(expr, engine)
    n = len(expr.steps)
    mode = order
    if start is not None:
        mode = f"forced[{start}]"
        seed = start
    elif order == "naive":
        seed = 0
    elif order == "selective":
        if directional:
            seed = 0 if estimates[0] <= estimates[n - 1] else n - 1
        else:
            seed = min(range(n), key=lambda i: (estimates[i], i))
    else:
        raise ValueError(
            f"unknown planner mode {order!r}; one of {PLANNER_MODES}"
        )
    if directional and seed not in (0, n - 1):
        raise ValueError(
            f"directional plans must seed at an endpoint, got {seed}"
        )
    return PhysicalPlan(logical, order_steps(expr, estimates, start=seed),
                        estimates, mode)


class PreparedQuery:
    """A query parsed and lowered once, plannable per engine/epoch.

    The AST and the canonical plan key are immutable; the *physical*
    plan depends on an engine's tag-index cardinalities, so it is
    derived per :meth:`bind` — the service layer prepares once per
    distinct query text and binds per published epoch.

    Attributes:
        expr: the parsed expression.
        logical: the lowered logical plan.
        key: the canonical plan key (cache key for plans and results).
    """

    def __init__(self, path: "str | PathExpression") -> None:
        self.expr = parse_path(path) if isinstance(path, str) else path
        self.logical: LogicalPlan = build_logical_plan(self.expr)
        self.key: str = self.logical.key

    def bind(
        self, engine, *, order: Optional[str] = None,
        directional: bool = False,
    ) -> PhysicalPlan:
        """Plan against one engine's current cardinalities (the cached
        logical plan is reused — no re-parse, no re-lowering)."""
        return plan_query(
            self.logical, engine,
            order=order or getattr(engine, "planner", "selective"),
            directional=directional,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PreparedQuery({self.key!r})"
