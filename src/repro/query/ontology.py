"""A miniature tag ontology for ``~tag`` similarity tests.

Stands in for the WordNet-style ontology of the XXL search engine
(Section 5.1's example: ``book`` is ontologically similar to
``monography`` or ``publication``). Similarities are symmetric scores in
``(0, 1]``; a tag is always similarity 1.0 to itself.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple


class TagOntology:
    """Symmetric tag-similarity table."""

    def __init__(self) -> None:
        self._sim: Dict[Tuple[str, str], float] = {}

    def relate(self, a: str, b: str, similarity: float) -> None:
        """Declare ``a`` ~ ``b`` with the given similarity score.

        Raises:
            ValueError: if the score is outside ``(0, 1]``.
        """
        if not 0.0 < similarity <= 1.0:
            raise ValueError("similarity must be in (0, 1]")
        key = (a, b) if a <= b else (b, a)
        self._sim[key] = similarity

    def similarity(self, a: str, b: str) -> float:
        """Similarity of two tags (1.0 when equal, 0.0 when unrelated)."""
        if a == b:
            return 1.0
        key = (a, b) if a <= b else (b, a)
        return self._sim.get(key, 0.0)

    def similar_tags(
        self, tag: str, candidates: Iterable[str], *, threshold: float = 0.0
    ) -> List[Tuple[str, float]]:
        """Candidates similar to ``tag`` above the threshold, best first."""
        scored = [
            (c, self.similarity(tag, c))
            for c in candidates
        ]
        result = [(c, s) for (c, s) in scored if s > threshold]
        result.sort(key=lambda cs: (-cs[1], cs[0]))
        return result


def default_ontology() -> TagOntology:
    """The built-in bibliographic ontology used by the examples.

    Mirrors the paper's motivating vocabulary: publications, books,
    articles, authors and the INEX article structure.
    """
    onto = TagOntology()
    for a, b, s in [
        ("book", "monography", 0.9),
        ("book", "publication", 0.8),
        ("article", "publication", 0.8),
        ("article", "paper", 0.9),
        ("book", "article", 0.5),
        ("author", "creator", 0.9),
        ("author", "editor", 0.6),
        ("title", "st", 0.7),          # INEX section titles
        ("section", "sec", 1.0),
        ("paragraph", "p", 1.0),
        ("cite", "reference", 0.9),
        ("cite", "bibentry", 0.7),
        ("keyword", "term", 0.8),
    ]:
        onto.relate(a, b, s)
    return onto
