"""Pipelined physical operators executing a :class:`PhysicalPlan`.

Operators are generators: a scan seeds partial bindings (tuples
covering a contiguous range of step positions) and each join stage
extends them one adjacent position at a time — forward joins append
via ``descendants``-side probes (or children of the bound parent),
backward joins prepend via the cover's ``ancestors`` side (or one
parent-pointer hop). Nothing is materialised between stages, so

* ``exists`` stops at the **first** full binding,
* an unranked ``stream`` stops as soon as its window is filled,
* empty intermediate frontiers terminate the whole pipeline early,

while the ranked ``evaluate`` path drains the stream and scores at the
end (scores are order-independent products, recomputed in canonical
left-to-right association so any join order is bit-identical to the
legacy evaluator).

:func:`run_count` is the aggregated counting path: the number of full
bindings through an element depends only on that element, so a purely
forward (or purely backward) plan aggregates ``element → multiplicity``
per frontier instead of materialising tuples — the reason
:func:`~repro.query.planner.plan_query` plans counts ``directional``.

All per-execution memo state (forward probe answers, ``ancestors``
materialisations, predicate verdicts) lives in one :class:`ExecContext`
so a single query never repeats a probe, while nothing leaks across
epochs — the service layer's per-epoch probe cache plugs in underneath
via the engine's ``probe`` hook. Probe *objects* may expose two
optional batch hooks the executor feature-detects: ``probe.many`` lets
descendant joins prefetch a whole block of frontier sources in one
``intersect_many`` round-trip (the vector backend's bulk entry point),
and ``probe.backward`` lets the serving tier cache ``ancestors``-side
materialisations across queries; plain callables keep the legacy
one-source-per-call behaviour (what the probe-counting tests rely on).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.query.pathexpr import Predicate, Step
from repro.query.planner import PhysicalOp, PhysicalPlan
from repro.xmlmodel.model import ElementId

Binding = Tuple[ElementId, ...]

#: Descendant-join block size: how many partial bindings a forward
#: stage pulls from its upstream before issuing one batched
#: ``intersect_many`` prefetch for their sources. Bounds the laziness
#: loss of batching — ``exists`` pulls at most one block through a
#: descendant stage before its first answer.
FORWARD_BLOCK = 32


class ExecContext:
    """Per-execution state shared by all operators of one run.

    Args:
        engine: the owning :class:`~repro.query.engine.QueryEngine`
            (supplies candidate lists/maps and the parent maps).
        index: the HOPI index to probe (an explicit epoch's index when
            the service layer runs the pipeline).
        probe: optional forward-probe substitute (the serving tier's
            per-epoch coalescing cache); ``None`` probes the index
            directly.
        first_filter: optional predicate over the element bound at
            step position 0. When given, only bindings whose *first*
            element passes are produced — the shard serving tier uses
            this to restrict a query to the tuples a shard owns
            (ownership is decided by the first binding's document)
            without post-filtering a full evaluation.
    """

    def __init__(self, engine, index, probe=None, first_filter=None) -> None:
        self.engine = engine
        self.index = index
        self.probe = probe
        self.first_filter = first_filter
        self.elements = engine.collection.elements
        self._forward: Dict[Tuple[ElementId, Tuple[str, bool]], List[int]] = {}
        self._backward: Dict[Tuple[ElementId, Tuple[str, bool]], List[ElementId]] = {}
        self._verdicts: Dict[Tuple[Predicate, ElementId], bool] = {}

    # -- probes ---------------------------------------------------------
    def forward_reach(self, source: ElementId, step: Step) -> List[int]:
        """Indices into ``step``'s candidate list reachable from
        ``source`` (one batched probe per distinct source, memoized)."""
        key = (step.tag, step.similar)
        cached = self._forward.get((source, key))
        if cached is None:
            cand_elems = self.engine._candidate_elems(step)
            cached = self.engine._reachable(
                self.index, self.probe, source, key, cand_elems
            )
            self._forward[(source, key)] = cached
        return cached

    def prefetch_forward(
        self, sources: Sequence[ElementId], step: Step
    ) -> None:
        """Fill the forward memo for a whole block of sources in one
        batched probe.

        Routes through ``probe.many`` when the probe object exposes it
        (the serving tier's per-epoch cache answers hits and computes
        the misses in one ``intersect_many``); without a probe, calls
        ``index.intersect_many`` directly — one candidate translation
        amortised across the block on the vector backend. A plain
        callable probe without ``.many`` disables prefetching so every
        source still goes through the per-source hook (probe-counting
        tests and exotic probes keep their exact call pattern).
        """
        key = (step.tag, step.similar)
        missing = [
            s for s in dict.fromkeys(sources)
            if (s, key) not in self._forward
        ]
        if not missing:
            return
        cand_elems = self.engine._candidate_elems(step)
        if self.probe is not None:
            many = getattr(self.probe, "many", None)
            if many is None:
                return
            answers: Dict[ElementId, List[int]] = many(
                missing, key, cand_elems
            )
        else:
            rows = self.index.intersect_many(missing, cand_elems)
            answers = dict(zip(missing, rows))
        for source in missing:
            self._forward[(source, key)] = answers[source]

    def backward_reach(self, target: ElementId, step: Step) -> List[ElementId]:
        """Candidates of ``step`` that *reach* ``target`` — the
        ``ancestors``-side probe (one materialisation per distinct
        ``(target, step key)``, memoized; sorted for determinism).

        Only the candidate intersection is retained — the raw ancestor
        set is transient — so, like the forward cache, memory stays
        bounded by true positives rather than by full reach sets.
        When the probe object exposes ``backward``, the materialisation
        is routed through it so the serving tier can cache it across
        queries of the same epoch (these probes used to miss the probe
        cache unconditionally)."""
        step_key = (step.tag, step.similar)
        key = (target, step_key)
        cached = self._backward.get(key)
        if cached is None:
            def compute() -> List[ElementId]:
                ancestors: Set[ElementId] = self.index.ancestors(target)
                cmap = self.engine._candidate_map(step)
                if len(cmap) < len(ancestors):
                    return sorted(e for e in cmap if e in ancestors)
                return sorted(e for e in ancestors if e in cmap)

            backward: Optional[object] = (
                getattr(self.probe, "backward", None)
                if self.probe is not None else None
            )
            cached = backward(target, step_key, compute) if backward else compute()
            self._backward[key] = cached
        return cached

    # -- filters --------------------------------------------------------
    def anchor_ok(self, element: ElementId) -> bool:
        """Absolute-path anchor: position 0 must be a document root."""
        return self.elements[element].parent is None

    def filters_ok(
        self, element: ElementId, predicates: Tuple[Predicate, ...]
    ) -> bool:
        """All given ``[predicate]`` filters hold for ``element``."""
        return all(self.predicate_ok(element, p) for p in predicates)

    def predicate_ok(self, element: ElementId, predicate: Predicate) -> bool:
        """Existence test of one predicate, memoized per element."""
        key = (predicate, element)
        verdict = self._verdicts.get(key)
        if verdict is None:
            verdict = self._exists(element, predicate.steps, 0)
            self._verdicts[key] = verdict
        return verdict

    def _exists(
        self, source: ElementId, steps: Sequence[Step], i: int
    ) -> bool:
        """Does the relative path ``steps[i:]`` match from ``source``?
        Early-exits on the first full match."""
        step = steps[i]
        if step.axis == "child":
            matches: Sequence[ElementId] = self.engine._parent_map(step).get(
                source, ()
            )
        else:
            cand_elems = self.engine._candidate_elems(step)
            matches = [
                cand_elems[j]
                for j in self.forward_reach(source, step)
                if cand_elems[j] != source
            ]
        for element in matches:
            if not self.filters_ok(element, step.predicates):
                continue
            if i + 1 == len(steps) or self._exists(element, steps, i + 1):
                return True
        return False


# ---------------------------------------------------------------------------
# binding pipeline
# ---------------------------------------------------------------------------


def _scan(ctx: ExecContext, plan: PhysicalPlan, position: int) -> Iterator[Binding]:
    step = plan.expr.steps[position]
    filters = plan.filters_at(position)
    anchored = position == 0 and step.axis == "child"
    first = ctx.first_filter if position == 0 else None
    for element, _score in ctx.engine._candidates(step):
        if anchored and not ctx.anchor_ok(element):
            continue
        if first is not None and not first(element):
            continue
        if ctx.filters_ok(element, filters):
            yield (element,)


def _extend_forward(
    ctx: ExecContext, plan: PhysicalPlan, stream: Iterator[Binding],
    position: int,
) -> Iterator[Binding]:
    """Append ``position`` to partials ending at ``position - 1``."""
    step = plan.expr.steps[position]
    filters = plan.filters_at(position)
    if step.axis == "child":
        parent_map = ctx.engine._parent_map(step)
        for partial in stream:
            for element in parent_map.get(partial[-1], ()):
                if ctx.filters_ok(element, filters):
                    yield partial + (element,)
    else:
        cand_elems = ctx.engine._candidate_elems(step)
        # pull partials in blocks so the whole block's sources go out
        # as ONE batched probe (intersect_many / probe.many) instead of
        # one round-trip per partial; within a block the per-source
        # memo answers instantly. Block size bounds the laziness loss.
        while True:
            block = list(itertools.islice(stream, FORWARD_BLOCK))
            if not block:
                return
            ctx.prefetch_forward([p[-1] for p in block], step)
            for partial in block:
                prev = partial[-1]
                for j in ctx.forward_reach(prev, step):
                    element = cand_elems[j]
                    if element == prev:
                        continue
                    if ctx.filters_ok(element, filters):
                        yield partial + (element,)


def _extend_backward(
    ctx: ExecContext, plan: PhysicalPlan, stream: Iterator[Binding],
    position: int,
) -> Iterator[Binding]:
    """Prepend ``position`` to partials starting at ``position + 1``.

    The edge axis between the two positions belongs to
    ``steps[position + 1]``; the element test and predicates come from
    ``steps[position]``.
    """
    steps = plan.expr.steps
    edge_axis = steps[position + 1].axis
    step = steps[position]
    filters = plan.filters_at(position)
    anchored = position == 0 and step.axis == "child"
    first = ctx.first_filter if position == 0 else None
    if edge_axis == "child":
        cmap = ctx.engine._candidate_map(step)
        for partial in stream:
            parent = ctx.elements[partial[0]].parent
            if parent is None or parent not in cmap:
                continue
            if anchored and not ctx.anchor_ok(parent):
                continue
            if first is not None and not first(parent):
                continue
            if ctx.filters_ok(parent, filters):
                yield (parent,) + partial
    else:
        for partial in stream:
            head = partial[0]
            for element in ctx.backward_reach(head, step):
                if element == head:
                    continue
                if anchored and not ctx.anchor_ok(element):
                    continue
                if first is not None and not first(element):
                    continue
                if ctx.filters_ok(element, filters):
                    yield (element,) + partial


def run_bindings(plan: PhysicalPlan, ctx: ExecContext) -> Iterator[Binding]:
    """Stream full binding tuples (step order) for ``plan``.

    The stream is lazy end-to-end: consuming one binding pulls exactly
    the work it needs through every stage, which is what makes
    ``exists``/``limit`` early termination real rather than cosmetic.
    Binding tuples are unique (each stage extends with distinct
    elements), in pipeline order — ranking is the caller's concern.
    """
    ops: Sequence[PhysicalOp] = plan.ops
    stream = _scan(ctx, plan, ops[0].position)
    for op in ops[1:]:
        if op.direction == "forward":
            stream = _extend_forward(ctx, plan, stream, op.position)
        else:
            stream = _extend_backward(ctx, plan, stream, op.position)
    return stream


# ---------------------------------------------------------------------------
# aggregated counting
# ---------------------------------------------------------------------------


def run_count(plan: PhysicalPlan, ctx: ExecContext) -> int:
    """Total match count via frontier aggregation (no tuples).

    Requires a *directional* plan (purely forward or purely backward):
    the number of full bindings extending a partial depends only on the
    partial's open-end element, so the frontier aggregates to
    ``element → multiplicity`` — one integer per distinct endpoint
    instead of one tuple per match. Early-exits on an empty frontier.
    """
    directions = {op.direction for op in plan.ops[1:]}
    if len(directions) > 1:
        raise ValueError(
            "run_count requires a directional plan "
            f"(got mixed directions in {plan.ops!r})"
        )
    steps = plan.expr.steps
    seed = plan.ops[0].position
    backward = directions == {"backward"}

    frontier: Dict[ElementId, int] = {}
    for binding in _scan(ctx, plan, seed):
        frontier[binding[0]] = frontier.get(binding[0], 0) + 1

    positions = [op.position for op in plan.ops[1:]]
    for position in positions:
        if not frontier:
            break
        step = steps[position]
        filters = plan.filters_at(position)
        grown: Dict[ElementId, int] = {}
        if backward:
            edge_axis = steps[position + 1].axis
            anchored = position == 0 and step.axis == "child"
            first = ctx.first_filter if position == 0 else None
            if edge_axis == "child":
                cmap = ctx.engine._candidate_map(step)
                for element, multiplicity in frontier.items():
                    parent = ctx.elements[element].parent
                    if parent is None or parent not in cmap:
                        continue
                    if anchored and not ctx.anchor_ok(parent):
                        continue
                    if first is not None and not first(parent):
                        continue
                    if ctx.filters_ok(parent, filters):
                        grown[parent] = grown.get(parent, 0) + multiplicity
            else:
                for element, multiplicity in frontier.items():
                    for ancestor in ctx.backward_reach(element, step):
                        if ancestor == element:
                            continue
                        if anchored and not ctx.anchor_ok(ancestor):
                            continue
                        if first is not None and not first(ancestor):
                            continue
                        if ctx.filters_ok(ancestor, filters):
                            grown[ancestor] = (
                                grown.get(ancestor, 0) + multiplicity
                            )
        else:
            if step.axis == "child":
                parent_map = ctx.engine._parent_map(step)
                for element, multiplicity in frontier.items():
                    for child in parent_map.get(element, ()):
                        if ctx.filters_ok(child, filters):
                            grown[child] = grown.get(child, 0) + multiplicity
            else:
                cand_elems = ctx.engine._candidate_elems(step)
                # the whole frontier is known up front: one batched probe
                ctx.prefetch_forward(list(frontier), step)
                for element, multiplicity in frontier.items():
                    for j in ctx.forward_reach(element, step):
                        target = cand_elems[j]
                        if target == element:
                            continue
                        if ctx.filters_ok(target, filters):
                            grown[target] = grown.get(target, 0) + multiplicity
        frontier = grown
    return sum(frontier.values())
