"""Path-expression evaluation over the HOPI index.

The paper motivates HOPI with XPath ``//`` (descendant-or-self) steps
over link-rich collections and with the XXL search engine's ranked
queries like ``//~book//author`` (Section 5.1), where ``~`` requests
ontology-based tag similarity and results are ranked by a combination of
tag similarity and link distance. This package is an explicit
three-layer query stack:

* :mod:`repro.query.pathexpr` — the AST: a parser for the path dialect
  (``/child``, ``//descendant``, ``*`` wildcards, ``~tag`` similarity,
  ``[predicate]`` existence filters, ``limit``/``offset`` windows);
* :mod:`repro.query.plan` — logical plans (Scan, ChildJoin,
  DescendantJoin, Filter, Rank, Limit) and the canonical plan key;
* :mod:`repro.query.planner` — the selectivity-driven physical planner
  (cardinality estimates, zig-zag join ordering, backward
  ``ancestors``-side probes) and :class:`PreparedQuery`;
* :mod:`repro.query.exec` — generator-based physical operators that
  stream bindings and terminate early for ``count``/``exists``/limits;
* :mod:`repro.query.engine` — the :class:`QueryEngine` facade tying the
  layers together (plus ranking and distance-aware scoring);
* :mod:`repro.query.ontology` — a miniature tag ontology with
  similarity scores.
"""

from repro.query.engine import QueryEngine, QueryResult
from repro.query.ontology import TagOntology, default_ontology
from repro.query.pathexpr import PathExpression, Predicate, Step, parse_path
from repro.query.plan import LogicalPlan, build_logical_plan, plan_key
from repro.query.planner import PhysicalPlan, PreparedQuery, plan_query

__all__ = [
    "QueryEngine",
    "QueryResult",
    "TagOntology",
    "default_ontology",
    "PathExpression",
    "Predicate",
    "Step",
    "parse_path",
    "LogicalPlan",
    "build_logical_plan",
    "plan_key",
    "PhysicalPlan",
    "PreparedQuery",
    "plan_query",
]
