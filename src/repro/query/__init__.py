"""Path-expression evaluation over the HOPI index.

The paper motivates HOPI with XPath ``//`` (descendant-or-self) steps
over link-rich collections and with the XXL search engine's ranked
queries like ``//~book//author`` (Section 5.1), where ``~`` requests
ontology-based tag similarity and results are ranked by a combination of
tag similarity and link distance. This package provides:

* :mod:`repro.query.pathexpr` — a parser for the path dialect
  (``/child``, ``//descendant``, ``*`` wildcards, ``~tag`` similarity);
* :mod:`repro.query.ontology` — a miniature tag ontology with
  similarity scores;
* :mod:`repro.query.engine` — the evaluator: child steps use the tree,
  descendant steps use HOPI reachability, and ranking uses the distance
  index when available.
"""

from repro.query.engine import QueryEngine, QueryResult
from repro.query.ontology import TagOntology, default_ontology
from repro.query.pathexpr import PathExpression, Step, parse_path

__all__ = [
    "QueryEngine",
    "QueryResult",
    "TagOntology",
    "default_ontology",
    "PathExpression",
    "Step",
    "parse_path",
]
