"""Parser for the path-expression dialect.

Grammar (a practical subset of XPath's location paths, extended with
XXL's ``~`` similarity operator, existence predicates, and SQL-style
result windows)::

    path      := step+ window?
    step      := axis test predicate*
    axis      := "/"        (child)
               | "//"       (descendant-or-self, evaluated via HOPI)
    test      := NAME | "~" NAME | "*"
    predicate := "[" relpath "]"
    relpath   := reltest predicate* step*     (leading bare test = child)
    reltest   := test | "//" test
    window    := ("limit" INT)? ("offset" INT)?   (whitespace-separated,
                                                   either order)

Examples: ``//book//author``, ``/bib/book/title``, ``//~publication/*``,
``//book[//author]//title``, ``//article[keywords]//cite limit 10
offset 20``.

A leading ``/`` anchors the first step at document roots; a leading
``//`` matches elements at any depth (including across links — that is
the point of HOPI). A predicate ``[p]`` keeps only elements with at
least one match of the relative path ``p`` starting from them: a bare
``[tag]`` tests for a child, ``[//tag]`` for a HOPI-reachable
descendant. ``limit``/``offset`` window the *ranked* result list
(offset skips, limit caps — applied in that order).

``str()`` of a parsed expression reproduces a canonical form that
parses back to an equal expression (``parse_path(str(e)) == e``), which
is what lets the service layer key its plan and result caches by the
canonical text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

_TEST_RE = re.compile(r"(~?)([A-Za-z_][\w.\-]*|\*)")
_WINDOW_RE = re.compile(r"\s+(limit|offset)\s+(\d+)")


class PathSyntaxError(ValueError):
    """Raised on malformed path expressions."""


@dataclass(frozen=True)
class Predicate:
    """An existence filter ``[relpath]`` attached to a step.

    The element the step binds qualifies iff the relative path has at
    least one match starting from it. ``steps`` is a non-empty tuple of
    :class:`Step`; a first step with the ``child`` axis renders without
    a leading slash (``[tag]``), matching XPath's bare-name child test.
    Predicates filter only — they contribute no score.
    """

    steps: Tuple["Step", ...]

    def __str__(self) -> str:
        first, *rest = self.steps
        if first.axis == "child":
            head = f"{'~' if first.similar else ''}{first.tag}" + "".join(
                str(p) for p in first.predicates
            )
        else:
            head = str(first)
        return "[" + head + "".join(str(s) for s in rest) + "]"


@dataclass(frozen=True)
class Step:
    """One location step.

    Attributes:
        axis: ``"child"`` or ``"descendant"``.
        tag: element test (``"*"`` matches any tag).
        similar: True for ``~tag`` similarity tests.
        predicates: existence filters (``[relpath]``), applied
            conjunctively to the elements this step binds.
    """

    axis: str
    tag: str
    similar: bool = False
    predicates: Tuple[Predicate, ...] = ()

    def __str__(self) -> str:
        prefix = "/" if self.axis == "child" else "//"
        return (
            f"{prefix}{'~' if self.similar else ''}{self.tag}"
            + "".join(str(p) for p in self.predicates)
        )


@dataclass(frozen=True)
class PathExpression:
    """A parsed path expression (a non-empty sequence of steps).

    Attributes:
        steps: the location steps, left to right.
        limit: cap on the number of *ranked* results returned, or
            ``None`` for no cap. Applied after ``offset``.
        offset: number of ranked results to skip (default 0).
    """

    steps: tuple
    limit: Optional[int] = None
    offset: int = 0

    def __str__(self) -> str:
        text = "".join(str(s) for s in self.steps)
        if self.limit is not None:
            text += f" limit {self.limit}"
        if self.offset:
            text += f" offset {self.offset}"
        return text

    def __len__(self) -> int:
        return len(self.steps)


def _parse_step(
    text: str, pos: int, *, first_in_predicate: bool = False
) -> Tuple[Optional[Step], int]:
    """Parse one step at ``pos``; ``(None, pos)`` when none starts here.

    Inside a predicate the first step may omit its axis (bare ``tag`` =
    child, as in XPath).
    """
    if text.startswith("//", pos):
        axis, pos = "descendant", pos + 2
    elif text.startswith("/", pos):
        axis, pos = "child", pos + 1
    elif first_in_predicate and _TEST_RE.match(text, pos):
        axis = "child"
    else:
        return None, pos
    m = _TEST_RE.match(text, pos)
    if not m:
        raise PathSyntaxError(
            f"expected an element test at offset {pos}: {text[pos:]!r}"
        )
    tilde, tag = m.groups()
    if tilde and tag == "*":
        raise PathSyntaxError("'~*' is meaningless: '*' already matches all")
    pos = m.end()
    predicates: List[Predicate] = []
    while pos < len(text) and text[pos] == "[":
        predicate, pos = _parse_predicate(text, pos)
        predicates.append(predicate)
    return Step(axis, tag, bool(tilde), tuple(predicates)), pos


def _parse_predicate(text: str, pos: int) -> Tuple[Predicate, int]:
    """Parse ``[relpath]`` with ``pos`` at the opening bracket."""
    start, pos = pos, pos + 1
    first, pos = _parse_step(text, pos, first_in_predicate=True)
    if first is None:
        raise PathSyntaxError(
            f"empty or malformed predicate at offset {start}: "
            f"{text[start:]!r}"
        )
    steps = [first]
    while pos < len(text) and text[pos] == "/":
        step, pos = _parse_step(text, pos)
        steps.append(step)
    if pos >= len(text) or text[pos] != "]":
        raise PathSyntaxError(
            f"unterminated predicate at offset {start}: {text[start:]!r}"
        )
    return Predicate(tuple(steps)), pos + 1


def _parse_window(
    text: str, pos: int
) -> Tuple[Optional[int], Optional[int], int]:
    """Parse trailing ``limit N`` / ``offset M`` clauses (either order)."""
    limit: Optional[int] = None
    offset: Optional[int] = None
    while True:
        m = _WINDOW_RE.match(text, pos)
        if not m:
            return limit, offset, pos
        keyword, value = m.groups()
        if keyword == "limit":
            if limit is not None:
                raise PathSyntaxError("duplicate 'limit' clause")
            limit = int(value)
        else:
            if offset is not None:
                raise PathSyntaxError("duplicate 'offset' clause")
            offset = int(value)
        pos = m.end()


def parse_path(text: str) -> PathExpression:
    """Parse a path expression.

    Raises:
        PathSyntaxError: on empty input, trailing garbage, ``~*``, a
            missing leading axis, an unterminated ``[predicate]``, or a
            duplicate ``limit``/``offset`` clause.
    """
    text = text.strip()
    if not text:
        raise PathSyntaxError("empty path expression")
    steps: List[Step] = []
    pos = 0
    while pos < len(text):
        step, pos = _parse_step(text, pos)
        if step is None:
            break
        steps.append(step)
    if not steps:
        raise PathSyntaxError(
            f"malformed path expression at offset 0: {text!r}"
        )
    limit, offset, pos = _parse_window(text, pos)
    if pos != len(text):
        raise PathSyntaxError(
            f"malformed path expression at offset {pos}: {text[pos:]!r}"
        )
    return PathExpression(tuple(steps), limit=limit, offset=offset or 0)
