"""Parser for the path-expression dialect.

Grammar (a practical subset of XPath's location paths, extended with
XXL's ``~`` similarity operator)::

    path  := step+
    step  := axis test
    axis  := "/"        (child)
           | "//"       (descendant-or-self, evaluated via HOPI)
    test  := NAME | "~" NAME | "*"

Examples: ``//book//author``, ``/bib/book/title``, ``//~publication/*``.

A leading ``/`` anchors the first step at document roots; a leading
``//`` matches elements at any depth (including across links — that is
the point of HOPI).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

_STEP_RE = re.compile(r"(//|/)(~?)([A-Za-z_][\w.\-]*|\*)")


class PathSyntaxError(ValueError):
    """Raised on malformed path expressions."""


@dataclass(frozen=True)
class Step:
    """One location step.

    Attributes:
        axis: ``"child"`` or ``"descendant"``.
        tag: element test (``"*"`` matches any tag).
        similar: True for ``~tag`` similarity tests.
    """

    axis: str
    tag: str
    similar: bool = False

    def __str__(self) -> str:
        prefix = "/" if self.axis == "child" else "//"
        return f"{prefix}{'~' if self.similar else ''}{self.tag}"


@dataclass(frozen=True)
class PathExpression:
    """A parsed path expression (a non-empty sequence of steps)."""

    steps: tuple

    def __str__(self) -> str:
        return "".join(str(s) for s in self.steps)

    def __len__(self) -> int:
        return len(self.steps)


def parse_path(text: str) -> PathExpression:
    """Parse a path expression.

    Raises:
        PathSyntaxError: on empty input, trailing garbage, ``~*``, or a
            missing leading axis.
    """
    text = text.strip()
    if not text:
        raise PathSyntaxError("empty path expression")
    steps: List[Step] = []
    pos = 0
    while pos < len(text):
        m = _STEP_RE.match(text, pos)
        if not m:
            raise PathSyntaxError(
                f"malformed path expression at offset {pos}: {text[pos:]!r}"
            )
        axis_token, tilde, tag = m.groups()
        if tilde and tag == "*":
            raise PathSyntaxError("'~*' is meaningless: '*' already matches all")
        steps.append(
            Step(
                axis="descendant" if axis_token == "//" else "child",
                tag=tag,
                similar=bool(tilde),
            )
        )
        pos = m.end()
    return PathExpression(tuple(steps))
