"""Backend-aware probe cost models for the physical planner.

The planner's direction decisions used to compare raw candidate-count
estimates, implicitly assuming a forward ``descendants``-side probe and
a backward ``ancestors``-side probe cost the same. They do not, and the
gap is backend-dependent: the vector backend answers forward blocks
with one amortised candidate translation plus C-level membership tests,
while a backward probe still materialises an ancestor set per target.
A :class:`ProbeCostModel` carries one relative unit cost per direction;
:func:`repro.query.planner.plan_query` multiplies its candidate
estimates by them, so a cheap-forward backend flips fewer joins
backward than a backend where both directions cost alike.

Two sources of models:

* :data:`DEFAULT_COST_MODELS` — static per-backend constants (what an
  uncalibrated index reports). Deterministic, so plans never flicker
  between runs.
* :func:`calibrate_probe_costs` — a micro-benchmark run at build time
  (``HopiIndex.build(..., calibrate_costs=True)`` or
  ``index.calibrate_probe_costs()``) that measures both directions on
  the actual index and clamps the ratio into a sane range.

Either way the *answers* never depend on the model — any join order is
sound (pinned by the planner-soundness property tests); the model only
moves the plan along the cost/latency trade-off.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ProbeCostModel:
    """Relative per-probe costs of one backend's two probe directions.

    Attributes:
        backend: the label backend the constants describe.
        forward: unit cost of one forward (``descendants``-side,
            ``connected_many``/``intersect_many``) probe.
        backward: unit cost of one backward (``ancestors``-side
            materialisation) probe.
        source: ``"default"`` (static table), ``"calibrated"``
            (micro-bench), ``"neutral"`` (direction-blind legacy
            behaviour) or ``"synthetic"`` (tests).
    """

    backend: str
    forward: float
    backward: float
    source: str = "default"

    @property
    def neutral(self) -> bool:
        """True when both directions cost the same — the planner then
        reproduces the legacy count-only decisions exactly."""
        return self.forward == self.backward

    def unit(self, axis: str, direction: str) -> float:
        """The weight for joining one position: descendant joins probe
        the cover (direction-dependent); child joins follow parent
        pointers and are direction-blind."""
        if axis != "descendant":
            return 1.0
        return self.forward if direction == "forward" else self.backward


#: The direction-blind model: multiplies every estimate by 1, so every
#: decision reduces to the legacy candidate-count comparison.
NEUTRAL_COST_MODEL = ProbeCostModel("any", 1.0, 1.0, source="neutral")

#: Static per-backend constants (relative units; only the ratio between
#: directions matters). ``sets``/``arrays`` probe both directions with
#: comparable per-element python loops — backward pays a little extra
#: for the ancestor-set materialisation. ``vector`` answers forward
#: probes through sealed-slab kernels (amortised translation + C
#: membership), so its forward unit is far below its backward unit.
DEFAULT_COST_MODELS: Dict[str, ProbeCostModel] = {
    "sets": ProbeCostModel("sets", 1.0, 1.1),
    "arrays": ProbeCostModel("arrays", 1.0, 1.3),
    "vector": ProbeCostModel("vector", 0.35, 1.3),
}


def default_cost_model(backend: str) -> ProbeCostModel:
    """The static cost model for ``backend`` (neutral when unknown)."""
    return DEFAULT_COST_MODELS.get(backend, NEUTRAL_COST_MODEL)


def calibrate_probe_costs(
    index,
    *,
    samples: int = 24,
    max_candidates: int = 512,
    repeats: int = 3,
    seed: int = 17,
) -> ProbeCostModel:
    """Measure forward vs backward probe cost on a concrete index.

    Samples elements of the index's collection, times ``samples``
    forward ``connected_many`` probes against a fixed candidate list
    and ``samples`` backward ``ancestors``-side materialisations (the
    exact shapes the executor issues), and returns a model with
    ``forward`` normalised to 1.0. The measured ratio is clamped to
    ``[0.05, 20]`` so one noisy run can never produce a degenerate
    planner. Falls back to the backend's static table on collections
    too small to measure.
    """
    elements = sorted(index.collection.elements)
    if len(elements) < 2:
        return default_cost_model(index.backend)
    rng = random.Random(seed)
    candidates = elements[:max_candidates]
    cand_set = set(candidates)
    probes = [rng.choice(elements) for _ in range(samples)]

    def time_best(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return max(best, 1e-9)

    def forward_pass() -> None:
        for s in probes:
            index.connected_many(s, candidates)

    def backward_pass() -> None:
        # mirrors ExecContext.backward_reach: materialise the ancestor
        # set, intersect with the candidate map, sort
        for t in probes:
            ancestors = index.ancestors(t)
            if len(cand_set) < len(ancestors):
                sorted(e for e in cand_set if e in ancestors)
            else:
                sorted(e for e in ancestors if e in cand_set)

    forward_pass()  # warm caches/slabs so the seal is not billed
    forward_seconds = time_best(forward_pass)
    backward_seconds = time_best(backward_pass)
    ratio = backward_seconds / forward_seconds
    ratio = min(max(ratio, 0.05), 20.0)
    return ProbeCostModel(
        index.backend, 1.0, round(ratio, 3), source="calibrated"
    )
