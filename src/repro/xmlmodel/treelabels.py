"""Pre/postorder interval labeling of element-level trees.

Section 4.3 notes that HOPI "maintain[s] pre- and postorder values for
each node until we have built the HOPI index" to derive the per-node
ancestor/descendant counts of the skeleton graph cheaply. This module
implements that labeling (one counter, assigned on entry and exit, the
classical XPath-accelerator scheme):

* ``u`` is a tree ancestor of ``v``  ⇔  ``pre(u) <= pre(v)`` and
  ``post(u) >= post(v)`` (within the same document);
* the subtree size of ``u`` is ``(post(u) - pre(u) + 1) / 2``;
* the tree depth of ``u`` (= ancestor count including self) is tracked
  alongside.

Tree labels answer *tree-only* axes in O(1); they are oblivious to
intra- and inter-document links — that is HOPI's job. The query engine
uses them to shortcut purely structural steps.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.xmlmodel.model import Collection, DocId, Document, ElementId


class TreeLabeling:
    """Pre/post/depth labels for every element of a collection.

    Labels are assigned per document (counters restart per document; the
    document id disambiguates). After structural maintenance, call
    :meth:`relabel_document` for changed documents or :meth:`rebuild`.
    """

    def __init__(self, collection: Collection) -> None:
        self._collection = collection
        self.pre: Dict[ElementId, int] = {}
        self.post: Dict[ElementId, int] = {}
        self.depth: Dict[ElementId, int] = {}
        self.rebuild()

    def rebuild(self) -> None:
        """Relabel every document."""
        self.pre.clear()
        self.post.clear()
        self.depth.clear()
        for doc in self._collection.documents.values():
            self._label_document(doc)

    def relabel_document(self, doc_id: DocId) -> None:
        """Relabel one document (after inserts below its root)."""
        doc = self._collection.documents[doc_id]
        for e in doc.elements:
            self.pre.pop(e, None)
            self.post.pop(e, None)
            self.depth.pop(e, None)
        self._label_document(doc)

    def forget_document(self, elements: Iterable[ElementId]) -> None:
        """Drop labels of a removed document's elements."""
        for e in elements:
            self.pre.pop(e, None)
            self.post.pop(e, None)
            self.depth.pop(e, None)

    def _label_document(self, doc: Document) -> None:
        counter = 0
        # iterative entry/exit DFS in children order
        stack: list[Tuple[ElementId, bool, int]] = [(doc.root, False, 1)]
        while stack:
            node, exiting, depth = stack.pop()
            if exiting:
                self.post[node] = counter
                counter += 1
                continue
            self.pre[node] = counter
            self.depth[node] = depth
            counter += 1
            stack.append((node, True, depth))
            for child in reversed(doc.children[node]):
                stack.append((child, False, depth + 1))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_tree_ancestor(self, u: ElementId, v: ElementId) -> bool:
        """Is ``u`` an ancestor of ``v`` in its document tree (reflexive)?

        Link edges are ignored — this is the pure parent/child axis.
        """
        if self._collection.doc(u) != self._collection.doc(v):
            return False
        return self.pre[u] <= self.pre[v] and self.post[u] >= self.post[v]

    def subtree_size(self, u: ElementId) -> int:
        """Number of elements in ``u``'s subtree, including ``u``."""
        return (self.post[u] - self.pre[u] + 1) // 2

    def tree_counts(self, u: ElementId) -> Tuple[int, int]:
        """``(anc, desc)`` counts, both including self (Figure 5)."""
        return self.depth[u], self.subtree_size(u)

    def tree_distance(self, u: ElementId, v: ElementId) -> Optional[int]:
        """Downward tree distance ``u -> v`` (edges), or None if ``u`` is
        not an ancestor of ``v``."""
        if not self.is_tree_ancestor(u, v):
            return None
        return self.depth[v] - self.depth[u]
