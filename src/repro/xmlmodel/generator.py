"""Synthetic XML collection generators.

The paper evaluates on two proprietary datasets (Table 1):

* a DBLP subset — 6,210 publication documents, 168,991 elements
  (≈ 27 per document), 25,368 citation XLinks (≈ 4 per document), 13.2 MB;
* the INEX collection — 12,232 article documents, 12,061,348 elements
  (≈ 986 per document) and **no** inter-document links.

Neither dataset ships with the paper, so these generators produce
collections with the same structural profile (shallow bibliographic
records with skewed citation in-degree; deep article trees without
links). Scale is a parameter everywhere — the benchmarks default to
laptop-sized collections and print the scale factor used.

``random_collection`` generates small arbitrary collections (random
trees, random intra-/inter-links, optionally cyclic) for property-based
tests.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.xmlmodel.model import Collection, Element

_FIRST = [
    "Ada", "Alan", "Barbara", "Claude", "Donald", "Edgar", "Frances", "Grace",
    "Hedy", "John", "Katherine", "Leslie", "Margaret", "Niklaus", "Peter",
]
_LAST = [
    "Codd", "Dijkstra", "Hopper", "Knuth", "Lamport", "Liskov", "Lovelace",
    "McCarthy", "Shannon", "Tarjan", "Turing", "Wirth",
]
_TITLE_WORDS = [
    "efficient", "incremental", "index", "maintenance", "xml", "graph",
    "reachability", "queries", "distributed", "adaptive", "ranking",
    "semistructured", "retrieval", "labeling", "compression", "covers",
]
_SECTION_WORDS = [
    "introduction", "model", "foundations", "algorithms", "distance",
    "maintenance", "experiments", "conclusion", "related", "discussion",
]


def _title(rng: random.Random, words: Sequence[str], k: int) -> str:
    return " ".join(rng.choice(words) for _ in range(k)).capitalize()


def dblp_like(
    n_docs: int,
    *,
    seed: int = 42,
    mean_authors: float = 2.5,
    mean_cites: float = 4.0,
    preferential: float = 0.7,
    rng: Optional[random.Random] = None,
) -> Collection:
    """A citation-linked bibliographic collection in the style of DBLP.

    Every document is one publication::

        <article>
          <title/> <year/> <pages/>
          <authors> <author/>* </authors>
          <citations> <cite/>* </citations>   # each cite links to
        </article>                            # another document's root

    Citations target earlier publications with probability
    ``preferential`` proportionally to their current in-degree (rich-get-
    richer, mirroring real citation skew) and uniformly otherwise. The
    defaults give ≈ 27 elements and ≈ 4 outgoing citation links per
    document, matching the per-document profile of the paper's DBLP
    subset (Table 1). The resulting document-level graph is a DAG, like
    real citation graphs.

    Args:
        n_docs: number of publication documents.
        seed: RNG seed (ignored when ``rng`` is given).
        mean_authors: average number of ``author`` elements.
        mean_cites: average number of outgoing citations per document.
        preferential: probability a citation follows in-degree-
            proportional preferential attachment instead of a uniform pick.
        rng: optional external RNG for reproducible composition.
    """
    rng = rng or random.Random(seed)
    collection = Collection()
    roots: List[int] = []
    cite_elements: List[List[Element]] = []
    # weighted list of target doc indexes for preferential attachment;
    # every doc enters once and again per received citation.
    attachment: List[int] = []

    for i in range(n_docs):
        doc_id = f"dblp{i}"
        root = collection.new_document(doc_id, "article")
        roots.append(root.eid)
        title = collection.add_child(root.eid, "title")
        title.text = _title(rng, _TITLE_WORDS, rng.randint(4, 8))
        collection.add_child(root.eid, "year").text = str(rng.randint(1985, 2004))
        collection.add_child(root.eid, "pages").text = (
            f"{rng.randint(1, 500)}-{rng.randint(501, 999)}"
        )
        authors = collection.add_child(root.eid, "authors")
        n_authors = max(1, int(rng.expovariate(1.0 / mean_authors)) + 1)
        for _ in range(min(n_authors, 8)):
            author = collection.add_child(authors.eid, "author")
            author.text = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
        # a couple of filler metadata elements to reach ~27 elements/doc
        meta = collection.add_child(root.eid, "metadata")
        for tag in ("booktitle", "publisher", "ee", "url"):
            collection.add_child(meta.eid, tag).text = _title(rng, _TITLE_WORDS, 2)
        keywords = collection.add_child(root.eid, "keywords")
        for _ in range(rng.randint(2, 5)):
            collection.add_child(keywords.eid, "keyword").text = rng.choice(
                _TITLE_WORDS
            )
        citations = collection.add_child(root.eid, "citations")
        cites: List[Element] = []
        if i > 0:
            n_cites = min(int(rng.expovariate(1.0 / mean_cites)) + 1, i, 15)
            for _ in range(n_cites):
                cites.append(collection.add_child(citations.eid, "cite"))
        cite_elements.append(cites)
        attachment.append(i)

    for i, cites in enumerate(cite_elements):
        chosen: set[int] = set()
        for cite in cites:
            for _ in range(8):  # rejection-sample a distinct earlier target
                if i > 0 and rng.random() < preferential and attachment:
                    target = rng.choice(attachment)
                else:
                    target = rng.randrange(i) if i > 0 else 0
                if target < i and target not in chosen:
                    break
            else:
                continue
            chosen.add(target)
            collection.add_link(cite.eid, roots[target])
            attachment.append(target)
    return collection


def inex_like(
    n_docs: int,
    *,
    seed: int = 7,
    mean_sections: int = 5,
    mean_paragraphs: int = 8,
    elements_per_doc: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Collection:
    """A deep tree-structured article collection in the style of INEX.

    Every document is one journal article::

        <article>
          <fm> <title/> <author/>* </fm>
          <bdy> <sec> <st/> <p/>* <ss> <st/> <p/>* </ss>* </sec>* </bdy>
          <bm> <bib> <bibentry/>* </bib> </bm>

    There are **no** inter-document links (the paper's INEX collection has
    none), so every document separates the document-level graph and the
    Theorem-2 deletion fast path always applies.

    Args:
        n_docs: number of articles.
        seed: RNG seed (ignored when ``rng`` is given).
        mean_sections: sections per article.
        mean_paragraphs: paragraphs per section/subsection.
        elements_per_doc: approximate element-count target per document;
            when given, sections are scaled to hit it (the paper's INEX
            average is ≈ 986 elements per document).
        rng: optional external RNG.
    """
    rng = rng or random.Random(seed)
    if elements_per_doc is not None:
        # one section subtree is ~ (2 + mean_paragraphs) * 3 elements
        per_section = (2 + mean_paragraphs) * 3
        mean_sections = max(1, elements_per_doc // per_section)
    collection = Collection()
    for i in range(n_docs):
        doc_id = f"inex{i}"
        root = collection.new_document(doc_id, "article")
        fm = collection.add_child(root.eid, "fm")
        collection.add_child(fm.eid, "title").text = _title(
            rng, _TITLE_WORDS, rng.randint(5, 9)
        )
        for _ in range(rng.randint(1, 4)):
            collection.add_child(fm.eid, "author").text = (
                f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
            )
        body = collection.add_child(root.eid, "bdy")
        n_sections = max(1, rng.randint(mean_sections - 1, mean_sections + 1))
        for _ in range(n_sections):
            sec = collection.add_child(body.eid, "sec")
            collection.add_child(sec.eid, "st").text = _title(
                rng, _SECTION_WORDS, 2
            )
            for _ in range(max(1, rng.randint(mean_paragraphs - 2, mean_paragraphs + 2))):
                collection.add_child(sec.eid, "p").text = _title(
                    rng, _TITLE_WORDS, 12
                )
            for _ in range(rng.randint(1, 3)):
                ss = collection.add_child(sec.eid, "ss")
                collection.add_child(ss.eid, "st").text = _title(
                    rng, _SECTION_WORDS, 2
                )
                for _ in range(max(1, rng.randint(mean_paragraphs - 3, mean_paragraphs + 1))):
                    collection.add_child(ss.eid, "p").text = _title(
                        rng, _TITLE_WORDS, 10
                    )
        bm = collection.add_child(root.eid, "bm")
        bib = collection.add_child(bm.eid, "bib")
        for _ in range(rng.randint(3, 12)):
            collection.add_child(bib.eid, "bibentry").text = _title(
                rng, _TITLE_WORDS, 6
            )
    return collection


def random_collection(
    *,
    n_docs: int,
    max_elements_per_doc: int = 8,
    intra_link_probability: float = 0.15,
    inter_links: int = 4,
    allow_cycles: bool = True,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> Collection:
    """Small arbitrary collections for property-based testing.

    Trees are uniform random recursive trees; intra-links connect random
    element pairs of a document; ``inter_links`` random cross-document
    links are added (possibly creating document-level cycles when
    ``allow_cycles`` is true, otherwise only forward links doc_i -> doc_j
    with i < j are drawn).
    """
    rng = rng or random.Random(seed)
    collection = Collection()
    tags = ["a", "b", "c", "d", "e"]
    doc_ids = [f"doc{i}" for i in range(n_docs)]
    for doc_id in doc_ids:
        root = collection.new_document(doc_id, rng.choice(tags))
        members = [root.eid]
        for _ in range(rng.randrange(max_elements_per_doc)):
            parent = rng.choice(members)
            members.append(collection.add_child(parent, rng.choice(tags)).eid)
        for u in members:
            for v in members:
                if u != v and rng.random() < intra_link_probability / len(members):
                    collection.add_link(u, v)
    for _ in range(inter_links):
        if n_docs < 2:
            break
        if allow_cycles:
            i, j = rng.randrange(n_docs), rng.randrange(n_docs)
            if i == j:
                continue
        else:
            i = rng.randrange(n_docs - 1)
            j = rng.randrange(i + 1, n_docs)
        u = rng.choice(sorted(collection.elements_of(doc_ids[i])))
        v = rng.choice(sorted(collection.elements_of(doc_ids[j])))
        collection.add_link(u, v)
    return collection
